"""Tests for finding provenance: the taint chain behind every verdict."""

import textwrap

import pytest

from repro.analysis.analyzer import analyze_page, run_pages
from repro.analysis.provenance import Provenance, trace_provenance
from repro.lang.grammar import DIRECT, Grammar, Lit
from repro.obs.metrics import PERF


@pytest.fixture
def check(tmp_path):
    def run(source, page="page.php"):
        (tmp_path / page).write_text(textwrap.dedent(source))
        reports, _ = analyze_page(tmp_path, page)
        return reports

    return run


class TestSourceSites:
    def test_violation_carries_source_site(self, check):
        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        (finding,) = report.violations
        provenance = finding.provenance
        assert provenance is not None
        assert provenance.check == finding.check
        sources = provenance.sources
        assert len(sources) >= 1
        assert sources[0]["kind"] == "source"
        assert sources[0]["name"] == "_GET"
        assert sources[0]["label"] == DIRECT
        assert sources[0]["file"].endswith("page.php")
        assert sources[0]["line"] == 2

    def test_every_nonsafe_finding_has_a_source(self, check):
        reports = check(
            """\
            <?php
            $a = $_POST['a'];
            $b = $_COOKIE['b'];
            mysql_query("SELECT * FROM t WHERE a='$a' AND b='$b'");
            """
        )
        for report in reports:
            for finding in report.findings:
                if finding.safe:
                    continue
                assert finding.provenance is not None
                assert finding.provenance.sources

    def test_state_split_nonterminal_still_reaches_source(self, check):
        """A verdict on a product-construction copy of the source (an
        FST-image or intersection state split, e.g. ``_GET#5/0,0``) must
        still trace back to the source site via the absorb edges."""
        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            $id = str_replace("x", "y", $id);
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        (finding,) = report.violations
        provenance = finding.provenance
        assert provenance.sources and provenance.sources[0]["name"] == "_GET"
        assert any(e["kind"] == "sanitizer" for e in provenance.steps)

    def test_render_and_as_dict_include_provenance(self, check):
        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        (finding,) = report.violations
        assert "source: _GET" in finding.render()
        data = finding.as_dict()
        assert data["provenance"]["sources"][0]["name"] == "_GET"
        # round-trip through the JSON form
        again = Provenance.from_dict(data["provenance"])
        assert again.as_dict() == data["provenance"]


class TestOperationSteps:
    def test_sanitizer_step_recorded(self, check):
        """An FST image shows up as a ``sanitizer`` step carrying the PHP
        call name and before/after samples."""
        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            $id = addslashes($id);
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        steps = [
            event
            for finding in report.findings
            if finding.provenance is not None
            for event in finding.provenance.steps
        ]
        sanitizers = [e for e in steps if e["kind"] == "sanitizer"]
        assert sanitizers, f"no sanitizer step in {steps}"
        assert sanitizers[0]["name"] == "addslashes"
        assert sanitizers[0]["line"] == 3

    def test_flow_through_unknown_call(self, check):
        """Taint carried through an unmodeled call is recorded as a
        ``flow`` step naming the call."""
        (report,) = check(
            """\
            <?php
            $id = badfunc($_GET['id']);
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        (finding,) = report.violations
        provenance = finding.provenance
        steps = provenance.steps
        flows = [e for e in steps if e["kind"] == "flow"]
        assert any(e["name"] == "call.badfunc" for e in flows), steps
        # the prov_inputs edge bridges the fresh Σ* back to the source
        assert provenance.sources and provenance.sources[0]["name"] == "_GET"

    def test_steps_read_source_to_sink(self, check):
        """With sanitize-after-flow, the flow step precedes the sanitizer
        step (source-side first)."""
        (report,) = check(
            """\
            <?php
            $id = badfunc($_GET['id']);
            $id = addslashes($id);
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        kinds = [
            e["kind"]
            for finding in report.findings
            if finding.provenance is not None
            for e in finding.provenance.steps
        ]
        assert "flow" in kinds and "sanitizer" in kinds, kinds
        assert kinds.index("flow") < kinds.index("sanitizer")


class TestMemoReplayRebinding:
    def test_cached_verdict_rebinds_to_hitting_page(self, tmp_path):
        """Two structurally identical pages: the second page's verdict is
        replayed from the memo, but its provenance must name the second
        page's own file."""
        source = textwrap.dedent(
            """\
            <?php
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        (tmp_path / "first.php").write_text(source)
        (tmp_path / "second.php").write_text(source)
        PERF.reset()
        results = run_pages(
            tmp_path, [tmp_path / "first.php", tmp_path / "second.php"], jobs=1
        )
        assert PERF.snapshot()["counters"].get("policy.verdict_cache.hits", 0) >= 1
        for result, page in zip(results, ("first.php", "second.php")):
            (report,) = result.reports
            (finding,) = report.violations
            assert finding.provenance is not None
            (source_event,) = finding.provenance.sources
            assert source_event["file"].endswith(page)

    def test_no_finding_nts_leak_on_reports(self, check):
        """The NT side-channel is consumed: reports stay free of live
        grammar objects and pickle cleanly."""
        import pickle

        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        assert not hasattr(report, "_finding_nts")
        pickle.loads(pickle.dumps(report))


class TestTraceWalk:
    def test_prov_inputs_bridge_structural_disconnects(self):
        """trace_provenance follows ``prov_inputs`` edges where the
        productions cannot show the operand."""
        grammar = Grammar()
        sink = grammar.fresh("sink")
        operand = grammar.fresh("operand")
        grammar.add(sink, (Lit("x"),))
        grammar.add(operand, (Lit("y"),))
        grammar.set_origin(
            operand, {"kind": "source", "name": "_GET", "label": DIRECT,
                      "file": "a.php", "line": 1},
        )
        grammar.set_origin(
            sink, {"kind": "sanitizer", "name": "addslashes",
                   "file": "a.php", "line": 2},
            inputs=(operand,),
        )
        provenance = trace_provenance(grammar, sink, check="odd-quotes")
        assert [e["name"] for e in provenance.sources] == ["_GET"]
        assert [e["name"] for e in provenance.steps] == ["addslashes"]
        assert not provenance.truncated

    def test_first_origin_wins(self):
        grammar = Grammar()
        nt = grammar.fresh("x")
        grammar.set_origin(nt, {"kind": "source", "name": "_GET"})
        grammar.set_origin(nt, {"kind": "source", "name": "_POST"})
        assert grammar.origins[nt]["name"] == "_GET"

    def test_truncation_keeps_source_side(self):
        """Chains longer than MAX_STEPS keep the steps nearest the source
        and mark themselves truncated."""
        from repro.analysis.provenance import MAX_STEPS

        grammar = Grammar()
        chain = [grammar.fresh(f"n{i}") for i in range(MAX_STEPS + 5)]
        grammar.set_origin(
            chain[0], {"kind": "source", "name": "_GET", "label": DIRECT},
        )
        for i in range(1, len(chain)):
            grammar.add(chain[i], (chain[i - 1],))
            grammar.set_origin(chain[i], {"kind": "flow", "name": f"f{i}"})
        provenance = trace_provenance(grammar, chain[-1])
        assert provenance.truncated
        assert len(provenance.steps) == MAX_STEPS
        # source-side first: the earliest operations survive the cut
        assert provenance.steps[0]["name"] == "f1"

    def test_origins_do_not_perturb_fingerprint(self):
        """Provenance side-tables must be invisible to content addressing
        (DESIGN §6): same structure, different origins, same fingerprint."""
        plain = Grammar()
        a = plain.fresh("a")
        plain.add(a, (Lit("q"),))
        annotated = Grammar()
        b = annotated.fresh("b")
        annotated.add(b, (Lit("q"),))
        annotated.set_origin(b, {"kind": "source", "name": "_GET"})
        assert plain.fingerprint(a) == annotated.fingerprint(b)
