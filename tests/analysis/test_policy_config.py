"""Tests for the ``--policy-config`` YAML schema and its fallback parser.

Every schema violation must surface as the typed
:class:`~repro.analysis.policies.PolicyConfigError` (the CLI and CI
smoke job key off that), the mini-YAML fallback must parse the whole
in-tree schema without PyYAML, and the config digest must be stable —
it salts the disk-cache page key.
"""

import builtins as py_builtins
from pathlib import Path

import pytest

from repro.analysis.policies import (
    DEFAULT_CONFIG,
    PolicyConfig,
    PolicyConfigError,
    config_from_dict,
    load_policy_config,
    parse_policy_yaml,
)
from repro.analysis.policies.config import _mini_yaml

REPO_ROOT = Path(__file__).resolve().parents[2]

VALID = """\
policies: [sql, shell, path]
sinks:
  shell:
    functions:
      run_command: 0
sources:
  _ENV: direct
"""


class TestValidConfigs:
    def test_default_is_sql_only(self):
        assert DEFAULT_CONFIG.enabled == ("sql",)
        assert DEFAULT_CONFIG.extra_sinks == ()

    def test_full_round_trip(self, tmp_path):
        path = tmp_path / "p.yaml"
        path.write_text(VALID)
        config = load_policy_config(path)
        assert config.enabled == ("sql", "shell", "path")
        assert ("shell", "run_command", 0) in config.extra_sinks
        assert config.source_label("_ENV") == "direct"
        assert ("run_command", (("shell", 0),)) in (
            config.function_sink_table().items()
        )

    def test_policies_normalized_to_registry_order(self):
        config = config_from_dict({"policies": ["path", "sql", "shell"]})
        assert config.enabled == ("sql", "shell", "path")

    def test_duplicates_collapse(self):
        config = config_from_dict({"policies": ["shell", "shell"]})
        assert config.enabled == ("shell",)

    def test_in_tree_example_validates(self):
        config = load_policy_config(REPO_ROOT / "examples" / "policies.yaml")
        assert config.enabled == (
            "sql", "xss", "xss-context", "shell", "eval", "path",
        )
        assert ("shell", "run_command", 0) in config.extra_sinks

    def test_digest_is_stable_and_config_sensitive(self):
        a = config_from_dict({"policies": ["sql", "shell"]})
        b = config_from_dict({"policies": ["shell", "sql"]})
        c = config_from_dict({"policies": ["sql", "eval"]})
        assert a.digest() == b.digest()  # same normalized config
        assert a.digest() != c.digest()
        assert DEFAULT_CONFIG.digest() == PolicyConfig().digest()

    def test_config_is_hashable_and_picklable(self):
        import pickle

        config = config_from_dict({"policies": ["sql", "shell"]})
        assert hash(config) == hash(config)
        assert pickle.loads(pickle.dumps(config)) == config


class TestMalformedConfigs:
    @pytest.mark.parametrize(
        "document",
        [
            {"policies": []},
            {"policies": "sql"},
            {"policies": ["nonexistent"]},
            {"policies": ["sql"], "bogus": 1},
            {"policies": ["sql"], "sinks": ["not", "a", "map"]},
            {"policies": ["sql"], "sinks": {"nonexistent": {}}},
            {"policies": ["sql"], "sinks": {"shell": {"methods": {}}}},
            {"policies": ["sql"], "sinks": {"shell": {"functions": {"f": -1}}}},
            {"policies": ["sql"], "sinks": {"shell": {"functions": {"f": True}}}},
            {"policies": ["sql"], "sources": {"_ENV": "tainted"}},
            "just a string",
        ],
    )
    def test_typed_error(self, document):
        with pytest.raises(PolicyConfigError):
            config_from_dict(document)

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(PolicyConfigError):
            load_policy_config(tmp_path / "nope.yaml")

    def test_error_is_a_value_error(self):
        # parser.error-style handlers may catch ValueError generically
        assert issubclass(PolicyConfigError, ValueError)


class TestMiniYamlFallback:
    def test_parses_the_schema_subset(self):
        assert _mini_yaml(VALID, "<test>") == {
            "policies": ["sql", "shell", "path"],
            "sinks": {"shell": {"functions": {"run_command": 0}}},
            "sources": {"_ENV": "direct"},
        }

    def test_comments_and_blank_lines(self):
        text = "# header\npolicies: [sql]  # trailing\n\nsources:\n  X: direct\n"
        assert _mini_yaml(text, "<test>") == {
            "policies": ["sql"],
            "sources": {"X": "direct"},
        }

    def test_tabs_rejected(self):
        with pytest.raises(PolicyConfigError):
            _mini_yaml("policies:\n\t- sql\n", "<test>")

    def test_used_when_pyyaml_is_absent(self, monkeypatch):
        real_import = py_builtins.__import__

        def no_yaml(name, *args, **kwargs):
            if name == "yaml":
                raise ImportError("forced for test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(py_builtins, "__import__", no_yaml)
        data = parse_policy_yaml(VALID)
        config = config_from_dict(data)
        assert config.enabled == ("sql", "shell", "path")

    def test_in_tree_example_parses_without_pyyaml(self, monkeypatch):
        real_import = py_builtins.__import__

        def no_yaml(name, *args, **kwargs):
            if name == "yaml":
                raise ImportError("forced for test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(py_builtins, "__import__", no_yaml)
        text = (REPO_ROOT / "examples" / "policies.yaml").read_text()
        config = config_from_dict(parse_policy_yaml(text))
        assert config.enabled == (
            "sql", "xss", "xss-context", "shell", "eval", "path",
        )
