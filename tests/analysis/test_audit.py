"""End-to-end tests for the soundness-audit pass and its CLI surface."""

import json
import textwrap


from repro.analysis.analyzer import analyze_project, audit_entry
from repro.analysis.audit import AuditTrail, audit_page
from repro.analysis.cli import main
from repro.analysis.reports import (
    SOUND,
    SOUND_MODULO_WIDENING,
    UNSOUND_CAVEATS,
)
from repro.analysis.stringtaint import StringTaintAnalysis


def write(root, name, source):
    path = root / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def audit_of(root, entry):
    _, _, report = audit_entry(root, entry)
    return report


def diagnostic_kinds(report):
    return {d.kind for d in report.diagnostics}


class TestEscapeClasses:
    """One fixture page per escape class from the issue."""

    def test_eval(self, tmp_path):
        write(tmp_path, "page.php", "<?php eval($_GET['c']);")
        report = audit_of(tmp_path, "page.php")
        assert report.confidence == UNSOUND_CAVEATS
        assert "eval" in diagnostic_kinds(report)

    def test_variable_variable(self, tmp_path):
        write(tmp_path, "page.php", "<?php $$k = $_GET['v']; echo $$k;")
        report = audit_of(tmp_path, "page.php")
        assert report.confidence == UNSOUND_CAVEATS
        assert "variable-variable" in diagnostic_kinds(report)

    def test_unresolved_dynamic_include(self, tmp_path):
        # the include argument matches no project file: a genuine hole
        write(tmp_path, "page.php", "<?php include $_GET['p'] . '.txt';")
        report = audit_of(tmp_path, "page.php")
        assert report.confidence == UNSOUND_CAVEATS
        escaped = [d for d in report.escapes if d.kind == "dynamic-include"]
        assert escaped and escaped[0].line == 1

    def test_resolved_dynamic_include_is_only_widened(self, tmp_path):
        write(tmp_path, "lang_en.php", "<?php $t = 'hello';")
        write(tmp_path, "lang_de.php", "<?php $t = 'hallo';")
        write(
            tmp_path,
            "page.php",
            "<?php $l = $_GET['l'] == 'de' ? 'de' : 'en';\n"
            "include 'lang_' . $l . '.php';",
        )
        report = audit_of(tmp_path, "page.php")
        include_diags = [
            d for d in report.diagnostics if d.kind == "dynamic-include"
        ]
        assert include_diags
        assert all(d.classification == "widened" for d in include_diags)
        assert report.confidence == SOUND_MODULO_WIDENING

    def test_unknown_builtin(self, tmp_path):
        write(tmp_path, "page.php", "<?php mysql_connect('localhost');")
        report = audit_of(tmp_path, "page.php")
        assert report.confidence == UNSOUND_CAVEATS
        assert report.unmodeled_builtins.get("mysql_connect") == 1

    def test_parse_error(self, tmp_path):
        write(tmp_path, "page.php", "<?php include 'broken.php';")
        write(tmp_path, "broken.php", "<?php klasse Foo {{{")
        report = audit_of(tmp_path, "page.php")
        assert report.confidence == UNSOUND_CAVEATS
        parse_diags = [
            d for d in report.diagnostics if d.kind == "parse-error"
        ]
        assert parse_diags
        assert parse_diags[0].file.endswith("broken.php")


class TestFullyModeled:
    SOURCE = """<?php
        require 'db.php';
        $id = mysql_real_escape_string($_GET['id']);
        mysql_query("SELECT * FROM t WHERE id = '" . $id . "'");
    """

    def test_zero_escapes_and_sound(self, tmp_path):
        write(tmp_path, "page.php", self.SOURCE)
        write(tmp_path, "db.php", "<?php $db = 1;")
        report = audit_of(tmp_path, "page.php")
        assert report.escapes == []
        assert report.confidence == SOUND

    def test_hotspots_stamped_sound(self, tmp_path):
        write(tmp_path, "page.php", self.SOURCE)
        write(tmp_path, "db.php", "<?php $db = 1;")
        hotspots, _, _ = audit_entry(tmp_path, "page.php")
        assert hotspots and all(h.confidence == SOUND for h in hotspots)


class TestWidenings:
    def test_widening_builtin_names_recorded(self, tmp_path):
        write(
            tmp_path,
            "page.php",
            "<?php $q = urldecode($_GET['q']);\n"
            "mysql_query('SELECT 1 FROM t');",
        )
        report = audit_of(tmp_path, "page.php")
        assert report.confidence == SOUND_MODULO_WIDENING
        widened = [d for d in report.widenings if d.name == "urldecode"]
        assert widened and widened[0].kind == "widened-builtin"

    def test_hotspot_confidence_downgraded(self, tmp_path):
        write(
            tmp_path,
            "page.php",
            "<?php $q = urldecode('a%20b');\nmysql_query('SELECT 1 FROM t');",
        )
        hotspots, _, _ = audit_entry(tmp_path, "page.php")
        assert hotspots[0].confidence == SOUND_MODULO_WIDENING

    def test_include_closure_audited_across_cache(self, tmp_path):
        """A second page whose include was parsed (and cached) by the
        first page still gets the library's constructs in its audit."""
        write(tmp_path, "lib.php", "<?php eval($_GET['c']);")
        write(tmp_path, "a.php", "<?php include 'lib.php';")
        write(tmp_path, "b.php", "<?php include 'lib.php';")
        cache = {}
        reports = []
        for page in ("a.php", "b.php"):
            trail = AuditTrail()
            analysis = StringTaintAnalysis(
                tmp_path, parse_cache=cache, audit=trail
            )
            reports.append(audit_page(analysis.analyze_file(page)))
        assert all(r.confidence == UNSOUND_CAVEATS for r in reports)
        assert all("eval" in diagnostic_kinds(r) for r in reports)


class TestProjectReport:
    def test_diagnostics_deduplicated_across_pages(self, tmp_path):
        write(tmp_path, "lib.php", "<?php eval($_GET['c']);")
        write(tmp_path, "a.php", "<?php include 'lib.php';")
        write(tmp_path, "b.php", "<?php include 'lib.php';")
        report = analyze_project(tmp_path, audit=True)
        evals = [d for d in report.diagnostics if d.kind == "eval"]
        assert len(evals) == 1
        assert report.confidence == UNSOUND_CAVEATS

    def test_audit_off_keeps_report_shape(self, tmp_path):
        write(tmp_path, "a.php", "<?php eval($x);")
        report = analyze_project(tmp_path)
        assert report.diagnostics == []
        assert report.confidence == SOUND

    def test_audit_does_not_change_verdicts(self, tmp_path):
        write(
            tmp_path,
            "vuln.php",
            "<?php mysql_query(\"SELECT * FROM t WHERE a='{$_GET['a']}'\");",
        )
        plain = analyze_project(tmp_path)
        audited = analyze_project(tmp_path, audit=True)
        assert len(plain.direct_violations) == len(audited.direct_violations)
        assert plain.verified == audited.verified

    def test_render_mentions_audit(self, tmp_path):
        write(tmp_path, "a.php", "<?php eval($x);")
        text = analyze_project(tmp_path, audit=True).render(audit=True)
        assert "soundness hole" in text
        assert "eval" in text


class TestCliAudit:
    def test_exit_3_on_verified_with_caveats(self, tmp_path, capsys):
        write(tmp_path, "page.php", "<?php eval($_GET['c']);")
        code = main([str(tmp_path), "--audit"])
        assert code == 3
        assert "verified with caveats" in capsys.readouterr().out

    def test_exit_0_when_sound(self, tmp_path, capsys):
        write(tmp_path, "page.php", "<?php mysql_query('SELECT 1 FROM t');")
        assert main([str(tmp_path), "--audit"]) == 0

    def test_violations_still_exit_1(self, tmp_path, capsys):
        write(
            tmp_path,
            "page.php",
            "<?php eval($x);\n"
            "mysql_query(\"SELECT * FROM t WHERE a='{$_GET['a']}'\");",
        )
        assert main([str(tmp_path), "--audit"]) == 1

    def test_no_audit_flag_never_exits_3(self, tmp_path, capsys):
        write(tmp_path, "page.php", "<?php eval($_GET['c']);")
        assert main([str(tmp_path)]) == 0

    def test_json_output(self, tmp_path, capsys):
        write(
            tmp_path,
            "page.php",
            "<?php $q = urldecode($_GET['q']);\n"
            "mysql_query(\"SELECT * FROM t WHERE a='{$_GET['a']}'\");",
        )
        code = main([str(tmp_path), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 1
        assert data["verified"] is False
        hotspots = [h for p in data["pages"] for h in p["hotspots"]]
        assert hotspots
        assert all("confidence" in h for h in hotspots)
        assert data["pages"][0]["audit"]["diagnostics"]

    def test_json_confidence_aggregation(self, tmp_path, capsys):
        write(tmp_path, "a.php", "<?php mysql_query('SELECT 1 FROM t');")
        write(tmp_path, "b.php", "<?php eval($_GET['c']);")
        code = main([str(tmp_path), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert code == 3
        assert data["confidence"] == UNSOUND_CAVEATS
