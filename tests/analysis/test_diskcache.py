"""Disk-cache size capping: ``--cache-max-mb`` prunes least-recently-
used entries (by refreshed atime) and never changes cached semantics."""

import os
import time
from pathlib import Path


from repro.obs.metrics import PERF
from repro.analysis.diskcache import DiskCache


def fill(cache: DiskCache, kind: str, count: int, payload_bytes: int = 4096):
    keys = []
    for index in range(count):
        key = f"{kind}key{index:04d}"
        cache.store(kind, key, b"x" * payload_bytes)
        keys.append(key)
    return keys


def entry_count(cache_dir: Path) -> int:
    return sum(
        1 for kind in ("ast", "page")
        for _ in (cache_dir / kind).glob("*.pkl")
    )


def total_bytes(cache_dir: Path) -> int:
    return sum(
        path.stat().st_size
        for kind in ("ast", "page")
        for path in (cache_dir / kind).glob("*.pkl")
    )


def set_atime(cache: DiskCache, kind: str, key: str, when: float) -> None:
    os.utime(cache._path(kind, key), (when, when))


class TestUncapped:
    def test_no_cap_never_prunes(self, tmp_path):
        cache = DiskCache(tmp_path)
        fill(cache, "ast", 50)
        assert cache.prune() == 0
        assert entry_count(tmp_path) == 50


class TestCapped:
    def test_prune_enforces_the_byte_cap(self, tmp_path):
        cache = DiskCache(tmp_path, max_mb=0.05)  # ~51 KiB
        fill(cache, "ast", 30, payload_bytes=4096)
        cache.prune()
        assert total_bytes(tmp_path) <= cache.max_bytes
        assert entry_count(tmp_path) < 30

    def test_least_recently_used_entries_go_first(self, tmp_path):
        cache = DiskCache(tmp_path, max_mb=0.02)  # ~20 KiB: holds < 6 entries
        keys = fill(cache, "ast", 6, payload_bytes=4096)
        now = time.time()
        # oldest → newest: key0 … key5
        for rank, key in enumerate(keys):
            set_atime(cache, "ast", key, now - 1000 + rank)
        removed = cache.prune()
        assert removed >= 1
        survivors = {p.stem for p in (tmp_path / "ast").glob("*.pkl")}
        # the newest entry always survives; evictions start at the oldest
        assert keys[-1] in survivors
        evicted = [key for key in keys if key not in survivors]
        assert evicted == keys[: len(evicted)]

    def test_load_refreshes_atime_so_hits_are_protected(self, tmp_path):
        cache = DiskCache(tmp_path, max_mb=0.02)
        keys = fill(cache, "ast", 6, payload_bytes=4096)
        stale = time.time() - 1000
        for key in keys:
            set_atime(cache, "ast", key, stale)
        assert cache.load("ast", keys[0]) is not None  # refreshes atime
        cache.prune()
        survivors = {p.stem for p in (tmp_path / "ast").glob("*.pkl")}
        assert keys[0] in survivors

    def test_prune_spans_both_kinds(self, tmp_path):
        cache = DiskCache(tmp_path, max_mb=0.02)
        fill(cache, "ast", 4, payload_bytes=4096)
        fill(cache, "page", 4, payload_bytes=4096)
        cache.prune()
        assert total_bytes(tmp_path) <= cache.max_bytes

    def test_eviction_counter_is_recorded(self, tmp_path):
        PERF.reset()
        cache = DiskCache(tmp_path, max_mb=0.01)
        fill(cache, "ast", 8, payload_bytes=4096)
        cache.prune()
        assert PERF.snapshot()["counters"].get("disk.evictions", 0) >= 1

    def test_init_prunes_an_oversized_preexisting_cache(self, tmp_path):
        fill(DiskCache(tmp_path), "ast", 30, payload_bytes=4096)
        capped = DiskCache(tmp_path, max_mb=0.02)
        assert total_bytes(tmp_path) <= capped.max_bytes

    def test_capped_and_uncapped_caches_share_entries(self, tmp_path):
        DiskCache(tmp_path).store("ast", "shared", {"tree": 1})
        capped = DiskCache(tmp_path, max_mb=10.0)
        assert capped.load("ast", "shared") == {"tree": 1}

    def test_store_triggers_amortized_prune(self, tmp_path):
        # cap small enough that 64 KiB of stores crosses the amortization
        # threshold without an explicit prune() call
        cache = DiskCache(tmp_path, max_mb=0.01)  # ~10 KiB cap
        fill(cache, "ast", 40, payload_bytes=4096)
        assert total_bytes(tmp_path) <= cache.max_bytes + 70 * 1024


class TestCliFlag:
    def test_cache_max_mb_flag_keeps_results_identical(self, tmp_path, capsys):
        from repro.analysis.cli import main

        app = tmp_path / "app"
        app.mkdir()
        (app / "a.php").write_text(
            "<?php mysql_query(\"SELECT * FROM t WHERE x = '\" "
            ". $_GET['x'] . \"'\"); ?>"
        )
        cache = tmp_path / "cache"
        uncapped = main([str(app), "--json", "--cache-dir", str(cache)])
        plain = capsys.readouterr().out
        capped = main([
            str(app), "--json", "--cache-dir", str(cache),
            "--cache-max-mb", "64",
        ])
        capped_out = capsys.readouterr().out
        assert capped == uncapped
        assert capped_out == plain
