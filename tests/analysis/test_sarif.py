"""Tests for the SARIF 2.1.0 exporter and its determinism guarantees."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.analyzer import entry_pages, run_pages
from repro.analysis.sarif import (
    RULES,
    results_to_sarif,
    render_sarif,
    validate_sarif,
)
from repro.corpus import build_app

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def app_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("sarif-app")
    build_app(root, "eve_activity_tracker")
    return root / "eve_activity_tracker"


@pytest.fixture(scope="module")
def app_sarif(app_root):
    results = run_pages(app_root, entry_pages(app_root), jobs=1)
    return results_to_sarif(app_root, results)


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


class TestDocumentShape:
    def test_validates_against_schema(self, app_sarif):
        pytest.importorskip("jsonschema")
        assert validate_sarif(app_sarif) == []

    def test_version_and_driver(self, app_sarif):
        assert app_sarif["version"] == "2.1.0"
        driver = app_sarif["runs"][0]["tool"]["driver"]
        assert driver["name"] == "sqlciv"
        assert [r["id"] for r in driver["rules"]] == [r["id"] for r in RULES]

    def test_results_only_for_violations(self, app_sarif):
        results = app_sarif["runs"][0]["results"]
        # eve_activity_tracker seeds 4 direct + 1 indirect violation
        assert len(results) == 5
        levels = [r["level"] for r in results]
        assert levels.count("error") == 4
        assert levels.count("warning") == 1

    def test_every_result_has_code_flow_from_source(self, app_sarif):
        for result in app_sarif["runs"][0]["results"]:
            (flow,) = result["codeFlows"]
            (thread,) = flow["threadFlows"]
            locations = thread["locations"]
            assert len(locations) >= 2  # at least source + sink
            first = locations[0]["location"]["message"]["text"]
            assert first.startswith("untrusted source ")

    def test_uris_are_root_relative(self, app_sarif):
        run = app_sarif["runs"][0]
        base = run["originalUriBaseIds"]["SRCROOT"]["uri"]
        assert base.startswith("file://") and base.endswith("/")
        for result in run["results"]:
            artifact = result["locations"][0]["physicalLocation"][
                "artifactLocation"
            ]
            assert artifact["uriBaseId"] == "SRCROOT"
            assert not artifact["uri"].startswith("/")

    def test_rule_ids_resolve_into_catalog(self, app_sarif):
        driver_rules = app_sarif["runs"][0]["tool"]["driver"]["rules"]
        for result in app_sarif["runs"][0]["results"]:
            assert driver_rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_schema_rejects_malformed(self):
        pytest.importorskip("jsonschema")
        assert validate_sarif({"version": "2.1.0"})  # missing runs
        assert validate_sarif(
            {"version": "2.1.0",
             "runs": [{"tool": {"driver": {"name": "x"}},
                       "results": [{"message": {"text": "m"},
                                    "level": "fatal"}]}]}
        )  # bad level enum


class TestDeterminism:
    def test_serial_parallel_byte_identical(self, app_root, tmp_path):
        serial = tmp_path / "serial.sarif"
        parallel = tmp_path / "parallel.sarif"
        run_cli(str(app_root), "--jobs", "1", "--sarif", str(serial))
        run_cli(str(app_root), "--jobs", "4", "--sarif", str(parallel))
        assert serial.read_bytes() == parallel.read_bytes()

    def test_cold_warm_cache_byte_identical(self, app_root, tmp_path):
        """Disk-cache-served findings re-derive provenance bound to the
        hitting page, so warm SARIF is byte-for-byte the cold SARIF."""
        cache = tmp_path / "cache"
        cold = tmp_path / "cold.sarif"
        warm = tmp_path / "warm.sarif"
        run_cli(str(app_root), "--jobs", "1", "--cache-dir", str(cache),
                "--sarif", str(cold))
        warm_run = run_cli(str(app_root), "--jobs", "1", "--profile",
                           "--cache-dir", str(cache), "--sarif", str(warm))
        assert cold.read_bytes() == warm.read_bytes()
        assert "pages.from_disk_cache" in warm_run.stderr

    def test_render_is_pure(self, app_root):
        results = run_pages(app_root, entry_pages(app_root), jobs=1)
        assert render_sarif(app_root, results) == render_sarif(
            app_root, results
        )


class TestCliIntegration:
    def test_sarif_flag_writes_valid_json(self, tmp_path):
        (tmp_path / "page.php").write_text(
            textwrap.dedent(
                """\
                <?php
                $id = $_GET['id'];
                mysql_query("SELECT * FROM t WHERE id='$id'");
                """
            )
        )
        out = tmp_path / "out.sarif"
        proc = run_cli(str(tmp_path), "--sarif", str(out))
        assert proc.returncode == 1
        doc = json.loads(out.read_text())
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "odd-quotes"
        assert result["level"] == "error"

    def test_stdout_stays_clean_with_log_level(self, tmp_path):
        """--json stdout must remain a single JSON document even with
        diagnostics enabled; chatter goes to stderr via logging."""
        (tmp_path / "page.php").write_text("<?php include $x; ?>")
        proc = run_cli(str(tmp_path), "--json", "--log-level", "debug")
        json.loads(proc.stdout)  # parses as one document
        quiet = run_cli(str(tmp_path), "--json", "--log-level", "quiet")
        assert quiet.stdout == proc.stdout
