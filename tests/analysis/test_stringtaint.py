"""Tests for the string-taint interpreter (phase 1)."""

import textwrap

import pytest

from repro.analysis.stringtaint import StringTaintAnalysis
from repro.lang.grammar import DIRECT, INDIRECT


@pytest.fixture
def app(tmp_path):
    """Write PHP files and analyze an entry page."""

    def run(entry_source, entry="page.php", **other_files):
        (tmp_path / entry).write_text(textwrap.dedent(entry_source))
        for name, source in other_files.items():
            path = tmp_path / name.replace("__", "/")
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        analysis = StringTaintAnalysis(tmp_path)
        return analysis.analyze_file(entry)

    return run


def query_of(result, index=0):
    return result.hotspots[index].query.nt


def gen(result, text, index=0):
    return result.grammar.generates(query_of(result, index), text)


def labels_in_query(result, index=0):
    grammar = result.grammar
    found = set()
    for nt in grammar.reachable(query_of(result, index)):
        found |= grammar.labels.get(nt, set())
    return found


class TestBasics:
    def test_constant_query(self, app):
        result = app("<?php mysql_query('SELECT * FROM t');")
        assert len(result.hotspots) == 1
        assert gen(result, "SELECT * FROM t")
        assert labels_in_query(result) == set()

    def test_concat_query(self, app):
        result = app("<?php $q = 'SELECT * FROM t WHERE id=' . $x; mysql_query($q);")
        # $x undefined → empty string
        assert gen(result, "SELECT * FROM t WHERE id=")

    def test_get_parameter_tainted(self, app):
        result = app(
            "<?php $id = $_GET['id']; mysql_query(\"SELECT * FROM t WHERE id=$id\");"
        )
        assert DIRECT in labels_in_query(result)
        assert gen(result, "SELECT * FROM t WHERE id='; DROP TABLE t; --")

    def test_interpolation(self, app):
        result = app('<?php $a = "x"; mysql_query("SELECT \'$a\' FROM t");')
        assert gen(result, "SELECT 'x' FROM t")

    def test_compound_concat_assign(self, app):
        result = app(
            """\
            <?php
            $q = 'SELECT * FROM t';
            $q .= ' WHERE a=1';
            mysql_query($q);
            """
        )
        assert gen(result, "SELECT * FROM t WHERE a=1")

    def test_method_sink(self, app):
        result = app("<?php $DB->query('SELECT 1 FROM t');")
        assert result.hotspots[0].sink == "->query"

    def test_mysqli_query_argument_position(self, app):
        result = app("<?php mysqli_query($conn, 'SELECT 2 FROM t');")
        assert gen(result, "SELECT 2 FROM t")

    def test_hotspot_line_number(self, app):
        result = app("<?php\n\n\nmysql_query('SELECT 1 FROM t');")
        assert result.hotspots[0].line == 4


class TestControlFlow:
    def test_if_join(self, app):
        result = app(
            """\
            <?php
            if ($c) { $x = 'a'; } else { $x = 'b'; }
            mysql_query("SELECT '$x' FROM t");
            """
        )
        assert gen(result, "SELECT 'a' FROM t")
        assert gen(result, "SELECT 'b' FROM t")

    def test_if_without_else_keeps_old_value(self, app):
        result = app(
            """\
            <?php
            $x = 'a';
            if ($c) { $x = 'b'; }
            mysql_query("SELECT '$x' FROM t");
            """
        )
        assert gen(result, "SELECT 'a' FROM t")
        assert gen(result, "SELECT 'b' FROM t")

    def test_exit_branch_pruned(self, app):
        result = app(
            """\
            <?php
            $x = $_GET['x'];
            if (!preg_match('/^[0-9]+$/', $x)) { exit; }
            mysql_query("SELECT * FROM t WHERE id='$x'");
            """
        )
        assert gen(result, "SELECT * FROM t WHERE id='42'")
        assert not gen(result, "SELECT * FROM t WHERE id=''; DROP--'")

    def test_unanchored_check_keeps_attack(self, app):
        result = app(
            """\
            <?php
            $x = $_GET['x'];
            if (!eregi('[0-9]+', $x)) { exit; }
            mysql_query("SELECT * FROM t WHERE id='$x'");
            """
        )
        assert gen(result, "SELECT * FROM t WHERE id='1'; DROP TABLE t; --'")

    def test_positive_branch_refined(self, app):
        result = app(
            """\
            <?php
            $x = $_GET['x'];
            if (preg_match('/^[ab]+$/', $x)) {
                mysql_query("SELECT * FROM t WHERE n='$x'");
            }
            """
        )
        assert gen(result, "SELECT * FROM t WHERE n='ab'")
        assert not gen(result, "SELECT * FROM t WHERE n='c'")

    def test_equality_refinement(self, app):
        result = app(
            """\
            <?php
            $x = $_GET['x'];
            if ($x == 'news') { mysql_query("SELECT * FROM $x"); }
            """
        )
        assert gen(result, "SELECT * FROM news")
        assert not gen(result, "SELECT * FROM other")

    def test_ternary_branches(self, app):
        result = app(
            """\
            <?php
            $x = $c ? 'a' : 'b';
            mysql_query("SELECT '$x' FROM t");
            """
        )
        assert gen(result, "SELECT 'a' FROM t")
        assert gen(result, "SELECT 'b' FROM t")

    def test_while_loop_accumulation(self, app):
        result = app(
            """\
            <?php
            $cond = 'a=1';
            while ($i < 3) { $cond = $cond . ' AND a=1'; }
            mysql_query("SELECT * FROM t WHERE $cond");
            """
        )
        assert gen(result, "SELECT * FROM t WHERE a=1")
        assert gen(result, "SELECT * FROM t WHERE a=1 AND a=1")
        assert gen(result, "SELECT * FROM t WHERE a=1 AND a=1 AND a=1")

    def test_foreach_element_flows(self, app):
        result = app(
            """\
            <?php
            $parts = array('x', 'y');
            foreach ($parts as $p) { mysql_query("SELECT $p FROM t"); }
            """
        )
        assert gen(result, "SELECT x FROM t")
        assert gen(result, "SELECT y FROM t")

    def test_switch_cases(self, app):
        result = app(
            """\
            <?php
            $order = $_GET['o'];
            switch ($order) {
                case 'asc': $dir = 'ASC'; break;
                case 'desc': $dir = 'DESC'; break;
                default: $dir = 'ASC';
            }
            mysql_query("SELECT * FROM t ORDER BY d $dir");
            """
        )
        assert gen(result, "SELECT * FROM t ORDER BY d ASC")
        assert gen(result, "SELECT * FROM t ORDER BY d DESC")
        assert not gen(result, "SELECT * FROM t ORDER BY d DROP")


class TestFunctions:
    def test_user_function_inlined(self, app):
        result = app(
            """\
            <?php
            function quote($s) { return "'" . addslashes($s) . "'"; }
            $x = $_GET['x'];
            mysql_query("SELECT * FROM t WHERE n=" . quote($x));
            """
        )
        assert gen(result, "SELECT * FROM t WHERE n='abc'")
        assert gen(result, "SELECT * FROM t WHERE n='a\\'b'")
        assert not gen(result, "SELECT * FROM t WHERE n='a'b'")

    def test_function_default_parameter(self, app):
        result = app(
            """\
            <?php
            function tbl($name = 'users') { return $name; }
            mysql_query('SELECT * FROM ' . tbl());
            """
        )
        assert gen(result, "SELECT * FROM users")

    def test_multiple_returns_joined(self, app):
        result = app(
            """\
            <?php
            function pick($c) { if ($c) { return 'a'; } return 'b'; }
            mysql_query('SELECT ' . pick(1) . ' FROM t');
            """
        )
        assert gen(result, "SELECT a FROM t")
        assert gen(result, "SELECT b FROM t")

    def test_recursion_widens_with_taint(self, app):
        result = app(
            """\
            <?php
            function rec($s) { return rec($s . 'a'); }
            $x = rec($_GET['x']);
            mysql_query("SELECT * FROM t WHERE a='$x'");
            """
        )
        assert DIRECT in labels_in_query(result)

    def test_method_call_on_user_class(self, app):
        result = app(
            """\
            <?php
            class DB {
                function safe($s) { return addslashes($s); }
            }
            $db = new DB();
            $x = $db->safe($_GET['x']);
            mysql_query("SELECT * FROM t WHERE a='$x'");
            """
        )
        assert gen(result, "SELECT * FROM t WHERE a='a\\'b'")
        assert not gen(result, "SELECT * FROM t WHERE a='a'b'")

    def test_global_variable_flow(self, app):
        result = app(
            """\
            <?php
            $prefix = 'unp_';
            function table($n) { global $prefix; return $prefix . $n; }
            mysql_query('SELECT * FROM ' . table('user'));
            """
        )
        assert gen(result, "SELECT * FROM unp_user")


class TestSources:
    def test_cookie_direct(self, app):
        result = app(
            "<?php $c = $_COOKIE['lang']; mysql_query(\"SELECT * FROM t WHERE l='$c'\");"
        )
        assert DIRECT in labels_in_query(result)

    def test_session_indirect(self, app):
        result = app(
            "<?php $u = $_SESSION['user']; mysql_query(\"SELECT * FROM t WHERE u='$u'\");"
        )
        assert INDIRECT in labels_in_query(result)

    def test_fetch_result_indirect(self, app):
        result = app(
            """\
            <?php
            $res = mysql_query('SELECT name FROM users');
            $row = mysql_fetch_array($res);
            $name = $row['name'];
            mysql_query("SELECT * FROM log WHERE name='$name'");
            """
        )
        assert INDIRECT in labels_in_query(result, index=1)

    def test_fetch_method_indirect(self, app):
        result = app(
            """\
            <?php
            $row = $DB->fetch_array($r);
            mysql_query("SELECT * FROM t WHERE x='{$row['a']}'");
            """
        )
        assert INDIRECT in labels_in_query(result)

    def test_sanitized_input_no_quote_break(self, app):
        result = app(
            """\
            <?php
            $x = addslashes($_GET['x']);
            mysql_query("SELECT * FROM t WHERE a='$x'");
            """
        )
        assert DIRECT in labels_in_query(result)
        assert gen(result, "SELECT * FROM t WHERE a='a\\'b'")
        assert not gen(result, "SELECT * FROM t WHERE a='a'b'")


class TestIncludes:
    def test_static_include(self, app):
        result = app(
            "<?php include 'lib.php'; mysql_query($query);",
            **{"lib.php": "<?php $query = 'SELECT 1 FROM t';"},
        )
        assert gen(result, "SELECT 1 FROM t")

    def test_dynamic_include_resolved_by_layout(self, app):
        result = app(
            """\
            <?php
            $choice = $_GET['lang'] == 'en' ? 'en' : 'de';
            include('lang/lan_' . $choice . '.php');
            mysql_query($greeting_query);
            """,
            **{
                "lang__lan_en.php": "<?php $greeting_query = 'SELECT en FROM t';",
                "lang__lan_de.php": "<?php $greeting_query = 'SELECT de FROM t';",
                "lang__other.php": "<?php $greeting_query = 'SELECT xx FROM t';",
            },
        )
        assert gen(result, "SELECT en FROM t")
        assert gen(result, "SELECT de FROM t")
        assert not gen(result, "SELECT xx FROM t")

    def test_include_once(self, app):
        result = app(
            """\
            <?php
            include_once 'lib.php';
            include_once 'lib.php';
            mysql_query('SELECT ' . $counter . ' FROM t');
            """,
            **{"lib.php": "<?php $counter = $counter . 'i';"},
        )
        assert gen(result, "SELECT i FROM t")
        assert not gen(result, "SELECT ii FROM t")

    def test_cross_file_taint(self, app):
        """The e107-style bug: cookie read in one file, query in another."""
        result = app(
            """\
            <?php
            include 'common.php';
            mysql_query("SELECT * FROM users WHERE cookie='$cookie_val'");
            """,
            **{"common.php": "<?php $cookie_val = $_COOKIE['uid'];"},
        )
        assert DIRECT in labels_in_query(result)


class TestArrays:
    def test_array_literal_key_flow(self, app):
        result = app(
            """\
            <?php
            $cfg = array('table' => 'users', 'other' => 'junk');
            mysql_query('SELECT * FROM ' . $cfg['table']);
            """
        )
        assert gen(result, "SELECT * FROM users")
        assert not gen(result, "SELECT * FROM junk")

    def test_array_write_then_read(self, app):
        result = app(
            """\
            <?php
            $a['t'] = 'news';
            mysql_query('SELECT * FROM ' . $a['t']);
            """
        )
        assert gen(result, "SELECT * FROM news")

    def test_unknown_key_joins_default(self, app):
        result = app(
            """\
            <?php
            $a[$k] = 'x';
            mysql_query('SELECT ' . $a[$j] . ' FROM t');
            """
        )
        assert gen(result, "SELECT x FROM t")


class TestParseErrors:
    def test_unparseable_file_reported(self, app, tmp_path):
        result = app("<?php $x = ;")
        assert result.parse_errors
        assert not result.hotspots
