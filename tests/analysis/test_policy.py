"""Tests for the policy-conformance checker (phase 2), end-to-end."""

import textwrap

import pytest

from repro.analysis.analyzer import analyze_page
from repro.lang.grammar import DIRECT, INDIRECT


@pytest.fixture
def check(tmp_path):
    def run(source, **other_files):
        (tmp_path / "page.php").write_text(textwrap.dedent(source))
        for name, content in other_files.items():
            path = tmp_path / name.replace("__", "/")
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(content))
        reports, _ = analyze_page(tmp_path, "page.php")
        return reports

    return run


def checks_fired(report):
    return {f.check for f in report.findings}


class TestC1OddQuotes:
    def test_raw_input_in_quotes(self, check):
        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        assert not report.verified
        assert any(f.check == "odd-quotes" for f in report.violations)

    def test_direct_category(self, check):
        (report,) = check(
            "<?php mysql_query(\"SELECT * FROM t WHERE a='{$_GET['a']}'\");"
        )
        assert report.violations[0].category == DIRECT

    def test_witness_has_odd_quotes(self, check):
        from repro.analysis.quotes import count_unescaped_quotes

        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        witness = report.violations[0].witness
        assert witness
        assert count_unescaped_quotes(witness) % 2 == 1


class TestC2LiteralPosition:
    def test_addslashes_in_quotes_verified(self, check):
        (report,) = check(
            """\
            <?php
            $id = addslashes($_GET['id']);
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        assert report.verified
        assert "literal-position" in checks_fired(report)

    def test_anchored_regex_verified(self, check):
        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            if (!preg_match('/^[\\d]+$/', $id)) { exit; }
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        assert report.verified

    def test_escaped_but_numeric_context_vulnerable(self, check):
        """The paper's killer example for taint analysis (§1.1): escaped
        input used OUTSIDE quotes is still injectable."""
        (report,) = check(
            """\
            <?php
            $id = addslashes($_GET['id']);
            mysql_query("SELECT * FROM t WHERE id=$id");
            """
        )
        assert not report.verified

    def test_double_escape_collapse_breaks_literal(self, check):
        """str_replace("''", "'") after addslashes re-opens the literal."""
        (report,) = check(
            """\
            <?php
            $id = addslashes($_GET['id']);
            $id = stripslashes($id);
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        assert not report.verified


class TestC3Numeric:
    def test_intval_outside_quotes_safe(self, check):
        (report,) = check(
            """\
            <?php
            $id = intval($_GET['id']);
            mysql_query("SELECT * FROM t WHERE id=" . $id);
            """
        )
        # intval is a full sanitizer: the result is not even tainted
        assert report.verified
        assert not report.findings

    def test_tainted_numeric_language_fires_c3(self, check):
        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            if (!preg_match('/^[0-9]+$/', $id)) { exit; }
            mysql_query("SELECT * FROM t WHERE id=" . $id);
            """
        )
        assert report.verified
        assert "numeric" in checks_fired(report)

    def test_sprintf_percent_d_safe(self, check):
        (report,) = check(
            """\
            <?php
            $q = sprintf("SELECT * FROM t WHERE id=%d", $_GET['id']);
            mysql_query($q);
            """
        )
        assert report.verified

    def test_cast_int_safe(self, check):
        (report,) = check(
            """\
            <?php
            $id = (int)$_GET['id'];
            mysql_query("SELECT * FROM t WHERE id=$id LIMIT 1");
            """
        )
        assert report.verified


class TestC4C5Structural:
    def test_raw_input_outside_quotes(self, check):
        (report,) = check(
            """\
            <?php
            $tbl = $_GET['t'];
            mysql_query("SELECT * FROM $tbl");
            """
        )
        assert not report.verified

    def test_order_direction_whitelist_safe(self, check):
        """C5 territory: input confined to ASC|DESC by in_array."""
        (report,) = check(
            """\
            <?php
            $dir = $_GET['dir'];
            if (!in_array($dir, array('ASC', 'DESC'))) { exit; }
            mysql_query("SELECT * FROM t ORDER BY name $dir");
            """
        )
        assert report.verified

    def test_column_whitelist_safe(self, check):
        (report,) = check(
            """\
            <?php
            $col = $_GET['c'];
            if ($col == 'name') { } else { $col = 'date'; }
            mysql_query("SELECT * FROM t ORDER BY $col");
            """
        )
        assert report.verified

    def test_attack_keyword_reachable(self, check):
        (report,) = check(
            """\
            <?php
            $x = $_GET['x'];
            if (!eregi('[0-9]+', $x)) { exit; }
            mysql_query("SELECT * FROM t WHERE id=" . $x);
            """
        )
        assert not report.verified


class TestIndirect:
    def test_db_roundtrip_indirect_report(self, check):
        (report_first, report_second) = check(
            """\
            <?php
            $res = mysql_query('SELECT name FROM users');
            $row = mysql_fetch_assoc($res);
            $name = $row['name'];
            mysql_query("INSERT INTO log (who) VALUES ('$name')");
            """
        )
        assert report_first.verified
        assert not report_second.verified
        assert report_second.violations[0].category == INDIRECT

    def test_direct_dominates_indirect(self, check):
        *_, report = check(
            """\
            <?php
            $row = mysql_fetch_assoc(mysql_query('SELECT a FROM t'));
            $mix = $row['a'] . $_GET['b'];
            mysql_query("SELECT * FROM t WHERE x='$mix'");
            """
        )
        categories = {f.category for f in report.violations}
        assert DIRECT in categories


class TestMultipleHotspots:
    def test_each_hotspot_reported(self, check):
        reports = check(
            """\
            <?php
            mysql_query('SELECT 1 FROM a');
            $x = $_GET['x'];
            mysql_query("SELECT * FROM b WHERE v='$x'");
            """
        )
        assert len(reports) == 2
        assert reports[0].verified
        assert not reports[1].verified

    def test_findings_deduplicated(self, check):
        (report,) = check(
            """\
            <?php
            $x = $_GET['x'];
            if (!eregi('[0-9]+', $x)) { exit; }
            mysql_query("SELECT * FROM t WHERE id='$x'");
            """
        )
        assert len(report.violations) == 1


class TestFigure2EndToEnd:
    """The paper's running example, verbatim."""

    FIGURE2 = """\
        <?php
        isset($_GET['userid']) ?
            $userid = $_GET['userid'] : $userid = '';
        if ($USER['groupid'] != 1)
        {
            unp_msg($gp_permserror);
            exit;
        }
        if ($userid == '')
        {
            unp_msg($gp_invalidrequest);
            exit;
        }
        if (!eregi('[0-9]+', $userid))
        {
            unp_msg('You entered an invalid user ID.');
            exit;
        }
        $getuser = $DB->query("SELECT * FROM `unp_user`"
            ."WHERE userid='$userid'");
        if (!$DB->is_single_row($getuser))
        {
            unp_msg('You entered an invalid user ID.');
            exit;
        }
        """

    def test_vulnerability_found(self, check):
        (report,) = check(self.FIGURE2)
        assert not report.verified
        assert report.violations[0].category == DIRECT

    def test_anchoring_fixes_it(self, check):
        fixed = self.FIGURE2.replace("eregi('[0-9]+'", "eregi('^[0-9]+$'")
        (report,) = check(fixed)
        assert report.verified

    def test_attack_query_derivable(self, check, tmp_path):
        import textwrap as tw

        from repro.analysis.stringtaint import StringTaintAnalysis

        (tmp_path / "fig2.php").write_text(tw.dedent(self.FIGURE2))
        result = StringTaintAnalysis(tmp_path).analyze_file("fig2.php")
        attack = (
            "SELECT * FROM `unp_user`WHERE userid="
            "'1'; DROP TABLE unp_user; --'"
        )
        assert result.grammar.generates(result.hotspots[0].query.nt, attack)


class TestExampleQueryFallback:
    def test_fallback_when_marker_unreachable(self):
        """Regression: when no sampled context string contains the quote
        marker, _example_query must still return an actionable string —
        a marker-free sample with the witness appended — never "" (and
        never the old None-ish empty report line)."""
        from repro.analysis.policy import _example_query
        from repro.lang.grammar import DIRECT, Grammar, Lit

        grammar = Grammar()
        root = grammar.fresh("query")
        labeled = grammar.fresh("evil")
        # the labeled nonterminal never occurs in any rhs, so the context
        # grammar places no marker anywhere
        grammar.add(root, (Lit("SELECT 1"),))
        grammar.add(labeled, (Lit("'"),))
        grammar.add_label(labeled, DIRECT)
        example = _example_query(grammar, root, labeled, [labeled], "'")
        assert example == "SELECT 1'"

    def test_fallback_without_any_sample_returns_witness(self):
        from repro.analysis.policy import _example_query
        from repro.lang.grammar import DIRECT, Grammar

        grammar = Grammar()
        root = grammar.fresh("query")   # no productions: nothing to sample
        labeled = grammar.fresh("evil")
        grammar.add_label(labeled, DIRECT)
        example = _example_query(grammar, root, labeled, [labeled], "'")
        assert example == "'"

    def test_marker_path_still_preferred(self, check):
        """When the marker is reachable the spliced query is unchanged by
        the fallback (the existing corpus behaviour)."""
        (report,) = check(
            """\
            <?php
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        example = report.violations[0].example_query
        assert example.startswith("SELECT * FROM t WHERE id='")
