"""Tests for the parallel page driver and the on-disk result cache.

The contract under test: ``--jobs N`` and ``--cache-dir`` are pure
performance knobs — byte-identical output, identical exit codes,
identical verdicts — and the perf counters actually record the work
they claim to avoid.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.analyzer import analyze_project, entry_pages, run_pages
from repro.corpus import build_app
from repro.obs.metrics import PERF

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def app_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("parallel-app")
    build_app(root, "eve_activity_tracker")
    return root / "eve_activity_tracker"


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


def report_signature(report):
    """A report's comparable content: everything except wall-clock."""
    data = report.as_dict()
    data.pop("string_analysis_seconds", None)
    data.pop("check_seconds", None)
    return data


class TestParallelEquivalence:
    def test_json_output_byte_identical(self, app_root):
        """The headline guarantee: ``--jobs 4`` renders byte-for-byte
        what ``--jobs 1`` renders (fresh interpreters, so this also
        covers hash-seed independence)."""
        serial = run_cli(str(app_root), "--json", "--jobs", "1")
        parallel = run_cli(str(app_root), "--json", "--jobs", "4")
        assert serial.stdout == parallel.stdout
        assert serial.returncode == parallel.returncode

    def test_audit_text_output_and_exit_identical(self, app_root):
        serial = run_cli(str(app_root), "--audit", "-v", "--jobs", "1")
        parallel = run_cli(str(app_root), "--audit", "-v", "--jobs", "4")
        assert serial.stdout == parallel.stdout
        assert serial.returncode == parallel.returncode

    def test_analyze_project_report_identical(self, app_root):
        serial = analyze_project(app_root, audit=True, jobs=1)
        parallel = analyze_project(app_root, audit=True, jobs=2)
        assert report_signature(serial) == report_signature(parallel)

    def test_run_pages_preserves_input_order(self, app_root):
        pages = entry_pages(app_root)
        assert len(pages) > 1
        results = run_pages(app_root, pages, jobs=2)
        assert [r.page for r in results] == [str(p) for p in pages]

    def test_parallel_perf_deltas_merged(self, app_root):
        pages = entry_pages(app_root)
        PERF.reset()
        results = run_pages(app_root, pages, jobs=2)
        counters = PERF.snapshot()["counters"]
        # worker-side counters came home and the per-result deltas are
        # consumed, not double-counted
        assert counters.get("pages.analyzed") == len(pages)
        assert all(r.perf is None for r in results)


class TestDiskCache:
    def test_warm_rerun_byte_identical(self, app_root, tmp_path):
        cache = tmp_path / "cache"
        cold = run_cli(str(app_root), "--json", "--jobs", "1",
                       "--cache-dir", str(cache))
        warm = run_cli(str(app_root), "--json", "--jobs", "1",
                       "--cache-dir", str(cache))
        bare = run_cli(str(app_root), "--json", "--jobs", "1")
        assert cold.stdout == warm.stdout == bare.stdout
        assert cold.returncode == warm.returncode == bare.returncode

    def test_warm_rerun_skips_phase2(self, app_root, tmp_path):
        """The acceptance metric: on a warm cache, page results come off
        disk and no check cascade re-runs."""
        cache = tmp_path / "cache"
        run_cli(str(app_root), "--json", "--jobs", "1",
                "--cache-dir", str(cache))
        warm = run_cli(str(app_root), "--json", "--profile", "--jobs", "1",
                       "--cache-dir", str(cache))
        counters = json.loads(warm.stdout)["perf"]["counters"]
        assert counters.get("pages.from_disk_cache", 0) > 0
        assert counters.get("policy.checks_avoided", 0) > 0
        assert counters.get("policy.check_cascades", 0) == 0

    def test_edit_invalidates_page_results(self, tmp_path):
        """Changing any resolver-visible file must invalidate cached page
        results (the conservative project-state key)."""
        build_app(tmp_path, "eve_activity_tracker")
        app = tmp_path / "eve_activity_tracker"
        cache = tmp_path / "cache"
        run_cli(str(app), "--json", "--cache-dir", str(cache))
        victim = next(iter(sorted(app.rglob("*.php"))))
        victim.write_text(victim.read_text() + "\n// touched\n")
        after = run_cli(str(app), "--json", "--profile",
                        "--cache-dir", str(cache))
        counters = json.loads(after.stdout)["perf"]["counters"]
        assert counters.get("pages.from_disk_cache", 0) == 0
        assert counters.get("policy.check_cascades", 0) > 0


class TestCensus:
    def test_non_utf8_file_does_not_crash(self, tmp_path):
        """The file census must survive legacy-encoded sources."""
        (tmp_path / "index.php").write_text(
            "<?php $q = 'SELECT 1'; mysql_query($q); ?>"
        )
        (tmp_path / "legacy.php").write_bytes(
            b"<?php // caf\xe9 na\xefve latin-1 comment\n$x = 1;\n?>"
        )
        report = analyze_project(tmp_path)
        assert report.files == 2
        assert report.lines > 0

    def test_entry_pages_accepts_precomputed_listing(self, tmp_path):
        (tmp_path / "index.php").write_text("<?php echo 1; ?>")
        includes = tmp_path / "includes"
        includes.mkdir()
        (includes / "db.php").write_text("<?php $db = 1; ?>")
        listing = sorted(tmp_path.rglob("*.php"))
        assert entry_pages(tmp_path, php_files=listing) == entry_pages(tmp_path)
