"""Tests for the XSS extension (paper §7 future work)."""

import textwrap

import pytest

from repro.analysis.xss import analyze_page_xss


@pytest.fixture
def xss(tmp_path):
    def run(source, **other_files):
        (tmp_path / "page.php").write_text(textwrap.dedent(source))
        for name, content in other_files.items():
            (tmp_path / name).write_text(textwrap.dedent(content))
        return analyze_page_xss(tmp_path, "page.php")

    return run


class TestDetection:
    def test_raw_echo_of_get(self, xss):
        reports = xss("<?php echo 'Hello ' . $_GET['name'];")
        assert reports
        assert not reports[0].verified
        assert reports[0].violations[0].category == "direct"

    def test_htmlspecialchars_verifies(self, xss):
        # with ENT_QUOTES everything is encoded (the default-flags case,
        # which keeps single quotes, is covered by the next test)
        reports_quotes = xss(
            "<?php echo htmlspecialchars($_GET['name'], ENT_QUOTES);"
        )
        assert all(r.verified for r in reports_quotes)

    def test_default_htmlspecialchars_single_quote_reported(self, xss):
        reports = xss("<?php echo htmlspecialchars($_GET['name']);")
        # default flags keep ' intact → attribute-context breakout risk
        assert any(not r.verified for r in reports)

    def test_intval_verifies(self, xss):
        reports = xss("<?php echo 'id=' . intval($_GET['id']);")
        assert all(r.verified for r in reports)

    def test_constant_echo_silent(self, xss):
        reports = xss("<?php echo '<b>static</b>';")
        assert reports == []

    def test_db_data_is_indirect(self, xss):
        reports = xss(
            """\
            <?php
            $row = mysql_fetch_assoc(mysql_query('SELECT a FROM t'));
            echo $row['a'];
            """
        )
        assert reports
        assert reports[0].violations[0].category == "indirect"

    def test_interpolated_echo(self, xss):
        reports = xss('<?php $n = $_GET[\'n\']; echo "Hi $n!";')
        assert any(not r.verified for r in reports)

    def test_witness_contains_markup_char(self, xss):
        reports = xss("<?php echo $_GET['x'];")
        witness = reports[0].violations[0].witness
        assert any(c in witness for c in "<>\"'")

    def test_regex_restricted_input_verifies(self, xss):
        reports = xss(
            """\
            <?php
            $n = $_GET['n'];
            if (!preg_match('/^[a-z0-9]+$/', $n)) { exit; }
            echo "Hello $n";
            """
        )
        assert all(r.verified for r in reports)

    def test_strip_quotes_replace_verifies(self, xss):
        reports = xss(
            """\
            <?php
            $n = preg_replace('/[<>"\\']/', '', $_GET['n']);
            echo $n;
            """
        )
        assert all(r.verified for r in reports)
