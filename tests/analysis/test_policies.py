"""End-to-end tests for the pluggable sink policies.

Runs the full pipeline over :mod:`repro.corpus.policy_examples` with
every policy enabled and checks the ISSUE's acceptance criteria:

* each new policy produces at least one true violation on its
  vulnerable example page and zero on the safe counterpart;
* the context-sensitive XSS policy distinguishes HTML-body (safe,
  default ``htmlspecialchars``) from attribute-value and URL-attribute
  interpolation (violations) on one page;
* sanitizer models are honored (``escapeshellarg``, ``intval``,
  whitelist ``preg_replace``, ``ENT_QUOTES``);
* violations carry a witness or the explicit ``witness_unavailable``
  marker — never a silent empty string;
* the SARIF log uses each policy's own rule ids.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.analyzer import entry_pages, run_pages
from repro.analysis.policies import PolicyConfig, policy_instance
from repro.analysis.sarif import render_sarif
from repro.corpus import policy_examples

ALL_POLICIES = PolicyConfig(
    enabled=("sql", "xss", "xss-context", "shell", "eval", "path")
)

#: pages whose expected violations we assert (from the corpus module)
EXPECTED = policy_examples.EXPECTED_VIOLATIONS


@pytest.fixture(scope="module")
def analyzed(tmp_path_factory):
    root = tmp_path_factory.mktemp("policy_examples")
    policy_examples.build(root)
    app = root / policy_examples.APP
    results = run_pages(
        app, entry_pages(app), audit=True, jobs=1, policies=ALL_POLICIES
    )
    by_page = {Path(result.page).name: result for result in results}
    return app, results, by_page


def violating_policies(result) -> set[str]:
    return {
        finding.policy or "sql"
        for report in result.reports
        for finding in report.findings
        if not finding.safe
    }


@pytest.mark.parametrize("page", sorted(EXPECTED))
def test_expected_violations_per_page(analyzed, page):
    _, _, by_page = analyzed
    result = by_page[page]
    assert violating_policies(result) == set(EXPECTED[page])


def test_no_parse_errors(analyzed):
    _, results, _ = analyzed
    assert all(not result.parse_errors for result in results)


def test_context_xss_differentiates_contexts(analyzed):
    """One page, one value, three contexts, three verdicts."""
    _, _, by_page = analyzed
    findings = [
        finding
        for report in by_page["xss_context.php"].reports
        for finding in report.findings
        if finding.policy == "xss-context"
    ]
    by_context = {finding.context: finding for finding in findings}
    assert by_context["html-body"].safe
    assert not by_context["attr-sq"].safe
    assert not by_context["url-dq"].safe
    # each context maps to its own rule id
    assert by_context["attr-sq"].check == "xss-context-attr"
    assert by_context["url-dq"].check == "xss-context-url"


def test_sanitizers_verify_safe_pages(analyzed):
    _, _, by_page = analyzed
    for page in EXPECTED:
        if not page.endswith("_safe.php"):
            continue
        result = by_page[page]
        assert all(
            finding.safe
            for report in result.reports
            for finding in report.findings
        ), f"{page} should verify under every policy"


def test_violations_carry_witness_or_marker(analyzed):
    _, results, _ = analyzed
    unsafe = [
        finding
        for result in results
        for report in result.reports
        for finding in report.findings
        if not finding.safe
    ]
    assert unsafe
    for finding in unsafe:
        assert finding.witness or finding.witness_unavailable, (
            finding.file,
            finding.line,
            finding.check,
        )


def test_sarif_uses_policy_rule_ids(analyzed):
    app, results, _ = analyzed
    log = json.loads(render_sarif(app, results, policies=ALL_POLICIES))
    run = log["runs"][0]
    declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    used = {result["ruleId"] for result in run["results"]}
    assert used <= declared
    # one distinct rule id per new policy class fired
    assert {"shell-metachar", "eval-injection", "path-traversal"} <= used
    assert {"xss-context-attr", "xss-context-url"} <= used
    # and every result's rule index actually points at its rule
    rules = run["tool"]["driver"]["rules"]
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_unknown_context_danger_dominates_every_context():
    """DESIGN §5g: the fallback's danger language must contain every
    concrete context's danger language, so an unclassifiable context
    can only add findings, never hide one."""
    from repro.analysis.policies.xss_context import _context_table

    table = _context_table()
    unknown = table["unknown"][1][0]
    for context, (_, dangers, _) in table.items():
        for danger in dangers:
            assert danger.is_subset_of(unknown), context


def test_policy_instances_are_shared_and_complete():
    for pid in ALL_POLICIES.enabled:
        policy = policy_instance(pid)
        assert policy.id == pid
        assert policy is policy_instance(pid)
        assert policy.rules, f"policy {pid} declares no SARIF rules"
