"""Edge-case tests for the string-taint interpreter: constructs beyond
the core flows covered in test_stringtaint.py."""

import textwrap

import pytest

from repro.analysis.stringtaint import StringTaintAnalysis
from repro.lang.grammar import DIRECT, INDIRECT


@pytest.fixture
def app(tmp_path):
    def run(entry_source, **other_files):
        (tmp_path / "page.php").write_text(textwrap.dedent(entry_source))
        for name, source in other_files.items():
            path = tmp_path / name.replace("__", "/")
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return StringTaintAnalysis(tmp_path).analyze_file("page.php")

    return run


def gen(result, text, index=0):
    return result.grammar.generates(result.hotspots[index].query.nt, text)


class TestSwitchSemantics:
    def test_fallthrough_executes_next_case(self, app):
        result = app(
            """\
            <?php
            switch ($c) {
                case 1: $x = 'a';
                case 2: $x = $x . 'b'; break;
                default: $x = 'z';
            }
            mysql_query("SELECT '$x' FROM t");
            """
        )
        assert gen(result, "SELECT 'ab' FROM t")  # case 1 falls into case 2
        assert gen(result, "SELECT 'b' FROM t")   # entering at case 2
        assert gen(result, "SELECT 'z' FROM t")

    def test_no_default_keeps_pre_state(self, app):
        result = app(
            """\
            <?php
            $x = 'pre';
            switch ($c) { case 1: $x = 'one'; break; }
            mysql_query("SELECT '$x' FROM t");
            """
        )
        assert gen(result, "SELECT 'pre' FROM t")
        assert gen(result, "SELECT 'one' FROM t")

    def test_exit_in_case(self, app):
        result = app(
            """\
            <?php
            switch ($c) {
                case 'bad': exit;
                default: $x = 'ok';
            }
            mysql_query("SELECT '$x' FROM t");
            """
        )
        assert gen(result, "SELECT 'ok' FROM t")


class TestLoops:
    def test_do_while_body_executes(self, app):
        result = app(
            """\
            <?php
            $q = 'SELECT 1';
            do { $q = $q . ' FROM t'; } while ($c);
            mysql_query($q);
            """
        )
        assert gen(result, "SELECT 1 FROM t")
        assert gen(result, "SELECT 1 FROM t FROM t")

    def test_for_loop_step(self, app):
        result = app(
            """\
            <?php
            $s = '';
            for ($i = 0; $i < 3; $i++) { $s = $s . 'x'; }
            mysql_query("SELECT '$s' FROM t");
            """
        )
        assert gen(result, "SELECT '' FROM t")
        assert gen(result, "SELECT 'xxx' FROM t")

    def test_nested_loops(self, app):
        result = app(
            """\
            <?php
            $s = 'a';
            while ($i) { while ($j) { $s = $s . 'b'; } $s = $s . 'c'; }
            mysql_query("SELECT '$s' FROM t");
            """
        )
        assert gen(result, "SELECT 'a' FROM t")
        assert gen(result, "SELECT 'abc' FROM t")
        assert gen(result, "SELECT 'abbcbc' FROM t")

    def test_loop_new_variable(self, app):
        result = app(
            """\
            <?php
            while ($c) { $inside = 'v'; }
            mysql_query('SELECT ' . $inside . ' FROM t');
            """
        )
        assert gen(result, "SELECT v FROM t")
        assert gen(result, "SELECT  FROM t")  # zero-iteration path


class TestObjects:
    def test_property_write_and_read(self, app):
        result = app(
            """\
            <?php
            class Box { var $v; }
            $b = new Box();
            $b->v = 'news';
            mysql_query('SELECT * FROM ' . $b->v);
            """
        )
        assert gen(result, "SELECT * FROM news")

    def test_constructor_initializes(self, app):
        result = app(
            """\
            <?php
            class T {
                var $name;
                function T($n) { $this->name = $n; }
            }
            $t = new T('users');
            mysql_query('SELECT * FROM ' . $t->name);
            """
        )
        assert gen(result, "SELECT * FROM users")

    def test_method_uses_this(self, app):
        result = app(
            """\
            <?php
            class Q {
                var $prefix = 'unp_';
                function table($n) { return $this->prefix . $n; }
            }
            $q = new Q();
            mysql_query('SELECT * FROM ' . $q->table('user'));
            """
        )
        assert gen(result, "SELECT * FROM unp_user")

    def test_inherited_method(self, app):
        result = app(
            """\
            <?php
            class Base { function name() { return 'base'; } }
            class Child extends Base { }
            $c = new Child();
            mysql_query('SELECT * FROM ' . $c->name());
            """
        )
        assert gen(result, "SELECT * FROM base")

    def test_static_call(self, app):
        result = app(
            """\
            <?php
            class Util { function tbl() { return 'log'; } }
            mysql_query('SELECT * FROM ' . Util::tbl());
            """
        )
        assert gen(result, "SELECT * FROM log")

    def test_unknown_method_carries_taint(self, app):
        result = app(
            """\
            <?php
            $v = $mystery->transform($_GET['x']);
            mysql_query("SELECT * FROM t WHERE a='$v'");
            """
        )
        grammar = result.grammar
        labels = set()
        for nt in grammar.reachable(result.hotspots[0].query.nt):
            labels |= grammar.labels.get(nt, set())
        assert DIRECT in labels


class TestExpressions:
    def test_cast_string(self, app):
        result = app("<?php $x = (string)'abc'; mysql_query('SELECT ' . $x);")
        assert gen(result, "SELECT abc")

    def test_cast_bool(self, app):
        result = app("<?php $x = (bool)$_GET['a']; mysql_query(\"SELECT $x\");")
        assert gen(result, "SELECT 1")
        assert gen(result, "SELECT ")

    def test_suppress_transparent(self, app):
        result = app("<?php @mysql_query('SELECT 5 FROM t');")
        assert gen(result, "SELECT 5 FROM t")

    def test_arithmetic_is_numeric(self, app):
        result = app("<?php $n = $_GET['a'] + 1; mysql_query(\"SELECT $n\");")
        assert gen(result, "SELECT 42")
        assert not gen(result, "SELECT x")

    def test_string_index_read(self, app):
        result = app(
            "<?php $s = 'abc'; $c = $s[0]; mysql_query('SELECT ' . $c);"
        )
        # char reads over-approximate to the value's alphabet
        assert gen(result, "SELECT a")

    def test_logical_keywords_value(self, app):
        result = app("<?php $x = $a and $b; mysql_query(\"SELECT '$x'\");")
        assert result.hotspots

    def test_empty_refinement(self, app):
        result = app(
            """\
            <?php
            $x = $_GET['x'];
            mysql_query("SELECT " . strlen($x));
            """
        )
        assert gen(result, "SELECT 3")


class TestIndirectSources:
    def test_mysql_result_scalar(self, app):
        result = app(
            """\
            <?php
            $v = mysql_result($r, 0);
            mysql_query("SELECT * FROM t WHERE a='$v'");
            """
        )
        labels = set()
        for nt in result.grammar.reachable(result.hotspots[0].query.nt):
            labels |= result.grammar.labels.get(nt, set())
        assert INDIRECT in labels

    def test_fetch_object_treated_as_indirect(self, app):
        result = app(
            """\
            <?php
            $o = mysql_fetch_object($r);
            $v = $o['name'];
            mysql_query("SELECT * FROM t WHERE a='$v'");
            """
        )
        labels = set()
        for nt in result.grammar.reachable(result.hotspots[0].query.nt):
            labels |= result.grammar.labels.get(nt, set())
        assert INDIRECT in labels


class TestCallEdgeCases:
    def test_depth_limit_terminates(self, app):
        functions = "\n".join(
            f"function f{i}($x) {{ return f{i+1}($x . '{i}'); }}"
            for i in range(12)
        )
        result = app(
            f"""\
            <?php
            {functions}
            function f12($x) {{ return $x; }}
            mysql_query('SELECT ' . f0('a'));
            """
        )
        assert result.hotspots  # terminated, produced a hotspot

    def test_mutual_recursion(self, app):
        result = app(
            """\
            <?php
            function ping($x) { return pong($x . 'p'); }
            function pong($x) { return ping($x . 'q'); }
            mysql_query('SELECT ' . ping('a'));
            """
        )
        assert result.hotspots

    def test_function_defined_after_use_site(self, app):
        result = app(
            """\
            <?php
            mysql_query('SELECT * FROM ' . tbl());
            function tbl() { return 'users'; }
            """
        )
        assert gen(result, "SELECT * FROM users")

    def test_byref_param_value_semantics(self, app):
        result = app(
            """\
            <?php
            function setit(&$x) { $x = 'set'; }
            $v = 'orig';
            setit($v);
            mysql_query("SELECT '$v' FROM t");
            """
        )
        # references are only approximated (paper §4): the original value
        # must at least survive
        assert gen(result, "SELECT 'orig' FROM t")
