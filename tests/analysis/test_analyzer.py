"""Tests for the top-level driver and the CLI."""

import textwrap

import pytest

from repro.analysis.analyzer import (
    analyze_page,
    analyze_project,
    entry_pages,
    has_include_guard,
)
from repro.analysis.cli import main


@pytest.fixture
def project(tmp_path):
    def write(name, source):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))

    write("index.php", "<?php mysql_query('SELECT 1 FROM t');")
    write(
        "vuln.php",
        "<?php mysql_query(\"SELECT * FROM t WHERE a='{$_GET['a']}'\");",
    )
    write("includes/lib.php", "<?php function helper($x) { return $x; }")
    write("lib/other.php", "<?php $unused = 1;")
    return tmp_path


class TestEntryPages:
    def test_top_level_pages_selected(self, project):
        names = [p.name for p in entry_pages(project)]
        assert "index.php" in names and "vuln.php" in names

    def test_library_dirs_excluded(self, project):
        names = [p.name for p in entry_pages(project)]
        assert "lib.php" not in names
        assert "other.php" not in names

    def test_e107_style_dirs_excluded(self, tmp_path):
        (tmp_path / "e107_handlers").mkdir()
        (tmp_path / "e107_handlers" / "core.php").write_text("<?php $x=1;")
        (tmp_path / "page.php").write_text("<?php $y=1;")
        names = [p.name for p in entry_pages(tmp_path)]
        assert names == ["page.php"]

    def test_defined_guard_excluded(self, tmp_path):
        """The if (!defined(...)) guard the docstring promises: a guarded
        file at top level is an include-only library, not an entry page."""
        (tmp_path / "config.php").write_text(
            "<?php\n"
            "if (!defined('IN_APP')) { die('no direct access'); }\n"
            "$dsn = 'mysql:host=localhost';\n"
        )
        (tmp_path / "page.php").write_text("<?php $y=1;")
        names = [p.name for p in entry_pages(tmp_path)]
        assert names == ["page.php"]

    def test_guard_detected_past_comments(self, tmp_path):
        guarded = tmp_path / "lib.php"
        guarded.write_text(
            "<?php\n"
            "// direct-access protection\n"
            "/* multi\n   line */\n"
            "if ( ! defined ( 'SECURITY' ) ) exit;\n"
        )
        assert has_include_guard(guarded)

    def test_defined_elsewhere_is_not_a_guard(self, tmp_path):
        page = tmp_path / "page.php"
        page.write_text(
            "<?php\n$x = 1;\nif (!defined('LATER')) { define('LATER', 1); }\n"
        )
        assert not has_include_guard(page)
        assert [p.name for p in entry_pages(tmp_path)] == ["page.php"]


class TestAnalyzeProject:
    def test_report_shape(self, project):
        report = analyze_project(project, "demo")
        assert report.name == "demo"
        assert report.files == 4
        assert report.lines > 0
        assert len(report.direct_violations) == 1
        assert not report.verified

    def test_clean_project_verifies(self, tmp_path):
        (tmp_path / "a.php").write_text("<?php mysql_query('SELECT 1 FROM t');")
        report = analyze_project(tmp_path)
        assert report.verified
        assert "VERIFIED" in report.render()

    def test_render_contains_counts(self, project):
        text = analyze_project(project, "demo").render()
        assert "direct violations: 1" in text


class TestAnalyzePage:
    def test_single_page(self, project):
        reports, analysis = analyze_page(project, "vuln.php")
        assert len(reports) == 1
        assert not reports[0].verified

    def test_absolute_path(self, project):
        reports, _ = analyze_page(project, project / "index.php")
        assert reports[0].verified


class TestCli:
    def test_reports_violation_exit_code(self, project, capsys):
        code = main([str(project), "vuln.php"])
        assert code == 1
        out = capsys.readouterr().out
        assert "VULNERABLE" in out

    def test_verified_exit_code(self, project, capsys):
        code = main([str(project), "index.php"])
        assert code == 0
        assert "verified: no SQLCIV reports" in capsys.readouterr().out

    def test_all_pages_default(self, project, capsys):
        code = main([str(project)])
        assert code == 1

    def test_verbose_shows_verified(self, project, capsys):
        main([str(project), "index.php", "--verbose"])
        assert "verified" in capsys.readouterr().out

    def test_bad_root(self, tmp_path):
        with pytest.raises(SystemExit):
            main([str(tmp_path / "nope")])
