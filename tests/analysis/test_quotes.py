"""Differential tests for the quote-parity automata against the reference."""

from hypothesis import given, settings, strategies as st

from repro.analysis import quotes


def texts():
    return st.text(alphabet="a'\\b0", max_size=12)


class TestReference:
    def test_counting(self):
        assert quotes.count_unescaped_quotes("") == 0
        assert quotes.count_unescaped_quotes("'") == 1
        assert quotes.count_unescaped_quotes("\\'") == 0
        assert quotes.count_unescaped_quotes("''") == 2
        assert quotes.count_unescaped_quotes("\\\\'") == 1  # escaped backslash
        assert quotes.count_unescaped_quotes("a'b'c") == 2


class TestOddQuotes:
    @given(texts())
    @settings(max_examples=300, deadline=None)
    def test_matches_reference(self, text):
        expected = quotes.count_unescaped_quotes(text) % 2 == 1
        assert quotes.odd_unescaped_quotes().accepts_string(text) == expected

    def test_attack_payload_is_odd(self):
        assert quotes.odd_unescaped_quotes().accepts_string(
            "1'; DROP TABLE unp_user; --"
        )

    def test_escaped_payload_is_even(self):
        assert not quotes.odd_unescaped_quotes().accepts_string(
            "1\\'; DROP TABLE unp_user; --"
        )


class TestHasQuote:
    @given(texts())
    @settings(max_examples=300, deadline=None)
    def test_matches_reference(self, text):
        expected = quotes.count_unescaped_quotes(text) > 0
        assert quotes.has_unescaped_quote().accepts_string(text) == expected


class TestMarkerPositions:
    def marker_ok(self, text):
        return quotes.markers_inside_string_literals().accepts_string(text)

    def test_marker_inside_quotes(self):
        assert self.marker_ok(f"WHERE id='{quotes.MARKER}'")

    def test_marker_outside_quotes(self):
        assert not self.marker_ok(f"WHERE id={quotes.MARKER}")

    def test_marker_after_closing_quote(self):
        assert not self.marker_ok(f"WHERE id='x'{quotes.MARKER}")

    def test_two_markers_both_inside(self):
        assert self.marker_ok(f"a='{quotes.MARKER}' AND b='{quotes.MARKER}'")

    def test_two_markers_one_outside(self):
        assert not self.marker_ok(f"a='{quotes.MARKER}' AND b={quotes.MARKER}")

    def test_marker_in_escaped_context(self):
        # backslash immediately before the marker: rejected (conservative)
        assert not self.marker_ok(f"'\\{quotes.MARKER}'")

    def test_no_marker_any_string_ok(self):
        assert self.marker_ok("SELECT * FROM t WHERE a='x'")
        assert self.marker_ok("no quotes at all")


class TestNumeric:
    def test_accepts(self):
        dfa = quotes.numeric_literals()
        for text in ("0", "42", "-7", "3.14"):
            assert dfa.accepts_string(text)

    def test_rejects(self):
        dfa = quotes.numeric_literals()
        for text in ("", "1a", "'1'", "1;2", "--", "1 OR 1"):
            assert not dfa.accepts_string(text)


class TestAttackFragments:
    def test_detects(self):
        dfa = quotes.non_confinable_substrings()
        for text in (
            "1; DROP TABLE users",
            "1 -- comment",
            "x UNION SELECT password",
            "1 OR 1=1",
            "0; DELETE FROM t",
        ):
            assert dfa.accepts_string(text), text

    def test_clean_values_pass(self):
        dfa = quotes.non_confinable_substrings()
        for text in ("42", "hello", "user_name", "3.14"):
            assert not dfa.accepts_string(text), text
