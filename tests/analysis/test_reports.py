"""Tests for report data structures and rendering."""

from repro.analysis.reports import Finding, HotspotReport, ProjectReport
from repro.lang.grammar import DIRECT, INDIRECT


def make_finding(safe=False, labels=frozenset({DIRECT}), check="odd-quotes"):
    return Finding(
        file="app/page.php",
        line=12,
        sink="mysql_query",
        nonterminal="X",
        labels=labels,
        check=check,
        safe=safe,
        witness="'" if not safe else "",
        detail="detail text",
    )


class TestFinding:
    def test_category_direct_dominates(self):
        finding = make_finding(labels=frozenset({DIRECT, INDIRECT}))
        assert finding.category == DIRECT

    def test_category_indirect(self):
        assert make_finding(labels=frozenset({INDIRECT})).category == INDIRECT

    def test_category_unlabeled(self):
        assert make_finding(labels=frozenset()).category == "unlabeled"

    def test_render_violation(self):
        text = make_finding().render()
        assert "VIOLATION" in text
        assert "page.php:12" in text
        assert "odd-quotes" in text
        assert "witness" in text

    def test_render_safe(self):
        text = make_finding(safe=True).render()
        assert text.startswith("SAFE")
        assert "witness" not in text


class TestHotspotReport:
    def test_verified_when_all_safe(self):
        report = HotspotReport(
            file="f", line=1, sink="s", findings=[make_finding(safe=True)]
        )
        assert report.verified
        assert report.violations == []

    def test_vulnerable(self):
        report = HotspotReport(
            file="f", line=1, sink="s",
            findings=[make_finding(safe=True), make_finding(safe=False)],
        )
        assert not report.verified
        assert len(report.violations) == 1
        assert "VULNERABLE" in report.render()

    def test_query_samples_rendered(self):
        report = HotspotReport(
            file="f", line=1, sink="s", query_samples=["SELECT 1"]
        )
        assert "SELECT 1" in report.render()


class TestProjectReport:
    def test_category_partition(self):
        spot = HotspotReport(
            file="f",
            line=1,
            sink="s",
            findings=[
                make_finding(labels=frozenset({DIRECT})),
                make_finding(labels=frozenset({INDIRECT}), check="literal-break"),
            ],
        )
        report = ProjectReport(name="demo", hotspots=[spot])
        assert len(report.direct_violations) == 1
        assert len(report.indirect_violations) == 1
        assert not report.verified

    def test_verified_render(self):
        report = ProjectReport(name="demo")
        assert report.verified
        assert "VERIFIED" in report.render()

    def test_render_header_stats(self):
        report = ProjectReport(name="demo", files=3, lines=120)
        text = report.render()
        assert "files=3" in text and "lines=120" in text
