"""Tests for the GrammarBuilder abstract domain."""

from repro.analysis.absdom import GrammarBuilder
from repro.analysis.values import ArrVal
from repro.lang.charset import CharSet, DIGITS
from repro.lang.fst import FST
from repro.lang.grammar import DIRECT, INDIRECT
from repro.lang.regex import parse_regex


class TestConstructors:
    def test_literal(self):
        b = GrammarBuilder()
        v = b.literal("hello")
        assert b.grammar.generates(v.nt, "hello")
        assert not b.grammar.generates(v.nt, "world")

    def test_literal_cached(self):
        b = GrammarBuilder()
        assert b.literal("x").nt is b.literal("x").nt

    def test_empty_literal(self):
        b = GrammarBuilder()
        v = b.literal("")
        assert b.grammar.generates(v.nt, "")

    def test_any_string(self):
        b = GrammarBuilder()
        v = b.any_string()
        for text in ("", "abc", "'; DROP"):
            assert b.grammar.generates(v.nt, text)

    def test_any_string_labeled(self):
        b = GrammarBuilder()
        v = b.any_string(DIRECT)
        assert b.grammar.has_label(v.nt, DIRECT)

    def test_charset_star(self):
        b = GrammarBuilder()
        v = b.charset_star(DIGITS)
        assert b.grammar.generates(v.nt, "123")
        assert not b.grammar.generates(v.nt, "a")

    def test_from_nfa(self):
        from repro.lang.regex import full_match_language

        b = GrammarBuilder()
        v = b.from_nfa(full_match_language(parse_regex("ab*c")))
        assert b.grammar.generates(v.nt, "abbbc")
        assert not b.grammar.generates(v.nt, "ab")


class TestCombination:
    def test_concat(self):
        b = GrammarBuilder()
        v = b.concat(b.literal("SELECT "), b.literal("1"))
        assert b.grammar.generates(v.nt, "SELECT 1")

    def test_concat_all_empty(self):
        b = GrammarBuilder()
        v = b.concat_all([])
        assert b.grammar.generates(v.nt, "")

    def test_join(self):
        b = GrammarBuilder()
        v = b.join([b.literal("a"), b.literal("b")])
        assert b.grammar.generates(v.nt, "a")
        assert b.grammar.generates(v.nt, "b")
        assert not b.grammar.generates(v.nt, "ab")

    def test_join_single_passthrough(self):
        b = GrammarBuilder()
        x = b.literal("a")
        assert b.join([x]) is x


class TestTaint:
    def test_taint_and_query(self):
        b = GrammarBuilder()
        v = b.taint(b.literal("x"), DIRECT)
        assert b.is_tainted(v)
        assert b.labels_of(v) == {DIRECT}

    def test_labels_flow_through_concat(self):
        b = GrammarBuilder()
        tainted = b.taint(b.any_string(), INDIRECT)
        combined = b.concat(b.literal("a"), tainted)
        assert INDIRECT in b.labels_of(combined)

    def test_untainted(self):
        b = GrammarBuilder()
        assert not b.is_tainted(b.literal("x"))


class TestRefinement:
    def test_refine_regex_positive(self):
        b = GrammarBuilder()
        v = b.any_string(DIRECT)
        refined = b.refine_regex(v, parse_regex("^[0-9]+$"), positive=True)
        assert b.grammar.generates(refined.nt, "42")
        assert not b.grammar.generates(refined.nt, "4a")
        assert DIRECT in b.labels_of(refined)

    def test_refine_regex_negative(self):
        b = GrammarBuilder()
        v = b.any_string()
        refined = b.refine_regex(v, parse_regex("^[0-9]+$"), positive=False)
        assert not b.grammar.generates(refined.nt, "42")
        assert b.grammar.generates(refined.nt, "4a")

    def test_refine_unanchored_keeps_attack(self):
        b = GrammarBuilder()
        v = b.any_string(DIRECT)
        refined = b.refine_regex(v, parse_regex("[0-9]+"), positive=True)
        assert b.grammar.generates(refined.nt, "1'; DROP TABLE x; --")


class TestImage:
    def test_image_escapes(self):
        b = GrammarBuilder()
        v = b.join([b.literal("a'b"), b.literal("c")])
        escaped = b.image(v, FST.escape_chars(CharSet.of("'")))
        assert b.grammar.generates(escaped.nt, "a\\'b")
        assert b.grammar.generates(escaped.nt, "c")
        assert not b.grammar.generates(escaped.nt, "a'b")

    def test_image_keeps_taint(self):
        b = GrammarBuilder()
        v = b.taint(b.any_string(), DIRECT)
        escaped = b.image(v, FST.escape_chars(CharSet.of("'")))
        assert DIRECT in b.labels_of(escaped)

    def test_image_of_cyclic_value(self):
        b = GrammarBuilder()
        star = b.charset_star(CharSet.of("a'"))
        escaped = b.image(star, FST.escape_chars(CharSet.of("'")))
        assert b.grammar.generates(escaped.nt, "a\\'a")
        assert not b.grammar.generates(escaped.nt, "'")


class TestWiden:
    def test_widen_superset(self):
        b = GrammarBuilder()
        v = b.literal("ab")
        widened = b.widen(v)
        for text in ("", "ab", "ba", "aabb"):
            assert b.grammar.generates(widened.nt, text)
        assert not b.grammar.generates(widened.nt, "c")

    def test_widen_keeps_taint(self):
        b = GrammarBuilder()
        v = b.taint(b.literal("x"), DIRECT)
        assert DIRECT in b.labels_of(b.widen(v))


class TestCoercion:
    def test_to_str_passthrough(self):
        b = GrammarBuilder()
        v = b.literal("x")
        assert b.to_str(v) is v

    def test_to_str_array(self):
        b = GrammarBuilder()
        v = b.to_str(ArrVal())
        assert b.grammar.generates(v.nt, "Array")

    def test_to_str_none(self):
        b = GrammarBuilder()
        v = b.to_str(None)
        assert b.grammar.generates(v.nt, "")
