"""Golden regression: SQL output is byte-identical across the refactor.

The checked-in files under ``golden/`` were captured from the default
(no ``--policy-config``) pipeline: ``--json`` documents and SARIF logs
for all five corpus applications.  The policy framework must not
perturb a single byte of them — the classic SQL path is the contract
every satellite rides on (ISSUE acceptance: "SQL findings on the five
corpus apps are byte-identical before/after the refactor").

Paths are normalized to ``<ROOT>`` because the corpus is rebuilt in a
fresh temporary directory on every run; everything else — ordering,
messages, rule metadata, confidence, provenance — is compared verbatim.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.analyzer import entry_pages, run_pages
from repro.analysis.reports import json_document
from repro.analysis.sarif import render_sarif
from repro.corpus import APPS, build_app

GOLDEN = Path(__file__).parent / "golden"

APP_DIRS = [app_dir for _, app_dir in APPS]


@pytest.fixture(scope="module")
def corpus_results(tmp_path_factory):
    """Analyze each corpus app once; tests share the results."""
    out = {}
    for app_dir in APP_DIRS:
        tmp = tmp_path_factory.mktemp(f"golden_{app_dir}")
        build_app(tmp, app_dir)
        root = tmp / app_dir
        pages = entry_pages(root)
        results = run_pages(root, pages, audit=True, jobs=1)
        out[app_dir] = (root, results)
    return out


@pytest.mark.parametrize("app_dir", APP_DIRS)
def test_json_document_matches_golden(corpus_results, app_dir):
    root, results = corpus_results[app_dir]
    rendered = json.dumps(json_document(root, results), indent=2)
    rendered = rendered.replace(str(root), "<ROOT>") + "\n"
    assert rendered == (GOLDEN / f"{app_dir}.json").read_text()


@pytest.mark.parametrize("app_dir", APP_DIRS)
def test_sarif_log_matches_golden(corpus_results, app_dir):
    root, results = corpus_results[app_dir]
    rendered = render_sarif(root, results)
    rendered = rendered.replace(root.as_uri() + "/", "file://<ROOT>/")
    rendered = rendered.replace(str(root), "<ROOT>") + "\n"
    assert rendered == (GOLDEN / f"{app_dir}.sarif").read_text()
