"""End-to-end soundness harness (Theorem 3.4, empirically).

For a family of (sanitizer, query-context) programs we run the static
analysis; whenever it says *verified*, we execute the program concretely
on a battery of attack payloads — PHP semantics simulated with the same
reference implementations the transducer models are differential-tested
against — and assert via the Definition 2.2 oracle that no concrete
query is an attack.  A verified-but-attackable combination would be a
soundness bug.

The dual direction (reported combinations really are attackable) is
checked where a concrete exploit exists, documenting which reports are
true positives and which are the known FP patterns.
"""

import re
import textwrap

import pytest

from repro.analysis.analyzer import analyze_page
from repro.sql.confinement import check_confinement
from repro.sql.lexer import SqlLexError

ATTACKS = [
    "1'; DROP TABLE t; --",
    "' OR '1'='1",
    "1 OR 1=1",
    "x\\' OR 1=1 --",
    "1; DELETE FROM t",
    "normal",
    "42",
    "",
    "a'b",
    "--",
    '"; DROP TABLE t; --',
]


def php_addslashes(value: str) -> str:
    out = []
    for char in value:
        if char in "'\"\\\0":
            out.append("\\")
        out.append(char)
    return "".join(out)


def php_intval(value: str) -> str:
    match = re.match(r"\s*[+-]?[0-9]+", value)
    return str(int(match.group())) if match else "0"


def php_digits_only(value: str) -> str:
    return re.sub(r"[^0-9]", "", value)


SANITIZERS = {
    "none": ("$x", lambda v: v),
    "addslashes": ("addslashes($x)", php_addslashes),
    "intval": ("intval($x)", php_intval),
    "digits_only": ("preg_replace('/[^0-9]/', '', $x)", php_digits_only),
}

CONTEXTS = {
    "quoted": "SELECT * FROM t WHERE name='{}'",
    "unquoted": "SELECT * FROM t WHERE id={}",
}


def static_verdict(tmp_path, sanitizer_expr: str, template: str) -> bool:
    """True if the analysis verifies the program."""
    workspace = tmp_path / "w"
    workspace.mkdir(exist_ok=True)
    query = template.format("$s")
    (workspace / "page.php").write_text(
        textwrap.dedent(
            f"""\
            <?php
            $x = $_GET['x'];
            $s = {sanitizer_expr};
            mysql_query("{query}");
            """
        )
    )
    reports, _ = analyze_page(workspace, "page.php")
    return all(r.verified for r in reports)


def concrete_attack_exists(sanitize, template: str) -> bool:
    """Does some payload yield an unconfined (or unlexable) query?"""
    for payload in ATTACKS:
        sanitized = sanitize(payload)
        query = template.format(sanitized)
        lo = query.index(sanitized) if sanitized else len(template.format(""))
        hi = lo + len(sanitized)
        try:
            if not check_confinement(query, lo, hi).confined:
                return True
        except (ValueError, SqlLexError):
            return True
    return False


@pytest.mark.parametrize("sanitizer_name", list(SANITIZERS))
@pytest.mark.parametrize("context_name", list(CONTEXTS))
def test_verified_implies_no_concrete_attack(
    tmp_path, sanitizer_name, context_name
):
    """THE soundness direction: verified ⇒ no payload in our battery
    produces an unconfined query."""
    sanitizer_expr, sanitize = SANITIZERS[sanitizer_name]
    template = CONTEXTS[context_name]
    verified = static_verdict(tmp_path, sanitizer_expr, template)
    if verified:
        assert not concrete_attack_exists(sanitize, template), (
            f"SOUNDNESS BUG: verified {sanitizer_name} in {context_name} "
            "but a concrete attack exists"
        )


def test_expected_verdict_matrix(tmp_path):
    """The full 4×2 matrix, pinned (changes here are policy changes)."""
    expected_verified = {
        ("none", "quoted"): False,
        ("none", "unquoted"): False,
        ("addslashes", "quoted"): True,
        ("addslashes", "unquoted"): False,   # the §1.1 numeric-context bug
        ("intval", "quoted"): True,
        ("intval", "unquoted"): True,
        ("digits_only", "quoted"): True,
        # digits_only can yield the EMPTY string: "WHERE id=" dangles, so
        # C3 (ε is not a numeric literal) correctly refuses to verify —
        # intval is the right sanitizer for numeric contexts.
        ("digits_only", "unquoted"): False,
    }
    for (sanitizer_name, context_name), expected in expected_verified.items():
        sanitizer_expr, _ = SANITIZERS[sanitizer_name]
        verdict = static_verdict(
            tmp_path, sanitizer_expr, CONTEXTS[context_name]
        )
        assert verdict == expected, (sanitizer_name, context_name)


def test_reported_cases_have_concrete_attacks(tmp_path):
    """Completeness spot-check: each *reported* cell in the matrix above
    (other than known FP patterns, none of which appear here) is backed
    by a concrete exploit from the battery."""
    reported_cells = [
        ("none", "quoted"),
        ("none", "unquoted"),
        ("addslashes", "unquoted"),
    ]
    for sanitizer_name, context_name in reported_cells:
        _, sanitize = SANITIZERS[sanitizer_name]
        assert concrete_attack_exists(sanitize, CONTEXTS[context_name]), (
            sanitizer_name,
            context_name,
        )
