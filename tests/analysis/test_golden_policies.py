"""Golden regression: all-policies output is byte-identical across the
kernel optimizations.

The checked-in files under ``golden_policies/`` were captured from the
pre-optimization pipeline with **every** registered sink policy enabled
(``policies: [sql, xss, xss-context, shell, eval, path]``): ``--json``
documents and SARIF logs for all five corpus applications.  The
hardware-fast kernels (bitset charsets, integer-indexed Earley, lazy FST
images, the abstraction pre-filter) must not perturb a single byte of
them — the pre-filter in particular may only ever answer "provably
safe" when the exact CFG ∩ FSA check would, so verdicts, witnesses,
sample queries, provenance, and SARIF all stay bit-stable.

Paths are normalized to ``<ROOT>`` because the corpus is rebuilt in a
fresh temporary directory on every run; everything else is compared
verbatim.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.analyzer import entry_pages, run_pages
from repro.analysis.policies import PolicyConfig
from repro.analysis.policies.registry import REGISTRY
from repro.analysis.reports import json_document
from repro.analysis.sarif import render_sarif
from repro.corpus import APPS, build_app

GOLDEN = Path(__file__).parent / "golden_policies"

APP_DIRS = [app_dir for _, app_dir in APPS]


@pytest.fixture(scope="module")
def corpus_results(tmp_path_factory):
    """Analyze each corpus app once with all policies; tests share it."""
    config = PolicyConfig(enabled=tuple(REGISTRY))
    out = {}
    for app_dir in APP_DIRS:
        tmp = tmp_path_factory.mktemp(f"golden_pol_{app_dir}")
        build_app(tmp, app_dir)
        root = tmp / app_dir
        pages = entry_pages(root)
        results = run_pages(root, pages, audit=True, jobs=1, policies=config)
        out[app_dir] = (root, results, config)
    return out


@pytest.mark.parametrize("app_dir", APP_DIRS)
def test_json_document_matches_golden(corpus_results, app_dir):
    root, results, _ = corpus_results[app_dir]
    rendered = json.dumps(json_document(root, results), indent=2)
    rendered = rendered.replace(str(root), "<ROOT>") + "\n"
    assert rendered == (GOLDEN / f"{app_dir}.json").read_text()


@pytest.mark.parametrize("app_dir", APP_DIRS)
def test_sarif_log_matches_golden(corpus_results, app_dir):
    root, results, config = corpus_results[app_dir]
    rendered = render_sarif(root, results, policies=config)
    rendered = rendered.replace(root.as_uri() + "/", "file://<ROOT>/")
    rendered = rendered.replace(str(root), "<ROOT>") + "\n"
    assert rendered == (GOLDEN / f"{app_dir}.sarif").read_text()
