"""Tests for the perf recorder's snapshot algebra and rendering."""

from repro.obs.metrics import PerfRecorder, render_table


class TestDiff:
    def test_only_changed_counters_in_delta(self):
        recorder = PerfRecorder()
        recorder.incr("stable", 5)
        before = recorder.snapshot()
        recorder.incr("changed", 2)
        delta = recorder.diff(before)
        assert delta["counters"] == {"changed": 2}

    def test_timers_subtract_and_zero_deltas_drop(self):
        recorder = PerfRecorder()
        recorder.add_time("phase1", 1.5)
        before = recorder.snapshot()
        recorder.add_time("phase1", 0.5)
        delta = recorder.diff(before)
        assert delta["timers"] == {"phase1": 0.5}

    def test_gauges_keep_high_water_mark(self):
        recorder = PerfRecorder()
        recorder.gauge("peak", 10)
        before = recorder.snapshot()
        recorder.gauge("peak", 3)  # below the mark: no change recorded
        delta = recorder.diff(before)
        assert delta["gauges"] == {"peak": 10}

    def test_diff_of_unchanged_recorder_is_empty(self):
        recorder = PerfRecorder()
        recorder.incr("n")
        recorder.add_time("t", 1.0)
        before = recorder.snapshot()
        delta = recorder.diff(before)
        assert delta["counters"] == {} and delta["timers"] == {}


class TestMerge:
    def test_merge_folds_worker_delta(self):
        driver = PerfRecorder()
        driver.incr("pages.analyzed", 1)
        driver.gauge("peak", 5)
        driver.merge(
            {
                "counters": {"pages.analyzed": 2},
                "timers": {"phase1": 0.25},
                "gauges": {"peak": 9},
            }
        )
        snap = driver.snapshot()
        assert snap["counters"]["pages.analyzed"] == 3
        assert snap["timers"]["phase1"] == 0.25
        assert snap["gauges"]["peak"] == 9

    def test_merge_missing_sections_is_noop(self):
        driver = PerfRecorder()
        driver.merge({})
        assert driver.snapshot() == {"counters": {}, "timers": {}, "gauges": {}}


class TestRenderTable:
    def test_empty_snapshot(self):
        table = render_table({"counters": {}, "timers": {}, "gauges": {}})
        assert "(no events recorded)" in table

    def test_sections_render_sorted(self):
        recorder = PerfRecorder()
        recorder.incr("b.count", 2)
        recorder.incr("a.count", 1)
        recorder.add_time("phase", 0.125)
        recorder.gauge("peak", 7.0)
        table = render_table(recorder.snapshot())
        assert table.index("a.count") < table.index("b.count")
        assert "phase timings:" in table
        assert "gauges (high-water marks):" in table
