"""The extended registry: histograms, bucket conventions, merge algebra.

The old three-section shape (counters/timers/gauges) is pinned by
``tests/test_perf.py``; these tests cover what the observability layer
added — fixed-bucket histograms, the deterministic merge over them, and
the derived cache-effectiveness view — plus the contract that merging
worker deltas in page order is order-insensitive in its totals.
"""

import pytest

from repro.obs.metrics import (
    BYTES_BUCKETS,
    SECONDS_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
    buckets_for,
    cache_rates,
    histogram_quantile,
    render_table,
)


class TestBucketConventions:
    def test_seconds_names_get_latency_buckets(self):
        assert buckets_for("policy.verdict_lookup_seconds") == SECONDS_BUCKETS
        assert buckets_for("server.request_seconds") == SECONDS_BUCKETS

    def test_bytes_names_get_payload_buckets(self):
        assert buckets_for("ipc.page_bytes") == BYTES_BUCKETS

    def test_everything_else_gets_size_buckets(self):
        assert buckets_for("grammar.productions") == SIZE_BUCKETS


class TestHistograms:
    def test_observations_land_in_the_right_buckets(self):
        registry = MetricsRegistry()
        registry.observe("x", 0.5, buckets=(1, 10, 100))
        registry.observe("x", 5)
        registry.observe("x", 1000)  # overflow bucket
        hist = registry.snapshot()["histograms"]["x"]
        assert hist["bounds"] == [1, 10, 100]
        assert hist["counts"] == [1, 1, 0, 1]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(1005.5)

    def test_boundary_value_lands_at_its_bound(self):
        registry = MetricsRegistry()
        registry.observe("x", 10, buckets=(1, 10, 100))
        assert registry.snapshot()["histograms"]["x"]["counts"] == [0, 1, 0, 0]

    def test_bounds_fixed_at_first_observation(self):
        registry = MetricsRegistry()
        registry.observe("x", 2, buckets=(1, 10))
        registry.observe("x", 3, buckets=(5, 50))  # ignored: already fixed
        assert registry.snapshot()["histograms"]["x"]["bounds"] == [1, 10]

    def test_snapshot_has_no_histogram_section_when_none_observed(self):
        registry = MetricsRegistry()
        registry.incr("n")
        assert "histograms" not in registry.snapshot()

    def test_latency_context_manager_records_one_observation(self):
        registry = MetricsRegistry()
        with registry.latency("op_seconds"):
            pass
        hist = registry.snapshot()["histograms"]["op_seconds"]
        assert hist["count"] == 1
        assert list(hist["bounds"]) == list(SECONDS_BUCKETS)

    def test_quantile_upper_bound_estimate(self):
        registry = MetricsRegistry()
        for value in (0.5, 0.5, 5, 50, 5000):
            registry.observe("x", value, buckets=(1, 10, 100))
        hist = registry.snapshot()["histograms"]["x"]
        assert histogram_quantile(hist, 0.5) == 10.0
        # the 0.99 quantile falls in the overflow bucket: mean bound
        assert histogram_quantile(hist, 0.99) == pytest.approx(5056.0 / 5)

    def test_quantile_of_empty_histogram_is_none(self):
        assert (
            histogram_quantile(
                {"bounds": (1,), "counts": [0, 0], "sum": 0.0, "count": 0}, 0.5
            )
            is None
        )


class TestDiffAndMerge:
    def _delta(self, values, name="x", buckets=(1, 10, 100)):
        registry = MetricsRegistry()
        before = registry.snapshot()
        for value in values:
            registry.observe(name, value, buckets=buckets)
        return registry.diff(before)

    def test_histogram_diff_subtracts_elementwise(self):
        registry = MetricsRegistry()
        registry.observe("x", 5, buckets=(1, 10))
        before = registry.snapshot()
        registry.observe("x", 5)
        registry.observe("x", 0.5)
        delta = registry.diff(before)["histograms"]["x"]
        assert delta["counts"] == [1, 1, 0]
        assert delta["count"] == 2

    def test_unchanged_histogram_drops_from_diff(self):
        registry = MetricsRegistry()
        registry.observe("x", 5, buckets=(1, 10))
        before = registry.snapshot()
        registry.incr("other")
        assert "histograms" not in registry.diff(before)

    def test_merge_is_order_insensitive(self):
        """The page-order merge convention is about determinism of the
        sequence; the totals must not depend on it at all."""
        deltas = [
            self._delta([0.5, 5]),
            self._delta([50, 5000]),
            self._delta([5]),
        ]
        for delta, values in zip(deltas, ([3], [7], [11])):
            delta["counters"] = {"n": values[0]}
            delta["gauges"] = {"peak": float(values[0])}

        forward = MetricsRegistry()
        for delta in deltas:
            forward.merge(delta)
        backward = MetricsRegistry()
        for delta in reversed(deltas):
            backward.merge(delta)
        assert forward.snapshot() == backward.snapshot()
        assert forward.snapshot()["counters"]["n"] == 21
        assert forward.snapshot()["gauges"]["peak"] == 11.0
        assert forward.snapshot()["histograms"]["x"]["count"] == 5

    def test_merge_of_diffs_equals_direct_recording(self):
        """Worker-shipped deltas folded into the driver reproduce what
        one process recording everything would have seen."""
        direct = MetricsRegistry()
        driver = MetricsRegistry()
        for chunk in ([0.5, 5], [50], [5000, 5]):
            for value in chunk:
                direct.observe("x", value, buckets=(1, 10, 100))
            driver.merge(self._delta(chunk))
        assert driver.snapshot() == direct.snapshot()

    def test_mismatched_bounds_fold_through_sum_and_count(self):
        driver = MetricsRegistry()
        driver.observe("x", 5, buckets=(1, 10))
        driver.merge(self._delta([7], buckets=(2, 20)))
        hist = driver.snapshot()["histograms"]["x"]
        assert hist["bounds"] == [1, 10]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(12.0)


class TestDerivedViews:
    def test_cache_rates_cover_prefilter_and_image_replays(self):
        counters = {
            "prefilter.hits": 30,
            "prefilter.misses": 10,
            "image.cache.hits": 8,
            "image.cache.misses": 2,
            "image.cache.replays": 123,
        }
        rows = {label: (hits, misses, rate, extras)
                for label, hits, misses, rate, extras in cache_rates(counters)}
        assert rows["prefilter"][2] == pytest.approx(0.75)
        assert rows["image cache"][2] == pytest.approx(0.8)
        assert rows["image cache"][3] == {"image.cache.replays": 123}

    def test_idle_caches_are_omitted(self):
        assert cache_rates({"prefilter.hits": 0, "prefilter.misses": 0}) == []

    def test_render_table_shows_histograms_and_cache_effectiveness(self):
        registry = MetricsRegistry()
        registry.incr("prefilter.hits", 3)
        registry.incr("prefilter.misses", 1)
        registry.incr("image.cache.hits", 1)
        registry.incr("image.cache.misses", 1)
        registry.incr("image.cache.replays", 42)
        registry.observe("lookup_seconds", 0.002)
        table = render_table(registry.snapshot())
        assert "cache effectiveness:" in table
        assert "prefilter" in table and "75.0% hit" in table
        assert "replays=42" in table
        assert "histograms" in table and "lookup_seconds" in table
