"""The Prometheus text exposition and its metric-name contract."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import metric_name, render_prometheus


def _registry():
    registry = MetricsRegistry()
    registry.incr("pages.analyzed", 7)
    registry.incr("server.requests.analyze", 3)
    registry.incr("server.requests.ping", 1)
    registry.incr("prefilter.hits", 9)
    registry.incr("prefilter.misses", 1)
    registry.add_time("phase2.checks", 1.25)
    registry.gauge("image.cache.size", 12)
    registry.observe("server.request_seconds", 0.003)
    registry.observe("server.request_seconds", 0.3)
    return registry


class TestNames:
    def test_prefix_and_dot_translation(self):
        assert metric_name("pages.analyzed") == "sqlciv_pages_analyzed"
        assert metric_name("image.cache.size") == "sqlciv_image_cache_size"

    def test_invalid_characters_are_sanitized(self):
        assert metric_name("cascade:sql") == "sqlciv_cascade_sql"


class TestExposition:
    def test_counters_get_total_suffix(self):
        text = render_prometheus(_registry().snapshot())
        assert "sqlciv_pages_analyzed_total 7" in text

    def test_request_counters_fold_into_op_labels(self):
        text = render_prometheus(_registry().snapshot())
        assert 'sqlciv_server_requests_total{op="analyze"} 3' in text
        assert 'sqlciv_server_requests_total{op="ping"} 1' in text
        assert "# TYPE sqlciv_server_requests_total counter" in text

    def test_timers_become_seconds_total_counters(self):
        text = render_prometheus(_registry().snapshot())
        assert "sqlciv_phase2_checks_seconds_total 1.25" in text

    def test_histograms_have_cumulative_buckets_and_inf(self):
        text = render_prometheus(_registry().snapshot())
        assert "# TYPE sqlciv_server_request_seconds histogram" in text
        assert 'sqlciv_server_request_seconds_bucket{le="0.005"} 1' in text
        assert 'sqlciv_server_request_seconds_bucket{le="0.5"} 2' in text
        assert 'sqlciv_server_request_seconds_bucket{le="+Inf"} 2' in text
        assert "sqlciv_server_request_seconds_count 2" in text

    def test_cache_hit_ratio_gauges_are_derived(self):
        text = render_prometheus(_registry().snapshot())
        assert 'sqlciv_cache_hit_ratio{cache="prefilter"} 0.9' in text

    def test_extra_gauges_are_current_values(self):
        text = render_prometheus(
            _registry().snapshot(),
            extra_gauges={"resident.projects": 1, "resident.pages": 35},
        )
        assert "sqlciv_resident_projects 1" in text
        assert "sqlciv_resident_pages 35" in text

    def test_exposition_ends_with_newline(self):
        assert render_prometheus(_registry().snapshot()).endswith("\n")
