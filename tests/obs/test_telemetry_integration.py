"""Telemetry end-to-end: byte-identity, merge determinism, stable ids.

Three contracts on a real corpus application:

* **byte-identity** — ``--profile=timeline`` must not perturb a single
  byte of the ``--json`` document (beyond the opt-in ``perf`` block) or
  of the SARIF log;
* **merge determinism** — counters whose totals are a function of the
  analyzed work (not of which worker did it) agree across ``--jobs``
  settings and across reruns.  Per-worker memo *splits* (hit vs miss)
  legitimately vary with scheduling; the lookup totals don't;
* **span-id stability** — rerunning the same project from cold caches
  yields the same span ids page for page (they encode (page, phase,
  occurrence), never time, pid, or lane).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.analyzer import entry_pages, run_pages
from repro.analysis.policy import VERDICT_CACHE
from repro.corpus import build_app
from repro.lang.image import IMAGE_CACHE
from repro.obs.timeline import TIMELINE, assemble
from repro.obs.metrics import PERF

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def app_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("telemetry-app")
    build_app(root, "eve_activity_tracker")
    return root / "eve_activity_tracker"


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


def _cold_run(app_root, jobs, audit=True):
    """One in-process analysis from cold memos; returns the results."""
    VERDICT_CACHE.clear()
    IMAGE_CACHE.clear()
    PERF.reset()
    return run_pages(app_root, entry_pages(app_root), audit=audit, jobs=jobs)


class TestByteIdentity:
    def test_profiling_perturbs_neither_json_nor_sarif(
        self, app_root, tmp_path
    ):
        plain_sarif = tmp_path / "plain.sarif"
        profiled_sarif = tmp_path / "profiled.sarif"
        timeline_out = tmp_path / "timeline.json"
        plain = run_cli(
            str(app_root), "--json", "--jobs", "2",
            "--sarif", str(plain_sarif),
        )
        profiled = run_cli(
            str(app_root), "--json", "--jobs", "2",
            "--sarif", str(profiled_sarif),
            "--profile=timeline", "--timeline-out", str(timeline_out),
        )
        assert plain.returncode == profiled.returncode

        plain_doc = json.loads(plain.stdout)
        profiled_doc = json.loads(profiled.stdout)
        assert "perf" in profiled_doc  # the opt-in block is present…
        profiled_doc.pop("perf")
        # …and is the only difference, to the byte
        assert (
            json.dumps(profiled_doc, indent=2)
            == json.dumps(plain_doc, indent=2)
        )
        assert profiled_sarif.read_bytes() == plain_sarif.read_bytes()

        timeline = json.loads(timeline_out.read_text())
        assert timeline["format"] == "sqlciv-timeline/1"
        assert len(timeline["pages"]) == len(plain_doc["pages"])


class TestMergeDeterminism:
    def _invariants(self, counters):
        """Totals that depend on the work, not on who did it."""
        return {
            "pages.analyzed": counters.get("pages.analyzed"),
            "verdict.lookups": (
                counters.get("policy.verdict_cache.hits", 0)
                + counters.get("policy.verdict_cache.misses", 0)
            ),
            "image.lookups": (
                counters.get("image.cache.hits", 0)
                + counters.get("image.cache.misses", 0)
            ),
        }

    def test_totals_agree_across_jobs_and_reruns(self, app_root):
        _cold_run(app_root, jobs=1)
        serial = PERF.snapshot()["counters"]
        _cold_run(app_root, jobs=2)
        parallel_a = PERF.snapshot()["counters"]
        _cold_run(app_root, jobs=2)
        parallel_b = PERF.snapshot()["counters"]
        PERF.reset()

        assert serial["pages.analyzed"] > 0
        assert (
            self._invariants(serial)
            == self._invariants(parallel_a)
            == self._invariants(parallel_b)
        )


class TestSpanIdStability:
    def test_rerun_from_cold_caches_reproduces_every_span_id(
        self, app_root
    ):
        def ids_by_page():
            TIMELINE.configure(True)
            try:
                results = _cold_run(app_root, jobs=1)
                timeline = assemble(
                    [r.timeline for r in results],
                    TIMELINE.drain_driver_spans(),
                )
            finally:
                TIMELINE.configure(False)
                PERF.reset()
            return {
                page["page"]: [span["id"] for span in page["spans"]]
                for page in timeline["pages"]
            }

        first = ids_by_page()
        second = ids_by_page()
        assert first and first == second
        assert all(ids for ids in first.values())
