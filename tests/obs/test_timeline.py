"""The timeline recorder, assembly, and the stats report.

The contracts under test:

* span **ids** are pure functions of (page, phase, occurrence) — stable
  across reruns and independent of which process/lane recorded them;
* **lanes** are assigned by first appearance in page order (driver is
  always lane 0), so the layout is a function of the page→worker
  assignment, not of timing;
* the stats report's accounting: self-times telescope to top-level
  coverage, the unattributed gap is what pages don't explain, and the
  serial-window sweep finds the ≤1-lane-busy fraction.
"""

import json

import pytest

from repro.obs.stats import (
    UNATTRIBUTED,
    render_report,
    stats_main,
    summarize,
)
from repro.obs.timeline import (
    TIMELINE_FORMAT,
    TimelineRecorder,
    append_span,
    assemble,
    span_id,
    write_timeline,
)


class TestRecorder:
    def test_disabled_recorder_is_a_no_op(self):
        recorder = TimelineRecorder()
        with recorder.page("index.php") as capture:
            with recorder.phase("absdom"):
                pass
        assert capture.payload() is None

    def test_spans_nest_by_parent_index(self):
        recorder = TimelineRecorder()
        recorder.configure(True)
        with recorder.page("index.php") as capture:
            with recorder.phase("absdom"):
                with recorder.phase("parse"):
                    pass
                with recorder.phase("include"):
                    with recorder.phase("parse"):
                        pass
        payload = capture.payload()
        spans = payload["spans"]
        assert [s["phase"] for s in spans] == [
            "absdom", "parse", "include", "parse",
        ]
        assert [s["parent"] for s in spans] == [None, 0, 0, 2]
        assert all(s["end"] >= s["start"] for s in spans)

    def test_page_capture_isolates_the_enclosing_state(self):
        recorder = TimelineRecorder()
        recorder.configure(True)
        with recorder.phase("scan"):
            pass
        with recorder.page("a.php") as capture:
            with recorder.phase("absdom"):
                pass
        assert [s["phase"] for s in capture.payload()["spans"]] == ["absdom"]
        # the driver span recorded outside the page is still drainable
        assert [s["phase"] for s in recorder.drain_driver_spans()] == ["scan"]
        assert recorder.drain_driver_spans() == []

    def test_annotate_sets_meta_on_the_open_span(self):
        recorder = TimelineRecorder()
        recorder.configure(True)
        with recorder.page("a.php") as capture:
            with recorder.phase("verdict-memo"):
                recorder.annotate("outcome", "hit")
        assert capture.payload()["spans"][0]["meta"] == {"outcome": "hit"}

    def test_append_span_stretches_the_page_bounds(self):
        recorder = TimelineRecorder()
        recorder.configure(True)
        with recorder.page("a.php") as capture:
            pass
        payload = capture.payload()
        end = payload["t_end"] + 1.0
        append_span(payload, "pickle", payload["t_end"], end, bytes=123)
        assert payload["t_end"] == end
        assert payload["spans"][-1]["meta"] == {"bytes": 123}


def _payload(page, pid, t0, spans, dur=None):
    """A synthetic page payload; spans are (phase, parent, start, end).

    ``dur`` overrides the page duration (default: the last span end),
    leaving a trailing unattributed gap.
    """
    if dur is None:
        dur = max((end for *_x, end in spans), default=0.0)
    return {
        "page": page,
        "t_start": t0,
        "t_end": t0 + dur,
        "pid": pid,
        "spans": [
            {"phase": phase, "parent": parent,
             "start": t0 + start, "end": t0 + end}
            for phase, parent, start, end in spans
        ],
    }


class TestAssemble:
    def test_lanes_by_first_appearance_in_page_order(self):
        payloads = [
            _payload("a.php", 222, 1.0, [("absdom", None, 0.0, 1.0)]),
            _payload("b.php", 333, 1.0, [("absdom", None, 0.0, 1.0)]),
            _payload("c.php", 222, 2.0, [("absdom", None, 0.0, 1.0)]),
        ]
        timeline = assemble(payloads)
        assert [lane["role"] for lane in timeline["lanes"]] == [
            "driver", "worker", "worker",
        ]
        assert [p["lane"] for p in timeline["pages"]] == [1, 2, 1]

    def test_span_ids_are_rerun_stable_and_lane_independent(self):
        def run(pid, t0):
            return assemble(
                [
                    _payload("a.php", pid, t0, [
                        ("absdom", None, 0.0, 1.0),
                        ("parse", 0, 0.0, 0.5),
                        ("parse", 0, 0.5, 0.9),
                    ]),
                ]
            )

        first = run(pid=222, t0=10.0)
        second = run(pid=999, t0=5000.0)  # different process, different clock
        ids_of = lambda tl: [s["id"] for s in tl["pages"][0]["spans"]]  # noqa: E731
        assert ids_of(first) == ids_of(second)
        # occurrence ordinals keep same-phase siblings distinct
        assert len(set(ids_of(first))) == 3
        assert ids_of(first)[1] == span_id("a.php", "parse", 0)
        assert ids_of(first)[2] == span_id("a.php", "parse", 1)

    def test_offsets_are_relative_to_the_earliest_event(self):
        timeline = assemble(
            [_payload("a.php", 222, 100.0, [("absdom", None, 0.0, 2.0)])],
            driver_spans=[
                {"phase": "scan", "parent": None, "start": 99.0, "end": 99.5}
            ],
        )
        assert timeline["driver_spans"][0]["start"] == 0.0
        assert timeline["pages"][0]["start"] == pytest.approx(1.0)
        assert timeline["wall_seconds"] == pytest.approx(3.0)

    def test_empty_run_assembles(self):
        timeline = assemble([None, None])
        assert timeline["format"] == TIMELINE_FORMAT
        assert timeline["pages"] == [] and timeline["wall_seconds"] == 0.0


class TestStats:
    def _two_lane_timeline(self):
        # lane 1: a.php [0,10] — absdom [0,6] with parse [0,2] inside,
        #         cascade [6,9]; 1s of the page is unattributed
        # lane 2: b.php [0,4]  — absdom [0,4]
        # serial window: [4,10] (only lane 1 busy) = 60% of wall
        return assemble(
            [
                _payload("a.php", 222, 0.0, [
                    ("absdom", None, 0.0, 6.0),
                    ("parse", 0, 0.0, 2.0),
                    ("cascade:sql", None, 6.0, 9.0),
                ], dur=10.0),
                _payload("b.php", 333, 0.0, [("absdom", None, 0.0, 4.0)]),
            ]
        )

    def test_summarize_accounting(self):
        summary = summarize(self._two_lane_timeline())
        assert summary["wall_seconds"] == pytest.approx(10.0)
        assert summary["busy_seconds"] == pytest.approx(14.0)
        phases = summary["phases"]
        # absdom self-time: (6-2) on a.php + 4 on b.php
        assert phases["absdom"]["self_seconds"] == pytest.approx(8.0)
        assert phases["parse"]["self_seconds"] == pytest.approx(2.0)
        assert phases["cascade:sql"]["self_seconds"] == pytest.approx(3.0)
        assert phases[UNATTRIBUTED]["self_seconds"] == pytest.approx(1.0)
        assert summary["attributed_fraction"] == pytest.approx(
            13 / 14, abs=1e-3
        )
        assert summary["serial_fraction"] == pytest.approx(0.6)
        assert summary["bottleneck"] == "absdom"
        # serial window [4,10]: absdom contributes [4,6], cascade [6,9]
        assert phases["absdom"]["serial_seconds"] == pytest.approx(2.0)
        assert phases["cascade:sql"]["serial_seconds"] == pytest.approx(3.0)

    def test_report_names_the_bottleneck_and_lanes(self):
        report = render_report(self._two_lane_timeline())
        assert "bottleneck: absdom" in report
        assert "worker 1" in report and "worker 2" in report
        assert "serial windows" in report

    def test_stats_main_json_round_trip(self, tmp_path, capsys):
        path = tmp_path / "timeline.json"
        write_timeline(path, self._two_lane_timeline())
        assert stats_main([str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["bottleneck"] == "absdom"

    def test_stats_main_rejects_non_timeline_files(self, tmp_path, capsys):
        path = tmp_path / "not-a-timeline.json"
        path.write_text("{}")
        assert stats_main([str(path)]) == 2
        assert "sqlciv stats" in capsys.readouterr().err
