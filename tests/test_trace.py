"""Tests for the span-tree run telemetry (``--trace``)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus import build_app
from repro.obs.metrics import PERF
from repro.obs.trace import (
    TRACE,
    TRACE_FORMAT,
    TraceRecorder,
    render_run,
    span_id,
    tree_shape,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def app_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("trace-app")
    build_app(root, "eve_activity_tracker")
    return root / "eve_activity_tracker"


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


def trace_of(app_root, tmp_path, tag, *extra):
    out = tmp_path / f"{tag}.jsonl"
    proc = run_cli(str(app_root), "--trace", str(out), *extra)
    assert proc.returncode in (0, 1)
    return out.read_text()


class TestRecorder:
    def setup_method(self):
        TRACE.configure(False)

    def test_disabled_recorder_is_noop(self):
        recorder = TraceRecorder()
        with recorder.span("parse", file="x") as span:
            span.set("cache", "hit")  # must not raise
        recorder.annotate("k", "v")
        assert recorder._stack == []

    def test_span_nesting_and_attrs(self):
        recorder = TraceRecorder()
        recorder.configure(True)
        with recorder.capture("page", page="p.php") as page:
            with recorder.span("phase1") as phase:
                with recorder.span("image", op="addslashes"):
                    recorder.annotate("cache", "miss")
                phase.set("hotspots", 1)
        tree = page.to_dict()
        assert tree["name"] == "page"
        (phase1,) = tree["children"]
        assert phase1["attrs"]["hotspots"] == 1
        (image,) = phase1["children"]
        assert image["attrs"] == {"op": "addslashes", "cache": "miss"}

    def test_capture_isolates_enclosing_stack(self):
        recorder = TraceRecorder()
        recorder.configure(True)
        with recorder.span("outer") as outer:
            with recorder.capture("page") as page:
                with recorder.span("inner"):
                    pass
        assert [c.name for c in page.children] == ["inner"]
        assert outer.children == []  # the page root did not attach

    def test_perf_delta_attached_at_exit(self):
        recorder = TraceRecorder()
        recorder.configure(True)
        PERF.reset()
        with recorder.capture("page") as page:
            PERF.incr("parse.files", 3)
        assert page.perf["counters"]["parse.files"] == 3


class TestSpanIds:
    def test_deterministic_and_position_dependent(self):
        assert span_id("", 0, "run") == span_id("", 0, "run")
        assert span_id("", 0, "run") != span_id("", 1, "run")
        assert span_id("a", 0, "parse") != span_id("b", 0, "parse")
        assert len(span_id("", 0, "run")) == 16

    def test_render_run_meta_line_first(self):
        text = render_run([], attrs={"root": "/x"})
        first = json.loads(text.splitlines()[0])
        assert first["event"] == "meta"
        assert first["format"] == TRACE_FORMAT
        assert first["attrs"] == {"root": "/x"}


class TestRunEquivalence:
    def test_serial_and_parallel_trees_same_shape(self, app_root, tmp_path):
        """The headline guarantee: a --jobs 4 run emits the same span
        tree (ids, parents, names — everything but wall-clock) as the
        serial run."""
        serial = trace_of(app_root, tmp_path, "serial", "--jobs", "1")
        parallel = trace_of(app_root, tmp_path, "parallel", "--jobs", "4")
        shape = tree_shape(serial)
        assert shape == tree_shape(parallel)
        assert len(shape) > len(list(app_root.glob("*.php")))

    def test_expected_span_names_present(self, app_root, tmp_path):
        text = trace_of(app_root, tmp_path, "names", "--jobs", "1")
        names = {name for _, _, name in tree_shape(text)}
        assert {"run", "page", "parse", "phase1", "phase2", "hotspot"} <= names

    def test_page_spans_carry_perf_deltas(self, app_root, tmp_path):
        text = trace_of(app_root, tmp_path, "perf", "--jobs", "1")
        pages = [
            json.loads(line)
            for line in text.splitlines()
            if '"name": "page"' in line
        ]
        assert pages
        analyzed = sum(
            p["perf"]["counters"].get("pages.analyzed", 0) for p in pages
        )
        assert analyzed == len(pages)

    def test_warm_cache_pages_marked(self, app_root, tmp_path):
        """Disk-cache-served pages still appear in the tree, flagged
        ``from_cache`` with no children (the work they did not do)."""
        cache = tmp_path / "cache"
        trace_of(app_root, tmp_path, "cold", "--jobs", "1",
                 "--cache-dir", str(cache))
        warm = trace_of(app_root, tmp_path, "warm", "--jobs", "1",
                        "--cache-dir", str(cache))
        spans = [json.loads(line) for line in warm.splitlines()][1:]
        pages = [s for s in spans if s["name"] == "page"]
        assert pages and all(s["attrs"].get("from_cache") for s in pages)
        assert {s["name"] for s in spans} == {"run", "page"}

    def test_hotspot_spans_record_verdict_cache(self, app_root, tmp_path):
        text = trace_of(app_root, tmp_path, "verdict", "--jobs", "1")
        hotspots = [
            json.loads(line)
            for line in text.splitlines()
            if '"name": "hotspot"' in line
        ]
        assert hotspots
        for span in hotspots:
            assert span["attrs"]["verdict_cache"] in ("hit", "miss")
            assert span["attrs"]["fingerprint"]
