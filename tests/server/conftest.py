"""Shared helpers for the analysis-server tests: an in-process daemon
behind a real TCP socket (loopback, ephemeral port), so the tests cover
the actual wire path without subprocess plumbing."""

import threading

import pytest

from repro.server.client import ServerClient
from repro.server.daemon import AnalysisDaemon, create_server


class DaemonHarness:
    def __init__(self, project_root, **daemon_kwargs):
        self.daemon = AnalysisDaemon(project_root, **daemon_kwargs)
        self.server = create_server(self.daemon, port=0)
        self.thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self.thread.start()
        self.port = self.server.server_address[1]

    def client(self, **kwargs) -> ServerClient:
        return ServerClient(port=self.port, **kwargs).connect()

    def stop(self):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)


@pytest.fixture
def start_daemon():
    harnesses = []

    def _start(project_root, **daemon_kwargs) -> DaemonHarness:
        harness = DaemonHarness(project_root, **daemon_kwargs)
        harnesses.append(harness)
        return harness

    yield _start
    for harness in harnesses:
        harness.stop()
