"""The daemon's live metrics surface.

Three access paths, one source of truth (``PERF`` + the daemon's
resident gauges):

* the ``metrics`` op (JSON snapshot, or the Prometheus text exposition
  with ``format="prometheus"``),
* the ``status`` op's ``resident``/``cache_hit_rates`` summary,
* the HTTP ``GET /metrics`` endpoint behind ``--metrics-addr``.
"""

import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import PERF
from repro.server.client import ServerError
from repro.server.daemon import start_metrics_server

SIMPLE_PHP = "<?php mysql_query(\"SELECT * FROM t WHERE id = '\" . $_GET['id'] . \"'\"); ?>"


@pytest.fixture(autouse=True)
def _fresh_perf():
    """The registry is a process global; exact-count assertions need it
    clean of whatever earlier tests in this process recorded."""
    PERF.reset()
    yield
    PERF.reset()


@pytest.fixture
def tiny_app(tmp_path):
    app = tmp_path / "app"
    app.mkdir()
    (app / "index.php").write_text(SIMPLE_PHP)
    (app / "about.php").write_text("<?php mysql_query('SELECT 1'); ?>")
    return app


class TestMetricsOp:
    def test_json_snapshot_has_perf_resident_and_hit_rates(
        self, tiny_app, start_daemon
    ):
        client = start_daemon(tiny_app).client()
        client.analyze()
        client.analyze()  # second run exercises the page memo
        result = client.metrics()
        assert result["perf"]["counters"]["server.requests.analyze"] == 2
        assert result["perf"]["counters"]["pages.analyzed"] == 2
        assert result["resident"]["resident.projects"] == 1
        assert result["resident"]["resident.pages"] == 2
        assert result["uptime_seconds"] >= 0
        assert isinstance(result["cache_hit_rates"], dict)

    def test_request_latency_histogram_accumulates(
        self, tiny_app, start_daemon
    ):
        client = start_daemon(tiny_app).client()
        client.ping()
        client.ping()
        hist = client.metrics()["perf"]["histograms"]["server.request_seconds"]
        # both pings are in the histogram; the metrics request itself is
        # still in flight when the snapshot is taken
        assert hist["count"] == 2
        assert hist["sum"] >= 0

    def test_prometheus_format_returns_the_text_exposition(
        self, tiny_app, start_daemon
    ):
        client = start_daemon(tiny_app).client()
        client.analyze()
        result = client.metrics(format="prometheus")
        assert result["content_type"].startswith("text/plain; version=0.0.4")
        text = result["text"]
        assert 'sqlciv_server_requests_total{op="analyze"} 1' in text
        assert "sqlciv_resident_projects 1" in text
        assert "sqlciv_resident_pages 2" in text
        assert 'sqlciv_server_request_seconds_bucket{le="+Inf"}' in text
        assert "sqlciv_server_request_seconds_count" in text

    def test_invalid_format_is_rejected(self, tiny_app, start_daemon):
        client = start_daemon(tiny_app).client()
        with pytest.raises(ServerError) as excinfo:
            client.metrics(format="xml")
        assert excinfo.value.code == "invalid-params"


class TestStatusSurface:
    def test_status_reports_resident_state_and_hit_rates(
        self, tiny_app, start_daemon
    ):
        client = start_daemon(tiny_app).client()
        client.analyze()
        client.analyze()
        status = client.status()
        assert status["resident"]["resident.pages"] == 2
        assert status["resident"]["server.uptime_seconds"] >= 0
        # run 1 re-analyzed both pages, run 2 replayed both from memo
        assert status["cache_hit_rates"]["server_page_memo"] == 0.5


class TestHttpEndpoint:
    def _serve(self, daemon):
        server = start_metrics_server(daemon, "127.0.0.1:0")
        host, port = server.server_address[:2]
        return server, f"http://{host}:{port}"

    def test_get_metrics_serves_the_exposition(self, tiny_app, start_daemon):
        harness = start_daemon(tiny_app)
        harness.client().analyze()
        server, base = self._serve(harness.daemon)
        try:
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as rsp:
                assert rsp.status == 200
                assert rsp.headers["Content-Type"].startswith("text/plain")
                text = rsp.read().decode("utf-8")
        finally:
            server.shutdown()
            server.server_close()
        assert 'sqlciv_server_requests_total{op="analyze"} 1' in text
        assert "sqlciv_cache_hit_ratio" in text or "sqlciv_pages_analyzed_total" in text

    def test_other_paths_are_404(self, tiny_app, start_daemon):
        harness = start_daemon(tiny_app)
        server, base = self._serve(harness.daemon)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/other", timeout=10)
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()

    def test_bad_addr_is_a_value_error(self, tiny_app, start_daemon):
        harness = start_daemon(tiny_app)
        with pytest.raises(ValueError):
            start_metrics_server(harness.daemon, "127.0.0.1:notaport")
