"""End-to-end daemon tests.

The two contracts under test:

* **incrementality** — editing an included-only file re-analyzes exactly
  the pages whose include closure contains it; editing a file nothing
  depends on re-analyzes none;
* **equivalence** — a server-mode ``analyze`` document (and SARIF log)
  is byte-identical to a cold CLI run over the same tree.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus import build_app
from repro.server.client import ServerError

REPO_ROOT = Path(__file__).resolve().parents[2]

SHARED_INC = "<?php $prefix = 'SELECT name FROM users'; ?>"
DETAIL_INC = "<?php $suffix = ' LIMIT 5'; ?>"
INDEX_PHP = (
    "<?php include 'includes/shared.inc';\n"
    "mysql_query($prefix . \" WHERE id = '\" . $_GET['id'] . \"'\"); ?>"
)
DETAIL_PHP = (
    "<?php include 'includes/shared.inc';\n"
    "include 'includes/detail_only.inc';\n"
    "mysql_query($prefix . $suffix); ?>"
)
STANDALONE_PHP = "<?php mysql_query('SELECT 1'); ?>"


@pytest.fixture
def synthetic_app(tmp_path):
    app = tmp_path / "app"
    includes = app / "includes"
    includes.mkdir(parents=True)
    (includes / "shared.inc").write_text(SHARED_INC)
    (includes / "detail_only.inc").write_text(DETAIL_INC)
    (app / "index.php").write_text(INDEX_PHP)
    (app / "detail.php").write_text(DETAIL_PHP)
    (app / "standalone.php").write_text(STANDALONE_PHP)
    (app / "notes.html").write_text("<p>never included</p>")
    return app


def touch(path: Path) -> None:
    path.write_text(path.read_text() + "\n")


class TestIncrementalInvalidation:
    def test_first_analyze_is_cold_then_fully_replayed(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        first = client.analyze()
        assert first["pages_total"] == 3
        assert first["pages_reanalyzed"] == 3
        second = client.analyze()
        assert second["pages_reanalyzed"] == 0
        assert second["pages_replayed"] == 3
        assert second["document"] == first["document"]

    def test_editing_included_only_file_requeues_exactly_dependents(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        client.analyze()
        touch(synthetic_app / "includes" / "detail_only.inc")
        outcome = client.invalidate(["includes/detail_only.inc"])
        assert outcome["invalidated_pages"] == ["detail.php"]
        after = client.analyze()
        assert after["pages_reanalyzed"] == 1
        assert after["pages_replayed"] == 2

    def test_editing_shared_include_requeues_both_dependents(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        client.analyze()
        touch(synthetic_app / "includes" / "shared.inc")
        outcome = client.invalidate(["includes/shared.inc"])
        assert outcome["invalidated_pages"] == ["detail.php", "index.php"]
        assert client.analyze()["pages_reanalyzed"] == 2

    def test_editing_unrelated_file_requeues_none(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        client.analyze()
        touch(synthetic_app / "notes.html")
        outcome = client.invalidate(["notes.html"])
        assert outcome["invalidated_pages"] == []
        assert client.analyze()["pages_reanalyzed"] == 0

    def test_absolute_paths_are_normalized(self, synthetic_app, start_daemon):
        client = start_daemon(synthetic_app).client()
        client.analyze()
        absolute = str(synthetic_app / "includes" / "detail_only.inc")
        outcome = client.invalidate([absolute])
        assert outcome["changed"] == ["includes/detail_only.inc"]
        assert outcome["invalidated_pages"] == ["detail.php"]

    def test_edit_actually_changes_the_replayed_verdicts(
        self, synthetic_app, start_daemon
    ):
        """Not just counters: the re-analyzed page's new content must be
        reflected while untouched pages replay old results."""
        client = start_daemon(synthetic_app).client()
        before = client.analyze()["document"]
        target = synthetic_app / "includes" / "detail_only.inc"
        target.write_text(
            "<?php $suffix = \" WHERE x = '\" . $_GET['x'] . \"'\"; ?>"
        )
        client.invalidate(["includes/detail_only.inc"])
        after = client.analyze()["document"]

        def page(doc, name):
            return next(
                p for p in doc["pages"] if p["page"].endswith(name)
            )

        assert page(before, "detail.php")["verified"] is True
        assert page(after, "detail.php")["verified"] is False
        assert page(after, "index.php") == page(before, "index.php")


class TestRobustInvalidation:
    def test_path_outside_root_is_ignored_not_fatal(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        client.analyze()
        outcome = client.invalidate(
            ["/etc/passwd.php", "../outside.php", "includes/shared.inc"]
        )
        assert len(outcome["ignored"]) == 2
        assert outcome["changed"] == ["includes/shared.inc"]
        # daemon is still alive and consistent
        assert client.ping()["pong"] is True

    def test_non_resolver_visible_extension_is_ignored(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        client.analyze()
        outcome = client.invalidate(["config.ini"])
        assert outcome["ignored"] == ["config.ini"]
        assert outcome["invalidated_pages"] == []

    def test_deleted_include_invalidates_dependents(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        before = client.analyze()
        (synthetic_app / "includes" / "detail_only.inc").unlink()
        outcome = client.invalidate(["includes/detail_only.inc"])
        assert outcome["deleted"] == ["includes/detail_only.inc"]
        assert outcome["invalidated_pages"] == ["detail.php"]
        after = client.analyze()
        assert after["pages_reanalyzed"] == 1
        assert after["pages_total"] == before["pages_total"]

    def test_deleted_entry_page_disappears_from_results(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        assert client.analyze()["pages_total"] == 3
        (synthetic_app / "standalone.php").unlink()
        client.invalidate(["standalone.php"])
        after = client.analyze()
        assert after["pages_total"] == 2
        assert all(
            not p["page"].endswith("standalone.php")
            for p in after["document"]["pages"]
        )

    def test_added_page_is_picked_up_by_next_analyze(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        assert client.analyze()["pages_total"] == 3
        (synthetic_app / "extra.php").write_text(STANDALONE_PHP)
        client.invalidate(["extra.php"])
        after = client.analyze()
        assert after["pages_total"] == 4
        assert after["pages_reanalyzed"] == 1

    def test_analyze_requested_page_outside_root_is_an_error(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        with pytest.raises(ServerError) as excinfo:
            client.analyze(pages=["../evil.php"])
        assert excinfo.value.code == "invalid-params"
        assert client.ping()["pong"] is True


class TestServerState:
    def test_status_reports_graph_and_memo(self, synthetic_app, start_daemon):
        client = start_daemon(synthetic_app).client()
        client.analyze()
        status = client.status()
        assert status["memoized_pages"] == 3
        assert status["depgraph"]["pages"] == 3
        assert status["depgraph"]["files"] == 5  # 3 pages + 2 includes
        assert status["root"] == str(synthetic_app)

    def test_metrics_counters_prove_incrementality(
        self, synthetic_app, start_daemon
    ):
        client = start_daemon(synthetic_app).client()
        client.analyze()
        client.analyze()
        counters = client.metrics()["perf"]["counters"]
        assert counters["server.requests.analyze"] >= 2
        assert counters["server.pages.replayed"] >= 3

    def test_depgraph_persists_alongside_disk_cache(
        self, synthetic_app, tmp_path, start_daemon
    ):
        cache = tmp_path / "cache"
        harness = start_daemon(synthetic_app, cache_dir=cache)
        harness.client().analyze()
        persisted = json.loads((cache / "depgraph.json").read_text())
        assert persisted["format"] == "sqlciv-depgraph/1"
        assert set(persisted["pages"]) == {
            "index.php", "detail.php", "standalone.php"
        }
        assert (
            "includes/shared.inc"
            in persisted["pages"]["index.php"]["deps"]
        )


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", *argv],
        capture_output=True,
        text=True,
        env=env,
    )


class TestColdRunEquivalence:
    """Server-mode findings vs. a cold CLI run on the corpus app."""

    @pytest.fixture(scope="class")
    def corpus_app(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("server-corpus")
        build_app(root, "eve_activity_tracker")
        return root / "eve_activity_tracker"

    def test_json_and_sarif_byte_identical_to_cold_cli(
        self, corpus_app, tmp_path, start_daemon
    ):
        client = start_daemon(corpus_app).client()
        first = client.analyze(sarif=True)
        # make the daemon replay, then edit one page and go incremental:
        # every configuration must match a fresh cold CLI run byte-for-byte
        replayed = client.analyze(sarif=True)
        touch(corpus_app / "style.php")
        client.invalidate(["style.php"])
        incremental = client.analyze(sarif=True)
        assert incremental["pages_reanalyzed"] == 1
        assert incremental["pages_replayed"] == first["pages_total"] - 1

        cold = run_cli(
            str(corpus_app), "--json", "--sarif", str(tmp_path / "cold.sarif")
        )
        cold_sarif = (tmp_path / "cold.sarif").read_text()
        for label, response in (
            ("first", first), ("replayed", replayed),
            ("incremental", incremental),
        ):
            served_json = json.dumps(response["document"], indent=2) + "\n"
            assert served_json == cold.stdout, f"{label} JSON diverged"
            assert response["sarif"] + "\n" == cold_sarif, (
                f"{label} SARIF diverged"
            )

    def test_client_cli_analyze_exit_code_matches_batch_cli(
        self, corpus_app, start_daemon
    ):
        harness = start_daemon(corpus_app)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.cli", "client",
             "--port", str(harness.port), "analyze"],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        cold = run_cli(str(corpus_app), "--json")
        assert proc.stdout == cold.stdout
        assert proc.returncode == cold.returncode
