"""Protocol round-trip tests: a malformed request must produce a
structured error on the same connection — never a disconnect — and
well-formed requests must validate exactly as documented."""

import json
import socket

import pytest

from repro.server import protocol
from repro.server.protocol import ProtocolError, parse_request


class TestParseRequest:
    def test_valid_request_round_trip(self):
        request = parse_request(
            json.dumps({"id": 7, "op": "analyze", "pages": ["a.php"]})
        )
        assert request == {
            "id": 7, "op": "analyze", "params": {"pages": ["a.php"]}
        }

    def test_params_exclude_envelope_keys(self):
        request = parse_request('{"op": "invalidate", "paths": ["x.php"]}')
        assert request["id"] is None
        assert request["params"] == {"paths": ["x.php"]}

    @pytest.mark.parametrize("line, code", [
        ("{not json", protocol.MALFORMED_JSON),
        ("[1, 2]", protocol.INVALID_REQUEST),
        ('"just a string"', protocol.INVALID_REQUEST),
        ('{"id": 1}', protocol.INVALID_REQUEST),
        ('{"op": 42}', protocol.INVALID_REQUEST),
        ('{"op": "frobnicate"}', protocol.UNKNOWN_OP),
        ('{"op": "invalidate"}', protocol.INVALID_PARAMS),
        ('{"op": "invalidate", "paths": "x.php"}', protocol.INVALID_PARAMS),
        ('{"op": "invalidate", "paths": [1]}', protocol.INVALID_PARAMS),
        ('{"op": "analyze", "pages": "a.php"}', protocol.INVALID_PARAMS),
        ('{"op": "analyze", "audit": "yes"}', protocol.INVALID_PARAMS),
        ('{"op": "analyze", "bogus": 1}', protocol.INVALID_PARAMS),
        ('{"op": "ping", "extra": true}', protocol.INVALID_PARAMS),
        ('{"op": "ping", "id": {"a": 1}}', protocol.INVALID_REQUEST),
    ])
    def test_invalid_requests_raise_typed_errors(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(line)
        assert excinfo.value.code == code

    def test_error_carries_request_id_when_recoverable(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request('{"id": "req-9", "op": "nope"}')
        assert excinfo.value.request_id == "req-9"

    def test_bytes_input_accepted(self):
        assert parse_request(b'{"op": "ping"}')["op"] == "ping"

    def test_encode_is_one_line(self):
        wire = protocol.encode({"op": "ping", "id": 1})
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1


class TestWireErrorHandling:
    """Malformed traffic against a live daemon: structured error, same
    connection keeps working."""

    @pytest.fixture
    def app(self, tmp_path):
        (tmp_path / "index.php").write_text(
            "<?php mysql_query('SELECT 1'); ?>"
        )
        return tmp_path

    def _raw_exchange(self, port, lines):
        with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
            stream = sock.makefile("rwb")
            responses = []
            for line in lines:
                stream.write(line)
                stream.flush()
                responses.append(json.loads(stream.readline()))
            return responses

    def test_malformed_then_valid_on_same_connection(self, app, start_daemon):
        harness = start_daemon(app)
        garbage_then_ping = [b"this is not json\n", b'{"op": "ping"}\n']
        error, pong = self._raw_exchange(harness.port, garbage_then_ping)
        assert error["ok"] is False
        assert error["id"] is None
        assert error["error"]["code"] == protocol.MALFORMED_JSON
        assert pong["ok"] is True
        assert pong["result"]["pong"] is True

    def test_unknown_op_echoes_id(self, app, start_daemon):
        harness = start_daemon(app)
        (response,) = self._raw_exchange(
            harness.port, [b'{"id": 3, "op": "explode"}\n']
        )
        assert response == {
            "id": 3,
            "ok": False,
            "error": response["error"],
        }
        assert response["error"]["code"] == protocol.UNKNOWN_OP

    def test_blank_lines_are_skipped(self, app, start_daemon):
        harness = start_daemon(app)
        (pong,) = self._raw_exchange(
            harness.port, [b"\n\n" + b'{"op": "ping"}\n']
        )
        assert pong["ok"] is True
