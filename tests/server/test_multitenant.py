"""Multi-tenant daemon tests.

The contracts under test:

* **isolation** — each resident project has its own memo, depgraph, and
  invalidation epoch: invalidating a file in one project never evicts
  (or re-analyzes) pages of another;
* **equivalence** — every project's ``analyze`` document matches a cold
  CLI run over that project's tree, including under concurrent clients
  addressing different projects;
* **registry hygiene** — name collisions are refused, the startup
  project cannot be unloaded, and unknown project names are structured
  errors rather than daemon crashes.
"""

import threading

import pytest

from repro.server.client import ServerError

SHARED_INC = "<?php $prefix = 'SELECT name FROM users'; ?>"
INDEX_PHP = (
    "<?php include 'includes/shared.inc';\n"
    "mysql_query($prefix . \" WHERE id = '\" . $_GET['id'] . \"'\"); ?>"
)
SAFE_PHP = "<?php mysql_query('SELECT 1'); ?>"


def make_app(base, name, *, safe=False):
    app = base / name
    includes = app / "includes"
    includes.mkdir(parents=True)
    (includes / "shared.inc").write_text(SHARED_INC)
    (app / "index.php").write_text(SAFE_PHP if safe else INDEX_PHP)
    (app / "extra.php").write_text(SAFE_PHP)
    return app


def touch(path):
    path.write_text(path.read_text() + "\n")


class TestProjectRegistry:
    def test_load_list_unload(self, tmp_path, start_daemon):
        alpha = make_app(tmp_path, "alpha")
        beta = make_app(tmp_path, "beta", safe=True)
        client = start_daemon(alpha).client()

        loaded = client.load_project(beta)
        assert loaded["loaded"] is True
        assert loaded["project"]["name"] == "beta"

        listing = client.projects()
        assert listing["default"] == "alpha"
        assert [p["name"] for p in listing["projects"]] == ["alpha", "beta"]

        unloaded = client.unload_project("beta")
        assert unloaded["unloaded"] is True
        listing = client.projects()
        assert [p["name"] for p in listing["projects"]] == ["alpha"]

    def test_reloading_same_root_is_idempotent(self, tmp_path, start_daemon):
        alpha = make_app(tmp_path, "alpha")
        beta = make_app(tmp_path, "beta", safe=True)
        client = start_daemon(alpha).client()
        assert client.load_project(beta)["loaded"] is True
        again = client.load_project(beta)
        assert again["loaded"] is False
        assert again["project"]["name"] == "beta"

    def test_name_collision_is_refused(self, tmp_path, start_daemon):
        alpha = make_app(tmp_path, "alpha")
        other = make_app(tmp_path / "elsewhere", "alpha", safe=True)
        client = start_daemon(alpha).client()
        with pytest.raises(ServerError) as excinfo:
            client.load_project(other)
        assert excinfo.value.code == "invalid-params"

    def test_default_project_cannot_be_unloaded(self, tmp_path, start_daemon):
        alpha = make_app(tmp_path, "alpha")
        client = start_daemon(alpha).client()
        with pytest.raises(ServerError) as excinfo:
            client.unload_project("alpha")
        assert excinfo.value.code == "invalid-params"

    def test_unknown_project_is_a_structured_error(
        self, tmp_path, start_daemon
    ):
        alpha = make_app(tmp_path, "alpha")
        client = start_daemon(alpha).client()
        with pytest.raises(ServerError) as excinfo:
            client.analyze(project="nope")
        assert excinfo.value.code == "invalid-params"
        # the daemon survives the bad request
        assert client.ping()["pong"] is True

    @pytest.mark.parametrize(
        "bad_name",
        ["../escape", "a/b", "a\\b", "..", ".", "with space"],
    )
    def test_non_slug_project_names_are_refused(
        self, tmp_path, bad_name, start_daemon
    ):
        # names become cache-directory components; a separator or '..'
        # would let one tenant write into (or read) another's namespace
        alpha = make_app(tmp_path, "alpha")
        beta = make_app(tmp_path, "beta", safe=True)
        client = start_daemon(alpha).client()
        with pytest.raises(ServerError) as excinfo:
            client.load_project(beta, name=bad_name)
        assert excinfo.value.code == "invalid-params"
        assert [p["name"] for p in client.projects()["projects"]] == ["alpha"]


class TestTenantIsolation:
    def test_documents_are_per_project(self, tmp_path, start_daemon):
        alpha = make_app(tmp_path, "alpha")           # vulnerable
        beta = make_app(tmp_path, "beta", safe=True)  # verified
        client = start_daemon(alpha).client()
        client.load_project(beta)

        alpha_doc = client.analyze()["document"]
        beta_doc = client.analyze(project="beta")["document"]
        assert alpha_doc["verified"] is False
        assert beta_doc["verified"] is True
        assert alpha_doc["root"] != beta_doc["root"]

    def test_invalidation_does_not_cross_projects(
        self, tmp_path, start_daemon
    ):
        alpha = make_app(tmp_path, "alpha")
        beta = make_app(tmp_path, "beta", safe=True)
        client = start_daemon(alpha).client()
        client.load_project(beta)
        client.analyze()
        client.analyze(project="beta")

        touch(alpha / "includes" / "shared.inc")
        outcome = client.invalidate(["includes/shared.inc"])
        assert outcome["invalidated_pages"] == ["index.php"]

        # beta's memo is untouched: everything replays
        after_beta = client.analyze(project="beta")
        assert after_beta["pages_reanalyzed"] == 0
        # alpha re-analyzes exactly the invalidated page
        after_alpha = client.analyze()
        assert after_alpha["pages_reanalyzed"] == 1

    def test_epochs_advance_independently(self, tmp_path, start_daemon):
        alpha = make_app(tmp_path, "alpha")
        beta = make_app(tmp_path, "beta", safe=True)
        harness = start_daemon(alpha)
        client = harness.client()
        client.load_project(beta)
        client.analyze()
        client.analyze(project="beta")

        touch(alpha / "index.php")
        client.invalidate(["index.php"])
        listing = {
            p["name"]: p for p in client.projects()["projects"]
        }
        assert listing["alpha"]["epoch"] == 1
        assert listing["beta"]["epoch"] == 0

    def test_status_reports_all_tenants(self, tmp_path, start_daemon):
        alpha = make_app(tmp_path, "alpha")
        beta = make_app(tmp_path, "beta", safe=True)
        client = start_daemon(alpha).client()
        client.load_project(beta)
        client.analyze()
        client.analyze(project="beta")
        status = client.status()
        assert status["resident"]["resident.projects"] == 2
        assert status["resident"]["resident.pages"] == 4
        names = [p["name"] for p in status["projects"]]
        assert names == ["alpha", "beta"]


class TestConcurrentClients:
    def test_interleaved_clients_match_single_client_documents(
        self, tmp_path, start_daemon
    ):
        alpha = make_app(tmp_path, "alpha")
        beta = make_app(tmp_path, "beta", safe=True)
        harness = start_daemon(alpha)
        setup = harness.client()
        setup.load_project(beta)
        expected = {
            None: setup.analyze()["document"],
            "beta": setup.analyze(project="beta")["document"],
        }

        failures = []

        def hammer(project):
            try:
                with harness.client() as client:
                    for _ in range(5):
                        document = client.analyze(project=project)["document"]
                        if document != expected[project]:
                            failures.append(
                                f"{project or 'default'}: diverged"
                            )
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(f"{project or 'default'}: {exc!r}")

        threads = [
            threading.Thread(target=hammer, args=(project,))
            for project in (None, "beta", None, "beta")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures
