"""Dependency-graph correctness: the invalidation rules of
DESIGN.md §5e, plus persistence round-trips."""

from repro.analysis.diskcache import ANALYZER_CACHE_VERSION
from repro.server.depgraph import DependencyGraph


def build_sample() -> DependencyGraph:
    graph = DependencyGraph()
    graph.record("index.php", ["includes/shared.inc"], False)
    graph.record(
        "detail.php",
        ["includes/shared.inc", "includes/detail_only.inc"],
        False,
    )
    graph.record("standalone.php", [], False)
    graph.record("portal.php", ["includes/shared.inc"], True)  # dynamic include
    return graph


class TestRecording:
    def test_closure_always_contains_the_page_itself(self):
        graph = build_sample()
        assert "standalone.php" in graph.deps_of("standalone.php")
        assert graph.dependents("index.php") == {"index.php"}

    def test_dependents_reverse_index(self):
        graph = build_sample()
        assert graph.dependents("includes/shared.inc") == {
            "index.php", "detail.php", "portal.php"
        }
        assert graph.dependents("includes/detail_only.inc") == {"detail.php"}

    def test_rerecord_replaces_old_closure(self):
        graph = build_sample()
        graph.record("detail.php", ["includes/shared.inc"], False)
        assert graph.dependents("includes/detail_only.inc") == set()
        assert not graph.knows_file("includes/detail_only.inc")

    def test_forget_removes_every_trace(self):
        graph = build_sample()
        graph.forget("portal.php")
        assert "portal.php" not in graph.pages()
        assert graph.layout_sensitive_pages() == set()
        assert graph.dependents("includes/shared.inc") == {
            "index.php", "detail.php"
        }


class TestInvalidation:
    def test_edit_of_shared_include_hits_exactly_its_dependents(self):
        graph = build_sample()
        affected = graph.affected_by(changed=["includes/shared.inc"])
        assert affected == {"index.php", "detail.php", "portal.php"}

    def test_edit_of_leaf_include_hits_one_page(self):
        graph = build_sample()
        assert graph.affected_by(changed=["includes/detail_only.inc"]) == {
            "detail.php"
        }

    def test_edit_of_unknown_file_hits_nothing(self):
        graph = build_sample()
        assert graph.affected_by(changed=["notes.html"]) == set()

    def test_deletion_hits_dependents_and_layout_sensitive_pages(self):
        graph = build_sample()
        affected = graph.affected_by(deleted=["includes/detail_only.inc"])
        assert affected == {"detail.php", "portal.php"}

    def test_addition_hits_layout_sensitive_pages(self):
        graph = build_sample()
        assert graph.affected_by(added=["includes/new.inc"]) == {"portal.php"}

    def test_addition_with_colliding_basename_hits_name_losers(self):
        # include-name resolution is first-match-wins over sorted paths:
        # adding another shared.inc can re-route the name "shared.inc",
        # so the dependents of the incumbent must re-analyze too
        graph = build_sample()
        affected = graph.affected_by(added=["other/shared.inc"])
        assert affected == {
            "index.php", "detail.php", "portal.php"  # portal: layout too
        }

    def test_batched_events_union(self):
        graph = build_sample()
        affected = graph.affected_by(
            changed=["includes/detail_only.inc"], deleted=["standalone.php"]
        )
        assert affected == {"detail.php", "standalone.php", "portal.php"}


class TestPersistence:
    def test_round_trip(self, tmp_path):
        graph = build_sample()
        target = tmp_path / "depgraph.json"
        graph.save(target, root="/srv/app")
        loaded = DependencyGraph.load(target, root="/srv/app")
        assert loaded is not None
        assert loaded.pages() == graph.pages()
        assert loaded.deps_of("detail.php") == graph.deps_of("detail.php")
        assert loaded.layout_sensitive_pages() == {"portal.php"}

    def test_load_rejects_other_root(self, tmp_path):
        graph = build_sample()
        target = tmp_path / "depgraph.json"
        graph.save(target, root="/srv/app")
        assert DependencyGraph.load(target, root="/srv/other") is None

    def test_load_rejects_stale_cache_version(self, tmp_path):
        graph = build_sample()
        target = tmp_path / "depgraph.json"
        graph.save(target, root="/srv/app")
        payload = target.read_text().replace(
            f'"version": "{ANALYZER_CACHE_VERSION}"', '"version": "0"'
        )
        target.write_text(payload)
        assert DependencyGraph.load(target, root="/srv/app") is None

    def test_load_survives_garbage(self, tmp_path):
        target = tmp_path / "depgraph.json"
        target.write_text("{ not json")
        assert DependencyGraph.load(target) is None
        assert DependencyGraph.load(tmp_path / "missing.json") is None
