"""Tests for the Pixy-style taint-only baseline, including its designed
blind spots relative to the grammar-based analysis."""

import textwrap

import pytest

from repro.baselines.taint_only import TaintOnlyAnalysis


@pytest.fixture
def taint(tmp_path):
    def run(source, **other_files):
        (tmp_path / "page.php").write_text(textwrap.dedent(source))
        for name, content in other_files.items():
            (tmp_path / name).write_text(textwrap.dedent(content))
        return TaintOnlyAnalysis(tmp_path).analyze_file("page.php")

    return run


class TestBasicDetection:
    def test_raw_get_flagged(self, taint):
        result = taint(
            "<?php mysql_query(\"SELECT * FROM t WHERE a='{$_GET['a']}'\");"
        )
        assert len(result.findings) == 1
        assert result.findings[0].category == "direct"

    def test_constant_query_clean(self, taint):
        result = taint("<?php mysql_query('SELECT 1 FROM t');")
        assert not result.findings

    def test_sanitizer_whitelist(self, taint):
        result = taint(
            """\
            <?php
            $a = addslashes($_GET['a']);
            mysql_query("SELECT * FROM t WHERE a='$a'");
            """
        )
        assert not result.findings

    def test_flow_through_concat(self, taint):
        result = taint(
            """\
            <?php
            $q = 'SELECT * FROM t WHERE a=';
            $q .= $_GET['a'];
            mysql_query($q);
            """
        )
        assert result.findings

    def test_indirect_fetch(self, taint):
        result = taint(
            """\
            <?php
            $row = mysql_fetch_assoc($r);
            mysql_query("SELECT * FROM t WHERE a='{$row['x']}'");
            """
        )
        assert result.findings
        assert result.findings[0].category == "indirect"

    def test_user_function_summary(self, taint):
        result = taint(
            """\
            <?php
            function passthru_val($x) { return $x; }
            mysql_query('SELECT ' . passthru_val($_GET['c']) . ' FROM t');
            """
        )
        assert result.findings

    def test_branch_join(self, taint):
        result = taint(
            """\
            <?php
            if ($c) { $x = $_GET['x']; } else { $x = 'safe'; }
            mysql_query("SELECT * FROM t WHERE a='$x'");
            """
        )
        assert result.findings


class TestDesignedBlindSpots:
    """The precision gaps the paper's §1.1 describes — these are
    *expected* baseline behaviours the comparison benchmark measures."""

    def test_false_negative_escaped_numeric_context(self, taint):
        # escape_quotes output in a numeric context: REAL SQLCIV that the
        # binary sanitizer model cannot see.
        result = taint(
            """\
            <?php
            $id = addslashes($_GET['id']);
            mysql_query("SELECT * FROM t WHERE id=$id");
            """
        )
        assert not result.findings  # baseline misses it (by design)

    def test_false_positive_anchored_regex(self, taint):
        # a tight anchored regex check: actually safe, but the baseline
        # cannot model conditionals, so it still reports.
        result = taint(
            """\
            <?php
            $id = $_GET['id'];
            if (!preg_match('/^[0-9]+$/', $id)) { exit; }
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        assert result.findings  # baseline false positive (by design)

    def test_false_negative_unanchored_regex_not_applicable(self, taint):
        # the baseline also reports the unanchored version (same shape),
        # so on Figure 2 it "detects" the bug but for the wrong reason —
        # it cannot distinguish it from the anchored-safe variant.
        result = taint(
            """\
            <?php
            $id = $_GET['id'];
            if (!eregi('[0-9]+', $id)) { exit; }
            mysql_query("SELECT * FROM t WHERE id='$id'");
            """
        )
        assert result.findings
