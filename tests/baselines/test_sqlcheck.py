"""Tests for the SQLCheck-style runtime baseline (the paper's [25])."""

import pytest

from repro.baselines.sqlcheck import (
    MARK_CLOSE,
    MARK_OPEN,
    build_query,
    check_query,
    mark,
    strip_marks,
)


class TestMarking:
    def test_mark_wraps(self):
        assert mark("x") == f"{MARK_OPEN}x{MARK_CLOSE}"

    def test_strip_single(self):
        query, spans = strip_marks(f"SELECT {MARK_OPEN}1{MARK_CLOSE} FROM t")
        assert query == "SELECT 1 FROM t"
        assert spans == [(7, 8)]

    def test_strip_multiple(self):
        marked = build_query("SELECT * FROM t WHERE a='{}' AND b='{}'", "x", "y")
        query, spans = strip_marks(marked)
        assert query == "SELECT * FROM t WHERE a='x' AND b='y'"
        assert len(spans) == 2

    def test_nested_marks_outermost_wins(self):
        marked = f"{MARK_OPEN}a{MARK_OPEN}b{MARK_CLOSE}c{MARK_CLOSE}"
        query, spans = strip_marks(marked)
        assert query == "abc"
        assert spans == [(0, 3)]

    def test_unbalanced_raises(self):
        with pytest.raises(ValueError):
            strip_marks(MARK_OPEN + "oops")
        with pytest.raises(ValueError):
            strip_marks("oops" + MARK_CLOSE)


class TestRuntimeCheck:
    def test_benign_value_passes(self):
        marked = build_query("SELECT * FROM t WHERE id='{}'", "42")
        assert check_query(marked).safe

    def test_figure2_attack_blocked(self):
        marked = build_query(
            "SELECT * FROM `unp_user` WHERE userid='{}'",
            "1'; DROP TABLE unp_user; --",
        )
        result = check_query(marked)
        assert not result.safe
        assert result.offending is not None

    def test_tautology_blocked(self):
        marked = build_query("SELECT * FROM t WHERE id={}", "1 OR 1=1")
        assert not check_query(marked).safe

    def test_whole_expression_allowed(self):
        # syntactic confinement permits input that IS a complete node
        marked = build_query("SELECT * FROM t WHERE {}", "a = 1")
        assert check_query(marked).safe

    def test_numeric_context(self):
        assert check_query(build_query("SELECT * FROM t WHERE id={}", "7")).safe
        assert not check_query(
            build_query("SELECT * FROM t WHERE id={}", "7; DELETE FROM t")
        ).safe

    def test_escaped_quote_stays_inside(self):
        marked = build_query("SELECT * FROM t WHERE a='{}'", "it\\'s")
        assert check_query(marked).safe

    def test_no_untrusted_input(self):
        result = check_query("SELECT 1 FROM t")
        assert result.safe
        assert result.spans == []
