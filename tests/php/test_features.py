"""Tests for the soundness-audit construct inventory."""


from repro.php import features
from repro.php.features import ESCAPED, MODELED, WIDENED, inventory_file
from repro.php.parser import parse


def inventory(source, known=frozenset()):
    return inventory_file(parse(source, "page.php"), known)


def kinds(feats, classification=None):
    return [
        f.kind
        for f in feats
        if classification is None or f.classification == classification
    ]


class TestEscapes:
    def test_eval_is_escaped(self):
        feats = inventory("<?php eval($code);")
        (feat,) = features.escapes(feats)
        assert feat.kind == "eval"
        assert feat.name == "eval"
        assert feat.line == 1

    def test_create_function_is_escaped(self):
        feats = inventory("<?php $f = create_function('$a', 'return $a;');")
        assert "eval" in kinds(features.escapes(feats))

    def test_variable_variable_is_escaped(self):
        feats = inventory("<?php $$name = $_GET['v'];")
        assert "variable-variable" in kinds(features.escapes(feats))

    def test_brace_variable_variable_is_escaped(self):
        feats = inventory("<?php echo ${'prefix_' . $x};")
        assert "variable-variable" in kinds(features.escapes(feats))

    def test_dynamic_call_through_variable_is_escaped(self):
        feats = inventory("<?php $f = 'handler'; $f($input);")
        assert "dynamic-call" in kinds(features.escapes(feats))

    def test_call_user_func_is_escaped(self):
        feats = inventory("<?php call_user_func($cb, $x);")
        assert "dynamic-call" in kinds(features.escapes(feats))

    def test_extract_is_escaped(self):
        feats = inventory("<?php extract($_REQUEST);")
        assert "extract" in kinds(features.escapes(feats))

    def test_preg_replace_e_modifier_is_escaped(self):
        feats = inventory(
            "<?php preg_replace('/(\\w+)/e', 'strtoupper($1)', $s);"
        )
        assert "preg-replace-eval" in kinds(features.escapes(feats))

    def test_preg_replace_without_e_is_not_escaped(self):
        feats = inventory("<?php preg_replace('/\\w+/', 'x', $s);")
        assert "preg-replace-eval" not in kinds(feats)

    def test_unknown_builtin_is_escaped(self):
        feats = inventory("<?php some_exotic_builtin($x);")
        (feat,) = features.escapes(feats)
        assert feat.kind == "unknown-builtin"
        assert feat.name == "some_exotic_builtin"

    def test_dynamic_include_is_escaped_statically(self):
        feats = inventory("<?php include 'lang_' . $lang . '.php';")
        assert "dynamic-include" in kinds(features.escapes(feats))


class TestModeled:
    def test_fully_modeled_page_has_zero_escapes(self):
        feats = inventory(
            """<?php
            include 'db.php';
            $id = mysql_real_escape_string($_GET['id']);
            $q = "SELECT * FROM t WHERE id = '" . $id . "'";
            mysql_query($q);
            echo htmlspecialchars($id);
            """
        )
        assert features.escapes(feats) == []

    def test_literal_include_is_modeled(self):
        feats = inventory("<?php require_once 'config.php';")
        assert kinds(feats) == ["include"]
        assert feats[0].classification == MODELED

    def test_known_user_function_is_modeled(self):
        feats = inventory("<?php sanitize($x);", known=frozenset({"sanitize"}))
        assert feats[0].classification == MODELED
        assert feats[0].kind == "user-function"

    def test_unknown_user_function_is_escaped_without_known_set(self):
        feats = inventory("<?php sanitize($x);")
        assert feats[0].classification == ESCAPED

    def test_sink_and_source_are_modeled(self):
        feats = inventory(
            "<?php $r = mysql_query('SELECT 1'); $row = mysql_fetch_assoc($r);"
        )
        assert [f.classification for f in feats] == [MODELED, MODELED]
        assert sorted(kinds(feats)) == ["sink", "source"]

    def test_literal_predicate_is_modeled(self):
        feats = inventory("<?php if (preg_match('/^\\d+$/', $x)) { $y = 1; }")
        assert feats[0].kind == "predicate"
        assert feats[0].classification == MODELED


class TestWidened:
    def test_widening_builtin_is_widened(self):
        feats = inventory("<?php $x = urldecode($_GET['q']);")
        (feat,) = features.widenings(feats)
        assert feat.kind == "widened-builtin"
        assert feat.name == "urldecode"

    def test_dynamic_predicate_pattern_is_widened(self):
        feats = inventory("<?php if (preg_match($pat, $x)) { $y = 1; }")
        assert feats[0].kind == "predicate"
        assert feats[0].classification == WIDENED


class TestFeatureRecords:
    def test_lines_are_recorded(self):
        feats = inventory("<?php\n$a = 1;\neval($x);\n")
        (feat,) = features.escapes(feats)
        assert feat.line == 3
        assert feat.file == "page.php"

    def test_pattern_flag_extraction(self):
        assert features._pattern_flags("/abc/ie") == "ie"
        assert features._pattern_flags("{abc}e") == "e"
        assert features._pattern_flags("/abc/") == ""
        assert features._pattern_flags("") == ""
