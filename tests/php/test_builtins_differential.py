"""Differential tests: builtin transducer models vs. reference
implementations of the PHP semantics (hypothesis-driven).

For every exactly-modeled function we implement the PHP behaviour in
plain Python and check, on random inputs, that the concrete output is
derivable from the model's output grammar — the per-function instance of
the analysis' soundness contract ("the model over-approximates the
function").  For the deterministic FST models we additionally check
*exactness* (the FST output equals the reference output).
"""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.absdom import GrammarBuilder
from repro.lang.charset import CharSet
from repro.lang.fst import FST
from repro.php import ast, builtins


# ---------------------------------------------------------------------------
# reference implementations of PHP semantics
# ---------------------------------------------------------------------------


# addslashes/stripslashes references live in builtins itself now (the
# differential oracle's CONCRETE registry) — real PHP semantics where
# ``\0`` escapes to backslash-zero and unescapes back to NUL
php_addslashes = builtins.php_addslashes
php_stripslashes = builtins.php_stripslashes


def php_htmlspecialchars(value: str, ent_quotes: bool = False) -> str:
    value = value.replace("&", "&amp;")
    value = value.replace("<", "&lt;").replace(">", "&gt;")
    value = value.replace('"', "&quot;")
    if ent_quotes:
        value = value.replace("'", "&#039;")
    return value


def php_nl2br(value: str) -> str:
    return value.replace("\n", "<br />\n")


def php_strtr(value: str, frm: str, to: str) -> str:
    table = {f: t for f, t in zip(frm, to)}
    return "".join(table.get(c, c) for c in value)


TEXTS = st.text(alphabet="ab'\"\\<>&\n x0", max_size=14)


# ---------------------------------------------------------------------------
# FST exactness
# ---------------------------------------------------------------------------


class TestFstExactness:
    @given(TEXTS)
    @settings(max_examples=150, deadline=None)
    def test_addslashes(self, text):
        fst = builtins._addslashes_fst()
        assert fst.apply_once(text) == php_addslashes(text)

    @given(TEXTS)
    @settings(max_examples=150, deadline=None)
    def test_stripslashes(self, text):
        fst = builtins._stripslashes_fst()
        assert fst.apply_once(text) == php_stripslashes(text)

    @given(TEXTS)
    @settings(max_examples=150, deadline=None)
    def test_htmlspecialchars_default(self, text):
        fst = builtins._htmlspecialchars_fst("ENT_COMPAT")
        assert fst.apply_once(text) == php_htmlspecialchars(text)

    @given(TEXTS)
    @settings(max_examples=150, deadline=None)
    def test_htmlspecialchars_ent_quotes(self, text):
        fst = builtins._htmlspecialchars_fst("ENT_QUOTES")
        assert fst.apply_once(text) == php_htmlspecialchars(text, ent_quotes=True)

    @given(TEXTS)
    @settings(max_examples=100, deadline=None)
    def test_nl2br(self, text):
        fst = FST.char_map([(CharSet.of("\n"), ("<br />\n",))])
        assert fst.apply_once(text) == php_nl2br(text)

    @given(TEXTS)
    @settings(max_examples=100, deadline=None)
    def test_addslashes_then_stripslashes_roundtrip(self, text):
        add = builtins._addslashes_fst()
        strip = builtins._stripslashes_fst()
        assert strip.apply_once(add.apply_once(text)) == text


# ---------------------------------------------------------------------------
# model-output grammars over-approximate concrete outputs
# ---------------------------------------------------------------------------


def model_language_contains(name, literal_args, concrete_output):
    builder = GrammarBuilder()
    nodes = [ast.Literal(value=arg) for arg in literal_args]
    values = [builder.literal(arg) for arg in literal_args]
    result = builtins.model_call(name, builder, values, nodes)
    return builder.grammar.generates(builder.to_str(result).nt, concrete_output)


class TestModelSoundness:
    @given(TEXTS)
    @settings(max_examples=60, deadline=None)
    def test_addslashes_model(self, text):
        assert model_language_contains("addslashes", [text], php_addslashes(text))

    @given(TEXTS)
    @settings(max_examples=60, deadline=None)
    def test_strtolower_model(self, text):
        assert model_language_contains("strtolower", [text], text.lower())

    @given(st.text(alphabet="ab,x", max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_explode_model_contains_all_pieces(self, text):
        builder = GrammarBuilder()
        nodes = [ast.Literal(value=","), ast.Var(name="s")]
        values = [builder.literal(","), builder.literal(text)]
        result = builtins.model_call("explode", builder, values, nodes)
        for piece in text.split(","):
            assert builder.grammar.generates(result.default.nt, piece), (
                text,
                piece,
            )

    @given(st.text(alphabet="ab'1x ", max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_intval_model(self, text):
        match = re.match(r"\s*[+-]?[0-9]+", text)
        concrete = str(int(match.group())) if match else "0"
        assert model_language_contains("intval", [text], concrete)

    @given(st.text(alphabet="abc<>&' ", max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_htmlspecialchars_model(self, text):
        assert model_language_contains(
            "htmlspecialchars", [text], php_htmlspecialchars(text)
        )

    @given(st.text(alphabet="ab\n", max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_nl2br_model(self, text):
        assert model_language_contains("nl2br", [text], php_nl2br(text))

    @pytest.mark.parametrize(
        "subject,frm,to",
        [("abcabc", "ac", "xz"), ("hello", "l", "L"), ("", "a", "b")],
    )
    def test_strtr_model(self, subject, frm, to):
        builder = GrammarBuilder()
        nodes = [
            ast.Var(name="s"),
            ast.Literal(value=frm),
            ast.Literal(value=to),
        ]
        values = [builder.literal(subject), builder.literal(frm), builder.literal(to)]
        result = builtins.model_call("strtr", builder, values, nodes)
        assert builder.grammar.generates(
            builder.to_str(result).nt, php_strtr(subject, frm, to)
        )

    @given(st.text(alphabet="ab1 '", max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_sprintf_s_model(self, text):
        builder = GrammarBuilder()
        nodes = [ast.Literal(value="v=%s!"), ast.Var(name="x")]
        values = [builder.literal("v=%s!"), builder.literal(text)]
        result = builtins.model_call("sprintf", builder, values, nodes)
        assert builder.grammar.generates(builder.to_str(result).nt, f"v={text}!")
