"""Tests for the PHP parser, including the paper's Figure 2 verbatim."""

import pytest

from repro.php import ast
from repro.php.parser import PhpParseError, parse


def parse_stmts(code):
    return parse(f"<?php {code}").body.statements


def parse_expr(code):
    (stmt,) = parse_stmts(code + ";")
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


class TestExpressions:
    def test_assignment(self):
        expr = parse_expr("$x = 1")
        assert isinstance(expr, ast.Assign)
        assert expr.target.name == "x"
        assert expr.value.value == 1

    def test_concat_assignment(self):
        expr = parse_expr("$q .= 'a'")
        assert expr.op == ".="

    def test_concat_chain(self):
        expr = parse_expr("'a' . $b . 'c'")
        assert isinstance(expr, ast.BinOp) and expr.op == "."
        assert isinstance(expr.left, ast.BinOp)

    def test_precedence_concat_vs_comparison(self):
        expr = parse_expr("$a . 'x' == $b")
        assert expr.op == "=="
        assert expr.left.op == "."

    def test_ternary(self):
        expr = parse_expr("$a ? $b : $c")
        assert isinstance(expr, ast.Ternary)
        assert expr.if_true is not None

    def test_short_ternary(self):
        expr = parse_expr("$a ?: $c")
        assert isinstance(expr, ast.Ternary)
        assert expr.if_true is None

    def test_assignment_in_ternary_branches(self):
        expr = parse_expr("isset($_GET['u']) ? $u = $_GET['u'] : $u = ''")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.condition, ast.IssetExpr)
        assert isinstance(expr.if_true, ast.Assign)
        assert isinstance(expr.if_false, ast.Assign)

    def test_array_dim(self):
        expr = parse_expr("$_GET['userid']")
        assert isinstance(expr, ast.ArrayDim)
        assert expr.base.name == "_GET"
        assert expr.index.value == "userid"

    def test_array_push(self):
        expr = parse_expr("$a[] = 1")
        assert isinstance(expr.target, ast.ArrayDim)
        assert expr.target.index is None

    def test_method_call(self):
        expr = parse_expr("$DB->query($sql)")
        assert isinstance(expr, ast.MethodCall)
        assert expr.name == "query"
        assert expr.obj.name == "DB"

    def test_prop_access(self):
        expr = parse_expr("$user->name")
        assert isinstance(expr, ast.Prop)

    def test_function_call(self):
        expr = parse_expr("eregi('[0-9]+', $userid)")
        assert isinstance(expr, ast.Call)
        assert expr.name == "eregi"
        assert len(expr.args) == 2

    def test_nested_calls(self):
        expr = parse_expr("addslashes(trim($x))")
        assert expr.args[0].name == "trim"

    def test_negation(self):
        expr = parse_expr("!eregi('a', $b)")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "!"

    def test_comparison_ops(self):
        for op in ("==", "!=", "===", "!==", "<", ">", "<=", ">="):
            expr = parse_expr(f"$a {op} $b")
            assert expr.op == op

    def test_logical_keywords(self):
        expr = parse_expr("$a or die('x')")
        assert expr.op == "||"
        assert expr.right.name == "exit"

    def test_cast(self):
        expr = parse_expr("(int)$x")
        assert isinstance(expr, ast.Cast) and expr.kind == "int"

    def test_parens_not_cast(self):
        expr = parse_expr("($x)")
        assert isinstance(expr, ast.Var)

    def test_suppress(self):
        expr = parse_expr("@mysql_query($q)")
        assert isinstance(expr, ast.Suppress)

    def test_increment(self):
        expr = parse_expr("$i++")
        assert isinstance(expr, ast.Assign) and expr.op == "+="

    def test_array_literal(self):
        expr = parse_expr("array('a' => 1, 2)")
        assert isinstance(expr, ast.ArrayLit)
        assert expr.items[0][0].value == "a"
        assert expr.items[1][0] is None

    def test_new(self):
        expr = parse_expr("new Database($host)")
        assert isinstance(expr, ast.New)
        assert expr.class_name == "Database"

    def test_static_call(self):
        expr = parse_expr("DB::query($x)")
        assert isinstance(expr, ast.StaticCall)

    def test_constants(self):
        assert parse_expr("true").value is True
        assert parse_expr("null").value is None
        assert isinstance(parse_expr("MY_CONST"), ast.ConstFetch)


class TestInterpolation:
    def test_plain_string(self):
        expr = parse_expr('"hello"')
        assert isinstance(expr, ast.Literal)
        assert expr.value == "hello"

    def test_simple_var(self):
        expr = parse_expr('"id=$userid!"')
        assert isinstance(expr, ast.Interp)
        kinds = [type(p).__name__ for p in expr.parts]
        assert kinds == ["Literal", "Var", "Literal"]
        assert expr.parts[0].value == "id="
        assert expr.parts[2].value == "!"

    def test_array_access(self):
        expr = parse_expr('"v=$row[name]"')
        dim = expr.parts[1]
        assert isinstance(dim, ast.ArrayDim)
        assert dim.index.value == "name"

    def test_prop_access(self):
        expr = parse_expr('"n=$user->name"')
        assert isinstance(expr.parts[1], ast.Prop)

    def test_complex_braces(self):
        expr = parse_expr('"v={$row[\'a\']}end"')
        assert expr.parts[0].value == "v="
        assert isinstance(expr.parts[1], ast.ArrayDim)
        assert expr.parts[1].index.value == "a"
        assert expr.parts[2].value == "end"

    def test_escapes(self):
        expr = parse_expr(r'"a\n\t\$x\""')
        assert expr.value == 'a\n\t$x"'

    def test_escaped_dollar_not_interpolated(self):
        expr = parse_expr(r'"\$notvar"')
        assert isinstance(expr, ast.Literal)


class TestStatements:
    def test_if_elseif_else(self):
        (stmt,) = parse_stmts(
            "if ($a) { echo 1; } elseif ($b) { echo 2; } else { echo 3; }"
        )
        assert isinstance(stmt, ast.If)
        assert len(stmt.elifs) == 1
        assert stmt.orelse is not None

    def test_else_if_two_words(self):
        (stmt,) = parse_stmts("if ($a) {} else if ($b) {}")
        assert len(stmt.elifs) == 1

    def test_if_without_braces(self):
        (stmt,) = parse_stmts("if ($a) echo 1; else echo 2;")
        assert isinstance(stmt.then.statements[0], ast.Echo)

    def test_while(self):
        (stmt,) = parse_stmts("while ($r = fetch()) { echo $r; }")
        assert isinstance(stmt, ast.While)
        assert isinstance(stmt.condition, ast.Assign)

    def test_do_while(self):
        (stmt,) = parse_stmts("do { $i++; } while ($i < 3);")
        assert isinstance(stmt, ast.DoWhile)

    def test_for(self):
        (stmt,) = parse_stmts("for ($i = 0; $i < 10; $i++) { echo $i; }")
        assert isinstance(stmt, ast.For)
        assert stmt.condition.op == "<"

    def test_foreach(self):
        (stmt,) = parse_stmts("foreach ($rows as $k => $v) { echo $v; }")
        assert isinstance(stmt, ast.Foreach)
        assert stmt.key_var.name == "k"

    def test_foreach_value_only(self):
        (stmt,) = parse_stmts("foreach ($rows as $v) {}")
        assert stmt.key_var is None

    def test_switch(self):
        (stmt,) = parse_stmts(
            "switch ($a) { case 1: echo 1; break; default: echo 2; }"
        )
        assert isinstance(stmt, ast.Switch)
        assert len(stmt.cases) == 2
        assert stmt.cases[1][0] is None

    def test_function_def(self):
        (stmt,) = parse_stmts("function f($a, $b = 'x') { return $a . $b; }")
        assert isinstance(stmt, ast.FunctionDef)
        assert stmt.params[1].default.value == "x"

    def test_class_def(self):
        (stmt,) = parse_stmts(
            "class DB { var $conn; function query($sql) { return $sql; } }"
        )
        assert isinstance(stmt, ast.ClassDef)
        assert stmt.methods[0].name == "query"
        assert stmt.properties[0][0] == "conn"

    def test_include_forms(self):
        stmts = parse_stmts(
            "include 'a.php'; include_once('b.php'); require 'c.php'; require_once 'd.php';"
        )
        assert all(isinstance(s, ast.Include) for s in stmts)
        assert stmts[1].once and stmts[3].once
        assert stmts[2].required

    def test_dynamic_include(self):
        (stmt,) = parse_stmts("include('lang_' . $choice . '.php');")
        assert isinstance(stmt, ast.Include)
        assert isinstance(stmt.path, ast.BinOp)

    def test_global(self):
        (stmt,) = parse_stmts("global $DB, $USER;")
        assert stmt.names == ["DB", "USER"]

    def test_exit(self):
        (stmt,) = parse_stmts("exit;")
        assert stmt.expr.name == "exit"

    def test_echo_multiple(self):
        (stmt,) = parse_stmts("echo $a, $b;")
        assert len(stmt.values) == 2

    def test_return(self):
        (stmt,) = parse_stmts("return $x;")
        assert isinstance(stmt, ast.Return)

    def test_return_void(self):
        (stmt,) = parse_stmts("return;")
        assert stmt.value is None

    def test_error_reporting(self):
        with pytest.raises(PhpParseError):
            parse_stmts("if ($a {")


class TestFigure2:
    """The paper's running example parses and has the expected shape."""

    CODE = """<?php
isset($_GET['userid']) ?
    $userid = $_GET['userid'] : $userid = '';
if ($USER['groupid'] != 1)
{
    // permission denied
    unp_msg($gp_permserror);
    exit;
}
if ($userid == '')
{
    unp_msg($gp_invalidrequest);
    exit;
}
if (!eregi('[0-9]+', $userid))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
$getuser = $DB->query("SELECT * FROM `unp_user` WHERE userid='$userid'");
if (!$DB->is_single_row($getuser))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
"""

    def test_parses(self):
        tree = parse(self.CODE, "useredit.php")
        statements = tree.body.statements
        assert len(statements) == 6

    def test_query_hotspot_shape(self):
        tree = parse(self.CODE)
        assign = tree.body.statements[4].expr
        assert isinstance(assign, ast.Assign)
        call = assign.value
        assert isinstance(call, ast.MethodCall) and call.name == "query"
        interp = call.args[0]
        assert isinstance(interp, ast.Interp)
        assert isinstance(interp.parts[1], ast.Var)
        assert interp.parts[1].name == "userid"

    def test_walk_finds_eregi(self):
        tree = parse(self.CODE)
        calls = [n for n in ast.walk(tree) if isinstance(n, ast.Call)]
        assert any(c.name == "eregi" for c in calls)

    def test_line_numbers(self):
        tree = parse(self.CODE)
        query_stmt = tree.body.statements[4]
        assert query_stmt.line == 20
