"""Tests for dynamic-include resolution (paper §4)."""

from repro.analysis.absdom import GrammarBuilder
from repro.php.includes import IncludeResolver


def make_project(tmp_path, names):
    for name in names:
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("<?php // stub")
    return IncludeResolver(tmp_path)


class TestLayoutScan:
    def test_finds_php_files(self, tmp_path):
        resolver = make_project(tmp_path, ["a.php", "sub/b.php", "c.txt"])
        names = [p.name for p in resolver.project_files()]
        assert "a.php" in names and "b.php" in names
        assert "c.txt" not in names

    def test_inc_and_tpl_included(self, tmp_path):
        resolver = make_project(tmp_path, ["x.inc", "y.tpl"])
        assert len(resolver.project_files()) == 2

    def test_candidate_names_relative_forms(self, tmp_path):
        resolver = make_project(tmp_path, ["sub/lib.php"])
        names = resolver.candidate_names(tmp_path)
        assert "sub/lib.php" in names
        assert "./sub/lib.php" in names


class TestResolution:
    def test_literal_path(self, tmp_path):
        resolver = make_project(tmp_path, ["lib.php", "other.php"])
        builder = GrammarBuilder()
        value = builder.literal("lib.php")
        files = resolver.resolve(builder.grammar, value.nt, tmp_path)
        assert [f.name for f in files] == ["lib.php"]

    def test_prefix_pattern_selects_matching_files(self, tmp_path):
        """The paper's example: include('lan_' . $choice . '.php')."""
        resolver = make_project(
            tmp_path,
            ["lang/lan_en.php", "lang/lan_de.php", "lang/other.php"],
        )
        builder = GrammarBuilder()
        choice = builder.join([builder.literal("en"), builder.literal("de")])
        path_value = builder.concat_all(
            [builder.literal("lang/lan_"), choice, builder.literal(".php")]
        )
        files = resolver.resolve(builder.grammar, path_value.nt, tmp_path)
        assert sorted(f.name for f in files) == ["lan_de.php", "lan_en.php"]

    def test_sigma_star_choice_resolved_by_layout(self, tmp_path):
        """Unknown $choice: the directory layout IS the specification."""
        resolver = make_project(
            tmp_path,
            ["lang/lan_en.php", "lang/lan_fr.php", "elsewhere/readme.php"],
        )
        builder = GrammarBuilder()
        path_value = builder.concat_all(
            [builder.literal("lang/lan_"), builder.any_string(), builder.literal(".php")]
        )
        files = resolver.resolve(builder.grammar, path_value.nt, tmp_path)
        assert sorted(f.name for f in files) == ["lan_en.php", "lan_fr.php"]

    def test_no_match(self, tmp_path):
        resolver = make_project(tmp_path, ["a.php"])
        builder = GrammarBuilder()
        value = builder.literal("missing.php")
        assert resolver.resolve(builder.grammar, value.nt, tmp_path) == []

    def test_current_dir_relative(self, tmp_path):
        resolver = make_project(tmp_path, ["sub/page.php", "sub/lib.php"])
        builder = GrammarBuilder()
        value = builder.literal("lib.php")
        files = resolver.resolve(builder.grammar, value.nt, tmp_path / "sub")
        assert [f.name for f in files] == ["lib.php"]
