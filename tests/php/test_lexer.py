"""Tests for the PHP lexer."""

import pytest

from repro.php.lexer import PhpLexError, lex


def kinds(source):
    return [(t.kind, t.value) for t in lex(source) if t.kind != "EOF"]


class TestModes:
    def test_pure_html(self):
        assert kinds("<h1>hello</h1>") == [("INLINE_HTML", "<h1>hello</h1>")]

    def test_php_only(self):
        assert kinds("<?php $x = 1;") == [
            ("VARIABLE", "x"),
            ("OP", "="),
            ("NUMBER", "1"),
            ("OP", ";"),
        ]

    def test_mixed(self):
        tokens = kinds("<a><?php echo $x; ?></a>")
        assert tokens[0] == ("INLINE_HTML", "<a>")
        assert ("KEYWORD", "echo") in tokens
        assert tokens[-1] == ("INLINE_HTML", "</a>")

    def test_close_tag_inserts_semicolon(self):
        tokens = kinds("<?php echo $x ?>done")
        assert ("OP", ";") in tokens

    def test_short_echo_tag(self):
        tokens = kinds("<?= $x ?>")
        assert tokens[0] == ("KEYWORD", "echo")


class TestVariablesAndIdents:
    def test_variable(self):
        assert kinds("<?php $userid;")[0] == ("VARIABLE", "userid")

    def test_keywords_case_insensitive(self):
        assert kinds("<?php IF (1) {}")[0] == ("KEYWORD", "if")

    def test_ident_preserves_case(self):
        assert ("IDENT", "unp_msg") in kinds("<?php unp_msg();")

    def test_superglobal(self):
        assert kinds("<?php $_GET;")[0] == ("VARIABLE", "_GET")


class TestStrings:
    def test_single_quoted_literal(self):
        assert kinds("<?php 'a$b\\n';")[0] == ("SQ_STRING", "a$b\\n")

    def test_single_quote_escapes(self):
        assert kinds(r"<?php 'it\'s';")[0] == ("SQ_STRING", "it's")

    def test_double_quoted_raw_body(self):
        assert kinds('<?php "a $x b";')[0] == ("DQ_STRING", "a $x b")

    def test_double_quoted_with_braces(self):
        assert kinds('<?php "v={$a[1]}";')[0] == ("DQ_STRING", "v={$a[1]}")

    def test_escaped_quote_in_double(self):
        assert kinds(r'<?php "a\"b";')[0] == ("DQ_STRING", 'a\\"b')

    def test_unterminated_raises(self):
        with pytest.raises(PhpLexError):
            lex("<?php 'oops")
        with pytest.raises(PhpLexError):
            lex('<?php "oops')


class TestNumbers:
    @pytest.mark.parametrize("text", ["0", "42", "3.14", "0xFF"])
    def test_number(self, text):
        assert kinds(f"<?php {text};")[0] == ("NUMBER", text)


class TestComments:
    def test_line_comment(self):
        assert kinds("<?php // note\n$x;")[0] == ("VARIABLE", "x")

    def test_hash_comment(self):
        assert kinds("<?php # note\n$x;")[0] == ("VARIABLE", "x")

    def test_block_comment(self):
        assert kinds("<?php /* a\nb */ $x;")[0] == ("VARIABLE", "x")

    def test_comment_before_close_tag(self):
        tokens = kinds("<?php $x; // c ?>after")
        assert tokens[-1] == ("INLINE_HTML", "after")

    def test_unterminated_block_raises(self):
        with pytest.raises(PhpLexError):
            lex("<?php /* oops")


class TestOperators:
    def test_compound_ops(self):
        tokens = kinds("<?php $a .= $b; $c->d; $e === $f;")
        values = [v for k, v in tokens if k == "OP"]
        assert ".=" in values and "->" in values and "===" in values

    def test_lines_tracked(self):
        tokens = lex("<?php $a;\n$b;\n$c;")
        variables = [t for t in tokens if t.kind == "VARIABLE"]
        assert [t.line for t in variables] == [1, 2, 3]
