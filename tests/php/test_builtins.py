"""Tests for the PHP builtin function models."""


from repro.analysis.absdom import GrammarBuilder
from repro.analysis.values import ArrVal
from repro.lang.grammar import DIRECT
from repro.php import ast, builtins


def lit(text):
    return ast.Literal(value=text)


def call_model(name, *literal_args, builder=None):
    builder = builder or GrammarBuilder()
    nodes = [lit(a) for a in literal_args]
    values = [builder.literal(a) for a in literal_args]
    return builder, builtins.model_call(name, builder, values, nodes)


def gen(builder, value, text):
    return builder.grammar.generates(builder.to_str(value).nt, text)


class TestEscaping:
    def test_addslashes(self):
        b, v = call_model("addslashes", "a'b")
        assert gen(b, v, "a\\'b")
        assert not gen(b, v, "a'b")

    def test_mysql_real_escape_string(self):
        b, v = call_model("mysql_real_escape_string", "x'y\"z")
        assert gen(b, v, 'x\\\'y\\"z')

    def test_mysqli_argument_order(self):
        b = GrammarBuilder()
        conn = b.literal("conn")
        subject = b.literal("a'b")
        v = builtins.model_call(
            "mysqli_real_escape_string", b, [conn, subject], [lit("conn"), lit("a'b")]
        )
        assert gen(b, v, "a\\'b")

    def test_stripslashes(self):
        b, v = call_model("stripslashes", "a\\'b")
        assert gen(b, v, "a'b")

    def test_htmlspecialchars_default_keeps_single_quote(self):
        b, v = call_model("htmlspecialchars", "<a href='x'>")
        assert gen(b, v, "&lt;a href='x'&gt;")

    def test_htmlspecialchars_ent_quotes(self):
        b = GrammarBuilder()
        subject = b.literal("it's")
        v = builtins.model_call(
            "htmlspecialchars",
            b,
            [subject, b.literal("ENT_QUOTES")],
            [lit("it's"), ast.ConstFetch(name="ENT_QUOTES")],
        )
        assert gen(b, v, "it&#039;s")


class TestReplacement:
    def test_str_replace_literal(self):
        b, v = call_model("str_replace", "''", "'", "a''b")
        assert gen(b, v, "a'b")

    def test_figure6_fst(self):
        """The FST of the paper's Figure 6 drives str_replace("''", "'")."""
        from repro.lang.fst import FST

        fst = FST.replace_string("''", "'")
        assert fst.apply_once("A''B") == "A'B"
        assert fst.apply_once("''''") == "''"

    def test_str_replace_array_form(self):
        b = GrammarBuilder()
        search = ast.ArrayLit(items=[(None, lit("<")), (None, lit(">"))])
        replace = ast.ArrayLit(items=[(None, lit("[")), (None, lit("]"))])
        subject = b.literal("<b>")
        v = builtins.model_call(
            "str_replace", b, [None, None, subject], [search, replace, lit("")]
        )
        assert gen(b, v, "[b]")

    def test_str_replace_dynamic_pattern_widens(self):
        b = GrammarBuilder()
        subject = b.taint(b.literal("abc"), DIRECT)
        v = builtins.model_call(
            "str_replace",
            b,
            [b.any_string(), b.literal("x"), subject],
            [ast.Var(name="p"), lit("x"), ast.Var(name="s")],
        )
        assert DIRECT in b.labels_of(b.to_str(v))

    def test_preg_replace_class_deletion(self):
        b, v = call_model("preg_replace", "/[^0-9]/", "", "a1b2")
        assert gen(b, v, "12")
        assert not gen(b, v, "a1b2")

    def test_preg_replace_class_plus(self):
        b, v = call_model("preg_replace", "/[a-z]+/", "_", "ab12cd")
        assert gen(b, v, "_12_")

    def test_preg_replace_literal_pattern(self):
        b, v = call_model("preg_replace", "/--/", "", "a--b")
        assert gen(b, v, "ab")

    def test_preg_replace_complex_widens_soundly(self):
        b = GrammarBuilder()
        subject = b.taint(b.literal("ab"), DIRECT)
        v = builtins.model_call(
            "preg_replace",
            b,
            [b.literal("/a(b|c)/"), b.literal("x\\1"), subject],
            [lit("/a(b|c)/"), lit("x\\1"), ast.Var(name="s")],
        )
        # widened: original strings still derivable (sound over-approx)
        assert gen(b, v, "ab")
        assert DIRECT in b.labels_of(b.to_str(v))

    def test_ereg_replace_no_delimiters(self):
        b, v = call_model("ereg_replace", "[0-9]", "N", "a1b")
        assert gen(b, v, "aNb")

    def test_strtr_literal(self):
        b, v = call_model("strtr", "abc", "ac", "xz")
        assert gen(b, v, "xbz")


class TestCaseAndShape:
    def test_strtolower(self):
        b, v = call_model("strtolower", "DROP")
        assert gen(b, v, "drop")
        assert not gen(b, v, "DROP")

    def test_strtoupper(self):
        b, v = call_model("strtoupper", "select")
        assert gen(b, v, "SELECT")

    def test_strrev(self):
        b, v = call_model("strrev", "abc")
        assert gen(b, v, "cba")
        assert not gen(b, v, "abc")

    def test_substr_contains_all_substrings(self):
        b, v = call_model("substr", "hello")
        for text in ("", "h", "ell", "hello", "o"):
            assert gen(b, v, text)
        assert not gen(b, v, "hx")

    def test_str_repeat(self):
        b, v = call_model("str_repeat", "ab")
        for text in ("", "ab", "abab"):
            assert gen(b, v, text)
        assert not gen(b, v, "aba")

    def test_trim_contains_trimmed(self):
        b, v = call_model("trim", " x ")
        assert gen(b, v, "x")
        assert gen(b, v, " x ")  # sound over-approximation keeps original


class TestSprintf:
    def test_numeric_directive_sanitizes(self):
        b = GrammarBuilder()
        tainted = b.taint(b.any_string(), DIRECT)
        v = builtins.model_call(
            "sprintf",
            b,
            [b.literal("id=%d"), tainted],
            [lit("id=%d"), ast.Var(name="x")],
        )
        assert gen(b, v, "id=42")
        assert not gen(b, v, "id='; DROP")

    def test_string_directive_flows(self):
        b = GrammarBuilder()
        arg = b.literal("abc")
        v = builtins.model_call(
            "sprintf",
            b,
            [b.literal("[%s]"), arg],
            [lit("[%s]"), ast.Var(name="x")],
        )
        assert gen(b, v, "[abc]")

    def test_percent_escape(self):
        b, v = call_model("sprintf", "100%%")
        assert gen(b, v, "100%")

    def test_width_flags_skipped(self):
        b = GrammarBuilder()
        v = builtins.model_call(
            "sprintf", b, [b.literal("%05d")], [lit("%05d")]
        )
        assert gen(b, v, "42")


class TestStructure:
    def test_explode_pieces(self):
        b = GrammarBuilder()
        subject = b.literal("a,b,c")
        v = builtins.model_call(
            "explode", b, [b.literal(","), subject], [lit(","), ast.Var(name="s")]
        )
        assert isinstance(v, ArrVal)
        piece = v.default
        for text in ("a", "b", "c"):
            assert b.grammar.generates(piece.nt, text)
        # pieces never contain the delimiter
        assert not b.grammar.generates(piece.nt, "a,b")

    def test_implode(self):
        b = GrammarBuilder()
        arr = ArrVal(elements={"0": b.literal("x"), "1": b.literal("y")})
        v = builtins.model_call(
            "implode", b, [b.literal(","), arr], [lit(","), ast.Var(name="a")]
        )
        assert gen(b, v, "x,y")
        assert gen(b, v, "x")
        assert gen(b, v, "")

    def test_md5_is_hex(self):
        b, v = call_model("md5", "secret")
        assert gen(b, v, "a" * 32)
        assert not gen(b, v, "'; DROP")
        assert not b.is_tainted(b.to_str(v))

    def test_intval_numeric(self):
        b, v = call_model("intval", "123abc")
        assert gen(b, v, "123")
        assert not gen(b, v, "123abc")

    def test_urlencode_restricted_alphabet(self):
        b = GrammarBuilder()
        tainted = b.taint(b.any_string(), DIRECT)
        v = builtins.model_call("urlencode", b, [tainted], [ast.Var(name="x")])
        assert not gen(b, v, "it's")
        assert gen(b, v, "it%27s")
        assert DIRECT in b.labels_of(b.to_str(v))


class TestRegistry:
    def test_unknown_returns_none(self):
        b = GrammarBuilder()
        assert builtins.model_call("no_such_function", b, [], []) is None

    def test_no_effect_functions(self):
        b = GrammarBuilder()
        v = builtins.model_call("header", b, [b.literal("x")], [lit("x")])
        assert v is not None

    def test_catalog_size(self):
        # the paper registered 243 specs; our catalog covers the
        # sanitizer-relevant core plus no-effect declarations
        assert len(builtins.BUILTINS) + len(builtins.NO_EFFECT) >= 130


class TestPredicates:
    def test_preg_match(self):
        call = ast.Call(
            name="preg_match", args=[lit(r"/^[\d]+$/"), ast.Var(name="x")]
        )
        subject, pattern = builtins.predicate_language(call)
        assert subject.name == "x"
        from repro.lang.regex import search_language

        language = search_language(pattern)
        assert language.accepts_string("42")
        assert not language.accepts_string("4a")

    def test_eregi_case_insensitive(self):
        call = ast.Call(name="eregi", args=[lit("[a-f]+"), ast.Var(name="x")])
        _, pattern = builtins.predicate_language(call)
        assert pattern.ignore_case

    def test_dynamic_pattern_unmodeled(self):
        call = ast.Call(
            name="preg_match", args=[ast.Var(name="p"), ast.Var(name="x")]
        )
        assert builtins.predicate_language(call) is None

    def test_is_numeric(self):
        call = ast.Call(name="is_numeric", args=[ast.Var(name="x")])
        _, pattern = builtins.predicate_language(call)
        from repro.lang.regex import search_language

        language = search_language(pattern)
        assert language.accepts_string("3.14")
        assert not language.accepts_string("3x")

    def test_in_array_literal_set(self):
        arr = ast.ArrayLit(items=[(None, lit("asc")), (None, lit("desc"))])
        call = ast.Call(name="in_array", args=[ast.Var(name="x"), arr])
        subject, language = builtins.predicate_language(call)
        assert language.accepts_string("asc")
        assert not language.accepts_string("'; DROP")

    def test_in_array_dynamic_unmodeled(self):
        call = ast.Call(
            name="in_array", args=[ast.Var(name="x"), ast.Var(name="a")]
        )
        assert builtins.predicate_language(call) is None
