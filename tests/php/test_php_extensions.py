"""Tests for PHP front-end extensions: alternative syntax, heredoc,
define() constants."""

import textwrap


from repro.analysis.stringtaint import StringTaintAnalysis
from repro.php import ast
from repro.php.parser import parse


def parse_stmts(code):
    return parse(f"<?php {code}").body.statements


class TestAlternativeSyntax:
    def test_if_endif(self):
        (stmt,) = parse_stmts("if ($a): echo 1; endif;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.then.statements[0], ast.Echo)

    def test_if_else_endif(self):
        (stmt,) = parse_stmts("if ($a): echo 1; else: echo 2; endif;")
        assert stmt.orelse is not None

    def test_if_elseif_endif(self):
        (stmt,) = parse_stmts(
            "if ($a): echo 1; elseif ($b): echo 2; else: echo 3; endif;"
        )
        assert len(stmt.elifs) == 1
        assert stmt.orelse is not None

    def test_while_endwhile(self):
        (stmt,) = parse_stmts("while ($a): $i++; endwhile;")
        assert isinstance(stmt, ast.While)

    def test_foreach_endforeach(self):
        (stmt,) = parse_stmts("foreach ($rows as $r): echo $r; endforeach;")
        assert isinstance(stmt, ast.Foreach)

    def test_template_style_mixed_html(self):
        tree = parse(
            "<?php if ($ok): ?><b>yes</b><?php else: ?><i>no</i><?php endif; ?>"
        )
        (stmt,) = [
            s for s in tree.body.statements if isinstance(s, ast.If)
        ]
        assert any(
            isinstance(inner, ast.InlineHtml) for inner in stmt.then.statements
        )
        assert stmt.orelse is not None

    def test_ternary_colon_not_confused(self):
        (stmt,) = parse_stmts("$x = $a ? 1 : 2;")
        assert isinstance(stmt.expr.value, ast.Ternary)


class TestHeredoc:
    def test_plain_heredoc(self):
        (stmt,) = parse_stmts('$x = <<<EOT\nhello world\nEOT;\n')
        assert stmt.expr.value.value == "hello world"

    def test_heredoc_interpolation(self):
        (stmt,) = parse_stmts('$q = <<<SQL\nSELECT $col FROM t\nSQL;\n')
        assert isinstance(stmt.expr.value, ast.Interp)
        parts = stmt.expr.value.parts
        assert parts[0].value == "SELECT "
        assert isinstance(parts[1], ast.Var)

    def test_nowdoc_no_interpolation(self):
        (stmt,) = parse_stmts("$x = <<<'EOT'\nraw $notvar\nEOT;\n")
        assert stmt.expr.value.value == "raw $notvar"

    def test_multiline_body(self):
        (stmt,) = parse_stmts('$x = <<<EOT\nline1\nline2\nEOT;\n')
        assert stmt.expr.value.value == "line1\nline2"

    def test_empty_heredoc(self):
        (stmt,) = parse_stmts('$x = <<<EOT\nEOT;\n')
        assert stmt.expr.value.value == ""

    def test_heredoc_query_flows(self, tmp_path):
        (tmp_path / "page.php").write_text(
            textwrap.dedent(
                """\
                <?php
                $id = intval($_GET['id']);
                $q = <<<SQL
                SELECT * FROM t WHERE id=$id
                SQL;
                mysql_query($q);
                """
            )
        )
        result = StringTaintAnalysis(tmp_path).analyze_file("page.php")
        assert result.grammar.generates(
            result.hotspots[0].query.nt, "SELECT * FROM t WHERE id=42"
        )


class TestDefineConstants:
    def run(self, tmp_path, code):
        (tmp_path / "page.php").write_text(f"<?php {code}")
        return StringTaintAnalysis(tmp_path).analyze_file("page.php")

    def test_define_flows_into_query(self, tmp_path):
        result = self.run(
            tmp_path,
            "define('PREFIX', 'unp_'); "
            "mysql_query('SELECT * FROM ' . PREFIX . 'user');",
        )
        assert result.grammar.generates(
            result.hotspots[0].query.nt, "SELECT * FROM unp_user"
        )

    def test_undefined_constant_is_its_name(self, tmp_path):
        result = self.run(tmp_path, "mysql_query('SELECT ' . MISSING . ' FROM t');")
        assert result.grammar.generates(
            result.hotspots[0].query.nt, "SELECT MISSING FROM t"
        )

    def test_constant_function(self, tmp_path):
        result = self.run(
            tmp_path,
            "define('T', 'news'); mysql_query('SELECT * FROM ' . constant('T'));",
        )
        assert result.grammar.generates(
            result.hotspots[0].query.nt, "SELECT * FROM news"
        )

    def test_defined_is_boolean(self, tmp_path):
        result = self.run(
            tmp_path,
            "if (defined('X')) { mysql_query('SELECT 1 FROM a'); }",
        )
        assert len(result.hotspots) == 1

    def test_tainted_constant(self, tmp_path):
        result = self.run(
            tmp_path,
            "define('EVIL', $_GET['x']); "
            "mysql_query(\"SELECT * FROM t WHERE a='\" . EVIL . \"'\");",
        )
        grammar = result.grammar
        labels = set()
        for nt in grammar.reachable(result.hotspots[0].query.nt):
            labels |= grammar.labels.get(nt, set())
        assert "direct" in labels
