<?php
$note = isset($_POST['note']) ? $_POST['note'] : '';
$safe = mysql_real_escape_string($note);
mysql_query("INSERT INTO log VALUES ('" . $safe . "')");
