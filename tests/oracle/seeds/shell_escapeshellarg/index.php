<?php
$dir = isset($_GET['id']) ? $_GET['id'] : 'red';
$tag = preg_replace('/[^0-9a-z]/', '', $_GET['tag']);
system("ls -l " . escapeshellarg($dir));
exec("grep -F " . $tag . " data.txt");
passthru('tar cf backup.tar ' . $dir);
