<?php
$id = isset($_GET['id']) ? $_GET['id'] : '0';
$name = isset($_POST['name']) ? $_POST['name'] : 'anon';
$label = sprintf('%05d-%s', intval($id), addslashes($name));
$pad = str_pad($name, 8, '_');
mysql_query("SELECT * FROM users WHERE label = '" . addslashes($label) . "'");
pg_query("UPDATE users SET tag = '" . addslashes($pad) . "' WHERE k = 3");
