<?php
require_once 'includes/outer.php';
$tag = isset($_GET['tag']) ? $_GET['tag'] : 'All';
mysql_query("SELECT * FROM posts WHERE tag = " . seed_clean($tag));
