<?php
function seed_quote($v)
{
    return "'" . addslashes($v) . "'";
}
