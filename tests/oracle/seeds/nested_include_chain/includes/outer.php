<?php
require_once 'includes/inner.php';
function seed_clean($v)
{
    return seed_quote(trim(strtolower($v)));
}
