<?php
$mode = isset($_GET['mode']) ? $_GET['mode'] : 'list';
switch ($mode) {
case 'list':
    $order = 'name';
    break;
case 'edit':
    $order = 'id';
    break;
default:
    $order = 'name';
    $mode = 'list';
}
sqlite_query("SELECT * FROM items ORDER BY " . $mode);
$tags = isset($_GET['tags']) ? $_GET['tags'] : '';
$acc = '';
foreach (explode(',', $tags) as $piece) {
    $acc = $acc . "'" . addslashes($piece) . "',";
}
if (preg_match('/^[0-9]+$/', $_GET['page'])) {
    $page = $_GET['page'];
} else {
    $page = '1';
}
mysql_query("SELECT * FROM items WHERE tag IN (" . $acc . "'x') LIMIT " . $page);
