<?php
$q = isset($_REQUEST['q']) ? $_REQUEST['q'] : '';
$q = substr(trim($q), 0, 12);
$q = ucfirst(strtolower($q));
$who = isset($_COOKIE['sort']) ? $_COOKIE['sort'] : 'owner';
$safe = ($who == 'owner') ? $who : 'owner';
mysql_query("SELECT * FROM users WHERE name = '" . addslashes($q) . "' ORDER BY " . $safe);
