"""Unit tests for the concrete oracle interpreter: taint weaving,
refinement mirroring, subset boundaries, and the char-level Earley
membership primitive it feeds."""

import pytest

from repro.lang.charset import CharSet
from repro.lang.earley import char_membership, char_token_grammar
from repro.lang.grammar import DIRECT, Grammar, Lit, Nonterminal
from repro.oracle.interp import (
    InputVector,
    TStr,
    UnsupportedConstruct,
    execute_page,
)


def write_page(tmp_path, source, name="index.php"):
    (tmp_path / name).write_text(source)
    return name


def run(tmp_path, source, vector):
    return execute_page(tmp_path, write_page(tmp_path, source), vector)


class TestTaintWeaving:
    def test_concat_tracks_exact_spans(self, tmp_path):
        hits = run(
            tmp_path,
            "<?php\n"
            "$v = $_GET['q'];\n"
            "mysql_query(\"SELECT '\" . $v . \"' AND '\" . $v . \"'\");\n",
            InputVector(get={"q": "ab"}),
        )
        assert len(hits) == 1
        assert hits[0].query == "SELECT 'ab' AND 'ab'"
        assert hits[0].runs == [(8, 10, True), (17, 19, True)]

    def test_addslashes_preserves_charwise_spans(self, tmp_path):
        hits = run(
            tmp_path,
            "<?php\nmysql_query(\"x = '\" . addslashes($_GET['q']) . \"'\");\n",
            InputVector(get={"q": "a'b"}),
        )
        assert hits[0].query == "x = 'a\\'b'"
        assert hits[0].runs == [(5, 9, True)]

    def test_substr_slices_taint(self, tmp_path):
        hits = run(
            tmp_path,
            "<?php\n"
            "$v = 'keep' . $_GET['q'];\n"
            "mysql_query(substr($v, 4, 2));\n",
            InputVector(get={"q": "abcd"}),
        )
        assert hits[0].query == "ab"
        assert hits[0].runs == [(0, 2, True)]

    def test_sprintf_splices_string_args_only(self, tmp_path):
        hits = run(
            tmp_path,
            "<?php\n"
            "mysql_query(sprintf('id=%05d name=%s', intval($_GET['i']), "
            "$_GET['n']));\n",
            InputVector(get={"i": "42", "n": "bob"}),
        )
        assert hits[0].query == "id=00042 name=bob"
        # only the %s splice is tainted; the %05d render is not
        assert hits[0].runs == [(14, 17, True)]

    def test_explode_pieces_keep_offsets(self, tmp_path):
        hits = run(
            tmp_path,
            "<?php\n"
            "$parts = explode(',', $_GET['q']);\n"
            "mysql_query('k = ' . $parts[1]);\n",
            InputVector(get={"q": "aa,bb,cc"}),
        )
        assert hits[0].query == "k = bb"
        assert hits[0].runs == [(4, 6, True)]

    def test_fetch_row_is_indirect_tainted(self, tmp_path):
        hits = run(
            tmp_path,
            "<?php\n"
            "$r = mysql_query('SELECT a FROM t');\n"
            "while ($row = mysql_fetch_assoc($r)) {\n"
            "    mysql_query(\"v = '\" . addslashes($row['a']) . \"'\");\n"
            "}\n",
            InputVector(),
        )
        assert [h.query for h in hits] == ["SELECT a FROM t", "v = 'dbv'"]
        assert hits[1].runs == [(5, 8, True)]


class TestRefinementMirror:
    def test_equality_guard_drops_taint(self, tmp_path):
        source = (
            "<?php\n"
            "$m = $_GET['m'];\n"
            "if ($m == 'edit') {\n"
            "    mysql_query('ORDER BY ' . $m);\n"
            "}\n"
        )
        hits = run(tmp_path, source, InputVector(get={"m": "edit"}))
        assert hits[0].query == "ORDER BY edit"
        assert hits[0].runs == []

    def test_switch_case_drops_taint(self, tmp_path):
        source = (
            "<?php\n"
            "$m = $_COOKIE['m'];\n"
            "switch ($m) {\n"
            "case 'name':\n"
            "    break;\n"
            "default:\n"
            "    $m = 'name';\n"
            "}\n"
            "mysql_query('ORDER BY ' . $m);\n"
        )
        hits = run(tmp_path, source, InputVector(cookie={"m": "name"}))
        assert hits[0].runs == []

    def test_negative_guard_keeps_taint(self, tmp_path):
        source = (
            "<?php\n"
            "$m = $_GET['m'];\n"
            "if ($m != 'x') {\n"
            "    mysql_query(\"t = '\" . addslashes($m) . \"'\");\n"
            "}\n"
        )
        hits = run(tmp_path, source, InputVector(get={"m": "abc"}))
        assert hits[0].runs == [(5, 8, True)]


class TestSubsetBoundaries:
    def test_break_in_loop_is_unsupported(self, tmp_path):
        source = (
            "<?php\n"
            "for ($i = 0; $i < 3; $i = $i + 1) {\n"
            "    break;\n"
            "}\n"
        )
        with pytest.raises(UnsupportedConstruct):
            run(tmp_path, source, InputVector())

    def test_division_by_zero_is_unsupported(self, tmp_path):
        with pytest.raises(UnsupportedConstruct):
            run(tmp_path, "<?php\n$x = 1 / 0;\n", InputVector())

    def test_loop_cap_stops_silently(self, tmp_path):
        source = (
            "<?php\n"
            "$s = '';\n"
            "$i = 0;\n"
            "while ($i < 1000) {\n"
            "    $s = $s . 'a';\n"
            "    $i = $i + 1;\n"
            "}\n"
            "mysql_query($s);\n"
        )
        hits = run(tmp_path, source, InputVector())
        assert hits[0].query == "a" * 64

    def test_unknown_function_returns_untainted_empty(self, tmp_path):
        hits = run(
            tmp_path,
            "<?php\nmysql_query('x' . totally_unknown_fn($_GET['q']));\n",
            InputVector(get={"q": "evil"}),
        )
        assert hits[0].query == "x"
        assert hits[0].runs == []


class TestIncludesAndFunctions:
    def test_user_function_through_include(self, tmp_path):
        (tmp_path / "lib.php").write_text(
            "<?php\nfunction wrap($v) { return \"'\" . addslashes($v) . \"'\"; }\n"
        )
        hits = run(
            tmp_path,
            "<?php\ninclude 'lib.php';\nmysql_query('v = ' . wrap($_GET['q']));\n",
            InputVector(get={"q": "a'b"}),
        )
        assert hits[0].query == "v = 'a\\'b'"
        assert hits[0].runs == [(5, 9, True)]

    def test_exit_ends_page(self, tmp_path):
        source = (
            "<?php\n"
            "mysql_query('first');\n"
            "exit;\n"
            "mysql_query('second');\n"
        )
        hits = run(tmp_path, source, InputVector())
        assert [h.query for h in hits] == ["first"]


class TestTStr:
    def test_segments_merge_and_slice(self):
        value = TStr.of("ab").concat(TStr.of("cd", frozenset({DIRECT})))
        assert value.text == "abcd"
        assert value.tainted_runs() == [(2, 4, True)]
        assert value.slice(1, 3).tainted_runs() == [(1, 2, True)]


class TestCharMembership:
    def grammar(self):
        grammar = Grammar()
        root = Nonterminal("q")
        digits = Nonterminal("d")
        grammar.add(root, (Lit("SELECT "), digits))
        grammar.add(digits, (CharSet.of("0123456789"), digits))
        grammar.add(digits, (CharSet.of("0123456789"),))
        return grammar, root

    def test_member_and_non_member(self):
        grammar, root = self.grammar()
        prepared = char_token_grammar(grammar, root)
        assert char_membership(prepared, "SELECT 42")
        assert not char_membership(prepared, "SELECT 42x")
        assert not char_membership(prepared, "SELECT ")

    def test_production_less_hole_is_empty_language(self):
        grammar = Grammar()
        root = Nonterminal("r")
        hole = Nonterminal("hole")
        grammar.add(root, (Lit("a"), hole))
        prepared = char_token_grammar(grammar, root)
        assert not char_membership(prepared, "a")
        assert not char_membership(prepared, "ab")
