"""Differential-oracle regression tests.

* every minimized seed page under ``seeds/`` replays deterministically
  with zero divergences (membership + verdict agreement);
* a deliberately broken builtin model (an under-approximating
  ``addslashes``) is caught as a membership divergence and minimized to
  a small reproducer;
* the fuzz corpus is byte-identical across runs with the same seed;
* the concrete registry covers every abstractly-modeled builtin, so the
  two sides cannot drift silently.
"""

import json
import random
import shutil
from pathlib import Path

import pytest

from repro.corpus.generator import generate_fuzz_page
from repro.oracle import InputVector, diff_page
from repro.oracle.fuzz import minimize_page, minimize_vector, sample_vector
from repro.php import builtins

SEEDS = sorted(
    path
    for path in (Path(__file__).parent / "seeds").iterdir()
    if path.is_dir()
)


def load_vectors(seed: Path) -> list[InputVector]:
    data = json.loads((seed / "vectors.json").read_text())
    return [InputVector.from_dict(entry) for entry in data]


def seed_policy(seed: Path) -> str | None:
    """The optional per-seed ``policy`` marker (``sqlciv fuzz --policy``)."""
    marker = seed / "policy"
    return marker.read_text().strip() if marker.exists() else None


@pytest.mark.parametrize("seed", SEEDS, ids=[s.name for s in SEEDS])
def test_seed_replays_with_zero_divergences(seed):
    stats = {}
    divergences = diff_page(
        seed, "index.php", load_vectors(seed), stats=stats,
        policy=seed_policy(seed),
    )
    assert divergences == []
    assert stats["skipped"] == 0, "seed left the mirrored subset"
    assert stats["hits"] > 0, "seed no longer reaches any sink"


class TestPlantedDivergence:
    """An *under-approximating* model must be caught.  (An identity
    model would not be: the oracle witnesses unsoundness, nothing
    else.)"""

    @pytest.fixture()
    def broken_addslashes(self):
        original = builtins.BUILTINS["addslashes"]
        builtins.BUILTINS["addslashes"] = builtins._regular_handler(
            r"[0-9a-zA-Z ]*", "broken_addslashes", taint_arg=0
        )
        try:
            yield
        finally:
            builtins.BUILTINS["addslashes"] = original

    def test_caught_and_minimized(self, broken_addslashes, tmp_path):
        app = tmp_path / "app"
        shutil.copytree(Path(__file__).parent / "seeds" / "sprintf_pad", app)
        vector = InputVector(get={"id": "3"}, post={"name": "a'b"})
        divergences = diff_page(app, "index.php", [vector])
        assert divergences, "under-approximating model not caught"
        assert divergences[0].kind == "membership"

        minimize_page(app, "index.php", vector, "membership")
        vector = minimize_vector(app, "index.php", vector, "membership")
        source = (app / "index.php").read_text()
        assert len(source.splitlines()) <= 30
        assert diff_page(app, "index.php", [vector]), (
            "minimized page no longer reproduces"
        )

    def test_clean_model_has_no_divergence(self, tmp_path):
        app = tmp_path / "app"
        shutil.copytree(Path(__file__).parent / "seeds" / "sprintf_pad", app)
        vector = InputVector(get={"id": "3"}, post={"name": "a'b"})
        assert diff_page(app, "index.php", [vector]) == []


class TestShellPolicyMode:
    """``--policy shell``: shell sinks are recorded on both sides and
    the breakout automaton cross-checks statically-safe verdicts."""

    SEED = Path(__file__).parent / "seeds" / "shell_escapeshellarg"

    def test_shell_sinks_only_hit_in_policy_mode(self, tmp_path):
        app = tmp_path / "app"
        shutil.copytree(self.SEED, app)
        vectors = load_vectors(app)
        stats = {}
        diff_page(app, "index.php", vectors, stats=stats)
        assert stats["hits"] == 0, "shell sinks recorded without --policy"
        stats = {}
        diff_page(app, "index.php", vectors, stats=stats, policy="shell")
        assert stats["hits"] == 3 * len(vectors)

    def test_taint_dropping_model_caught_as_shell_verdict(self, tmp_path):
        """Plant a taint-dropping (but language-preserving) sanitizer
        model: membership holds, the static shell verdict is wrongly
        safe, and the concrete breakout span must flag it."""
        app = tmp_path / "app"
        app.mkdir()
        (app / "index.php").write_text(
            "<?php\n"
            "$d = trim($_GET['id']);\n"
            'system("ls -l " . $d);\n'
        )
        original = builtins.BUILTINS["trim"]
        builtins.BUILTINS["trim"] = builtins._regular_handler(r".*", "broken_trim")
        try:
            vector = InputVector(get={"id": "; id"})
            divergences = diff_page(app, "index.php", [vector], policy="shell")
        finally:
            builtins.BUILTINS["trim"] = original
        assert [d.kind for d in divergences] == ["verdict"]
        assert "metacharacter" in divergences[0].detail

    def test_shell_page_generation_is_deterministic(self, tmp_path):
        sources = []
        for run in range(2):
            root = tmp_path / f"run{run}"
            entry = generate_fuzz_page(
                root, random.Random(99), statements=6, policy="shell"
            )
            sources.append((root / entry).read_text())
        assert sources[0] == sources[1]
        assert any(
            sink + "(" in sources[0]
            for sink in ("system", "exec", "shell_exec", "passthru")
        )


class TestDeterminism:
    def test_same_seed_generates_identical_corpus(self, tmp_path):
        trees = []
        for run in range(2):
            root = tmp_path / f"run{run}"
            rng = random.Random(20_260_806)
            for index in range(3):
                generate_fuzz_page(root / f"page{index}", rng)
            trees.append(
                {
                    str(path.relative_to(root)): path.read_bytes()
                    for path in sorted(root.rglob("*.php"))
                }
            )
        assert trees[0] == trees[1]
        assert trees[0], "corpus generation produced no files"

    def test_same_seed_samples_identical_vectors(self):
        first = [sample_vector(random.Random(7)).as_dict() for _ in range(5)]
        second = [sample_vector(random.Random(7)).as_dict() for _ in range(5)]
        assert first == second


def test_every_abstract_model_has_a_concrete_counterpart():
    """The drift guard: a builtin modeled for the analysis must either
    have a concrete implementation or be an explicit no-effect name —
    otherwise the interpreter would silently under-execute it."""
    uncovered = (
        set(builtins.BUILTINS) - set(builtins.CONCRETE) - set(builtins.NO_EFFECT)
    )
    assert uncovered == set()
