"""Differential-oracle regression tests.

* every minimized seed page under ``seeds/`` replays deterministically
  with zero divergences (membership + verdict agreement);
* a deliberately broken builtin model (an under-approximating
  ``addslashes``) is caught as a membership divergence and minimized to
  a small reproducer;
* the fuzz corpus is byte-identical across runs with the same seed;
* the concrete registry covers every abstractly-modeled builtin, so the
  two sides cannot drift silently.
"""

import json
import random
import shutil
from pathlib import Path

import pytest

from repro.corpus.generator import generate_fuzz_page
from repro.oracle import InputVector, diff_page
from repro.oracle.fuzz import minimize_page, minimize_vector, sample_vector
from repro.php import builtins

SEEDS = sorted(
    path
    for path in (Path(__file__).parent / "seeds").iterdir()
    if path.is_dir()
)


def load_vectors(seed: Path) -> list[InputVector]:
    data = json.loads((seed / "vectors.json").read_text())
    return [InputVector.from_dict(entry) for entry in data]


@pytest.mark.parametrize("seed", SEEDS, ids=[s.name for s in SEEDS])
def test_seed_replays_with_zero_divergences(seed):
    stats = {}
    divergences = diff_page(seed, "index.php", load_vectors(seed), stats=stats)
    assert divergences == []
    assert stats["skipped"] == 0, "seed left the mirrored subset"
    assert stats["hits"] > 0, "seed no longer reaches any sink"


class TestPlantedDivergence:
    """An *under-approximating* model must be caught.  (An identity
    model would not be: the oracle witnesses unsoundness, nothing
    else.)"""

    @pytest.fixture()
    def broken_addslashes(self):
        original = builtins.BUILTINS["addslashes"]
        builtins.BUILTINS["addslashes"] = builtins._regular_handler(
            r"[0-9a-zA-Z ]*", "broken_addslashes", taint_arg=0
        )
        try:
            yield
        finally:
            builtins.BUILTINS["addslashes"] = original

    def test_caught_and_minimized(self, broken_addslashes, tmp_path):
        app = tmp_path / "app"
        shutil.copytree(Path(__file__).parent / "seeds" / "sprintf_pad", app)
        vector = InputVector(get={"id": "3"}, post={"name": "a'b"})
        divergences = diff_page(app, "index.php", [vector])
        assert divergences, "under-approximating model not caught"
        assert divergences[0].kind == "membership"

        minimize_page(app, "index.php", vector, "membership")
        vector = minimize_vector(app, "index.php", vector, "membership")
        source = (app / "index.php").read_text()
        assert len(source.splitlines()) <= 30
        assert diff_page(app, "index.php", [vector]), (
            "minimized page no longer reproduces"
        )

    def test_clean_model_has_no_divergence(self, tmp_path):
        app = tmp_path / "app"
        shutil.copytree(Path(__file__).parent / "seeds" / "sprintf_pad", app)
        vector = InputVector(get={"id": "3"}, post={"name": "a'b"})
        assert diff_page(app, "index.php", [vector]) == []


class TestDeterminism:
    def test_same_seed_generates_identical_corpus(self, tmp_path):
        trees = []
        for run in range(2):
            root = tmp_path / f"run{run}"
            rng = random.Random(20_260_806)
            for index in range(3):
                generate_fuzz_page(root / f"page{index}", rng)
            trees.append(
                {
                    str(path.relative_to(root)): path.read_bytes()
                    for path in sorted(root.rglob("*.php"))
                }
            )
        assert trees[0] == trees[1]
        assert trees[0], "corpus generation produced no files"

    def test_same_seed_samples_identical_vectors(self):
        first = [sample_vector(random.Random(7)).as_dict() for _ in range(5)]
        second = [sample_vector(random.Random(7)).as_dict() for _ in range(5)]
        assert first == second


def test_every_abstract_model_has_a_concrete_counterpart():
    """The drift guard: a builtin modeled for the analysis must either
    have a concrete implementation or be an explicit no-effect name —
    otherwise the interpreter would silently under-execute it."""
    uncovered = (
        set(builtins.BUILTINS) - set(builtins.CONCRETE) - set(builtins.NO_EFFECT)
    )
    assert uncovered == set()
