"""Unit tests for the Table 1 classification logic (report ↔ manifest)."""

from repro.analysis.reports import Finding, HotspotReport, ProjectReport
from repro.corpus.manifest import (
    AppManifest,
    DIRECT_FALSE,
    DIRECT_REAL,
    INDIRECT,
    Seed,
)
from repro.evaluation.table1 import classify
from repro.lang.grammar import DIRECT as DIRECT_LABEL, INDIRECT as INDIRECT_LABEL


def violation(page, category):
    labels = frozenset({DIRECT_LABEL if category == "direct" else INDIRECT_LABEL})
    return Finding(
        file=f"/app/{page}",
        line=1,
        sink="mysql_query",
        nonterminal="X",
        labels=labels,
        check="odd-quotes",
        safe=False,
    )


def report_with(violations):
    spots = [
        HotspotReport(file=f"/app/{page}", line=1, sink="s", findings=[v])
        for page, v in violations
    ]
    return ProjectReport(name="demo", files=1, lines=1, hotspots=spots)


class TestClassify:
    def test_real_direct_matched(self):
        manifest = AppManifest(
            name="demo", seeds=[Seed("a.php", DIRECT_REAL, "x")]
        )
        report = report_with([("a.php", violation("a.php", "direct"))])
        row = classify(report, manifest)
        assert row.direct_real == 1
        assert row.clean

    def test_false_positive_classified(self):
        manifest = AppManifest(
            name="demo", seeds=[Seed("fp.php", DIRECT_FALSE, "x")]
        )
        report = report_with([("fp.php", violation("fp.php", "direct"))])
        row = classify(report, manifest)
        assert row.direct_false == 1
        assert row.direct_real == 0
        assert row.clean

    def test_indirect_matched(self):
        manifest = AppManifest(name="demo", seeds=[Seed("i.php", INDIRECT, "x")])
        report = report_with([("i.php", violation("i.php", "indirect"))])
        row = classify(report, manifest)
        assert row.indirect == 1
        assert row.clean

    def test_unexpected_report_flagged(self):
        manifest = AppManifest(name="demo", seeds=[])
        report = report_with([("surprise.php", violation("surprise.php", "direct"))])
        row = classify(report, manifest)
        assert row.unexpected == ["direct:surprise.php"]
        assert not row.clean

    def test_missed_seed_flagged(self):
        manifest = AppManifest(
            name="demo", seeds=[Seed("missed.php", DIRECT_REAL, "x")]
        )
        report = report_with([])
        row = classify(report, manifest)
        assert row.missed == ["direct:missed.php"]
        assert not row.clean

    def test_page_counted_once_despite_multiple_hotspots(self):
        manifest = AppManifest(
            name="demo", seeds=[Seed("a.php", DIRECT_REAL, "x")]
        )
        report = report_with(
            [
                ("a.php", violation("a.php", "direct")),
                ("a.php", violation("a.php", "direct")),
            ]
        )
        row = classify(report, manifest)
        assert row.direct_real == 1
        assert row.clean

    def test_mixed_categories_same_page(self):
        manifest = AppManifest(
            name="demo",
            seeds=[
                Seed("a.php", DIRECT_REAL, "x"),
                Seed("a.php", INDIRECT, "y"),
            ],
        )
        report = report_with(
            [
                ("a.php", violation("a.php", "direct")),
                ("a.php", violation("a.php", "indirect")),
            ]
        )
        row = classify(report, manifest)
        assert row.direct_real == 1
        assert row.indirect == 1
        assert row.clean


class TestRenderTable:
    def test_render_includes_paper_rows(self):
        from repro.evaluation.table1 import Row, render_table

        rows = [
            Row(
                name="EVE Activity Tracker (1.0)",
                files=8,
                lines=851,
                nonterminals=74,
                productions=90,
                string_seconds=0.1,
                check_seconds=0.1,
                direct_real=4,
                direct_false=0,
                indirect=1,
            )
        ]
        text = render_table(rows)
        assert "EVE Activity Tracker" in text
        assert "(paper)" in text
        assert "false positive rate" in text
