"""Tests for the figure-regeneration module (Figures 2, 4, 5, 6, 8)."""

from repro.evaluation import figures


class TestFigure2:
    def test_vulnerability_reported(self):
        result = figures.figure2()
        assert not result["verified"]
        assert "odd-quotes" in result["violations"]

    def test_attack_derivable_and_unconfined(self):
        result = figures.figure2()
        assert result["attack_query_derivable"]
        assert not result["attack_confined"]

    def test_witness_nonempty(self):
        assert figures.figure2()["witness"]


class TestFigure4:
    def test_direct_label_present(self):
        result = figures.figure4()
        assert result["direct_labeled"] >= 1

    def test_samples_reflect_digit_refinement(self):
        result = figures.figure4()
        assert result["samples"]
        for sample in result["samples"]:
            assert any(c.isdigit() for c in sample), sample

    def test_dump_readable(self):
        assert "->" in figures.figure4()["dump"]


class TestFigure5:
    def test_dataflow_grammar(self):
        result = figures.figure5()
        assert result["derives_s"]

    def test_single_append_no_double(self):
        # both branches append exactly one "s" to the untrusted value;
        # Σ* absorbs anything, so check the branch structure in the dump
        result = figures.figure5()
        assert "φ" in result["dump"] or "cat" in result["dump"]


class TestFigure6:
    def test_cases(self):
        cases = figures.figure6()["cases"]
        assert cases == {"A''B": "A'B", "''''": "''", "'": "'", "A'B": "A'B"}


class TestFigure8:
    def test_explode_pieces(self):
        derives = figures.figure8()["derives"]
        assert derives["a"] and derives["b"] and derives["c"]
        assert not derives["a,b"]
