"""End-to-end Table 1 regression: the tool's reports on the corpus must
match the paper's anatomy exactly, app by app.

These are the headline-result tests.  e107 is big (~30s), so it carries
a marker; the other four apps run in a few seconds each.
"""

import pytest

from repro.analysis.analyzer import analyze_page, analyze_project
from repro.corpus import build_app
from repro.evaluation.table1 import classify


def run_app(tmp_path_factory, name):
    root = tmp_path_factory.mktemp("t1")
    manifest = build_app(root, name)
    report = analyze_project(root / name, manifest.name)
    return classify(report, manifest), report


class TestPerApp:
    def test_eve(self, tmp_path_factory):
        row, report = run_app(tmp_path_factory, "eve_activity_tracker")
        assert (row.direct_real, row.direct_false, row.indirect) == (4, 0, 1)
        assert row.clean, (row.unexpected, row.missed)
        assert not report.parse_errors

    def test_tiger(self, tmp_path_factory):
        row, report = run_app(tmp_path_factory, "tiger_php_news")
        assert (row.direct_real, row.direct_false, row.indirect) == (0, 3, 2)
        assert row.clean, (row.unexpected, row.missed)

    def test_unp(self, tmp_path_factory):
        row, report = run_app(tmp_path_factory, "utopia_news_pro")
        assert (row.direct_real, row.direct_false, row.indirect) == (14, 2, 12)
        assert row.clean, (row.unexpected, row.missed)

    def test_warp_fully_verified(self, tmp_path_factory):
        row, report = run_app(tmp_path_factory, "warp_cms")
        assert (row.direct_real, row.direct_false, row.indirect) == (0, 0, 0)
        assert row.clean, (row.unexpected, row.missed)
        assert report.verified

    @pytest.mark.slow
    def test_e107(self, tmp_path_factory):
        row, report = run_app(tmp_path_factory, "e107")
        assert (row.direct_real, row.direct_false, row.indirect) == (1, 0, 4)
        assert row.clean, (row.unexpected, row.missed)


class TestFigure9And10:
    """The UNP pages behind the paper's Figures 9 and 10."""

    @pytest.fixture(scope="class")
    def unp_root(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("unp")
        build_app(root, "utopia_news_pro")
        return root / "utopia_news_pro"

    def test_figure9_false_positive_reproduced(self, unp_root):
        reports, _ = analyze_page(unp_root, "shownews.php")
        direct = [
            f for r in reports for f in r.violations if f.category == "direct"
        ]
        # ground truth: safe (string→bool cast); the tool reports it —
        # the false positive is *supposed* to happen (paper §5.2)
        assert direct

    def test_figure10_indirect_reproduced(self, unp_root):
        reports, _ = analyze_page(unp_root, "postnews.php")
        indirect = [
            f for r in reports for f in r.violations if f.category == "indirect"
        ]
        assert indirect
        # and the escaped POST fields must NOT yield a direct report
        direct = [
            f for r in reports for f in r.violations if f.category == "direct"
        ]
        assert not direct

    def test_figure2_real_bug_reproduced(self, unp_root):
        reports, _ = analyze_page(unp_root, "useredit.php")
        assert any(not r.verified for r in reports)


class TestFalsePositiveRate:
    def test_paper_rate_from_anatomy(self):
        # Table 1 totals: 5 false positives over 19+5 direct reports
        assert round(5 / (19 + 5), 3) == 0.208
