"""Unit tests for the patch verifier's building blocks: finding keys,
parser round-trip, witness-vector reconstruction, and the workspace."""

from pathlib import Path
from types import SimpleNamespace

from repro.php.parser import parse
from repro.remediate.synthesize import Patch
from repro.remediate.verify import (
    Workspace,
    canonical_render,
    finding_key,
    roundtrip_patch,
    witness_vector,
)


def fake_finding(**overrides):
    base = dict(
        file="/proj/page.php",
        line=3,
        sink="mysql_query",
        policy="",
        check="odd-quotes",
        category="direct",
        witness="a'b",
        provenance=None,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


class TestFindingKey:
    def test_key_is_relative_and_line_free(self, tmp_path):
        page = tmp_path / "sub" / "page.php"
        page.parent.mkdir()
        page.write_text("<?php\n")
        finding = fake_finding(file=str(page))
        assert finding_key(finding, tmp_path) == (
            "sub/page.php", "mysql_query", "sql", "odd-quotes", "direct"
        )

    def test_same_key_across_lines(self, tmp_path):
        page = tmp_path / "p.php"
        page.write_text("<?php\n")
        first = fake_finding(file=str(page), line=3)
        second = fake_finding(file=str(page), line=99)
        assert finding_key(first, tmp_path) == finding_key(second, tmp_path)

    def test_policy_finding_keeps_policy(self, tmp_path):
        page = tmp_path / "p.php"
        page.write_text("<?php\n")
        finding = fake_finding(file=str(page), policy="xss")
        assert finding_key(finding, tmp_path)[2] == "xss"


class TestCanonicalRender:
    def test_ignores_line_and_span_differences(self):
        first = parse("<?php $a = f($x);", "a.php")
        second = parse("<?php\n\n  $a   = f( $x );", "a.php")
        assert canonical_render(first) == canonical_render(second)

    def test_distinguishes_different_programs(self):
        first = parse("<?php $a = f($x);", "a.php")
        second = parse("<?php $a = g($x);", "a.php")
        assert canonical_render(first) != canonical_render(second)


class TestRoundtrip:
    SOURCE = "<?php mysql_query($q);\n"

    def _patch(self, replacement):
        start = self.SOURCE.index("$q")
        return Patch(
            file="p.php",
            kind="prepared",
            replacements=[(start, start + 2, replacement)],
        )

    def test_clean_splice_round_trips(self):
        patch = self._patch("sqlciv_prepare('SELECT 1', array())")
        assert roundtrip_patch(patch.apply(self.SOURCE), patch, "p.php") is None

    def test_unparseable_patched_file(self):
        patch = self._patch("if (")
        failure = roundtrip_patch(patch.apply(self.SOURCE), patch, "p.php")
        assert failure is not None
        assert failure.startswith("patched file no longer parses")

    def test_replacement_must_be_one_expression(self):
        # the spliced text parses in context but is not a single
        # stand-alone expression — the round-trip must refuse it
        patch = self._patch("$a), mysql_query($b")
        failure = roundtrip_patch(patch.apply(self.SOURCE), patch, "p.php")
        assert failure is not None


class TestWitnessVector:
    def test_get_source_builds_get_vector(self):
        finding = fake_finding(
            provenance=SimpleNamespace(
                sources=[{"name": "_GET", "key": "id"}]
            )
        )
        vector = witness_vector(finding)
        assert vector.get == {"id": "a'b"}
        assert vector.post == {}

    def test_mixed_tables(self):
        finding = fake_finding(
            provenance=SimpleNamespace(
                sources=[
                    {"name": "_POST", "key": "name"},
                    {"name": "_COOKIE", "key": "sid"},
                ]
            )
        )
        vector = witness_vector(finding)
        assert vector.post == {"name": "a'b"}
        assert vector.cookie == {"sid": "a'b"}

    def test_default_attack_when_no_witness(self):
        finding = fake_finding(
            witness="",
            provenance=SimpleNamespace(
                sources=[{"name": "_GET", "key": "id"}]
            ),
        )
        assert witness_vector(finding).get == {"id": "' OR '1'='1"}

    def test_unkeyed_source_is_not_constructible(self):
        finding = fake_finding(
            provenance=SimpleNamespace(
                sources=[{"name": "db", "key": None}]
            )
        )
        assert witness_vector(finding) is None

    def test_no_provenance(self):
        assert witness_vector(fake_finding(provenance=None)) is None


class TestWorkspace:
    def test_scratch_copy_isolation(self, tmp_path):
        root = tmp_path / "app"
        root.mkdir()
        page = root / "index.php"
        page.write_text("<?php $a = 1;\n")
        workspace = Workspace(root)
        try:
            assert workspace.read(page) == "<?php $a = 1;\n"
            workspace.write(page, "<?php $a = 2;\n")
            # the real tree is untouched; the scratch copy changed
            assert page.read_text() == "<?php $a = 1;\n"
            assert workspace.read(page) == "<?php $a = 2;\n"
            scratch = workspace.map_path(page)
            assert Path(scratch).read_text() == "<?php $a = 2;\n"
        finally:
            workspace.close()
        assert not workspace.root.exists()
