"""End-to-end remediation on synthetic apps: the candidate ladder, the
oracle cross-check, apply + idempotence, the ``sqlciv fix`` CLI, and the
daemon's ``fix`` op."""

import json

import pytest

from repro.analysis.cli import EXIT_USAGE, EXIT_VERIFIED, main as cli_main
from repro.analysis.policies import PolicyConfig
from repro.remediate import remediate_project
from repro.remediate.engine import (
    STATUS_FIXED_PREPARED,
    STATUS_FIXED_SANITIZER,
    STATUS_UNFIXABLE,
)
from repro.remediate.synthesize import PREPARE_SHIM, REASON_MID_LITERAL
from repro.remediate.verify import ORACLE_CONFIRMED
from repro.server.daemon import AnalysisDaemon
from repro.server.protocol import ProtocolError, parse_request

PREPARED_PAGE = (
    "<?php\n"
    "$id = $_GET['id'];\n"
    "mysql_query(\"SELECT * FROM t WHERE name='$id'\");\n"
)

MID_LITERAL_PAGE = (
    "<?php\n"
    "$q = $_GET['q'];\n"
    "mysql_query(\"SELECT * FROM t WHERE name LIKE '%$q%'\");\n"
)

DB_XSS_PAGE = (
    "<?php\n"
    "$r = mysql_fetch_array(mysql_query(\"SELECT x FROM t\"));\n"
    "echo \"<b>\" . $r['x'] . \"</b>\";\n"
)


def make_app(tmp_path, source, name="app"):
    root = tmp_path / name
    root.mkdir()
    (root / "index.php").write_text(source)
    return root


class TestPreparedRewrite:
    def test_end_to_end_with_oracle(self, tmp_path):
        root = make_app(tmp_path, PREPARED_PAGE)
        report = remediate_project(root)
        (entry,) = report.entries
        assert entry.status == STATUS_FIXED_PREPARED
        assert entry.oracle == ORACLE_CONFIRMED
        assert entry.file == "index.php"
        assert PREPARE_SHIM in entry.diff
        assert entry.verification["verified"] is True
        # nothing applied: the real tree is untouched
        assert (root / "index.php").read_text() == PREPARED_PAGE
        # the report is JSON-serializable as-is
        json.dumps(report.as_dict())

    def test_sarif_fixes_are_keyed_by_finding(self, tmp_path):
        root = make_app(tmp_path, PREPARED_PAGE)
        report = remediate_project(root, oracle=False)
        fixes = report.sarif_fixes()
        ((key, fix_list),) = fixes.items()
        assert key[0] == "index.php" and key[2] == "mysql_query"
        (fix,) = fix_list
        (change,) = fix["artifactChanges"]
        (replacement,) = change["replacements"]
        assert PREPARE_SHIM in replacement["insertedContent"]["text"]

    def test_apply_and_idempotence(self, tmp_path):
        root = make_app(tmp_path, PREPARED_PAGE)
        first = remediate_project(root, apply=True, oracle=False)
        assert first.applied
        patched = (root / "index.php").read_text()
        assert PREPARE_SHIM in patched
        second = remediate_project(root, oracle=False)
        assert second.entries == []
        assert second.patches == []
        assert (root / "index.php").read_text() == patched


class TestSanitizerRung:
    def test_mid_literal_falls_through_to_sanitizer(self, tmp_path):
        root = make_app(tmp_path, MID_LITERAL_PAGE)
        report = remediate_project(root, oracle=False)
        (entry,) = report.entries
        assert entry.status == STATUS_FIXED_SANITIZER
        assert entry.reasons["prepared"] == REASON_MID_LITERAL
        assert "mysql_real_escape_string($_GET['q'])" in entry.diff

    def test_sanitized_tree_is_idempotent(self, tmp_path):
        root = make_app(tmp_path, MID_LITERAL_PAGE)
        remediate_project(root, apply=True, oracle=False)
        second = remediate_project(root, oracle=False)
        assert second.entries == []


class TestUnfixable:
    def test_indirect_source_gets_guard_fallback(self, tmp_path):
        root = make_app(tmp_path, DB_XSS_PAGE)
        policies = PolicyConfig(enabled=("sql", "xss"))
        guard_dir = tmp_path / "guards"
        report = remediate_project(
            root, policies=policies, guard_dir=guard_dir, oracle=False
        )
        unfixable = [e for e in report.entries if e.status == STATUS_UNFIXABLE]
        assert unfixable, "expected an unfixable xss finding"
        for entry in unfixable:
            assert entry.policy == "xss"
            # machine-readable reasons for every candidate rung
            assert entry.reasons.get("prepared") == "not-a-sql-sink"
            assert entry.reasons.get("sanitize")
            # self-testing guard profile written to disk
            assert entry.guard_path
            with open(entry.guard_path, encoding="utf-8") as handle:
                profile = json.load(handle)
            assert profile["self_test"]["example_accepted"] is True
            assert entry.guard_self_test == profile["self_test"]


class TestFixCli:
    def test_json_sarif_and_diff_dir(self, tmp_path, capsys):
        root = make_app(tmp_path, PREPARED_PAGE)
        sarif = tmp_path / "out.sarif"
        diff_dir = tmp_path / "diffs"
        code = cli_main([
            "fix", str(root), "--json", "--no-oracle",
            "--sarif", str(sarif), "--diff-dir", str(diff_dir),
        ])
        assert code == EXIT_VERIFIED
        document = json.loads(capsys.readouterr().out)
        assert document["fixed"] == 1 and document["unfixable"] == 0
        log = json.loads(sarif.read_text())
        results = log["runs"][0]["results"]
        fixed = [r for r in results if "fixes" in r]
        assert len(fixed) == 1
        diffs = list(diff_dir.glob("fix-*.diff"))
        assert len(diffs) == 1
        assert PREPARE_SHIM in diffs[0].read_text()

    def test_text_report_renders_status(self, tmp_path, capsys):
        root = make_app(tmp_path, PREPARED_PAGE)
        code = cli_main(["fix", str(root), "--no-oracle"])
        assert code == EXIT_VERIFIED
        out = capsys.readouterr().out
        assert "1 fixed / 0 unfixable" in out
        assert STATUS_FIXED_PREPARED in out

    def test_bad_root_is_usage_error(self, tmp_path, capsys):
        code = cli_main(["fix", str(tmp_path / "missing")])
        assert code == EXIT_USAGE

    def test_apply_writes_the_tree(self, tmp_path, capsys):
        root = make_app(tmp_path, PREPARED_PAGE)
        code = cli_main(["fix", str(root), "--apply", "--no-oracle"])
        assert code == EXIT_VERIFIED
        assert PREPARE_SHIM in (root / "index.php").read_text()


class TestDaemonFixOp:
    def test_fix_apply_invalidates_and_converges(self, tmp_path):
        root = make_app(tmp_path, PREPARED_PAGE)
        daemon = AnalysisDaemon(root)
        before = daemon.op_analyze({"audit": False})
        assert before["exit_code"] == 1
        result = daemon.op_fix({"apply": True, "oracle": False})
        assert result["applied"] is True
        assert result["fixed"] == 1
        assert result["invalidated"]["invalidated_pages"] == ["index.php"]
        assert result["invalidated"]["changed"] == ["index.php"]
        after = daemon.op_analyze({"audit": False})
        assert after["exit_code"] == 0
        again = daemon.op_fix({"oracle": False})
        assert again["findings"] == 0 and again["applied"] is False

    def test_fix_rejects_pages_outside_root(self, tmp_path):
        root = make_app(tmp_path, PREPARED_PAGE)
        daemon = AnalysisDaemon(root)
        with pytest.raises(ProtocolError):
            daemon.op_fix({"pages": ["../outside.php"]})
        with pytest.raises(ProtocolError):
            daemon.op_fix({"pages": ["missing.php"]})

    def test_protocol_validates_fix_requests(self):
        parsed = parse_request(
            '{"op": "fix", "pages": ["index.php"], "apply": true}'
        )
        assert parsed["op"] == "fix"
        assert parsed["params"] == {"pages": ["index.php"], "apply": True}
        with pytest.raises(ProtocolError):
            parse_request('{"op": "fix", "bogus": 1}')
        with pytest.raises(ProtocolError):
            parse_request('{"op": "fix", "apply": "yes"}')
