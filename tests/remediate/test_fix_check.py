"""``sqlciv fuzz --fix-check``: the post-minimization remediation
attempt.  Divergences come from deliberately broken abstract models (the
planted-divergence pattern from the differential tests), so the engine
runs with the same broken model — what matters is the outcome contract:
patch counts, statuses, and whether the divergence survives the patch."""

from pathlib import Path

import pytest

from repro.oracle.fuzz import attempt_fix, diff_page, render_fix_check
from repro.oracle.interp import InputVector
from repro.php import builtins


@pytest.fixture
def broken_trim():
    """A language-preserving but taint-dropping trim model: the static
    shell verdict goes wrongly safe, producing a verdict divergence."""
    original = builtins.BUILTINS["trim"]
    builtins.BUILTINS["trim"] = builtins._regular_handler(r".*", "broken_trim")
    yield
    builtins.BUILTINS["trim"] = original


@pytest.fixture
def broken_addslashes():
    """An addslashes model whose language excludes the concrete output:
    a membership divergence with no statically-unsafe finding to patch."""
    original = builtins.BUILTINS["addslashes"]
    builtins.BUILTINS["addslashes"] = builtins._regular_handler(
        r"[0-9a-zA-Z ]*", "broken_addslashes"
    )
    yield
    builtins.BUILTINS["addslashes"] = original


def write_app(tmp_path: Path, source: str) -> Path:
    app = tmp_path / "app"
    app.mkdir()
    (app / "index.php").write_text(source)
    return app


class TestAttemptFix:
    def test_surviving_divergence_is_reported(self, tmp_path, broken_trim):
        # the shell divergence rides on a statically-safe sink; the SQL
        # finding on the same page gets a verified prepared rewrite, and
        # replaying the divergence on the patched tree shows it survives
        app = write_app(
            tmp_path,
            "<?php\n"
            "$id = $_GET['id'];\n"
            "$d = trim($id);\n"
            'system("ls -l " . $d);\n'
            "mysql_query(\"SELECT * FROM t WHERE name='$id'\");\n",
        )
        vector = InputVector(get={"id": "; id"})
        divergences = diff_page(app, "index.php", [vector], policy="shell")
        assert [d.kind for d in divergences] == ["verdict"]
        outcome = attempt_fix(
            app, "index.php", vector, "verdict", policy="shell"
        )
        assert outcome["attempted"] is True
        assert outcome["fixed"] == 1
        assert outcome["statuses"] == ["fixed-prepared"]
        assert outcome["survives"] is True
        assert "SURVIVES" in render_fix_check(outcome)
        # the attempt ran on a scratch copy: the reproducer is untouched
        assert "sqlciv_prepare" not in (app / "index.php").read_text()

    def test_no_patch_when_nothing_is_statically_unsafe(
        self, tmp_path, broken_addslashes
    ):
        app = write_app(
            tmp_path,
            "<?php\n"
            "$id = addslashes($_GET['id']);\n"
            "mysql_query(\"SELECT * FROM t WHERE name='$id'\");\n",
        )
        vector = InputVector(get={"id": "a'b"})
        divergences = diff_page(app, "index.php", [vector])
        assert [d.kind for d in divergences] == ["membership"]
        outcome = attempt_fix(app, "index.php", vector, "membership")
        assert outcome["fixed"] == 0
        assert outcome["unfixable"] == 0
        assert outcome["survives"] is None
        assert render_fix_check(outcome).endswith("no verified patch")


class TestRenderFixCheck:
    def test_eliminated(self):
        line = render_fix_check(
            {"fixed": 2, "unfixable": 1, "survives": False}
        )
        assert line == (
            "fix-check: 2 patched / 1 unfixable — divergence eliminated "
            "by the patch"
        )

    def test_engine_error(self):
        line = render_fix_check({"error": "ValueError: boom"})
        assert line == "fix-check: engine error — ValueError: boom"
