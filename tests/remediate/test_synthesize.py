"""Unit tests for candidate-patch synthesis (templates, rendering,
machine-readable inapplicability reasons)."""

from types import SimpleNamespace

import pytest

from repro.php.parser import parse
from repro.remediate.synthesize import (
    PREPARE_SHIM,
    REASON_ALL_HOLES,
    REASON_MID_LITERAL,
    REASON_NO_HOLES,
    REASON_NO_SANITIZER,
    REASON_NO_SOURCES,
    REASON_SINK_NOT_FOUND,
    REASON_SOURCE_NO_SPAN,
    Patch,
    build_template,
    find_sink_argument,
    flatten_query,
    php_single_quote,
    render_expr,
    sanitizer_for,
    synthesize_prepared,
    synthesize_sanitizer,
)


def sink_arg(source: str, sink: str = "mysql_query", line: int = 1):
    tree = parse(source, "page.php")
    arg = find_sink_argument(tree, line, sink)
    assert arg is not None
    return tree, arg


def fake_finding(**overrides):
    base = dict(
        file="page.php",
        line=1,
        sink="mysql_query",
        policy="",
        check="odd-quotes",
        witness="a'b",
        provenance=None,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


class TestPhpSingleQuote:
    def test_plain(self):
        assert php_single_quote("abc") == "'abc'"

    def test_escapes_quote_and_backslash(self):
        assert php_single_quote("a'b\\c") == "'a\\'b\\\\c'"


class TestRenderExpr:
    @pytest.mark.parametrize(
        "expr_src, rendered",
        [
            ("$x", "$x"),
            ("$row['name']", "$row['name']"),
            ("$obj->field", "$obj->field"),
            ("trim($x)", "trim($x)"),
            ("$a . $b", "($a . $b)"),
            ("(int)$x", "(int)$x"),
            ("-$n", "-$n"),
            ("@f($x)", "@f($x)"),
            ("MY_CONST", "MY_CONST"),
            ("f(1, 'two')", "f(1, 'two')"),
        ],
    )
    def test_rendering(self, expr_src, rendered):
        _, arg = sink_arg(f"<?php mysql_query({expr_src});")
        assert render_expr(arg) == rendered

    def test_rendered_holes_are_valid_php(self):
        _, arg = sink_arg("<?php mysql_query($row['name']);")
        rendered = render_expr(arg)
        parse(f"<?php f({rendered});", "check.php")


class TestFlattenAndTemplate:
    def test_interpolated_quoted_hole_swallows_quotes(self):
        _, arg = sink_arg(
            "<?php mysql_query(\"SELECT * FROM t WHERE name='$x' AND id=$y\");"
        )
        parts = flatten_query(arg)
        template, holes, reason = build_template(parts)
        assert reason is None
        assert template == "SELECT * FROM t WHERE name=? AND id=?"
        assert [render_expr(hole) for hole in holes] == ["$x", "$y"]

    def test_concatenated_quoted_hole_swallows_quotes(self):
        _, arg = sink_arg(
            "<?php mysql_query(\"SELECT * FROM t WHERE name='\" . $x . \"'\");"
        )
        template, holes, reason = build_template(flatten_query(arg))
        assert reason is None
        assert template == "SELECT * FROM t WHERE name=?"
        assert len(holes) == 1

    def test_hole_mid_literal_is_rejected(self):
        _, arg = sink_arg(
            "<?php mysql_query(\"SELECT * FROM t WHERE name LIKE '%$x%'\");"
        )
        _, _, reason = build_template(flatten_query(arg))
        assert reason == REASON_MID_LITERAL

    def test_adjacent_literals_merge(self):
        _, arg = sink_arg(
            "<?php mysql_query('SELECT * FROM ' . 't WHERE id=' . $x);"
        )
        parts = flatten_query(arg)
        assert parts[0] == ("lit", "SELECT * FROM t WHERE id=")
        template, _, reason = build_template(parts)
        assert reason is None
        assert template == "SELECT * FROM t WHERE id=?"


class TestSynthesizePrepared:
    SOURCE = "<?php\nmysql_query(\"SELECT * FROM t WHERE name='$id'\");\n"

    def test_builds_prepare_shim_call(self):
        tree = parse(self.SOURCE, "page.php")
        finding = fake_finding(line=2)
        patch, reason = synthesize_prepared(self.SOURCE, tree, finding)
        assert reason == ""
        assert patch.kind == "prepared"
        (start, end, replacement), = patch.replacements
        assert replacement == (
            f"{PREPARE_SHIM}('SELECT * FROM t WHERE name=?', array($id))"
        )
        patched = patch.apply(self.SOURCE)
        parse(patched, "page.php")   # the patched file still parses
        assert PREPARE_SHIM in patched

    def test_literal_query_has_no_holes(self):
        source = "<?php mysql_query('SELECT 1');\n"
        patch, reason = synthesize_prepared(
            source, parse(source, "p.php"), fake_finding()
        )
        assert patch is None
        assert reason == REASON_NO_HOLES

    def test_all_hole_query_has_no_trusted_context(self):
        source = "<?php mysql_query($q);\n"
        patch, reason = synthesize_prepared(
            source, parse(source, "p.php"), fake_finding()
        )
        assert patch is None
        assert reason == REASON_ALL_HOLES

    def test_missing_sink_call(self):
        source = "<?php $a = 1;\n"
        patch, reason = synthesize_prepared(
            source, parse(source, "p.php"), fake_finding()
        )
        assert patch is None
        assert reason == REASON_SINK_NOT_FOUND


class TestSanitizer:
    def test_sql_quoted_checks_get_escaping(self):
        assert sanitizer_for(fake_finding(check="odd-quotes")) == (
            "mysql_real_escape_string(", ")"
        )

    def test_sql_unquoted_checks_get_intval(self):
        assert sanitizer_for(fake_finding(check="numeric")) == ("intval(", ")")

    @pytest.mark.parametrize(
        "policy, opener",
        [
            ("xss", "htmlspecialchars("),
            ("shell", "escapeshellarg("),
            ("path", "basename("),
        ],
    )
    def test_policy_sanitizers(self, policy, opener):
        assert sanitizer_for(fake_finding(policy=policy))[0] == opener

    def test_eval_has_no_sanitizer(self):
        assert sanitizer_for(fake_finding(policy="eval")) is None

    def _harness(self, source):
        tree = parse(source, "page.php")
        return (lambda _file: source), (lambda _file: tree)

    def test_wraps_source_expression_span(self):
        source = "<?php\n$id = $_GET['id'];\nmysql_query($sql);\n"
        start = source.index("$_GET['id']")
        span = (start, start + len("$_GET['id']"))
        finding = fake_finding(
            provenance=SimpleNamespace(
                sources=[{"name": "_GET", "key": "id", "file": "page.php",
                          "span": list(span)}]
            )
        )
        read, parse_src = self._harness(source)
        patch, reason = synthesize_sanitizer(finding, read, parse_src)
        assert reason == ""
        assert patch.kind == "sanitize"
        assert patch.replacements == [
            (span[0], span[1], "mysql_real_escape_string($_GET['id'])")
        ]
        assert "mysql_real_escape_string($_GET['id'])" in patch.apply(source)

    def test_source_without_span_is_rejected(self):
        finding = fake_finding(
            provenance=SimpleNamespace(
                sources=[{"name": "db", "file": "page.php", "span": None}]
            )
        )
        read, parse_src = self._harness("<?php $a = 1;\n")
        patch, reason = synthesize_sanitizer(finding, read, parse_src)
        assert patch is None
        assert reason == REASON_SOURCE_NO_SPAN

    def test_no_provenance_sources(self):
        finding = fake_finding(provenance=SimpleNamespace(sources=[]))
        read, parse_src = self._harness("<?php $a = 1;\n")
        patch, reason = synthesize_sanitizer(finding, read, parse_src)
        assert patch is None
        assert reason == REASON_NO_SOURCES

    def test_eval_policy_has_no_insertable_fix(self):
        finding = fake_finding(policy="eval", provenance=None)
        read, parse_src = self._harness("<?php $a = 1;\n")
        patch, reason = synthesize_sanitizer(finding, read, parse_src)
        assert patch is None
        assert reason == REASON_NO_SANITIZER


class TestPatch:
    def test_apply_splices_in_reverse_offset_order(self):
        patch = Patch(
            file="p.php",
            kind="sanitize",
            replacements=[(0, 1, "AA"), (2, 3, "BB")],
        )
        assert patch.apply("xyz") == "AAyBB"

    def test_unified_diff_names_the_file(self):
        patch = Patch(
            file="p.php", kind="prepared", replacements=[(6, 7, "meow")]
        )
        diff = patch.unified_diff("hello cat\n", "sub/p.php")
        assert "--- a/sub/p.php" in diff
        assert "+++ b/sub/p.php" in diff
        assert "+hello meowat" in diff
