"""Corpus-wide remediation: the ISSUE acceptance bar.

* at least 70% of SQL-policy findings across the five corpus apps get a
  verified patch (prepared rewrite or sanitizer insertion);
* every unfixable finding carries machine-readable reasons and a
  self-testing guard profile whose accept and reject examples both pass;
* ``fix --apply`` is idempotent under every policy: a second engine run
  over the patched tree synthesizes nothing and reports no new findings;
* the patched trees of two apps re-analyze to checked-in goldens.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.analyzer import entry_pages, run_pages
from repro.analysis.policies import PolicyConfig
from repro.analysis.policies.registry import REGISTRY
from repro.analysis.reports import json_document
from repro.corpus import APPS, build_app
from repro.remediate import remediate_project

GOLDEN = Path(__file__).parent / "golden"

APP_DIRS = [app_dir for _, app_dir in APPS]

ALL_POLICIES = PolicyConfig(enabled=tuple(REGISTRY))

#: apps whose patched trees are pinned byte-exactly (satellite: the CI
#: remediation-smoke job replays the same two apps)
GOLDEN_APPS = ("eve_activity_tracker", "tiger_php_news")


def entry_signature(entry):
    return (entry.file, entry.line, entry.sink, entry.check, entry.policy)


@pytest.fixture(scope="module")
def allpol_runs(tmp_path_factory):
    """Per app: remediate under every policy with ``apply``, then run
    the engine a second time over the patched tree."""
    out = {}
    for app_dir in APP_DIRS:
        tmp = tmp_path_factory.mktemp(f"fix_{app_dir}")
        build_app(tmp, app_dir)
        root = tmp / app_dir
        first = remediate_project(
            root, policies=ALL_POLICIES, apply=True, oracle=False,
            guard_dir=tmp / "guards",
        )
        second = remediate_project(root, policies=ALL_POLICIES, oracle=False)
        out[app_dir] = (first, second)
    return out


@pytest.fixture(scope="module")
def sql_fixed_apps(tmp_path_factory):
    """The two golden apps remediated under the classic SQL policy with
    the concrete oracle cross-check enabled, patches applied."""
    out = {}
    for app_dir in GOLDEN_APPS:
        tmp = tmp_path_factory.mktemp(f"sqlfix_{app_dir}")
        build_app(tmp, app_dir)
        root = tmp / app_dir
        report = remediate_project(root, apply=True, oracle=True)
        out[app_dir] = (root, report)
    return out


class TestFixRate:
    def test_sql_fix_rate_meets_the_bar(self, allpol_runs):
        fixed = total = 0
        for first, _second in allpol_runs.values():
            sql_entries = [e for e in first.entries if e.policy == "sql"]
            total += len(sql_entries)
            fixed += sum(1 for e in sql_entries if e.fixed)
        assert total >= 40, f"corpus lost SQL findings ({total})"
        assert fixed / total >= 0.70, f"fix rate {fixed}/{total}"

    def test_both_patch_kinds_occur(self, allpol_runs):
        statuses = {
            entry.status
            for first, _second in allpol_runs.values()
            for entry in first.entries
        }
        assert "fixed-prepared" in statuses
        assert "fixed-sanitizer" in statuses

    def test_every_kept_patch_has_a_diff_and_verification(self, allpol_runs):
        for first, _second in allpol_runs.values():
            assert len(first.diffs) == len(first.patches)
            for entry in first.entries:
                if entry.fixed and entry.status != "fixed-by-earlier-patch":
                    assert entry.diff
                    assert entry.verification["verified"] is True


class TestUnfixable:
    def test_reasons_are_machine_readable(self, allpol_runs):
        for first, _second in allpol_runs.values():
            for entry in first.unfixable:
                assert entry.reasons, entry_signature(entry)
                for rung, reason in entry.reasons.items():
                    assert rung in ("prepared", "sanitize")
                    assert reason and " " not in reason.split(":")[0]

    def test_guard_self_tests_pass(self, allpol_runs):
        guards = 0
        for first, _second in allpol_runs.values():
            for entry in first.unfixable:
                guards += 1
                assert entry.guard_self_test == {
                    "example_accepted": True,
                    "witness_rejected": True,
                }, entry_signature(entry)
                assert entry.guard_path
                with open(entry.guard_path, encoding="utf-8") as handle:
                    profile = json.load(handle)
                assert profile["examples"]["accept"] is not None
                assert profile["examples"]["reject"]
        assert guards, "expected unfixable findings in the corpus"


class TestIdempotence:
    def test_second_run_synthesizes_nothing(self, allpol_runs):
        for app_dir, (first, second) in allpol_runs.items():
            assert second.patches == [], app_dir
            assert second.fixed == [], app_dir
            assert not second.applied, app_dir

    def test_second_run_sees_exactly_the_unfixable_findings(
        self, allpol_runs
    ):
        # line-free signatures: a prepared rewrite can collapse a
        # multi-line sink argument, shifting later line numbers
        for app_dir, (first, second) in allpol_runs.items():
            before = sorted(
                (e.file, e.sink, e.check, e.policy, e.category)
                for e in first.unfixable
            )
            after = sorted(
                (e.file, e.sink, e.check, e.policy, e.category)
                for e in second.entries
            )
            assert after == before, app_dir


class TestSqlRemediationWithOracle:
    def test_every_sql_finding_is_fixed(self, sql_fixed_apps):
        for app_dir, (_root, report) in sql_fixed_apps.items():
            assert report.entries, app_dir
            assert report.unfixable == [], app_dir
            assert report.applied, app_dir

    def test_oracle_confirms_fixes(self, sql_fixed_apps):
        confirmed = [
            entry
            for _root, report in sql_fixed_apps.values()
            for entry in report.entries
            if entry.oracle == "confirmed"
        ]
        assert confirmed, "expected concrete oracle confirmation"

    @pytest.mark.parametrize("app_dir", GOLDEN_APPS)
    def test_patched_tree_matches_golden(self, sql_fixed_apps, app_dir):
        root, _report = sql_fixed_apps[app_dir]
        pages = entry_pages(root)
        results = run_pages(root, pages, audit=True, jobs=1)
        rendered = json.dumps(json_document(root, results), indent=2)
        rendered = rendered.replace(str(root), "<ROOT>") + "\n"
        assert rendered == (GOLDEN / f"{app_dir}.fixed.json").read_text()
