"""The enforcement compiler and its stdlib-only runtime checker.

Guards are compiled from real analysis output: a tiny page is run
through the string-taint analysis, the unsafe finding's hotspot scope
grammar becomes a safe-query-automaton profile, and the profile must
accept confined queries, reject the attack shape, and survive a JSON
round-trip into the standalone runtime."""

import json

from repro.analysis.analyzer import _check_spot
from repro.analysis.stringtaint import StringTaintAnalysis
from repro.remediate import guard_runtime
from repro.remediate.guard import (
    _shortest_via,
    compile_guard,
    safe_hole_intervals,
)
from repro.remediate.guard_runtime import (
    GUARD_PROFILE_VERSION,
    GuardChecker,
    check_query,
)


def analyze_unsafe(tmp_path, source):
    """Build a one-page app, return (grammar, hotspot, unsafe finding)."""
    root = tmp_path / "app"
    root.mkdir()
    (root / "index.php").write_text(source)
    analysis = StringTaintAnalysis(root)
    result = analysis.analyze_file(root / "index.php")
    for spot in result.hotspots:
        report = _check_spot(result.grammar, spot, None)
        for finding in report.findings:
            if not finding.safe:
                return result.grammar, spot, finding
    raise AssertionError("expected an unsafe finding")


QUOTED_PAGE = (
    "<?php\n"
    "$id = $_GET['id'];\n"
    "mysql_query(\"SELECT * FROM t WHERE name='$id'\");\n"
)

UNQUOTED_PAGE = (
    "<?php\n"
    "$id = $_GET['id'];\n"
    "mysql_query(\"SELECT * FROM t WHERE id=$id\");\n"
)


class TestSafeHoleIntervals:
    def test_quoted_sql_excludes_quotes(self):
        intervals = safe_hole_intervals("odd-quotes", "")
        banned = {ord("'"), ord('"'), ord("\\")}
        for lo, hi in intervals:
            assert not banned.intersection(range(lo, hi + 1))
        allowed = {
            code for lo, hi in intervals for code in range(lo, hi + 1)
        }
        assert ord("a") in allowed and ord(" ") in allowed

    def test_unquoted_sql_is_numeric_shape(self):
        assert safe_hole_intervals("numeric", "sql") is None

    def test_eval_is_empty_string_only(self):
        assert safe_hole_intervals("anything", "eval") == ()

    def test_shell_excludes_metacharacters(self):
        intervals = safe_hole_intervals("shell-metacharacter", "shell")
        allowed = {
            code for lo, hi in intervals for code in range(lo, hi + 1)
        }
        for banned in ";|&`$":
            assert ord(banned) not in allowed


class TestCompileGuard:
    def test_quoted_guard_accepts_confined_rejects_breakout(self, tmp_path):
        grammar, spot, finding = analyze_unsafe(tmp_path, QUOTED_PAGE)
        profile = compile_guard(
            grammar, spot.query.nt, finding,
            site={"file": "index.php", "line": 3},
        )
        assert profile["version"] == GUARD_PROFILE_VERSION
        assert profile["holes"]
        checker = GuardChecker(profile)
        assert checker.check("SELECT * FROM t WHERE name='abc'")
        assert checker.check("SELECT * FROM t WHERE name=''")
        assert not checker.check("SELECT * FROM t WHERE name='a' OR '1'='1'")
        assert not checker.check("SELECT * FROM t WHERE name='a'b'")

    def test_self_test_is_recorded_and_passes(self, tmp_path):
        grammar, spot, finding = analyze_unsafe(tmp_path, QUOTED_PAGE)
        profile = compile_guard(grammar, spot.query.nt, finding)
        assert profile["self_test"] == {
            "example_accepted": True,
            "witness_rejected": True,
        }
        # the recorded examples genuinely produce those verdicts
        assert check_query(profile, profile["examples"]["accept"])
        assert not check_query(profile, profile["examples"]["reject"])

    def test_unquoted_guard_bans_quote_characters(self, tmp_path):
        # the cascade fires odd-quotes on an unconstrained GET hole, so
        # the compiled guard's hole language excludes quote characters
        grammar, spot, finding = analyze_unsafe(tmp_path, UNQUOTED_PAGE)
        assert finding.check == "odd-quotes"
        profile = compile_guard(grammar, spot.query.nt, finding)
        checker = GuardChecker(profile)
        assert checker.check("SELECT * FROM t WHERE id=42")
        assert not checker.check("SELECT * FROM t WHERE id='1'")

    def test_numeric_check_guard_confines_to_integers(self, tmp_path):
        from types import SimpleNamespace

        grammar, spot, _ = analyze_unsafe(tmp_path, UNQUOTED_PAGE)
        finding = SimpleNamespace(
            check="numeric", policy="", example_query="", witness="1 OR 1=1"
        )
        profile = compile_guard(grammar, spot.query.nt, finding)
        checker = GuardChecker(profile)
        assert checker.check("SELECT * FROM t WHERE id=42")
        assert checker.check("SELECT * FROM t WHERE id=-7")
        assert not checker.check("SELECT * FROM t WHERE id=1 OR 1=1")
        assert not checker.check("SELECT * FROM t WHERE id=")

    def test_profile_round_trips_through_json(self, tmp_path):
        grammar, spot, finding = analyze_unsafe(tmp_path, QUOTED_PAGE)
        profile = compile_guard(grammar, spot.query.nt, finding)
        revived = json.loads(json.dumps(profile))
        checker = GuardChecker(revived)
        assert checker.check(profile["examples"]["accept"])
        assert not checker.check(profile["examples"]["reject"])

    def test_site_metadata_is_preserved(self, tmp_path):
        grammar, spot, finding = analyze_unsafe(tmp_path, QUOTED_PAGE)
        site = {"file": "index.php", "line": 3, "sink": "mysql_query"}
        profile = compile_guard(grammar, spot.query.nt, finding, site=site)
        assert profile["site"] == site
        assert profile["generator"] == "sqlciv"


class TestShortestVia:
    PROFILE = {
        "version": GUARD_PROFILE_VERSION,
        "start": "S",
        "holes": ["H"],
        "productions": {
            "S": [
                [["lit", "z"]],
                [["lit", "a"], ["nt", "H"], ["lit", "b"]],
            ],
            "H": [[], [["nt", "H"], ["set", [[48, 57]]]]],
        },
    }

    def test_routes_through_the_marked_hole(self):
        # the plain shortest string is "z", which never touches H; the
        # via-string must take the a-H-b alternative instead
        checker = GuardChecker(self.PROFILE)
        assert checker.shortest_string() == "z"
        assert _shortest_via(checker, {"H"}, "S") == "ab"

    def test_marked_start_falls_back_to_plain_shortest(self):
        checker = GuardChecker(self.PROFILE)
        assert _shortest_via(checker, {"S"}, "S") == "z"

    def test_unreachable_mark_yields_none(self):
        checker = GuardChecker(self.PROFILE)
        assert _shortest_via(checker, {"X"}, "S") is None


class TestGuardRuntimeCli:
    def _write_profile(self, tmp_path):
        grammar, spot, finding = analyze_unsafe(tmp_path, QUOTED_PAGE)
        profile = compile_guard(grammar, spot.query.nt, finding)
        path = tmp_path / "guard.json"
        path.write_text(json.dumps(profile))
        return path, profile

    def test_accept_exits_zero(self, tmp_path, capsys):
        path, profile = self._write_profile(tmp_path)
        code = guard_runtime.main([str(path), profile["examples"]["accept"]])
        assert code == 0
        assert capsys.readouterr().out.strip() == "accept"

    def test_reject_exits_one(self, tmp_path, capsys):
        path, profile = self._write_profile(tmp_path)
        code = guard_runtime.main([str(path), profile["examples"]["reject"]])
        assert code == 1
        assert capsys.readouterr().out.strip() == "reject"

    def test_usage_exits_two(self, capsys):
        assert guard_runtime.main([]) == 2
        assert "usage" in capsys.readouterr().err
