"""Unit tests for the deterministic work-stealing scheduler.

Everything runs under :meth:`WorkStealingScheduler.simulate`'s fake
clock — no processes, no wall time — so stealing behaviour, LPT
placement, and determinism are exact assertions, not timing hopes.
"""

import random

from repro.farm.scheduler import FarmTask, WorkStealingScheduler


def make_tasks(costs):
    return [
        FarmTask(seq, "page", cost) for seq, cost in enumerate(costs)
    ]


def seeded_tasks(n, seed):
    rng = random.Random(seed)
    return make_tasks([round(rng.uniform(0.1, 10.0), 3) for _ in range(n)])


class TestPlanning:
    def test_lpt_places_largest_tasks_first(self):
        scheduler = WorkStealingScheduler(2)
        queues = scheduler.plan(make_tasks([1.0, 5.0, 3.0]))
        # descending cost onto the least-loaded worker: 5 → w0, 3 → w1,
        # 1 → w1 (load 3 < 5)
        assert [t.seq for t in queues[0]] == [1]
        assert [t.seq for t in queues[1]] == [2, 0]

    def test_equal_costs_tie_break_on_submission_order(self):
        scheduler = WorkStealingScheduler(2)
        queues = scheduler.plan(make_tasks([2.0, 2.0, 2.0, 2.0]))
        assert [t.seq for t in queues[0]] == [0, 2]
        assert [t.seq for t in queues[1]] == [1, 3]

    def test_planning_is_deterministic(self):
        placements = []
        for _ in range(3):
            scheduler = WorkStealingScheduler(4)
            scheduler.plan(seeded_tasks(50, seed=7))
            placements.append(
                [[t.seq for t in q] for q in scheduler.queues]
            )
        assert placements[0] == placements[1] == placements[2]


class TestStealing:
    def test_idle_worker_steals_from_backlogged_victim(self):
        scheduler = WorkStealingScheduler(2)
        # LPT: w0 = [5.0], w1 = [1.0, 1.0, 1.0]; then a mid-batch task
        # lands behind w0's long task (the driver pushes cascade tasks
        # this way).  w1 drains at t=3 while w0 is still inside the 5.0
        # task — w1 must steal w0's backlog instead of idling
        scheduler.plan(make_tasks([5.0] + [1.0] * 3))
        scheduler.push(FarmTask(4, "cascade", 1.0), worker=0)
        report = scheduler.simulate()
        assert report.steals == 1
        assert report.makespan == 5.0
        stolen_entry = [e for e in report.schedule if e[1] == 4]
        assert stolen_entry == [(1, 4, 3.0)]

    def test_steal_takes_queue_front(self):
        # the real per-worker queues are FIFO pipes: a steal can only
        # take the front, which LPT made the victim's largest remaining
        scheduler = WorkStealingScheduler(2)
        scheduler.plan(make_tasks([5.0, 4.0, 3.0]))
        # w0: [seq0(5)], w1: [seq1(4), seq2(3)]
        task, stolen = scheduler.take(0)
        assert (task.seq, stolen) == (0, False)
        # w0 idle again; steals w1's *front* (its largest remaining)
        task, stolen = scheduler.take(0)
        assert (task.seq, stolen) == (1, True)

    def test_no_steal_when_everyone_is_busy(self):
        scheduler = WorkStealingScheduler(2)
        scheduler.plan(make_tasks([1.0, 1.0]))
        report = scheduler.simulate()
        assert report.steals == 0

    def test_all_tasks_run_exactly_once_despite_stealing(self):
        scheduler = WorkStealingScheduler(3)
        tasks = seeded_tasks(40, seed=11)
        scheduler.plan(tasks)
        report = scheduler.simulate()
        executed = sorted(seq for _worker, seq, _start in report.schedule)
        assert executed == [t.seq for t in tasks]


class TestMakespan:
    def test_stealing_beats_no_stealing_on_skewed_loads(self):
        # one giant task plus a tail of small ones: static placement
        # alone leaves workers idle; the simulated steals fill them
        costs = [30.0] + [1.0] * 30
        scheduler = WorkStealingScheduler(4)
        scheduler.plan(make_tasks(costs))
        report = scheduler.simulate()
        total = sum(costs)
        # perfect would be total/4 = 15; the giant task forces 30;
        # stealing must keep us at the giant task's cost, not serial
        assert report.makespan == 30.0
        assert report.makespan < total

    def test_makespan_within_lpt_bound(self):
        # LPT + greedy stealing stays within 4/3·OPT + largest task
        tasks = seeded_tasks(60, seed=3)
        workers = 4
        scheduler = WorkStealingScheduler(workers)
        scheduler.plan(tasks)
        report = scheduler.simulate()
        lower_bound = max(
            sum(t.cost for t in tasks) / workers,
            max(t.cost for t in tasks),
        )
        assert report.makespan <= lower_bound * 4 / 3 + 1e-9

    def test_simulation_is_deterministic(self):
        schedules = []
        for _ in range(3):
            scheduler = WorkStealingScheduler(4)
            scheduler.plan(seeded_tasks(50, seed=19))
            schedules.append(scheduler.simulate().schedule)
        assert schedules[0] == schedules[1] == schedules[2]

    def test_single_worker_runs_in_plan_order(self):
        scheduler = WorkStealingScheduler(1)
        scheduler.plan(make_tasks([1.0, 3.0, 2.0]))
        report = scheduler.simulate()
        assert [seq for _w, seq, _s in report.schedule] == [1, 2, 0]
        assert report.steals == 0
