"""Shared-memo consistency tests.

The farm's soundness contract (DESIGN "Soundness of shared memos"): a
memo entry published by one worker and consumed by another must be
exactly what a cold computation in the consumer would have produced —
sharing changes *when* a value is computed, never *what* it is.  These
tests exercise that contract in-process: "worker A" and "worker B" are
two fresh local caches wired to one :class:`MemoStore`, so the compare
is against the genuinely cold path, no multiprocessing involved.
"""

import pytest

from repro.farm.memo import (
    ImageMemo,
    MemoStore,
    SharedMemoClient,
    VerdictMemo,
)


class TestMemoStore:
    def test_round_trip_and_miss(self):
        store = MemoStore()
        assert store.get("verdict", "k") is None
        store.put("verdict", "k", b"payload")
        assert store.get("verdict", "k") == b"payload"
        assert store.has("verdict", "k")
        assert not store.has("verdict", "other")

    def test_sections_are_disjoint(self):
        store = MemoStore()
        store.put("verdict", "k", b"v")
        assert store.get("image", "k") is None

    def test_delete(self):
        store = MemoStore()
        store.put("blob", "k", b"v")
        store.delete("blob", "k")
        assert store.get("blob", "k") is None
        store.delete("blob", "never-existed")  # must not raise

    def test_lru_eviction_respects_section_cap(self):
        store = MemoStore()
        # the image section's cap is 2048
        for index in range(2054):
            store.put("image", index, b"x")
        stats = store.stats()
        assert stats["sizes"]["image"] == 2048
        assert store.get("image", 0) is None      # oldest evicted
        assert store.get("image", 2053) == b"x"   # newest kept
        assert stats["counters"]["image.evictions"] == 6

    def test_blob_section_is_never_evicted(self):
        # split-page blobs have driver-managed lifetimes: a live blob
        # must outlast all of its page's cascade tasks, however many
        # pages split before their cascades drain
        store = MemoStore()
        for index in range(300):
            store.put("blob", index, b"x")
        stats = store.stats()
        assert stats["sizes"]["blob"] == 300
        assert store.get("blob", 0) == b"x"       # oldest still live
        assert "blob.evictions" not in stats["counters"]

    def test_stats_counters(self):
        store = MemoStore()
        store.put("verdict", "k", b"v")
        store.get("verdict", "k")
        store.get("verdict", "miss")
        counters = store.stats()["counters"]
        assert counters["verdict.hits"] == 1
        assert counters["verdict.misses"] == 1
        assert counters["verdict.published"] == 1


class _ExplodingStore:
    def get(self, section, key):
        raise ConnectionResetError("manager died")

    put = has = delete = get


class TestClientDegradation:
    def test_none_store_is_a_no_op_client(self):
        client = SharedMemoClient(None)
        assert not client.available
        assert client.fetch_bytes("verdict", "k") is None
        client.publish_bytes("verdict", "k", b"v")  # must not raise

    def test_first_failure_degrades_permanently(self):
        client = SharedMemoClient(_ExplodingStore())
        assert client.available
        assert client.fetch_bytes("verdict", "k") is None
        assert not client.available
        # later calls never touch the broken store again
        client.publish_bytes("verdict", "k", b"v")
        assert client.fetch_bytes("verdict", "k") is None


@pytest.fixture
def vulnerable_page(tmp_path):
    page = tmp_path / "index.php"
    page.write_text(
        "<?php mysql_query(\"SELECT * FROM t WHERE id = '\" "
        ". $_GET['id'] . \"'\"); ?>"
    )
    return tmp_path, page


def phase1(root, page):
    from repro.analysis.stringtaint import StringTaintAnalysis

    result = StringTaintAnalysis(root).analyze_file(page)
    assert result.hotspots
    return result


class TestVerdictSharing:
    def test_shared_verdict_equals_cold_computation(
        self, vulnerable_page, monkeypatch
    ):
        from repro.analysis import policy
        from repro.analysis.policy import VerdictCache, check_hotspot

        root, page = vulnerable_page
        result = phase1(root, page)
        spot = result.hotspots[0]

        # cold reference: no sharing, fresh local cache
        monkeypatch.setattr(policy, "SHARED_VERDICTS", None)
        cold = check_hotspot(result.grammar, spot, cache=VerdictCache())

        # "worker A": fresh cache, publishes into the shared store
        store = MemoStore()
        monkeypatch.setattr(
            policy, "SHARED_VERDICTS", VerdictMemo(SharedMemoClient(store))
        )
        published = check_hotspot(result.grammar, spot, cache=VerdictCache())
        assert store.stats()["sizes"].get("verdict", 0) == 1

        # "worker B": fresh cache + fresh client on the same store —
        # the verdict must come from the shared entry, not a cascade
        monkeypatch.setattr(
            policy, "SHARED_VERDICTS", VerdictMemo(SharedMemoClient(store))
        )
        shared = check_hotspot(result.grammar, spot, cache=VerdictCache())
        assert store.stats()["counters"]["verdict.hits"] == 1

        for label, report in (("published", published), ("shared", shared)):
            assert report.verified == cold.verified, label
            assert report.render() == cold.render(), label
            assert len(report.findings) == len(cold.findings), label

    def test_shared_hit_counts_as_local_miss(
        self, vulnerable_page, monkeypatch
    ):
        # the counter-invariance contract: hits+misses totals must not
        # depend on whether a verdict arrived via the shared store
        from repro.analysis import policy
        from repro.analysis.policy import VerdictCache, check_hotspot
        from repro.obs.metrics import PERF

        root, page = vulnerable_page
        result = phase1(root, page)
        spot = result.hotspots[0]
        store = MemoStore()
        monkeypatch.setattr(
            policy, "SHARED_VERDICTS", VerdictMemo(SharedMemoClient(store))
        )
        check_hotspot(result.grammar, spot, cache=VerdictCache())

        before = dict(PERF.snapshot()["counters"])
        check_hotspot(result.grammar, spot, cache=VerdictCache())
        after = PERF.snapshot()["counters"]
        delta = lambda name: after.get(name, 0) - before.get(name, 0)  # noqa: E731
        assert delta("policy.verdict_cache.misses") == 1
        assert delta("policy.verdict_cache.hits") == 0
        assert delta("farm.verdict.shared_hits") == 1


class TestImageSharing:
    def test_shared_image_equals_cold_computation(self, monkeypatch):
        from repro.lang import image as image_mod
        from repro.lang.charset import CharSet
        from repro.lang.fst import FST
        from repro.lang.grammar import Grammar, Lit
        from repro.lang.image import fst_image

        def build_grammar():
            g = Grammar()
            s = g.fresh("S")
            g.start = s
            g.add(s, (Lit("a'b"),))
            return g, s

        fst = FST.escape_chars(CharSet.of("'\"\\"))

        # cold reference
        monkeypatch.setattr(image_mod, "SHARED_IMAGES", None)
        image_mod.IMAGE_CACHE.clear()
        g, s = build_grammar()
        cold_result, cold_start = fst_image(g, s, fst)

        # publish from "worker A" (fresh local image cache)
        store = MemoStore()
        image_mod.IMAGE_CACHE.clear()
        monkeypatch.setattr(
            image_mod, "SHARED_IMAGES", ImageMemo(SharedMemoClient(store))
        )
        g, s = build_grammar()
        fst_image(g, s, fst)
        assert store.stats()["sizes"].get("image", 0) == 1

        # consume in "worker B": local cache cold, shared store warm
        image_mod.IMAGE_CACHE.clear()
        monkeypatch.setattr(
            image_mod, "SHARED_IMAGES", ImageMemo(SharedMemoClient(store))
        )
        g, s = build_grammar()
        shared_result, shared_start = fst_image(g, s, fst)
        assert store.stats()["counters"]["image.hits"] == 1

        for text in ("a\\'b", "a'b", "x"):
            assert shared_result.generates(
                shared_start, text
            ) == cold_result.generates(cold_start, text)
