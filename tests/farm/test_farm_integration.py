"""Farm integration tests: byte-identity under every farm configuration.

Each test runs the real CLI in fresh subprocesses (env kill switches
only matter at process start) over a small synthetic app and asserts
the ``--json`` document — minus the perf block — is identical to the
serial run.  Covers cascade-level task splitting (forced via
``REPRO_FARM_SPLIT=1``) and the memo/pre-pass kill switches.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

INDEX_PHP = """<?php
include 'lib.inc';
mysql_query($q1 . $_GET['a'] . "'");
mysql_query($q2 . $_GET['b'] . "'");
mysql_query($q1 . "0");
mysql_query($q2 . "1");
?>"""
LIB_INC = (
    "<?php $q1 = \"SELECT a FROM t WHERE x = '\";\n"
    "$q2 = \"SELECT b FROM t WHERE y = '\"; ?>"
)
OTHER_PHP = "<?php include 'lib.inc'; mysql_query($q1 . \"z'\"); ?>"


@pytest.fixture
def app(tmp_path):
    (tmp_path / "index.php").write_text(INDEX_PHP)
    (tmp_path / "other.php").write_text(OTHER_PHP)
    (tmp_path / "lib.inc").write_text(LIB_INC)
    return tmp_path


def run_cli(app_root, jobs, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(extra_env or {})
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.cli", str(app_root),
         "--json", "--profile", "--jobs", str(jobs)],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode in (0, 1, 3), proc.stderr[-2000:]
    return json.loads(proc.stdout)


def verdicts(document):
    return {k: v for k, v in document.items() if k != "perf"}


class TestFarmConfigurations:
    def test_forced_cascade_splitting_is_byte_identical(self, app):
        serial = run_cli(app, jobs=1)
        split = run_cli(app, jobs=2, extra_env={"REPRO_FARM_SPLIT": "1"})
        assert verdicts(split) == verdicts(serial)
        # the threshold of 1 forces every multi-hotspot page to split
        counters = split["perf"]["counters"]
        assert counters.get("farm.pages.split", 0) >= 1
        assert counters.get("farm.tasks.cascades", 0) >= 4

    def test_memo_service_disabled_is_byte_identical(self, app):
        serial = run_cli(app, jobs=1)
        no_memo = run_cli(app, jobs=2, extra_env={"REPRO_FARM_MEMO": "0"})
        assert verdicts(no_memo) == verdicts(serial)
        counters = no_memo["perf"]["counters"]
        # without the service there is nothing to share or split over
        assert counters.get("farm.verdict.shared_hits", 0) == 0
        assert counters.get("farm.pages.split", 0) == 0

    def test_prepass_disabled_is_byte_identical(self, app):
        serial = run_cli(app, jobs=1)
        no_prepass = run_cli(
            app, jobs=2, extra_env={"REPRO_FARM_PREPASS": "0"}
        )
        assert verdicts(no_prepass) == verdicts(serial)
        counters = no_prepass["perf"]["counters"]
        assert counters.get("farm.prepass.files_parsed", 0) == 0

    def test_counter_invariance_across_split_modes(self, app):
        # pages.analyzed and the verdict-lookup totals must not depend
        # on how work was carved up (tests/obs contract, farm edition)
        serial = run_cli(app, jobs=1)["perf"]["counters"]
        split = run_cli(
            app, jobs=2, extra_env={"REPRO_FARM_SPLIT": "1"}
        )["perf"]["counters"]

        def lookups(counters):
            return (
                counters.get("policy.verdict_cache.hits", 0)
                + counters.get("policy.verdict_cache.misses", 0)
            )

        assert split["pages.analyzed"] == serial["pages.analyzed"]
        assert lookups(split) == lookups(serial)
