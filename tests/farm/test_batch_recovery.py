"""Failed-batch isolation: a persistent farm must never leak one
batch's work into another.

The driver tags every task and result envelope with the batch id.  When
a batch aborts (worker error, worker death), its undispatched tasks are
drained and any envelope a worker was still producing is discarded by
the next batch's collect loop — so a single failed request can never
corrupt the results served to later clients of a long-lived daemon.

These tests drive a real in-process :class:`AnalysisFarm` (memo service
disabled to keep them light) and inject envelopes directly into the
result queue to simulate the leftovers of a failed batch.
"""

import os

import pytest

from repro.analysis.analyzer import PageResult
from repro.farm.driver import AnalysisFarm
from repro.obs.metrics import PERF

INDEX_PHP = (
    "<?php $q = \"SELECT a FROM t WHERE x = '\";\n"
    "mysql_query($q . $_GET['a'] . \"'\"); ?>"
)


@pytest.fixture
def app(tmp_path):
    (tmp_path / "index.php").write_text(INDEX_PHP)
    return tmp_path


@pytest.fixture
def farm(monkeypatch):
    monkeypatch.setenv("REPRO_FARM_MEMO", "0")
    farm = AnalysisFarm(1)
    yield farm
    farm.shutdown()


def stale_counter():
    return PERF.snapshot()["counters"].get("farm.envelopes.stale_dropped", 0)


class TestBatchIsolation:
    def test_stale_envelope_is_discarded_not_merged(self, app, farm):
        # a leftover page envelope from some earlier (aborted) batch:
        # wrong tag, poisoned payload at index 0
        farm._result_queue.put(
            ("some-dead-batch", ("page", 0, "POISON", None, False))
        )
        before = stale_counter()
        results = farm.map_pages(app, [str(app / "index.php")])
        assert len(results) == 1
        assert isinstance(results[0], PageResult)
        assert results[0].page == str(app / "index.php")
        assert stale_counter() == before + 1

    def test_failed_batch_does_not_poison_the_next(self, app, farm):
        # simulate a worker failure inside the FIRST batch: batch ids
        # are deterministic ("<pid>:<ordinal>"), so the injected error
        # envelope carries the id the driver is about to use and the
        # collect loop treats it as a real in-batch failure
        first_batch = f"{os.getpid()}:1"
        farm._result_queue.put(
            (first_batch, ("error", "page", "synthetic failure", None, False))
        )
        with pytest.raises(RuntimeError, match="synthetic failure"):
            farm.map_pages(app, [str(app / "index.php")])

        # the worker may still have analyzed the first batch's page and
        # pushed its envelope; the second batch must drop it (stale tag)
        # and produce its own, correct result
        results = farm.map_pages(app, [str(app / "index.php")])
        assert len(results) == 1
        assert isinstance(results[0], PageResult)
        assert results[0].page == str(app / "index.php")
