"""Tests for the synthetic corpus generators."""

import pytest

from repro.corpus import APPS, build_app, build_corpus
from repro.corpus.manifest import DIRECT_FALSE, DIRECT_REAL, INDIRECT
from repro.php.parser import parse

#: the paper's Table 1 anatomy per app directory
EXPECTED = {
    "e107": dict(files=741, direct_real=1, direct_false=0, indirect=4),
    "eve_activity_tracker": dict(files=8, direct_real=4, direct_false=0, indirect=1),
    "tiger_php_news": dict(files=16, direct_real=0, direct_false=3, indirect=2),
    "utopia_news_pro": dict(files=25, direct_real=14, direct_false=2, indirect=12),
    "warp_cms": dict(files=42, direct_real=0, direct_false=0, indirect=0),
}


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus")
    manifests = build_corpus(root)
    return root, dict(zip([d for _, d in APPS], manifests))


class TestStructure:
    def test_all_apps_built(self, corpus):
        root, manifests = corpus
        for _, app_dir in APPS:
            assert (root / app_dir).is_dir()

    @pytest.mark.parametrize("app_dir", list(EXPECTED))
    def test_file_counts_match_paper(self, corpus, app_dir):
        root, _ = corpus
        files = list((root / app_dir).rglob("*.php"))
        assert len(files) == EXPECTED[app_dir]["files"]

    @pytest.mark.parametrize("app_dir", list(EXPECTED))
    def test_seed_counts_match_paper(self, corpus, app_dir):
        _, manifests = corpus
        manifest = manifests[app_dir]
        expected = EXPECTED[app_dir]
        assert manifest.expected_direct_real == expected["direct_real"]
        assert manifest.expected_direct_false == expected["direct_false"]
        assert manifest.expected_indirect == expected["indirect"]

    def test_totals_match_paper(self, corpus):
        _, manifests = corpus
        totals = [
            sum(m.count(kind) for m in manifests.values())
            for kind in (DIRECT_REAL, DIRECT_FALSE, INDIRECT)
        ]
        # Note: the paper's Table 1 totals row prints "19 5 17", but its
        # per-app indirect column sums to 19 (4+1+2+12+0).  We reproduce
        # the per-app values; the discrepancy is documented in
        # EXPERIMENTS.md.
        assert totals == [19, 5, 19]

    def test_line_counts_same_order_as_paper(self, corpus):
        root, _ = corpus
        paper_lines = {
            "e107": 132_850,
            "eve_activity_tracker": 905,
            "tiger_php_news": 7_961,
            "utopia_news_pro": 5_611,
            "warp_cms": 23_003,
        }
        for app_dir, expected in paper_lines.items():
            measured = sum(
                len(path.read_text().splitlines())
                for path in (root / app_dir).rglob("*.php")
            )
            assert 0.5 * expected <= measured <= 1.5 * expected, (
                app_dir,
                measured,
            )


class TestWellFormedness:
    def test_every_file_parses(self, corpus):
        root, _ = corpus
        failures = []
        for path in root.rglob("*.php"):
            try:
                parse(path.read_text(), str(path))
            except Exception as exc:  # noqa: BLE001 - collecting all failures
                failures.append(f"{path}: {exc}")
        assert not failures, failures[:5]

    def test_seed_pages_exist(self, corpus):
        root, manifests = corpus
        for (_, app_dir), manifest in zip(APPS, manifests.values()):
            for seed in manifest.seeds:
                assert (root / app_dir / seed.page).is_file(), (
                    app_dir,
                    seed.page,
                )

    def test_build_app_single(self, tmp_path):
        manifest = build_app(tmp_path, "eve_activity_tracker")
        assert manifest.expected_direct_real == 4
        assert (tmp_path / "eve_activity_tracker" / "index.php").is_file()

    def test_build_app_unknown(self, tmp_path):
        with pytest.raises(KeyError):
            build_app(tmp_path, "no_such_app")
