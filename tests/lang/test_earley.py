"""Tests for sentential-form Earley parsing and Definition 3.2 derivability."""

import pytest

from repro.lang.earley import (
    TokenGrammar,
    derivability,
    parse_sentential_form,
)


def expr_grammar():
    """A small arithmetic grammar (tokens: NUM, +, *, (, ))."""
    g = TokenGrammar("expr")
    g.add("expr", ["expr", "+", "term"])
    g.add("expr", ["term"])
    g.add("term", ["term", "*", "factor"])
    g.add("term", ["factor"])
    g.add("factor", ["(", "expr", ")"])
    g.add("factor", ["NUM"])
    return g


def sql_like_grammar():
    """A miniature SQL-flavored grammar for confinement-style tests."""
    g = TokenGrammar("query")
    g.add("query", ["SELECT", "cols", "FROM", "IDENT", "where"])
    g.add("where", [])
    g.add("where", ["WHERE", "cond"])
    g.add("cond", ["IDENT", "=", "value"])
    g.add("cond", ["cond", "AND", "cond"])
    g.add("cols", ["*"])
    g.add("cols", ["IDENT"])
    g.add("value", ["NUM"])
    g.add("value", ["STR"])
    return g


class TestTokenGrammar:
    def test_nonterminals_and_terminals(self):
        g = expr_grammar()
        assert g.is_nonterminal("expr")
        assert not g.is_nonterminal("NUM")
        assert g.terminals() == {"NUM", "+", "*", "(", ")"}

    def test_add_dedups(self):
        g = TokenGrammar("s")
        g.add("s", ["a"])
        g.add("s", ["a"])
        assert g.productions["s"] == [("a",)]

    def test_nullable(self):
        g = TokenGrammar("s")
        g.add("s", ["a", "b"])
        g.add("a", [])
        g.add("b", ["a"])
        assert g.nullable() == {"s", "a", "b"}


class TestEarleyTerminalStrings:
    @pytest.mark.parametrize(
        "tokens,expected",
        [
            (["NUM"], True),
            (["NUM", "+", "NUM"], True),
            (["NUM", "+", "NUM", "*", "NUM"], True),
            (["(", "NUM", "+", "NUM", ")", "*", "NUM"], True),
            (["NUM", "+"], False),
            (["+", "NUM"], False),
            ([], False),
            (["(", "NUM"], False),
        ],
    )
    def test_expr(self, tokens, expected):
        g = expr_grammar()
        assert parse_sentential_form(g, "expr", tokens) == expected

    def test_left_recursion(self):
        g = expr_grammar()
        tokens = ["NUM"] + ["+", "NUM"] * 10
        assert parse_sentential_form(g, "expr", tokens)

    def test_nullable_rules(self):
        g = sql_like_grammar()
        assert parse_sentential_form(
            g, "query", ["SELECT", "*", "FROM", "IDENT"]
        )
        assert parse_sentential_form(
            g,
            "query",
            ["SELECT", "*", "FROM", "IDENT", "WHERE", "IDENT", "=", "NUM"],
        )

    def test_all_nullable_input_empty(self):
        g = TokenGrammar("s")
        g.add("s", ["a", "a"])
        g.add("a", [])
        assert parse_sentential_form(g, "s", [])


class TestSententialForms:
    """Inputs may contain grammar nonterminals — the Thiemann trick."""

    def test_nonterminal_matches_itself(self):
        g = expr_grammar()
        assert parse_sentential_form(g, "expr", ["term"])
        assert parse_sentential_form(g, "expr", ["expr", "+", "term"])
        assert parse_sentential_form(g, "expr", ["factor", "*", "NUM"])

    def test_nonterminal_in_context(self):
        g = sql_like_grammar()
        form = ["SELECT", "*", "FROM", "IDENT", "WHERE", "cond"]
        assert parse_sentential_form(g, "query", form)

    def test_wrong_position_rejected(self):
        g = sql_like_grammar()
        assert not parse_sentential_form(
            g, "query", ["SELECT", "cond", "FROM", "IDENT"]
        )

    def test_match_classes(self):
        g = expr_grammar()
        classes = {"X": frozenset({"NUM", "term"})}
        assert parse_sentential_form(g, "expr", ["X", "+", "X"], classes)
        classes_bad = {"X": frozenset({"+"})}
        assert not parse_sentential_form(g, "expr", ["X"], classes_bad)


class TestDerivability:
    def test_trivially_derivable(self):
        gen = TokenGrammar("g0")
        gen.add("g0", ["NUM"])
        result = derivability(gen, expr_grammar(), "g0")
        assert result.derivable
        assert result.mapping["g0"] in {"expr", "term", "factor", "NUM"}

    def test_structure_derivable(self):
        # g0 -> g0 + g1 | g1 ; g1 -> NUM   maps onto expr/term
        gen = TokenGrammar("g0")
        gen.add("g0", ["g0", "+", "g1"])
        gen.add("g0", ["g1"])
        gen.add("g1", ["NUM"])
        result = derivability(gen, expr_grammar(), "g0")
        assert result.derivable
        assert result.mapping["g0"] == "expr"

    def test_not_derivable_bad_terminal(self):
        gen = TokenGrammar("g0")
        gen.add("g0", ["DROP"])
        result = derivability(gen, expr_grammar(), "g0")
        assert not result.derivable
        assert "DROP" in result.reason

    def test_not_derivable_bad_structure(self):
        # NUM + with a dangling operator is no sentential form of expr
        gen = TokenGrammar("g0")
        gen.add("g0", ["NUM", "+"])
        result = derivability(gen, expr_grammar(), "g0")
        assert not result.derivable

    def test_allowed_roots_restriction(self):
        gen = TokenGrammar("g0")
        gen.add("g0", ["NUM"])
        result = derivability(
            gen, expr_grammar(), "g0", allowed_roots=["factor"]
        )
        assert result.derivable
        assert result.mapping["g0"] == "factor"
        result2 = derivability(gen, expr_grammar(), "g0", allowed_roots=["+"])
        assert not result2.derivable

    def test_value_confinement_sql_style(self):
        """An untrusted piece deriving NUM|STR is confined under `value`."""
        gen = TokenGrammar("u")
        gen.add("u", ["NUM"])
        gen.add("u", ["STR"])
        result = derivability(gen, sql_like_grammar(), "u")
        assert result.derivable
        assert result.mapping["u"] == "value"

    def test_injection_shape_not_derivable(self):
        """`NUM AND IDENT = NUM` spans beyond one nonterminal: not confined
        under value (it is a cond-context escape)."""
        gen = TokenGrammar("u")
        gen.add("u", ["NUM"])
        gen.add("u", ["NUM", "AND", "IDENT", "=", "NUM"])
        result = derivability(
            gen, sql_like_grammar(), "u", allowed_roots=["value"]
        )
        assert not result.derivable

    def test_cyclic_generated_grammar(self):
        gen = TokenGrammar("u")
        gen.add("u", ["u", "AND", "u"])
        gen.add("u", ["IDENT", "=", "NUM"])
        result = derivability(gen, sql_like_grammar(), "u")
        assert result.derivable
        assert result.mapping["u"] == "cond"

    def test_lemma_3_3_language_inclusion(self):
        """Spot-check Lemma 3.3: derivable ⇒ language inclusion."""
        gen = TokenGrammar("g0")
        gen.add("g0", ["g0", "+", "g1"])
        gen.add("g0", ["g1"])
        gen.add("g1", ["NUM"])
        ref = expr_grammar()
        result = derivability(gen, ref, "g0")
        assert result.derivable
        # every short string of gen must be accepted by ref from F(g0)
        samples = [["NUM"], ["NUM", "+", "NUM"], ["NUM", "+", "NUM", "+", "NUM"]]
        for sample in samples:
            assert parse_sentential_form(ref, result.mapping["g0"], sample)
