"""Tests for the Mohri–Nederhof regular approximation (paper's [21])."""

from hypothesis import given, settings, strategies as st

from repro.lang.approx import (
    is_strongly_regular,
    mohri_nederhof,
    regular_approximation,
    strongly_regular_to_nfa,
)
from repro.lang.charset import DIGITS
from repro.lang.grammar import DIRECT, Grammar, Lit


def balanced():
    """S → (S) | x — the canonical non-regular grammar."""
    g = Grammar()
    s = g.fresh("S")
    g.start = s
    g.add(s, (Lit("("), s, Lit(")")))
    g.add(s, (Lit("x"),))
    return g, s


def right_linear():
    """A → aA | b — already strongly regular."""
    g = Grammar()
    a = g.fresh("A")
    g.start = a
    g.add(a, (Lit("a"), a))
    g.add(a, (Lit("b"),))
    return g, a


class TestClassification:
    def test_right_linear_is_strongly_regular(self):
        g, a = right_linear()
        assert is_strongly_regular(g, a)

    def test_center_recursion_is_not(self):
        g, s = balanced()
        assert not is_strongly_regular(g, s)

    def test_acyclic_is_strongly_regular(self):
        g = Grammar()
        s, t = g.fresh("S"), g.fresh("T")
        g.add(s, (t, t))
        g.add(t, (Lit("x"),))
        assert is_strongly_regular(g, s)

    def test_left_linear_cycle_is_not_right_linear(self):
        g = Grammar()
        a = g.fresh("A")
        g.add(a, (a, Lit("x")))
        g.add(a, ())
        assert not is_strongly_regular(g, a)


class TestTransformation:
    def test_result_is_strongly_regular(self):
        g, s = balanced()
        approx, root = mohri_nederhof(g, s)
        assert is_strongly_regular(approx, root)

    def test_superset_of_original(self):
        g, s = balanced()
        approx, root = mohri_nederhof(g, s)
        for text in ("x", "(x)", "((x))"):
            assert g.generates(s, text)
            assert approx.generates(root, text)

    def test_contains_unbalanced_strings(self):
        """The approximation price: parenthesis counting is lost."""
        g, s = balanced()
        approx, root = mohri_nederhof(g, s)
        assert not g.generates(s, "(x")
        assert approx.generates(root, "(x")

    def test_preserves_literal_structure(self):
        """Unlike charset-closure widening, MN keeps fixed prefixes."""
        g = Grammar()
        q, cond = g.fresh("Q"), g.fresh("C")
        g.add(q, (Lit("SELECT a FROM t WHERE "), cond))
        g.add(cond, (Lit("x=1"),))
        g.add(cond, (cond, Lit(" AND x=1")))  # left recursion
        approx, root = mohri_nederhof(g, q)
        assert approx.generates(root, "SELECT a FROM t WHERE x=1")
        assert approx.generates(root, "SELECT a FROM t WHERE x=1 AND x=1")
        # closure widening would accept this; MN must not:
        assert not approx.generates(root, "WHERE SELECT x=1")

    def test_strongly_regular_unchanged_language(self):
        g, a = right_linear()
        approx, root = mohri_nederhof(g, a)
        for text in ("b", "ab", "aab", "a", ""):
            assert g.generates(a, text) == approx.generates(root, text)

    def test_labels_preserved(self):
        g, s = balanced()
        g.add_label(s, DIRECT)
        approx, root = mohri_nederhof(g, s)
        assert approx.has_label(root, DIRECT)


class TestToNfa:
    def test_right_linear_exact(self):
        g, a = right_linear()
        nfa = strongly_regular_to_nfa(g, a)
        for text in ("b", "ab", "aaab"):
            assert nfa.accepts_string(text)
        for text in ("", "a", "ba"):
            assert not nfa.accepts_string(text)

    def test_acyclic_exact(self):
        g = Grammar()
        s, t = g.fresh("S"), g.fresh("T")
        g.add(s, (Lit("<"), t, Lit(">")))
        g.add(t, (DIGITS,))
        g.add(t, (Lit("id"),))
        nfa = strongly_regular_to_nfa(g, s)
        assert nfa.accepts_string("<7>")
        assert nfa.accepts_string("<id>")
        assert not nfa.accepts_string("<77>")

    def test_mutual_right_linear_cycle(self):
        g = Grammar()
        a, b = g.fresh("A"), g.fresh("B")
        g.add(a, (Lit("x"), b))
        g.add(b, (Lit("y"), a))
        g.add(b, ())
        nfa = strongly_regular_to_nfa(g, a)
        for text in ("x", "xyx", "xyxyx"):
            assert nfa.accepts_string(text)
        assert not nfa.accepts_string("xy")

    def test_charset_symbols(self):
        g = Grammar()
        a = g.fresh("A")
        g.add(a, (DIGITS, a))
        g.add(a, ())
        nfa = strongly_regular_to_nfa(g, a)
        assert nfa.accepts_string("123")
        assert nfa.accepts_string("")
        assert not nfa.accepts_string("12a")


class TestEndToEnd:
    def test_regular_approximation_of_cfg(self):
        g, s = balanced()
        nfa = regular_approximation(g, s)
        assert nfa.accepts_string("(x)")
        assert nfa.accepts_string("((x))")
        # superset: some unbalanced strings appear
        assert nfa.accepts_string("(x")
        # but the alphabet/structure constraint holds
        assert not nfa.accepts_string("yyy")

    @given(st.text(alphabet="ab", max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_superset_property(self, text):
        """L(G) ⊆ L(approx(G)) on the palindrome-ish grammar."""
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("a"), s, Lit("a")))
        g.add(s, (Lit("b"),))
        nfa = regular_approximation(g, s)
        if g.generates(s, text):
            assert nfa.accepts_string(text)
