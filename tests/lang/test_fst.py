"""Tests for finite-state transducers, incl. differential tests vs. Python."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.charset import CharSet, DIGITS
from repro.lang.fst import (
    COPY,
    FST,
    LOWER,
    UPPER,
    map_marker_charset,
    render_output,
)


class TestIdentity:
    @given(st.text(max_size=20))
    def test_identity(self, text):
        assert FST.identity().apply_once(text) == text


class TestCharMap:
    def test_replace_chars(self):
        fst = FST.replace_chars(CharSet.of("'"), "''")
        assert fst.apply_once("it's") == "it''s"

    def test_delete_chars(self):
        fst = FST.delete_chars(DIGITS)
        assert fst.apply_once("a1b2c3") == "abc"

    def test_escape_chars_is_addslashes(self):
        fst = FST.escape_chars(CharSet.of("'\"\\"))
        assert fst.apply_once("a'b\"c\\d") == "a\\'b\\\"c\\\\d"

    def test_lowercase(self):
        assert FST.lowercase().apply_once("SeLeCt 1") == "select 1"

    def test_uppercase(self):
        assert FST.uppercase().apply_once("drop?") == "DROP?"

    def test_first_mapping_wins(self):
        fst = FST.char_map(
            [(CharSet.of("ab"), ("x",)), (CharSet.of("bc"), ("y",))]
        )
        assert fst.apply_once("abc") == "xxy"

    def test_no_default_copy_deletes(self):
        fst = FST.char_map([(DIGITS, (COPY,))], default_copy=False)
        assert fst.apply_once("a1b2") == "12"


class TestReplaceString:
    def test_figure6(self):
        """The paper's Figure 6: str_replace("''", "'", $B)."""
        fst = FST.replace_string("''", "'")
        assert fst.apply_once("a''b") == "a'b"
        assert fst.apply_once("''''") == "''"
        assert fst.apply_once("'") == "'"
        assert fst.apply_once("x") == "x"

    def test_trailing_partial_match_flushed(self):
        fst = FST.replace_string("ab", "X")
        assert fst.apply_once("za") == "za"
        assert fst.apply_once("zab") == "zX"

    def test_overlapping_pattern_nonoverlapping_semantics(self):
        fst = FST.replace_string("aa", "b")
        assert fst.apply_once("aaa") == "ba"
        assert fst.apply_once("aaaa") == "bb"

    def test_self_border_pattern(self):
        fst = FST.replace_string("aba", "X")
        # Leftmost non-overlapping: "ababa" -> "X" + "ba"
        assert fst.apply_once("ababa") == "Xba"

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            FST.replace_string("", "x")

    PATTERNS = ["''", "ab", "aa", "aba", "<script>", "--", "x"]

    @given(
        st.sampled_from(PATTERNS),
        st.text(max_size=3),
        st.text(alphabet="ab'<script>-x", max_size=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_python_replace(self, pattern, replacement, subject):
        fst = FST.replace_string(pattern, replacement)
        assert fst.apply_once(subject) == subject.replace(pattern, replacement)


class TestCollapseClass:
    def test_run_collapsed_once(self):
        fst = FST.collapse_class(DIGITS, "#")
        assert fst.apply_once("ab123cd45") == "ab#cd#"

    def test_no_class_chars(self):
        fst = FST.collapse_class(DIGITS, "#")
        assert fst.apply_once("abc") == "abc"

    def test_whole_string_is_run(self):
        fst = FST.collapse_class(DIGITS, "#")
        assert fst.apply_once("123") == "#"

    @given(st.text(alphabet="ab12", max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_matches_re_sub(self, text):
        import re

        fst = FST.collapse_class(DIGITS, "N")
        assert fst.apply_once(text) == re.sub(r"[0-9]+", "N", text)


class TestOutputs:
    def test_render_output(self):
        assert render_output(("a", COPY, "b"), "X") == "aXb"
        assert render_output((LOWER,), "Q") == "q"
        assert render_output((UPPER,), "q") == "Q"

    def test_map_marker_literal(self):
        assert map_marker_charset("lit", DIGITS) == "lit"

    def test_map_marker_copy(self):
        assert map_marker_charset(COPY, DIGITS) == DIGITS

    def test_map_marker_lower(self):
        result = map_marker_charset(LOWER, CharSet.range("A", "C"))
        assert result == CharSet.range("a", "c")

    def test_map_marker_lower_mixed(self):
        mixed = CharSet.of("A1")
        result = map_marker_charset(LOWER, mixed)
        assert "a" in result and "1" in result and "A" not in result

    def test_map_marker_upper(self):
        result = map_marker_charset(UPPER, CharSet.of("ax!"))
        assert "A" in result and "X" in result and "!" in result


class TestApplySemantics:
    def test_apply_to_string_empty_input(self):
        assert FST.identity().apply_to_string("") == {""}

    def test_rejecting_fst(self):
        fst = FST()
        q0 = fst.new_state()
        fst.add_transition(q0, DIGITS, (COPY,), q0)
        assert fst.apply_to_string("x") == set()

    def test_accept_states_filter(self):
        fst = FST()
        q0, q1 = fst.new_state(), fst.new_state()
        fst.add_transition(q0, CharSet.of("a"), (COPY,), q1)
        fst.add_transition(q1, CharSet.of("a"), (COPY,), q0)
        fst.accepts = {q0}
        assert fst.apply_to_string("a") == set()
        assert fst.apply_to_string("aa") == {"aa"}

    def test_nondeterministic_outputs(self):
        fst = FST()
        q0 = fst.new_state()
        fst.add_transition(q0, CharSet.of("a"), ("x",), q0)
        fst.add_transition(q0, CharSet.of("a"), ("y",), q0)
        assert fst.apply_to_string("aa") == {"xx", "xy", "yx", "yy"}
