"""Tests for the CFG-image-over-FST construction with taint propagation."""

from hypothesis import given, settings, strategies as st

from repro.lang.charset import CharSet, DIGITS
from repro.lang.fst import FST
from repro.lang.grammar import DIRECT, Grammar, Lit
from repro.lang.image import fst_image, regular_image


def literal_grammar(*texts):
    g = Grammar()
    s = g.fresh("S")
    g.start = s
    for text in texts:
        g.add(s, (Lit(text),))
    return g, s


class TestLiteralImages:
    def test_identity(self):
        g, s = literal_grammar("hello")
        result, start = fst_image(g, s, FST.identity())
        assert result.generates(start, "hello")
        assert not result.generates(start, "world")

    def test_addslashes_image(self):
        g, s = literal_grammar("a'b")
        fst = FST.escape_chars(CharSet.of("'\"\\"))
        result, start = fst_image(g, s, fst)
        assert result.generates(start, "a\\'b")
        assert not result.generates(start, "a'b")

    def test_figure6_collapse_quotes(self):
        g, s = literal_grammar("''", "'", "x''y")
        fst = FST.replace_string("''", "'")
        result, start = fst_image(g, s, fst)
        assert result.generates(start, "'")      # from "''"
        assert result.generates(start, "x'y")    # from "x''y"
        assert not result.generates(start, "''")

    def test_final_flush_appears(self):
        """A trailing partial match must be emitted (final_output path)."""
        g, s = literal_grammar("za")
        fst = FST.replace_string("ab", "X")
        result, start = fst_image(g, s, fst)
        assert result.generates(start, "za")

    def test_alternatives(self):
        g, s = literal_grammar("cat", "dog")
        result, start = fst_image(g, s, FST.uppercase())
        assert result.generates(start, "CAT")
        assert result.generates(start, "DOG")
        assert not result.generates(start, "cat")


class TestCharsetImages:
    def test_charset_copied(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (DIGITS,))
        result, start = fst_image(g, s, FST.identity())
        assert result.generates(start, "7")
        assert not result.generates(start, "a")

    def test_charset_lowered(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (CharSet.range("A", "Z"),))
        result, start = fst_image(g, s, FST.lowercase())
        assert result.generates(start, "q")
        assert not result.generates(start, "Q")

    def test_charset_escaped(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (CharSet.any_char(),))
        fst = FST.escape_chars(CharSet.of("'"))
        result, start = fst_image(g, s, fst)
        assert result.generates(start, "\\'")
        assert result.generates(start, "a")
        assert not result.generates(start, "'")


class TestCyclicGrammars:
    def test_star_grammar_image(self):
        """The image construction handles cyclic grammars exactly."""
        g = Grammar()
        s = g.fresh("S")
        g.add(s, ())
        g.add(s, (Lit("a'"), s))
        fst = FST.escape_chars(CharSet.of("'"))
        result, start = fst_image(g, s, fst)
        assert result.generates(start, "")
        assert result.generates(start, "a\\'")
        assert result.generates(start, "a\\'a\\'")
        assert not result.generates(start, "a'")

    def test_nested_grammar_image(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("("), s, Lit(")")))
        g.add(s, (Lit("'"),))
        fst = FST.replace_chars(CharSet.of("'"), "X")
        result, start = fst_image(g, s, fst)
        assert result.generates(start, "((X))")
        assert not result.generates(start, "(('))")


class TestTaintPropagation:
    def test_labels_survive_image(self):
        g = Grammar()
        s, x = g.fresh("S"), g.fresh("X")
        g.add(s, (Lit("a"), x))
        g.add(x, (Lit("'"),))
        g.add_label(x, DIRECT)
        fst = FST.escape_chars(CharSet.of("'"))
        result, start = fst_image(g, s, fst)
        tainted = result.labeled_nonterminals(DIRECT)
        assert tainted
        assert any(result.generates(nt, "\\'") for nt in tainted)

    def test_root_labels_on_start(self):
        g = Grammar()
        x = g.fresh("X")
        g.add(x, (Lit("v"),))
        g.add_label(x, DIRECT)
        result, start = fst_image(g, x, FST.identity())
        assert result.has_label(start, DIRECT)


class TestRegularImage:
    def test_sigma_star_escaped(self):
        result, start = regular_image(CharSet.of("a'"), FST.escape_chars(CharSet.of("'")))
        assert result.generates(start, "")
        assert result.generates(start, "a\\'a")
        assert not result.generates(start, "'")

    def test_collapse_class_widening(self):
        result, start = regular_image(
            CharSet.of("ab1"), FST.collapse_class(DIGITS, "#")
        )
        assert result.generates(start, "ab#")
        assert result.generates(start, "#a#")
        assert not result.generates(start, "1")


class TestDifferentialAgainstDirectApplication:
    """fst_image of a finite language == applying the FST to each string."""

    FSTS = [
        ("identity", FST.identity()),
        ("addslashes", FST.escape_chars(CharSet.of("'\"\\"))),
        ("collapse_quotes", FST.replace_string("''", "'")),
        ("strip_digits", FST.delete_chars(DIGITS)),
        ("upper", FST.uppercase()),
        ("collapse_ws", FST.collapse_class(CharSet.of(" \t"), " ")),
    ]

    @given(
        st.sampled_from(range(len(FSTS))),
        st.lists(st.text(alphabet="ab'\\1 \t", max_size=6), min_size=1, max_size=3),
    )
    @settings(max_examples=120, deadline=None)
    def test_image_equals_pointwise_application(self, fst_idx, texts):
        _, fst = self.FSTS[fst_idx]
        g, s = literal_grammar(*texts)
        result, start = fst_image(g, s, fst)
        for text in texts:
            for output in fst.apply_to_string(text):
                assert result.generates(start, output), (text, output)
