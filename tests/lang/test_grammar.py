"""Tests for the taint-labeled CFG representation."""


from repro.lang.charset import CharSet, DIGITS
from repro.lang.grammar import DIRECT, Grammar, INDIRECT, Lit


def balanced_grammar():
    """S -> ( S ) | ε — the classic non-regular language."""
    g = Grammar()
    s = g.fresh("S")
    g.start = s
    g.add(s, (Lit("("), s, Lit(")")))
    g.add(s, ())
    return g, s


class TestBasics:
    def test_fresh_nonterminals_distinct(self):
        g = Grammar()
        a, b = g.fresh("X"), g.fresh("X")
        assert a != b
        assert a.name == b.name == "X"

    def test_add_dedups(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("a"),))
        g.add(s, (Lit("a"),))
        assert len(g.productions[s]) == 1

    def test_add_drops_empty_lits(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit(""), Lit("a"), Lit("")))
        assert g.productions[s] == [(Lit("a"),)]

    def test_num_productions(self):
        g, _ = balanced_grammar()
        assert g.num_productions() == 2

    def test_repr(self):
        g, _ = balanced_grammar()
        assert "|V|=1" in repr(g)

    def test_dump_readable(self):
        g, s = balanced_grammar()
        g.add_label(s, DIRECT)
        text = g.dump()
        assert "S ->" in text
        assert "direct" in text


class TestLabels:
    def test_add_and_query(self):
        g = Grammar()
        x = g.fresh("X")
        g.add_label(x, DIRECT)
        assert g.has_label(x, DIRECT)
        assert not g.has_label(x, INDIRECT)
        assert g.has_label(x)

    def test_copy_labels_taintif(self):
        g = Grammar()
        x, y = g.fresh("X"), g.fresh("Y")
        g.add_label(x, DIRECT)
        g.add_label(x, INDIRECT)
        g.copy_labels(x, y)
        assert g.has_label(y, DIRECT) and g.has_label(y, INDIRECT)

    def test_labeled_nonterminals(self):
        g = Grammar()
        x, y = g.fresh("X"), g.fresh("Y")
        g.add_label(x, DIRECT)
        g.add_label(y, INDIRECT)
        assert set(g.labeled_nonterminals()) == {x, y}
        assert g.labeled_nonterminals(DIRECT) == [x]


class TestReachability:
    def test_reachable(self):
        g = Grammar()
        s, a, b = g.fresh("S"), g.fresh("A"), g.fresh("B")
        g.start = s
        g.add(s, (a,))
        g.add(b, (Lit("x"),))
        assert g.reachable() == {s, a}

    def test_productive(self):
        g = Grammar()
        s, a, b = g.fresh("S"), g.fresh("A"), g.fresh("B")
        g.add(s, (a,))
        g.add(a, (Lit("x"),))
        g.add(b, (b,))  # b only derives itself: unproductive
        assert g.productive() == {s, a}

    def test_trim(self):
        g = Grammar()
        s, a, dead, unreach = g.fresh("S"), g.fresh("A"), g.fresh("D"), g.fresh("U")
        g.start = s
        g.add(s, (a,))
        g.add(s, (dead,))
        g.add(a, (Lit("x"),))
        g.add(dead, (dead,))
        g.add(unreach, (Lit("y"),))
        trimmed = g.trim()
        assert set(trimmed.productions) == {s, a}
        assert trimmed.num_productions() == 2

    def test_trim_preserves_labels(self):
        g = Grammar()
        s, a = g.fresh("S"), g.fresh("A")
        g.start = s
        g.add(s, (a,))
        g.add(a, (DIGITS,))
        g.add_label(a, DIRECT)
        assert g.trim().has_label(a, DIRECT)

    def test_trim_empty_language(self):
        g = Grammar()
        s = g.fresh("S")
        g.start = s
        g.add(s, (s,))
        trimmed = g.trim()
        assert trimmed.num_productions() == 0

    def test_subgrammar(self):
        g = Grammar()
        s, a, b = g.fresh("S"), g.fresh("A"), g.fresh("B")
        g.start = s
        g.add(s, (a, b))
        g.add(a, (Lit("x"),))
        g.add(b, (Lit("y"),))
        sub = g.subgrammar(a)
        assert set(sub.productions) == {a}
        assert sub.start == a


class TestCycles:
    def test_self_loop(self):
        g = Grammar()
        x = g.fresh("X")
        g.add(x, (Lit("a"), x))
        g.add(x, ())
        assert g.cyclic_nonterminals() == {x}

    def test_mutual_cycle(self):
        g = Grammar()
        x, y, z = g.fresh("X"), g.fresh("Y"), g.fresh("Z")
        g.add(x, (y,))
        g.add(y, (x,))
        g.add(z, (x,))
        assert g.cyclic_nonterminals() == {x, y}

    def test_acyclic(self):
        g = Grammar()
        s, a = g.fresh("S"), g.fresh("A")
        g.add(s, (a, a))
        g.add(a, (Lit("x"),))
        assert g.cyclic_nonterminals() == set()

    def test_diamond_not_cyclic(self):
        g = Grammar()
        s, a, b, c = g.fresh("S"), g.fresh("A"), g.fresh("B"), g.fresh("C")
        g.add(s, (a, b))
        g.add(a, (c,))
        g.add(b, (c,))
        g.add(c, (Lit("x"),))
        assert g.cyclic_nonterminals() == set()


class TestLanguage:
    def test_charset_closure(self):
        g = Grammar()
        s, a = g.fresh("S"), g.fresh("A")
        g.add(s, (Lit("ab"), a))
        g.add(a, (DIGITS,))
        closure = g.charset_closure(s)
        for char in "ab0129":
            assert char in closure
        assert "z" not in closure

    def test_sample_strings(self):
        g, s = balanced_grammar()
        samples = g.sample_strings(s, limit=4)
        assert "" in samples
        assert "()" in samples
        assert "(())" in samples

    def test_sample_includes_quote_from_charset(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (CharSet.any_char(),))
        samples = g.sample_strings(s, limit=5)
        assert any("'" in t for t in samples)

    def test_generates_balanced(self):
        g, s = balanced_grammar()
        for text in ("", "()", "(())", "((()))"):
            assert g.generates(s, text)
        for text in ("(", ")", ")(", "(()"):
            assert not g.generates(s, text)

    def test_generates_with_multichar_lit(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("SELECT "), DIGITS))
        assert g.generates(s, "SELECT 7")
        assert not g.generates(s, "SELECT77")

    def test_generates_cyclic_unit_rules(self):
        g = Grammar()
        x, y = g.fresh("X"), g.fresh("Y")
        g.add(x, (y,))
        g.add(y, (x,))
        g.add(y, (Lit("a"),))
        assert g.generates(x, "a")
        assert not g.generates(x, "b")

    def test_generates_left_recursion(self):
        g = Grammar()
        x = g.fresh("X")
        g.add(x, (x, Lit("a")))
        g.add(x, (Lit("a"),))
        assert g.generates(x, "aaa")
        assert not g.generates(x, "")

    def test_generates_epsilon_chains(self):
        g = Grammar()
        s, e = g.fresh("S"), g.fresh("E")
        g.add(e, ())
        g.add(s, (e, Lit("x"), e))
        assert g.generates(s, "x")
        assert not g.generates(s, "")


class TestNormalize:
    def test_short_rhs_unchanged(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("a"), Lit("b")))
        normal = g.normalized(s)
        assert normal.productions[s] == [(Lit("a"), Lit("b"))]

    def test_long_rhs_split(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("a"), Lit("b"), Lit("c"), Lit("d")))
        normal = g.normalized(s)
        assert all(
            len(rhs) <= 2 for rules in normal.productions.values() for rhs in rules
        )
        assert normal.generates(s, "abcd")

    def test_language_preserved(self):
        g = Grammar()
        s, a = g.fresh("S"), g.fresh("A")
        g.add(s, (Lit("x"), a, Lit("y"), a))
        g.add(a, (DIGITS,))
        normal = g.normalized(s)
        assert normal.generates(s, "x1y2")
        assert not normal.generates(s, "x1y")

    def test_labels_preserved(self):
        g = Grammar()
        s, a = g.fresh("S"), g.fresh("A")
        g.add_label(a, DIRECT)
        g.add(s, (a, Lit("b"), a))
        normal = g.normalized(s)
        assert normal.has_label(a, DIRECT)
