"""Tests for the regex engine, cross-checked against Python's ``re``."""

import re

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.regex import (
    RegexError,
    full_match_language,
    literal_prefix,
    parse_php_regex,
    parse_regex,
    search_language,
)


def full(pattern: str, ignore_case=False):
    return full_match_language(parse_regex(pattern, ignore_case))


def search(pattern: str, ignore_case=False):
    return search_language(parse_regex(pattern, ignore_case))


class TestBasics:
    def test_literal(self):
        nfa = full("abc")
        assert nfa.accepts_string("abc")
        assert not nfa.accepts_string("ab")

    def test_dot_excludes_newline(self):
        nfa = full("a.c")
        assert nfa.accepts_string("abc")
        assert nfa.accepts_string("a'c")
        assert not nfa.accepts_string("a\nc")

    def test_alternation(self):
        nfa = full("cat|dog|bird")
        for word in ("cat", "dog", "bird"):
            assert nfa.accepts_string(word)
        assert not nfa.accepts_string("catdog")

    def test_grouping(self):
        nfa = full("(ab)+")
        assert nfa.accepts_string("abab")
        assert not nfa.accepts_string("aba")

    def test_non_capturing_group(self):
        pattern = parse_regex("(?:ab)+(c)")
        assert pattern.group_count == 1
        assert full_match_language(pattern).accepts_string("ababc")

    def test_empty_pattern(self):
        assert full("").accepts_string("")


class TestQuantifiers:
    @pytest.mark.parametrize(
        "pattern,text,expected",
        [
            ("a*", "", True),
            ("a*", "aaa", True),
            ("a+", "", False),
            ("a+", "a", True),
            ("a?", "", True),
            ("a?", "aa", False),
            ("a{3}", "aaa", True),
            ("a{3}", "aa", False),
            ("a{2,}", "aaaa", True),
            ("a{2,}", "a", False),
            ("a{1,3}", "aa", True),
            ("a{1,3}", "aaaa", False),
        ],
    )
    def test_quantifier(self, pattern, text, expected):
        assert full(pattern).accepts_string(text) == expected

    def test_lazy_same_language(self):
        assert full("a+?").accepts_string("aaa")

    def test_brace_literal_when_not_count(self):
        nfa = full("a{b}")
        assert nfa.accepts_string("a{b}")


class TestCharClasses:
    def test_simple_class(self):
        nfa = full("[abc]")
        for char in "abc":
            assert nfa.accepts_string(char)
        assert not nfa.accepts_string("d")

    def test_range(self):
        nfa = full("[a-f0-3]")
        for char in "af03":
            assert nfa.accepts_string(char)
        for char in "g4":
            assert not nfa.accepts_string(char)

    def test_negated_class(self):
        nfa = full("[^']")
        assert nfa.accepts_string("a")
        assert not nfa.accepts_string("'")

    def test_class_with_escape(self):
        nfa = full(r"[\d\-]")
        assert nfa.accepts_string("5")
        assert nfa.accepts_string("-")
        assert not nfa.accepts_string("a")

    def test_literal_bracket_first(self):
        nfa = full("[]a]")
        assert nfa.accepts_string("]")
        assert nfa.accepts_string("a")

    def test_posix_class(self):
        nfa = full("[[:digit:]]+")
        assert nfa.accepts_string("123")
        assert not nfa.accepts_string("x")

    def test_escapes(self):
        assert full(r"\d+").accepts_string("42")
        assert full(r"\w+").accepts_string("foo_9")
        assert not full(r"\w+").accepts_string("a b")
        assert full(r"\s").accepts_string("\t")
        assert full(r"\.").accepts_string(".")
        assert not full(r"\.").accepts_string("a")
        assert full(r"\x41").accepts_string("A")
        assert full(r"\n").accepts_string("\n")

    def test_unsupported_backreference(self):
        with pytest.raises(RegexError):
            parse_regex(r"(a)\1")


class TestIgnoreCase:
    def test_literal(self):
        nfa = full("select", ignore_case=True)
        for text in ("select", "SELECT", "SeLeCt"):
            assert nfa.accepts_string(text)

    def test_class(self):
        nfa = full("[a-f]+", ignore_case=True)
        assert nfa.accepts_string("DEAD")
        assert not nfa.accepts_string("XYZ")


class TestSearchSemantics:
    """The Figure 2 bug: unanchored patterns accept attack payloads."""

    def test_unanchored_digit_pattern_accepts_attack(self):
        nfa = search("[0-9]+")
        assert nfa.accepts_string("123")
        assert nfa.accepts_string("1'; DROP TABLE unp_user; --")

    def test_anchored_pattern_rejects_attack(self):
        nfa = search(r"^[0-9]+$")
        assert nfa.accepts_string("123")
        assert not nfa.accepts_string("1'; DROP TABLE unp_user; --")

    def test_start_anchor_only(self):
        nfa = search("^abc")
        assert nfa.accepts_string("abcdef")
        assert not nfa.accepts_string("xabc")

    def test_end_anchor_only(self):
        nfa = search("abc$")
        assert nfa.accepts_string("xabc")
        assert not nfa.accepts_string("abcx")

    def test_no_match_strings_rejected(self):
        nfa = search("[0-9]")
        assert not nfa.accepts_string("no digits here")


class TestPhpDelimiters:
    def test_slash_delimited(self):
        pattern = parse_php_regex(r"/^[\d]+$/")
        assert full_match_language(pattern).accepts_string("42")

    def test_flags(self):
        pattern = parse_php_regex("/abc/i")
        assert pattern.ignore_case
        assert full_match_language(pattern).accepts_string("ABC")

    def test_alternative_delimiters(self):
        pattern = parse_php_regex("#a/b#")
        assert full_match_language(pattern).accepts_string("a/b")

    def test_bracket_delimiters(self):
        pattern = parse_php_regex("(ab)")
        assert full_match_language(pattern).accepts_string("ab")

    def test_bad_pattern(self):
        with pytest.raises(RegexError):
            parse_php_regex("/abc")
        with pytest.raises(RegexError):
            parse_php_regex("x")


class TestAgainstPythonRe:
    """Differential testing against the reference implementation."""

    PATTERNS = [
        r"[0-9]+",
        r"^[0-9]+$",
        r"[a-z]+@[a-z]+\.(com|org)",
        r"(ab|cd)*e?",
        r"[^'\\]*",
        r"a{2,4}b",
        r"\w+\s\w+",
    ]

    @given(st.sampled_from(PATTERNS), st.text(alphabet="ab01'@.\\ czde-", max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_fullmatch_agrees(self, pattern, text):
        ours = full(pattern).accepts_string(text)
        theirs = re.fullmatch(pattern, text) is not None
        assert ours == theirs

    @given(st.sampled_from(PATTERNS), st.text(alphabet="ab01'@.\\ czde-", max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_search_agrees(self, pattern, text):
        ours = search(pattern).accepts_string(text)
        theirs = re.search(pattern, text) is not None
        assert ours == theirs


class TestLiteralPrefix:
    def test_plain(self):
        assert literal_prefix(parse_regex("abc[0-9]")) == "abc"

    def test_anchored(self):
        assert literal_prefix(parse_regex("^lan_[a-z]+")) == "lan_"

    def test_none(self):
        assert literal_prefix(parse_regex("[0-9]x")) == ""
