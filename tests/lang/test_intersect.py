"""Tests for CFG ∩ FSA intersection with taint propagation (Figure 7)."""

from hypothesis import given, settings, strategies as st

from repro.lang.charset import CharSet, DIGITS
from repro.lang.fsa import NFA
from repro.lang.grammar import DIRECT, Grammar, INDIRECT, Lit
from repro.lang.intersect import intersect, intersection_is_empty
from repro.lang.regex import parse_regex, search_language


def regex_dfa(pattern: str):
    return search_language(parse_regex(pattern)).determinize()


def full_dfa(pattern: str):
    from repro.lang.regex import full_match_language

    return full_match_language(parse_regex(pattern)).determinize()


def balanced():
    g = Grammar()
    s = g.fresh("S")
    g.start = s
    g.add(s, (Lit("("), s, Lit(")")))
    g.add(s, ())
    return g, s


class TestEmptiness:
    def test_nonempty_intersection(self):
        g, s = balanced()
        assert not intersection_is_empty(g, s, full_dfa(r"[()]*"))

    def test_empty_intersection(self):
        g, s = balanced()
        # balanced parens never contain a digit
        assert intersection_is_empty(g, s, regex_dfa("[0-9]"))

    def test_epsilon_in_both(self):
        g, s = balanced()
        assert not intersection_is_empty(g, s, full_dfa("x?"))

    def test_empty_grammar(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (s,))  # no terminal derivation
        assert intersection_is_empty(g, s, full_dfa(".*"))

    def test_empty_dfa(self):
        g, s = balanced()
        assert intersection_is_empty(g, s, NFA.nothing().determinize())

    def test_fixed_depth(self):
        g, s = balanced()
        exactly_two = full_dfa(r"\(\(\)\)")
        assert not intersection_is_empty(g, s, exactly_two)
        unbalanced = full_dfa(r"\(\(\)")
        assert intersection_is_empty(g, s, unbalanced)


class TestIntersectionGrammar:
    def test_language_is_intersection(self):
        g, s = balanced()
        limited = full_dfa(r"(\(\)|\(\(\)\))")  # () or (())
        result, start = intersect(g, s, limited)
        assert result.generates(start, "()")
        assert result.generates(start, "(())")
        assert not result.generates(start, "((()))")
        assert not result.generates(start, "")

    def test_charset_terminals_refined(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (CharSet.any_char(),))
        result, start = intersect(g, s, full_dfa("[0-9]"))
        assert result.generates(start, "5")
        assert not result.generates(start, "a")

    def test_multichar_literal_through_dfa(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("SELECT "), DIGITS))
        result, start = intersect(g, s, regex_dfa("SELECT"))
        assert result.generates(start, "SELECT 1")

    def test_empty_result_grammar(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("abc"),))
        result, start = intersect(g, s, full_dfa("xyz"))
        assert result.num_productions() == 0

    def test_figure2_refinement(self):
        """The paper's line 14: eregi('[0-9]+') refines Σ* but keeps attacks."""
        g = Grammar()
        userid = g.fresh("GETuid")
        g.add(userid, ())
        g.add(userid, (CharSet.any_char(), userid))
        g.add_label(userid, DIRECT)
        unanchored = regex_dfa("[0-9]+")
        result, start = intersect(g, userid, unanchored)
        # digits survive ...
        assert result.generates(start, "123")
        # ... and so does the attack payload (the vulnerability!)
        assert result.generates(start, "1'; DROP TABLE unp_user; --")
        # but pure alpha strings are gone
        assert not result.generates(start, "abc")

    def test_anchored_refinement_blocks_attack(self):
        g = Grammar()
        userid = g.fresh("GETuid")
        g.add(userid, ())
        g.add(userid, (CharSet.any_char(), userid))
        anchored = regex_dfa("^[0-9]+$")
        result, start = intersect(g, userid, anchored)
        assert result.generates(start, "123")
        assert not result.generates(start, "1'; DROP TABLE unp_user; --")


class TestTaintPropagation:
    """Theorem 3.1: labels survive intersection."""

    def test_labels_propagated(self):
        g = Grammar()
        s, x = g.fresh("S"), g.fresh("X")
        g.add(s, (Lit("id="), x))
        g.add(x, (DIGITS,))
        g.add(x, (DIGITS, x))
        g.add_label(x, DIRECT)
        result, start = intersect(g, s, regex_dfa("id=[0-9]+"))
        tainted = result.labeled_nonterminals(DIRECT)
        assert tainted, "direct label must survive intersection"
        # every tainted triple must derive the original tainted substrings
        assert any(result.generates(nt, "1") for nt in tainted)

    def test_untainted_stay_untainted(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("abc"),))
        result, _ = intersect(g, s, regex_dfa("abc"))
        assert not result.labeled_nonterminals()

    def test_both_labels_propagate(self):
        g = Grammar()
        x = g.fresh("X")
        g.add(x, (Lit("v"),))
        g.add_label(x, DIRECT)
        g.add_label(x, INDIRECT)
        result, start = intersect(g, x, regex_dfa("v"))
        assert result.has_label(start, DIRECT)
        assert result.has_label(start, INDIRECT)


class TestDifferentialRegularCase:
    """For regular grammars, CFG ∩ FSA must agree with DFA ∩ DFA."""

    PATTERNS = ["a*b", "(ab)*", "a|bb", "[ab]*a"]

    @given(
        st.sampled_from(PATTERNS),
        st.sampled_from(PATTERNS),
        st.text(alphabet="ab", max_size=6),
    )
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_automaton_product(self, left_pat, right_pat, text):
        from repro.lang.regex import full_match_language

        left_nfa = full_match_language(parse_regex(left_pat))
        grammar, root = _nfa_to_grammar(left_nfa)
        right_dfa = full_match_language(parse_regex(right_pat)).determinize()
        result, start = intersect(grammar, root, right_dfa)
        expected = left_nfa.accepts_string(text) and right_dfa.accepts_string(text)
        assert result.generates(start, text) == expected


def _nfa_to_grammar(nfa):
    """Right-linear grammar for an NFA's language (test helper)."""
    g = Grammar()
    state_nts = {s: g.fresh(f"q{s}") for s in range(nfa.num_states)}
    for src, edges in nfa.transitions.items():
        for label, dst in edges:
            g.add(state_nts[src], (label, state_nts[dst]))
    for src, dsts in nfa.epsilons.items():
        for dst in dsts:
            g.add(state_nts[src], (state_nts[dst],))
    for acc in nfa.accepts:
        g.add(state_nts[acc], ())
    g.start = state_nts[nfa.start]
    return g, g.start
