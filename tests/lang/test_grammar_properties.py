"""Property-based tests for grammar transformations on random grammars."""

from hypothesis import given, settings, strategies as st

from repro.lang.charset import CharSet
from repro.lang.grammar import Grammar, Lit


@st.composite
def random_grammar(draw):
    """A small random grammar over {a, b} with 2–4 nonterminals.

    Rules are built so the start symbol is always productive: every
    nonterminal gets at least one all-terminal production.
    """
    nt_count = draw(st.integers(2, 4))
    g = Grammar()
    nts = [g.fresh(f"N{i}") for i in range(nt_count)]
    g.start = nts[0]
    leaf = st.one_of(
        st.sampled_from([Lit("a"), Lit("b"), Lit("ab")]),
        st.just(CharSet.of("ab")),
    )
    for nt in nts:
        terminal_rhs = tuple(draw(st.lists(leaf, max_size=2)))
        g.add(nt, terminal_rhs)
        extra_count = draw(st.integers(0, 2))
        for _ in range(extra_count):
            symbols = draw(
                st.lists(
                    st.one_of(leaf, st.sampled_from(nts)),
                    min_size=1,
                    max_size=3,
                )
            )
            g.add(nt, tuple(symbols))
    return g


def short_strings():
    return st.text(alphabet="ab", max_size=5)


class TestTransformations:
    @given(random_grammar(), short_strings())
    @settings(max_examples=60, deadline=None)
    def test_normalized_preserves_language(self, g, text):
        normal = g.normalized(g.start)
        assert g.generates(g.start, text) == normal.generates(g.start, text)

    @given(random_grammar(), short_strings())
    @settings(max_examples=60, deadline=None)
    def test_trim_preserves_language(self, g, text):
        trimmed = g.trim(g.start)
        assert g.generates(g.start, text) == trimmed.generates(g.start, text)

    @given(random_grammar(), short_strings())
    @settings(max_examples=60, deadline=None)
    def test_subgrammar_same_language_at_root(self, g, text):
        sub = g.subgrammar(g.start)
        assert g.generates(g.start, text) == sub.generates(g.start, text)

    @given(random_grammar())
    @settings(max_examples=60, deadline=None)
    def test_samples_are_members(self, g):
        for sample in g.sample_strings(g.start, limit=5, max_len=10):
            assert g.generates(g.start, sample), sample

    @given(random_grammar())
    @settings(max_examples=40, deadline=None)
    def test_enumerate_finite_exact(self, g):
        strings = g.enumerate_finite(g.start, max_strings=32, max_len=20)
        if strings is None:
            return  # infinite or too large — nothing to assert
        for text in strings:
            assert g.generates(g.start, text)
        # and nothing short is missing
        for text in ("", "a", "b", "ab", "ba", "aa"):
            if g.generates(g.start, text):
                assert text in strings

    @given(random_grammar())
    @settings(max_examples=40, deadline=None)
    def test_charset_closure_covers_samples(self, g):
        closure = g.charset_closure(g.start)
        for sample in g.sample_strings(g.start, limit=5, max_len=10):
            for char in sample:
                assert char in closure


class TestIntersectionProperties:
    @given(random_grammar(), short_strings())
    @settings(max_examples=40, deadline=None)
    def test_intersection_with_sigma_star(self, g, text):
        """L ∩ Σ* = L."""
        from repro.lang.fsa import NFA
        from repro.lang.intersect import intersect

        dfa = NFA.any_string().determinize()
        result, start = intersect(g, g.start, dfa)
        assert result.generates(start, text) == g.generates(g.start, text)

    @given(random_grammar())
    @settings(max_examples=40, deadline=None)
    def test_intersection_with_empty_is_empty(self, g):
        from repro.lang.fsa import NFA
        from repro.lang.intersect import intersection_is_empty

        dfa = NFA.nothing().determinize()
        assert intersection_is_empty(g, g.start, dfa)

    @given(random_grammar(), short_strings())
    @settings(max_examples=40, deadline=None)
    def test_image_under_identity(self, g, text):
        from repro.lang.fst import FST
        from repro.lang.image import fst_image

        result, start = fst_image(g, g.start, FST.identity())
        assert result.generates(start, text) == g.generates(g.start, text)
