"""Tests for the canonical grammar fingerprint (the cache key of the
phase-2 verdict memo and the FST-image memo).

The fingerprint must be a pure function of grammar *structure* — stable
across processes, independent of nonterminal names and uids — and must
separate near-miss grammars (one literal, one label, or one production
different) so a cache hit can never replay the wrong verdict.
"""

import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lang.charset import CharSet
from repro.lang.grammar import DIRECT, Grammar, INDIRECT, Lit


def query_grammar(name_prefix=""):
    """Q → 'SELECT ' V; V → 'x' | [0-9] — a miniature query grammar."""
    g = Grammar()
    q = g.fresh(name_prefix + "Q")
    v = g.fresh(name_prefix + "V")
    g.start = q
    g.add(q, (Lit("SELECT "), v))
    g.add(v, (Lit("x"),))
    g.add(v, (CharSet.of("0123456789"),))
    g.add_label(v, DIRECT)
    return g, q


class TestStability:
    def test_names_and_uids_do_not_matter(self):
        a, root_a = query_grammar()
        b, root_b = query_grammar("renamed_")
        # b's nonterminals have different names AND different uids
        assert a.fingerprint(root_a) == b.fingerprint(root_b)

    def test_repeated_calls_agree(self):
        g, root = query_grammar()
        assert g.fingerprint(root) == g.fingerprint(root)

    def test_explicit_order_matches_default(self):
        g, root = query_grammar()
        order = g.canonical_order(root)
        assert g.fingerprint(root, order=order) == g.fingerprint(root)

    def test_structural_copy_same_fingerprint(self):
        g, root = query_grammar()
        copy = g.structural_copy()
        assert copy.fingerprint(root) == g.fingerprint(root)
        # and mutating the copy must not leak back
        copy.add(root, (Lit("extra"),))
        assert copy.fingerprint(root) != g.fingerprint(root)
        fresh, fresh_root = query_grammar()
        assert g.fingerprint(root) == fresh.fingerprint(fresh_root)

    def test_stable_across_processes(self):
        """The key property for the on-disk and cross-worker caches:
        a fresh interpreter (new hash seed, new uid counter, new object
        addresses) computes the same fingerprint."""
        g, root = query_grammar()
        repo_root = Path(__file__).resolve().parents[2]
        script = textwrap.dedent(
            """
            from tests.lang.test_fingerprint import query_grammar
            g, root = query_grammar("other_")
            print(g.fingerprint(root))
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo_root), str(repo_root / "src")]
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            cwd=repo_root,
            env=env,
        )
        assert out.stdout.strip() == g.fingerprint(root)


class TestSeparation:
    """Near-miss grammars must not collide."""

    def test_different_literal(self):
        a, root_a = query_grammar()
        b, root_b = query_grammar()
        b.add(root_b, (Lit("DELETE "),))
        assert a.fingerprint(root_a) != b.fingerprint(root_b)

    def test_different_label(self):
        a, root_a = query_grammar()
        b, root_b = query_grammar()
        # flip the taint label on the same structure
        (v_b,) = [nt for nt in b.canonical_order(root_b) if b.has_label(nt)]
        b.labels[v_b] = {INDIRECT}
        assert a.fingerprint(root_a) != b.fingerprint(root_b)

    def test_missing_label(self):
        a, root_a = query_grammar()
        b, root_b = query_grammar()
        b.labels.clear()
        assert a.fingerprint(root_a) != b.fingerprint(root_b)

    def test_different_charset(self):
        a, root_a = query_grammar()
        b, root_b = query_grammar()
        (v_b,) = [
            nt for nt in b.canonical_order(root_b) if nt is not root_b
        ]
        b.productions[v_b] = [
            rhs
            if not any(isinstance(s, CharSet) for s in rhs)
            else (CharSet.of("012345678"),)
            for rhs in b.productions[v_b]
        ]
        assert a.fingerprint(root_a) != b.fingerprint(root_b)

    def test_production_order_is_significant(self):
        """Two grammars whose nonterminals list the same alternatives in
        a different order are different derivation structures; keeping
        them distinct is the conservative choice."""
        a = Grammar()
        s = a.fresh("S")
        a.start = s
        a.add(s, (Lit("x"),))
        a.add(s, (Lit("y"),))

        b = Grammar()
        t = b.fresh("S")
        b.start = t
        b.add(t, (Lit("y"),))
        b.add(t, (Lit("x"),))
        assert a.fingerprint(s) != b.fingerprint(t)

    def test_root_scoping(self):
        """Only the part reachable from the root participates."""
        a, root_a = query_grammar()
        b, root_b = query_grammar()
        junk = b.fresh("unreachable")
        b.add(junk, (Lit("junk"),))
        assert a.fingerprint(root_a) == b.fingerprint(root_b)
