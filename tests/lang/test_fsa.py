"""Tests for NFA/DFA construction, determinization, and Boolean algebra."""

from hypothesis import given, settings, strategies as st

from repro.lang.charset import CharSet, DIGITS
from repro.lang.fsa import DFA, NFA


def nfa_strategy(depth=3):
    """Random regular languages over {a, b} built from the combinators."""
    leaves = st.sampled_from(
        [
            NFA.from_string("a"),
            NFA.from_string("b"),
            NFA.from_string("ab"),
            NFA.epsilon_language(),
            NFA.from_charset(CharSet.of("ab")),
        ]
    )
    return st.recursive(
        leaves,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda t: t[0].union(t[1])),
            st.tuples(inner, inner).map(lambda t: t[0].concat(t[1])),
            inner.map(lambda n: n.star()),
        ),
        max_leaves=depth,
    )


def ab_strings():
    return st.text(alphabet="ab", max_size=6)


class TestPrimitives:
    def test_nothing(self):
        nfa = NFA.nothing()
        assert not nfa.accepts_string("")
        assert not nfa.accepts_string("a")

    def test_epsilon_language(self):
        nfa = NFA.epsilon_language()
        assert nfa.accepts_string("")
        assert not nfa.accepts_string("a")

    def test_from_string(self):
        nfa = NFA.from_string("abc")
        assert nfa.accepts_string("abc")
        assert not nfa.accepts_string("ab")
        assert not nfa.accepts_string("abcd")
        assert not nfa.accepts_string("")

    def test_from_empty_string(self):
        assert NFA.from_string("").accepts_string("")

    def test_from_charset(self):
        nfa = NFA.from_charset(DIGITS)
        assert nfa.accepts_string("7")
        assert not nfa.accepts_string("a")
        assert not nfa.accepts_string("77")

    def test_any_string(self):
        nfa = NFA.any_string()
        for text in ("", "x", "hello world", "'; DROP TABLE users; --"):
            assert nfa.accepts_string(text)


class TestCombinators:
    def test_union(self):
        nfa = NFA.from_string("cat").union(NFA.from_string("dog"))
        assert nfa.accepts_string("cat")
        assert nfa.accepts_string("dog")
        assert not nfa.accepts_string("catdog")

    def test_concat(self):
        nfa = NFA.from_string("ab").concat(NFA.from_string("cd"))
        assert nfa.accepts_string("abcd")
        assert not nfa.accepts_string("ab")

    def test_star(self):
        nfa = NFA.from_string("ab").star()
        for text in ("", "ab", "abab", "ababab"):
            assert nfa.accepts_string(text)
        assert not nfa.accepts_string("aba")

    def test_plus(self):
        nfa = NFA.from_string("a").plus()
        assert not nfa.accepts_string("")
        assert nfa.accepts_string("a")
        assert nfa.accepts_string("aaa")

    def test_optional(self):
        nfa = NFA.from_string("a").optional()
        assert nfa.accepts_string("")
        assert nfa.accepts_string("a")
        assert not nfa.accepts_string("aa")

    def test_repeat_exact(self):
        nfa = NFA.from_string("a").repeat(2, 2)
        assert nfa.accepts_string("aa")
        assert not nfa.accepts_string("a")
        assert not nfa.accepts_string("aaa")

    def test_repeat_range(self):
        nfa = NFA.from_string("a").repeat(1, 3)
        assert [nfa.accepts_string("a" * n) for n in range(5)] == [
            False,
            True,
            True,
            True,
            False,
        ]

    def test_repeat_unbounded(self):
        nfa = NFA.from_string("a").repeat(2, None)
        assert not nfa.accepts_string("a")
        assert nfa.accepts_string("aaaaa")

    def test_reverse(self):
        nfa = NFA.from_string("abc").reverse()
        assert nfa.accepts_string("cba")
        assert not nfa.accepts_string("abc")


class TestDeterminize:
    def test_preserves_language(self):
        nfa = NFA.from_string("a").star().concat(NFA.from_string("b"))
        dfa = nfa.determinize()
        for text in ("b", "ab", "aaab"):
            assert dfa.accepts_string(text)
        for text in ("", "a", "ba", "abb"):
            assert not dfa.accepts_string(text)

    def test_charset_split(self):
        # Two overlapping charset edges force alphabet refinement.
        nfa = NFA.from_charset(CharSet.range("a", "m")).union(
            NFA.from_charset(CharSet.range("g", "z"))
        )
        dfa = nfa.determinize()
        for char in "agmz":
            assert dfa.accepts_string(char)
        assert not dfa.accepts_string("A")

    @given(nfa_strategy(), ab_strings())
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_nfa(self, nfa, text):
        assert nfa.accepts_string(text) == nfa.determinize().accepts_string(text)


class TestDFAOperations:
    def test_shortest_string(self):
        dfa = NFA.from_string("abc").union(NFA.from_string("xy")).determinize()
        assert dfa.shortest_string() == "xy"

    def test_shortest_string_empty_language(self):
        assert NFA.nothing().determinize().shortest_string() is None

    def test_shortest_string_epsilon(self):
        assert NFA.epsilon_language().determinize().shortest_string() == ""

    def test_is_empty(self):
        assert NFA.nothing().is_empty()
        assert not NFA.from_string("a").is_empty()

    def test_complement(self):
        dfa = NFA.from_string("ab").determinize().complement()
        assert not dfa.accepts_string("ab")
        for text in ("", "a", "b", "abc", "'"):
            assert dfa.accepts_string(text)

    def test_intersect(self):
        evens = NFA.from_charset(CharSet.of("ab")).repeat(2, 2).star().determinize()
        starts_a = (
            NFA.from_string("a").concat(NFA.from_charset(CharSet.of("ab")).star())
        ).determinize()
        both = evens.intersect(starts_a)
        assert both.accepts_string("ab")
        assert both.accepts_string("aaaa")
        assert not both.accepts_string("a")
        assert not both.accepts_string("ba")

    def test_subset(self):
        a_plus = NFA.from_string("a").plus().determinize()
        a_star = NFA.from_string("a").star().determinize()
        assert a_plus.is_subset_of(a_star)
        assert not a_star.is_subset_of(a_plus)

    def test_run_string(self):
        dfa = NFA.from_string("abc").determinize()
        mid = dfa.run_string(dfa.start, "ab")
        assert mid is not None
        assert dfa.run_string(mid, "c") in dfa.accepts
        assert dfa.run_string(dfa.start, "zz") is None

    @given(nfa_strategy(), ab_strings())
    @settings(max_examples=40, deadline=None)
    def test_complement_flips_membership(self, nfa, text):
        dfa = nfa.determinize()
        assert dfa.accepts_string(text) != dfa.complement().accepts_string(text)

    @given(nfa_strategy(), nfa_strategy(), ab_strings())
    @settings(max_examples=40, deadline=None)
    def test_intersection_semantics(self, nfa1, nfa2, text):
        both = nfa1.determinize().intersect(nfa2.determinize())
        expected = nfa1.accepts_string(text) and nfa2.accepts_string(text)
        assert both.accepts_string(text) == expected


class TestMinimize:
    def test_minimize_preserves_language(self):
        nfa = NFA.from_string("ab").union(NFA.from_string("ab"))
        dfa = nfa.determinize().minimize()
        assert dfa.accepts_string("ab")
        assert not dfa.accepts_string("a")

    def test_minimize_shrinks(self):
        # (a|b)*b built redundantly
        sigma = NFA.from_charset(CharSet.of("ab"))
        nfa = sigma.star().concat(NFA.from_string("b"))
        big = nfa.determinize()
        small = big.minimize()
        assert small.num_states <= big.num_states
        for text in ("b", "ab", "bb", "aab"):
            assert small.accepts_string(text)
        for text in ("", "a", "ba"):
            assert not small.accepts_string(text)

    def test_minimize_empty_language(self):
        dfa = NFA.nothing().determinize().minimize()
        assert dfa.is_empty()

    @given(nfa_strategy(), ab_strings())
    @settings(max_examples=40, deadline=None)
    def test_minimize_language_equal(self, nfa, text):
        dfa = nfa.determinize()
        assert dfa.accepts_string(text) == dfa.minimize().accepts_string(text)

    def test_live_states_prunes_dead(self):
        dfa = DFA()
        s0, s1, s2 = dfa.new_state(), dfa.new_state(), dfa.new_state()
        dfa.start = s0
        dfa.accepts = {s1}
        dfa.add_edge(s0, CharSet.of("a"), s1)
        dfa.add_edge(s0, CharSet.of("b"), s2)  # s2 is a trap
        assert dfa.live_states() == {s0, s1}
