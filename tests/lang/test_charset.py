"""Unit and property tests for the interval character-set algebra."""

import string

from hypothesis import given, strategies as st

from repro.lang.charset import (
    ALNUM,
    CharSet,
    DIGITS,
    MAX_CODEPOINT,
    SPACE,
    WORD,
    partition_charsets,
)


def small_charsets():
    """Strategy: charsets over a small, collision-prone alphabet."""
    interval = st.tuples(st.integers(0, 120), st.integers(0, 40)).map(
        lambda pair: (pair[0], pair[0] + pair[1])
    )
    return st.lists(interval, max_size=5).map(CharSet)


class TestConstruction:
    def test_empty(self):
        assert not CharSet.empty()
        assert CharSet.empty().size() == 0

    def test_of_chars(self):
        cs = CharSet.of("abc")
        assert "a" in cs and "b" in cs and "c" in cs
        assert "d" not in cs
        assert cs.size() == 3

    def test_of_merges_adjacent(self):
        assert CharSet.of("abc").intervals == ((ord("a"), ord("c")),)

    def test_range(self):
        cs = CharSet.range("0", "9")
        assert cs == DIGITS
        assert cs.size() == 10

    def test_overlapping_intervals_merge(self):
        cs = CharSet([(10, 20), (15, 30), (31, 40)])
        assert cs.intervals == ((10, 40),)

    def test_out_of_order_intervals(self):
        assert CharSet([(30, 40), (10, 20)]).intervals == ((10, 20), (30, 40))

    def test_inverted_interval_dropped(self):
        assert CharSet([(20, 10)]) == CharSet.empty()

    def test_any_char_covers_everything(self):
        any_cs = CharSet.any_char()
        assert "a" in any_cs
        assert chr(MAX_CODEPOINT) in any_cs
        assert any_cs.size() == MAX_CODEPOINT + 1


class TestMembership:
    def test_contains_accepts_int(self):
        assert ord("q") in CharSet.of("q")

    def test_binary_search_boundaries(self):
        cs = CharSet([(10, 12), (20, 22), (30, 32)])
        for cp in (10, 12, 20, 22, 30, 32):
            assert cp in cs
        for cp in (9, 13, 19, 23, 29, 33):
            assert cp not in cs

    def test_singleton(self):
        assert CharSet.of("x").is_singleton()
        assert not CharSet.of("xy").is_singleton()
        assert not CharSet.empty().is_singleton()

    def test_min_and_sample(self):
        assert CharSet.of("zay").min_char() == "a"
        assert CharSet.of("\x01a").sample_char() == "a"

    def test_chars_iteration_limit(self):
        assert list(DIGITS.chars(limit=3)) == ["0", "1", "2"]
        assert list(DIGITS.chars()) == list(string.digits)


class TestAlgebra:
    def test_union(self):
        assert DIGITS.union(CharSet.of("abc")).size() == 13

    def test_intersect(self):
        assert ALNUM.intersect(DIGITS) == DIGITS
        assert DIGITS.intersect(SPACE) == CharSet.empty()

    def test_complement_roundtrip(self):
        assert DIGITS.complement().complement() == DIGITS

    def test_complement_of_empty(self):
        assert CharSet.empty().complement() == CharSet.any_char()

    def test_difference(self):
        assert WORD.difference(ALNUM) == CharSet.of("_")

    def test_overlaps(self):
        assert ALNUM.overlaps(DIGITS)
        assert not DIGITS.overlaps(SPACE)
        assert not CharSet.empty().overlaps(CharSet.any_char())

    def test_subset(self):
        assert DIGITS.is_subset_of(ALNUM)
        assert not ALNUM.is_subset_of(DIGITS)
        assert CharSet.empty().is_subset_of(CharSet.empty())

    @given(small_charsets(), small_charsets())
    def test_union_is_superset(self, a, b):
        union = a.union(b)
        assert a.is_subset_of(union) and b.is_subset_of(union)

    @given(small_charsets(), small_charsets())
    def test_intersection_is_subset(self, a, b):
        both = a.intersect(b)
        assert both.is_subset_of(a) and both.is_subset_of(b)

    @given(small_charsets())
    def test_complement_is_disjoint_and_covering(self, a):
        comp = a.complement()
        assert not a.overlaps(comp)
        assert a.union(comp) == CharSet.any_char()

    @given(small_charsets(), small_charsets())
    def test_de_morgan(self, a, b):
        lhs = a.union(b).complement()
        rhs = a.complement().intersect(b.complement())
        assert lhs == rhs

    @given(small_charsets(), small_charsets())
    def test_difference_semantics(self, a, b):
        diff = a.difference(b)
        for char in diff.chars(limit=32):
            assert char in a and char not in b


class TestHashEq:
    def test_equal_sets_equal_hash(self):
        assert hash(CharSet.of("abc")) == hash(CharSet([(97, 99)]))

    def test_usable_as_dict_key(self):
        table = {DIGITS: 1}
        assert table[CharSet.range("0", "9")] == 1

    def test_repr_readable(self):
        assert "0-9" in repr(DIGITS)
        assert repr(CharSet.empty()) == "CharSet(∅)"
        assert repr(CharSet.any_char()) == "CharSet(Σ)"


class TestPartition:
    def test_disjoint_classes(self):
        classes = partition_charsets([ALNUM, DIGITS, CharSet.of("abc")])
        for i, a in enumerate(classes):
            for b in classes[i + 1 :]:
                assert not a.overlaps(b)

    def test_inputs_are_unions_of_classes(self):
        inputs = [ALNUM, DIGITS, CharSet.of("a_z"), SPACE]
        classes = partition_charsets(inputs)
        for original in inputs:
            rebuilt = CharSet.union_of(
                [cls for cls in classes if cls.overlaps(original)]
            )
            assert rebuilt == original

    def test_empty_input(self):
        assert partition_charsets([]) == []

    @given(st.lists(small_charsets(), max_size=4))
    def test_partition_property(self, sets):
        classes = partition_charsets(sets)
        union_in = CharSet.union_of(sets)
        union_out = CharSet.union_of(classes)
        assert union_in == union_out
        for i, a in enumerate(classes):
            assert a
            for b in classes[i + 1 :]:
                assert not a.overlaps(b)
