"""Randomized equivalence: optimized kernels vs. their reference models.

The hot kernels (bitset charsets, the compiled Earley recognizer, the
lazy FST image, the one-pass trims, the abstraction pre-filter) all
promise *exact* semantics — every optimization is a constant-factor
rewrite, never an approximation.  :mod:`repro.lang.reference` keeps the
original, simple implementations; these tests drive both sides with
randomized inputs and require agreement.
"""

from hypothesis import given, settings, strategies as st

from repro.lang import reference as ref
from repro.lang.abstraction import prefilter_decides_empty
from repro.lang.charset import CharSet, partition_charsets
from repro.lang.earley import TokenGrammar, parse_sentential_form
from repro.lang.fst import FST
from repro.lang.grammar import Grammar, Lit
from repro.lang.image import fst_image
from repro.lang.intersect import _PairTable, intersect, intersection_is_empty
from repro.lang.regex import full_match_language, parse_regex, search_language


# -- strategies ---------------------------------------------------------------

raw_intervals = st.lists(
    st.tuples(st.integers(0, 220), st.integers(0, 40)).map(
        lambda t: (t[0], t[0] + t[1])
    ),
    max_size=5,
)


@st.composite
def random_grammar(draw):
    """A small random grammar over {a, b}; start is always productive."""
    nt_count = draw(st.integers(2, 4))
    g = Grammar()
    nts = [g.fresh(f"N{i}") for i in range(nt_count)]
    g.start = nts[0]
    leaf = st.one_of(
        st.sampled_from([Lit("a"), Lit("b"), Lit("ab")]),
        st.just(CharSet.of("ab")),
    )
    for nt in nts:
        g.add(nt, tuple(draw(st.lists(leaf, max_size=2))))
        for _ in range(draw(st.integers(0, 2))):
            symbols = draw(
                st.lists(
                    st.one_of(leaf, st.sampled_from(nts)),
                    min_size=1,
                    max_size=3,
                )
            )
            g.add(nt, tuple(symbols))
    return g


@st.composite
def token_grammar_and_form(draw):
    nts = ["S", "A", "B"]
    terms = ["a", "b"]
    g = TokenGrammar("S")
    for nt in nts:
        for _ in range(draw(st.integers(1, 3))):
            g.add(nt, tuple(draw(st.lists(st.sampled_from(nts + terms), max_size=3))))
    form = draw(st.lists(st.sampled_from(nts + terms + ["X"]), max_size=4))
    return g, form


FSTS = [
    FST.identity(),
    FST.lowercase(),
    FST.delete_chars(CharSet.of("a")),
    FST.replace_chars(CharSet.of("b"), "X"),
    FST.escape_chars(CharSet.of("ab")),
]

DFAS = [
    search_language(parse_regex(p)).determinize()
    for p in ("[0-9]", "a", "ab", "[^ab]")
] + [
    full_match_language(parse_regex(p)).determinize()
    for p in ("[ab]*", "a*", "(ab)+", "b")
]


# -- charsets vs. interval reference ------------------------------------------


class TestCharSetReference:
    @given(raw_intervals)
    @settings(max_examples=100, deadline=None)
    def test_normalize(self, a):
        assert CharSet(a).intervals == ref.ref_normalize(a)

    @given(raw_intervals, raw_intervals)
    @settings(max_examples=100, deadline=None)
    def test_binary_algebra(self, a, b):
        x, y = CharSet(a), CharSet(b)
        an, bn = x.intervals, y.intervals
        assert x.union(y).intervals == ref.ref_union(an, bn)
        assert x.intersect(y).intervals == ref.ref_intersect(an, bn)
        assert x.difference(y).intervals == ref.ref_difference(an, bn)
        assert x.overlaps(y) == ref.ref_overlaps(an, bn)
        assert x.is_subset_of(y) == ref.ref_is_subset(an, bn)

    @given(raw_intervals)
    @settings(max_examples=100, deadline=None)
    def test_complement(self, a):
        x = CharSet(a)
        assert x.complement().intervals == ref.ref_complement(x.intervals)

    @given(raw_intervals, st.integers(0, 300))
    @settings(max_examples=100, deadline=None)
    def test_membership(self, a, cp):
        x = CharSet(a)
        assert (cp in x) == ref.ref_contains(x.intervals, cp)

    @given(st.lists(raw_intervals, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_partition(self, interval_sets):
        sets = [CharSet(iv) for iv in interval_sets]
        got = [p.intervals for p in partition_charsets(sets)]
        assert got == ref.ref_partition([s.intervals for s in sets])


# -- Earley recognizer vs. reference chart ------------------------------------


class TestEarleyReference:
    @given(token_grammar_and_form())
    @settings(max_examples=80, deadline=None)
    def test_recognition_matches(self, case):
        g, form = case
        classes = {"X": frozenset({"a", "b"})}
        assert parse_sentential_form(g, "S", form, classes) == \
            ref.ref_parse_sentential_form(g, "S", form, classes)

    @given(token_grammar_and_form())
    @settings(max_examples=80, deadline=None)
    def test_recognition_matches_no_classes(self, case):
        g, form = case
        form = [s for s in form if s != "X"]
        assert parse_sentential_form(g, "S", form) == \
            ref.ref_parse_sentential_form(g, "S", form)


# -- lazy FST image vs. eager reference construction --------------------------


class TestImageReference:
    @given(random_grammar(), st.sampled_from(FSTS))
    @settings(max_examples=40, deadline=None)
    def test_image_fingerprint_matches(self, g, fst):
        fast, fast_start = fst_image(g, g.start, fst)
        slow, slow_start = ref.ref_fst_image(g, g.start, fst)
        assert fast.fingerprint(fast_start) == slow.fingerprint(slow_start)

    @given(random_grammar(), st.sampled_from(FSTS))
    @settings(max_examples=30, deadline=None)
    def test_image_samples_in_reference_language(self, g, fst):
        fast, fast_start = fst_image(g, g.start, fst)
        slow, slow_start = ref.ref_fst_image(g, g.start, fst)
        for text in fast.sample_strings(fast_start, limit=4, max_len=20):
            assert ref.ref_generates(slow, slow_start, text), text


# -- one-pass trims ≡ full trim ----------------------------------------------


def _same_grammar(a: Grammar, b: Grammar) -> bool:
    return (
        list(a.productions) == list(b.productions)
        and all(a.productions[nt] == b.productions[nt] for nt in a.productions)
        and {nt: set(s) for nt, s in a.labels.items() if s}
        == {nt: set(s) for nt, s in b.labels.items() if s}
        and a._nrules == sum(len(r) for r in a.productions.values())
    )


class TestOnePassTrims:
    @given(random_grammar(), st.sampled_from(FSTS))
    @settings(max_examples=40, deadline=None)
    def test_image_trim_is_idempotent(self, g, fst):
        # _image_trim replaced the full trim inside fst_image; a second,
        # full trim of its output must be the identity
        img, start = fst_image(g, g.start, fst)
        assert _same_grammar(img.trim(start), img)

    @given(random_grammar(), st.sampled_from(DFAS))
    @settings(max_examples=40, deadline=None)
    def test_intersect_trim_is_idempotent(self, g, dfa):
        # same contract for _reach_trim inside intersect
        result, start = intersect(g, g.start, dfa)
        assert _same_grammar(result.trim(start), result)


# -- running-count invariant --------------------------------------------------


class TestRuleCountInvariant:
    @given(random_grammar(), st.sampled_from(DFAS), st.sampled_from(FSTS))
    @settings(max_examples=40, deadline=None)
    def test_nrules_matches_actual_rules(self, g, dfa, fst):
        def check(grammar):
            assert grammar._nrules == sum(
                len(rules) for rules in grammar.productions.values()
            )

        check(g)
        check(g.trim(g.start))
        check(g.subgrammar(g.start))
        check(g.normalized(g.start))
        result, _ = intersect(g, g.start, dfa)
        check(result)
        img, _ = fst_image(g, g.start, fst)
        check(img)


# -- abstraction pre-filter vs. exact CFG ∩ FSA -------------------------------


class TestPrefilterSoundness:
    @given(random_grammar(), st.sampled_from(DFAS))
    @settings(max_examples=100, deadline=None)
    def test_prefilter_empty_implies_exactly_empty(self, g, dfa):
        """A "provably empty" pre-filter answer must agree with the
        exact pair-fixpoint emptiness — the pre-filter may only ever
        skip work, never change a verdict."""
        decided = prefilter_decides_empty(g, g.start, dfa)
        table = _PairTable(g, g.start, dfa)
        exact_empty = not any(
            (dfa.start, qf) in table.pairs[g.start] for qf in dfa.accepts
        )
        if decided:
            assert exact_empty
        # and the public entry point agrees with the exact answer
        assert intersection_is_empty(g, g.start, dfa) == exact_empty
