"""Tests for the reference SQL grammar."""

import pytest

from repro.lang.earley import parse_sentential_form
from repro.sql.grammar import parses_as_query, sql_grammar
from repro.sql.lexer import token_symbols


def accepts(sql: str) -> bool:
    return parses_as_query(token_symbols(sql))


class TestSelect:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM users",
            "SELECT id, name FROM users",
            "SELECT * FROM users WHERE id = 1",
            "SELECT * FROM `unp_user` WHERE userid='42'",
            "SELECT DISTINCT name FROM users",
            "SELECT * FROM a, b WHERE a.id = b.id",
            "SELECT * FROM news ORDER BY `date` DESC LIMIT 1",
            "SELECT * FROM t WHERE a = 1 AND b = 'x' OR NOT c < 3",
            "SELECT * FROM t WHERE name LIKE 'a%'",
            "SELECT * FROM t WHERE x IS NULL",
            "SELECT * FROM t WHERE x IS NOT NULL",
            "SELECT * FROM t WHERE id IN (1, 2, 3)",
            "SELECT * FROM t WHERE id BETWEEN 1 AND 9",
            "SELECT COUNT(*) FROM t",
            "SELECT MAX(score) FROM t GROUP BY team",
            "SELECT * FROM t GROUP BY a HAVING COUNT(*) > 2",
            "SELECT * FROM a JOIN b ON a.id = b.id",
            "SELECT * FROM a LEFT JOIN b ON a.id = b.id WHERE b.x = 1",
            "SELECT 1 FROM t UNION SELECT 2 FROM u",
            "SELECT 1 FROM t UNION ALL SELECT 2 FROM u",
            "SELECT * FROM t LIMIT 10, 20",
            "SELECT * FROM t LIMIT 10 OFFSET 20",
            "SELECT * FROM t WHERE price > 1.5 * 2",
            "SELECT * FROM t WHERE a = -1",
            "SELECT u.name AS n FROM users u",
        ],
    )
    def test_valid(self, sql):
        assert accepts(sql), sql

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT FROM users",
            "SELECT * users",
            "SELECT * FROM WHERE x = 1",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t ORDER",
            "FROM users SELECT *",
        ],
    )
    def test_invalid(self, sql):
        assert not accepts(sql), sql


class TestOtherStatements:
    @pytest.mark.parametrize(
        "sql",
        [
            "INSERT INTO t VALUES (1, 'a', NULL)",
            "INSERT INTO t (a, b) VALUES (1, 2)",
            "INSERT INTO t VALUES (1), (2)",
            "UPDATE t SET a = 1",
            "UPDATE t SET a = 1, b = 'x' WHERE id = 3",
            "DELETE FROM t",
            "DELETE FROM t WHERE id = 1 LIMIT 1",
            "DROP TABLE users",
        ],
    )
    def test_valid(self, sql):
        assert accepts(sql), sql

    def test_statement_sequence(self):
        assert accepts("SELECT * FROM t; DROP TABLE t")
        assert accepts("SELECT * FROM t; DROP TABLE t;")

    def test_attack_query_parses_as_sequence(self):
        """The Figure 2 attack is a *valid* query sequence — the attack is
        detected by confinement, not by parse failure."""
        attack = "SELECT * FROM `unp_user` WHERE userid='1'; DROP TABLE unp_user"
        assert accepts(attack)

    @pytest.mark.parametrize(
        "sql",
        [
            "INSERT t VALUES (1)",
            "UPDATE SET a = 1",
            "DROP users",
            "DELETE t",
        ],
    )
    def test_invalid(self, sql):
        assert not accepts(sql), sql


class TestSententialForms:
    def test_literal_in_where(self):
        g = sql_grammar()
        form = token_symbols("SELECT * FROM t WHERE id =") + ["literal"]
        assert parse_sentential_form(g, "query_list", form)

    def test_expr_in_where(self):
        g = sql_grammar()
        form = token_symbols("SELECT * FROM t WHERE") + ["expr"]
        assert parse_sentential_form(g, "query_list", form)

    def test_literal_not_a_table(self):
        g = sql_grammar()
        form = token_symbols("SELECT * FROM") + ["literal"]
        assert not parse_sentential_form(g, "query_list", form)
