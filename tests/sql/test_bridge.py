"""Tests for the char-level → token-level grammar bridge."""

import pytest

from repro.lang.charset import CharSet, DIGITS
from repro.lang.earley import parse_sentential_form
from repro.lang.grammar import Grammar, Lit
from repro.sql.bridge import TokenizationFailure, grammar_to_tokens, tokens_can_merge
from repro.sql.grammar import sql_grammar


class TestAtomicAbstraction:
    def test_digit_loop_is_number(self):
        g = Grammar()
        s, num = g.fresh("S"), g.fresh("NUM")
        g.add(num, (DIGITS,))
        g.add(num, (DIGITS, num))
        g.add(s, (Lit("SELECT * FROM t WHERE id = "), num))
        tokens = grammar_to_tokens(g, s)
        forms = tokens.productions[tokens.start]
        assert all("NUMBER" in rhs for rhs in forms)
        assert parse_sentential_form(sql_grammar(), "query_list", list(forms[0]))

    def test_quoted_string_nonterminal(self):
        g = Grammar()
        s, string = g.fresh("S"), g.fresh("STR")
        inner = g.fresh("INNER")
        g.add(inner, ())
        g.add(inner, (CharSet.of("ab"), inner))
        g.add(string, (Lit("'"), inner, Lit("'")))
        g.add(s, (Lit("SELECT * FROM t WHERE name = "), string))
        tokens = grammar_to_tokens(g, s)
        forms = tokens.productions[tokens.start]
        assert any("STRING" in rhs for rhs in forms)

    def test_ident_abstraction(self):
        g = Grammar()
        col = g.fresh("COL")
        g.add(col, (Lit("userid"),))
        g.add(col, (Lit("name"),))
        s = g.fresh("S")
        g.add(s, (Lit("SELECT "), col, Lit(" FROM t")))
        tokens = grammar_to_tokens(g, s)
        forms = tokens.productions[tokens.start]
        assert forms == [("SELECT", "IDENT", "FROM", "IDENT")]

    def test_keyword_language_not_ident(self):
        g = Grammar()
        kw = g.fresh("KW")
        g.add(kw, (Lit("DROP"),))
        s = g.fresh("S")
        g.add(s, (Lit("SELECT "), kw, Lit(" FROM t")))
        tokens = grammar_to_tokens(g, s)
        # DROP must come through as the DROP keyword, not IDENT
        # (the finite language is enumerated and lexed wholesale)
        assert tokens.productions[tokens.start] == [
            ("SELECT", "DROP", "FROM", "IDENT")
        ]


class TestBoundaries:
    def test_adjacent_digits_fail(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("SELECT "), DIGITS, DIGITS, Lit(" FROM t")))
        with pytest.raises(TokenizationFailure):
            grammar_to_tokens(g, s)

    def test_literal_digit_then_charset_fails(self):
        g = Grammar()
        s, digits = g.fresh("S"), g.fresh("D")
        g.add(digits, (DIGITS,))
        g.add(digits, (DIGITS, digits))
        g.add(s, (Lit("LIMIT 1"), digits))
        with pytest.raises(TokenizationFailure):
            grammar_to_tokens(g, s)

    def test_finite_digit_suffix_lexes_wholesale(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("LIMIT 1"), DIGITS))
        tokens = grammar_to_tokens(g, s)
        assert ("LIMIT", "NUMBER") in tokens.productions[tokens.start]

    def test_unterminated_quote_fails(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("WHERE name='"), DIGITS))
        with pytest.raises(TokenizationFailure):
            grammar_to_tokens(g, s)

    def test_comment_literal_fails(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("SELECT 1 -- hidden"),))
        with pytest.raises(TokenizationFailure):
            grammar_to_tokens(g, s)

    def test_clean_boundaries_pass(self):
        g = Grammar()
        s = g.fresh("S")
        g.add(s, (Lit("SELECT * FROM t WHERE id = "), DIGITS, Lit(" AND x = 1")))
        tokens = grammar_to_tokens(g, s)
        form = tokens.productions[tokens.start][0]
        assert parse_sentential_form(sql_grammar(), "query_list", list(form))

    def test_nullable_middle_checked(self):
        g = Grammar()
        s, empty, digits = g.fresh("S"), g.fresh("E"), g.fresh("D")
        g.add(empty, ())
        g.add(digits, (DIGITS,))
        g.add(digits, (DIGITS, digits))
        g.add(s, (Lit("SELECT x"), empty, digits))
        with pytest.raises(TokenizationFailure):
            grammar_to_tokens(g, s)


class TestMergePredicate:
    @pytest.mark.parametrize(
        "a,b,merges",
        [
            ("a", "b", True),
            ("1", "2", True),
            ("a", "1", True),
            ("-", "-", True),
            ("<", "=", True),
            ("!", "=", True),
            ("<", ">", True),
            ("'", "'", True),
            ("1", ".", True),
            (".", "5", True),
            ("\\", "x", True),
            (")", "(", False),
            ("1", " ", False),
            ("=", "1", False),
            ("'", "a", False),
        ],
    )
    def test_pairs(self, a, b, merges):
        assert tokens_can_merge(CharSet.of(a), CharSet.of(b)) == merges


class TestSpecialHoles:
    def test_hole_becomes_token(self):
        g = Grammar()
        s, hole = g.fresh("S"), g.fresh("X")
        g.add(s, (Lit("SELECT * FROM t WHERE id = "), hole))
        tokens = grammar_to_tokens(g, s, special={hole: "HOLE"})
        assert ("SELECT", "*", "FROM", "IDENT", "WHERE", "IDENT", "=", "HOLE") in (
            tokens.productions[tokens.start]
        )
        assert tokens.is_nonterminal("HOLE")
        assert tokens.productions["HOLE"] == []
