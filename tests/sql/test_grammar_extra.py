"""Additional SQL grammar coverage: forms the corpus and checks rely on."""

import pytest

from repro.sql.grammar import parses_as_query, sql_grammar
from repro.sql.lexer import token_symbols


def accepts(sql: str) -> bool:
    return parses_as_query(token_symbols(sql))


class TestSignedLimit:
    def test_negative_limit_accepted(self):
        # accepted by the grammar (the analysis abstracts PHP arithmetic
        # as possibly-signed); MySQL rejects it at runtime
        assert accepts("SELECT * FROM t LIMIT -1, 25")

    def test_signed_offset_form(self):
        assert accepts("SELECT * FROM t LIMIT 5 OFFSET -2")


class TestRealisticCorpusQueries:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM `unp_user` WHERE userid='42'",
            "UPDATE `unp_user` SET lastvisit='1699999999' WHERE username='bob'",
            "INSERT INTO `unp_news` (`date`, `subject`) VALUES ('1', 'hi')",
            "DELETE FROM `unp_session` WHERE token='abc' LIMIT 1",
            "SELECT * FROM `tiger_news` WHERE id=7",
            "SELECT pilot, COUNT(*) AS n FROM activity GROUP BY pilot"
            " ORDER BY n DESC LIMIT 10",
            "UPDATE `e107_news_stats` SET hits=hits+1 WHERE category='x'",
            "SELECT * FROM `warp_pages` ORDER BY title ASC LIMIT 0, 25",
            "SELECT * FROM news WHERE subject LIKE '%a%' ORDER BY `date` DESC",
        ],
    )
    def test_accepts(self, sql):
        assert accepts(sql), sql

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM `t` WHERE",        # dangling WHERE
            "UPDATE SET x=1",                  # missing table
            "INSERT `t` VALUES (1)",           # missing INTO
            "SELECT * FROM t LIMIT 'x'",       # non-numeric limit
            "SELECT * FROM t ORDER BY",        # dangling ORDER BY
        ],
    )
    def test_rejects(self, sql):
        assert not accepts(sql), sql


class TestMultiStatement:
    def test_injection_shape_is_valid_sequence(self):
        assert accepts("SELECT * FROM t WHERE id='1'; DROP TABLE t; --")
        # …but only because the comment swallows the trailing quote; the
        # *confinement* check is what flags it, not parseability

    def test_three_statements(self):
        assert accepts("SELECT 1 FROM a; SELECT 2 FROM b; DROP TABLE c")


class TestGrammarInternals:
    def test_start_symbol(self):
        assert sql_grammar().start == "query_list"

    def test_every_nonterminal_productive(self):
        g = sql_grammar()
        # simple productivity fixpoint over the token grammar
        productive = set()
        changed = True
        while changed:
            changed = False
            for nt, rules in g.productions.items():
                if nt in productive:
                    continue
                for rhs in rules:
                    if all(
                        (s not in g.productions) or (s in productive) for s in rhs
                    ):
                        productive.add(nt)
                        changed = True
                        break
        assert productive == set(g.productions)

    def test_nullable_set_sane(self):
        g = sql_grammar()
        nullable = g.nullable()
        assert "where_opt" in nullable
        assert "query" not in nullable
