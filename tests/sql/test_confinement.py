"""Tests for Definition 2.2 syntactic confinement on concrete queries."""

import pytest

from repro.sql.confinement import check_confinement, is_attack


def span_of(query: str, sub: str) -> tuple[int, int]:
    lo = query.index(sub)
    return lo, lo + len(sub)


class TestConfinedCases:
    def test_value_inside_quotes(self):
        query = "SELECT * FROM u WHERE userid='42'"
        result = check_confinement(query, *span_of(query, "42"))
        assert result.confined

    def test_whole_string_literal(self):
        query = "SELECT * FROM u WHERE userid='42'"
        result = check_confinement(query, *span_of(query, "'42'"))
        assert result.confined

    def test_numeric_literal(self):
        query = "SELECT * FROM u WHERE userid=42"
        result = check_confinement(query, *span_of(query, "42"))
        assert result.confined

    def test_full_expression(self):
        query = "SELECT * FROM u WHERE userid=42 AND a=1"
        result = check_confinement(query, *span_of(query, "userid=42"))
        assert result.confined

    def test_empty_substring(self):
        query = "SELECT * FROM u"
        assert check_confinement(query, 3, 3).confined

    def test_partial_string_content(self):
        # substring strictly inside one STRING token
        query = "SELECT * FROM u WHERE name='abcdef'"
        result = check_confinement(query, *span_of(query, "cde"))
        assert result.confined


class TestAttackCases:
    def test_figure2_attack(self):
        """Section 2.1.1: the canonical Utopia News Pro attack."""
        payload = "1'; DROP TABLE unp_user; --"
        query = f"SELECT * FROM `unp_user` WHERE userid='{payload}'"
        assert is_attack(query, *span_of(query, payload))

    def test_or_one_equals_one(self):
        payload = "1' OR '1'='1"
        query = f"SELECT * FROM u WHERE id='{payload}'"
        assert is_attack(query, *span_of(query, payload))

    def test_unquoted_tautology(self):
        payload = "1 OR 1=1"
        query = f"SELECT * FROM u WHERE id={payload}"
        # The query parses as (id=1) OR (1=1): the payload spans parts of
        # two expression nodes, so no single nonterminal covers it — the
        # classic tautology attack IS a syntactic-confinement violation.
        assert is_attack(query, *span_of(query, payload))

    def test_whole_condition_confined(self):
        # By contrast, a payload aligning with a full condition node is
        # confined (the policy is purely syntactic).
        query = "SELECT * FROM u WHERE 1=1"
        result = check_confinement(query, *span_of(query, "1=1"))
        assert result.confined

    def test_unquoted_statement_injection(self):
        payload = "1; DROP TABLE u"
        query = f"SELECT * FROM u WHERE id={payload}"
        assert is_attack(query, *span_of(query, payload))

    def test_misaligned_span(self):
        query = "SELECT * FROM u WHERE id='abc'"
        # span covering quote + part of next token's text
        lo = query.index("'abc'")
        assert is_attack(query, lo, lo + 2)

    def test_query_that_fails_to_lex(self):
        query = "SELECT * FROM u WHERE id='unterminated"
        lo = query.index("unterminated")
        assert is_attack(query, lo, len(query))


class TestResultDetails:
    def test_nonterminal_reported(self):
        query = "SELECT * FROM u WHERE userid=42"
        result = check_confinement(query, *span_of(query, "42"))
        assert result.nonterminal is not None

    def test_bad_span_raises(self):
        with pytest.raises(ValueError):
            check_confinement("SELECT 1", 5, 2)
