"""Tests for the SQL lexer."""

import pytest

from repro.sql.lexer import SqlLexError, Token, token_symbols, tokenize


class TestBasics:
    def test_simple_select(self):
        assert token_symbols("SELECT * FROM users") == [
            "SELECT",
            "*",
            "FROM",
            "IDENT",
        ]

    def test_case_insensitive_keywords(self):
        assert token_symbols("select * from users") == [
            "SELECT",
            "*",
            "FROM",
            "IDENT",
        ]

    def test_where_clause(self):
        symbols = token_symbols("SELECT a FROM t WHERE id = 42")
        assert symbols == [
            "SELECT",
            "IDENT",
            "FROM",
            "IDENT",
            "WHERE",
            "IDENT",
            "=",
            "NUMBER",
        ]

    def test_positions(self):
        tokens = tokenize("a = 1")
        assert [t.position for t in tokens] == [0, 2, 4]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   \t\n") == []


class TestStrings:
    def test_single_quoted(self):
        tokens = tokenize("'hello'")
        assert tokens == [Token("STRING", "'hello'", 0)]

    def test_double_quoted(self):
        assert token_symbols('"hi"') == ["STRING"]

    def test_backslash_escape(self):
        assert token_symbols(r"'it\'s'") == ["STRING"]

    def test_doubled_quote_escape(self):
        tokens = tokenize("'it''s'")
        assert len(tokens) == 1
        assert tokens[0].symbol == "STRING"
        assert tokens[0].text == "'it''s'"

    def test_unterminated_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("SELECT 'oops")

    def test_injection_breaks_out(self):
        """The Figure 2 attack query lexes with the payload escaping quotes."""
        query = "SELECT * FROM `unp_user` WHERE userid='1'; DROP TABLE unp_user; --'"
        symbols = token_symbols(query, drop_comments=False)
        assert "DROP" in symbols
        assert "COMMENT" in symbols


class TestNumbers:
    @pytest.mark.parametrize("text", ["0", "42", "3.14", "10.", ".5"])
    def test_number_forms(self, text):
        assert token_symbols(text) == ["NUMBER"]

    def test_number_then_ident(self):
        assert token_symbols("1 x") == ["NUMBER", "IDENT"]


class TestIdentifiers:
    def test_plain(self):
        assert token_symbols("user_id") == ["IDENT"]

    def test_backquoted(self):
        tokens = tokenize("`unp user`")
        assert tokens[0].symbol == "IDENT"
        assert tokens[0].text == "`unp user`"

    def test_unterminated_backquote(self):
        with pytest.raises(SqlLexError):
            tokenize("`oops")

    def test_keyword_prefix_is_ident(self):
        assert token_symbols("selector") == ["IDENT"]


class TestOperators:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("<=", ["<="]),
            (">=", [">="]),
            ("<>", ["<>"]),
            ("!=", ["!="]),
            ("a<b", ["IDENT", "<", "IDENT"]),
            ("(a, b)", ["(", "IDENT", ",", "IDENT", ")"]),
            ("t.col", ["IDENT", ".", "IDENT"]),
            ("a+b-c", ["IDENT", "+", "IDENT", "-", "IDENT"]),
        ],
    )
    def test_operator(self, text, expected):
        assert token_symbols(text) == expected

    def test_unknown_char(self):
        with pytest.raises(SqlLexError):
            tokenize("a @ b")


class TestComments:
    def test_dash_dash(self):
        symbols = token_symbols("SELECT 1 -- comment", drop_comments=False)
        assert symbols == ["SELECT", "NUMBER", "COMMENT"]

    def test_hash(self):
        symbols = token_symbols("SELECT 1 # note", drop_comments=False)
        assert symbols[-1] == "COMMENT"

    def test_comment_to_newline(self):
        symbols = token_symbols("-- c\nSELECT 1", drop_comments=False)
        assert symbols == ["COMMENT", "SELECT", "NUMBER"]

    def test_drop_comments_default(self):
        assert token_symbols("SELECT 1 -- x") == ["SELECT", "NUMBER"]
