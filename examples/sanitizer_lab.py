#!/usr/bin/env python
"""Sanitizer lab: how transducer models and contexts decide safety.

The paper's central argument against binary taint tracking (§1.1): a
sanitizer is not "safe" or "unsafe" — it is safe *for a context*.
This example runs the same input through several sanitizers and places
each result in two query contexts (quoted and unquoted), showing which
combinations the policy verifies and which it reports, and validates the
static verdicts against the runtime confinement oracle (Definition 2.2).

Run:  python examples/sanitizer_lab.py
"""

import tempfile
import textwrap
from pathlib import Path

from repro.analysis.analyzer import analyze_page
from repro.baselines.sqlcheck import build_query, check_query

SANITIZERS = {
    "none": "$x",
    "addslashes": "addslashes($x)",
    "intval": "intval($x)",
    "preg_replace digits-only": "preg_replace('/[^0-9]/', '', $x)",
    "htmlspecialchars": "htmlspecialchars($x)",
}

CONTEXTS = {
    "quoted": "SELECT * FROM t WHERE name='{hole}'",
    "unquoted numeric": "SELECT * FROM t WHERE id={hole}",
}


def analyze(sanitizer_expr: str, context: str) -> str:
    workspace = Path(tempfile.mkdtemp(prefix="lab-"))
    query = context.format(hole="$s")
    (workspace / "page.php").write_text(
        textwrap.dedent(
            f"""\
            <?php
            $x = $_GET['x'];
            $s = {sanitizer_expr};
            mysql_query("{query}");
            """
        )
    )
    reports, _ = analyze_page(workspace, "page.php")
    report = reports[0]
    if report.verified:
        checks = ", ".join(f.check for f in report.findings) or "untainted"
        return f"verified ({checks})"
    return f"REPORTED ({', '.join(f.check for f in report.violations)})"


print(f"{'sanitizer':28} {'quoted context':34} {'unquoted numeric context'}")
print("-" * 100)
for name, expr in SANITIZERS.items():
    quoted = analyze(expr, CONTEXTS["quoted"])
    unquoted = analyze(expr, CONTEXTS["unquoted numeric"])
    print(f"{name:28} {quoted:34} {unquoted}")

print(
    "\nruntime cross-check (SQLCheck-style, Definition 2.2 on concrete "
    "queries):"
)
attack = "1'; DROP TABLE t; --"
for context_name, template in CONTEXTS.items():
    marked = build_query(template.replace("{hole}", "{}"), attack)
    verdict = check_query(marked)
    print(
        f"  raw attack in {context_name:18} "
        f"{'blocked' if not verdict.safe else 'passed'}: {verdict.query!r}"
    )
escaped_attack = attack.replace("'", "\\'")
for context_name, template in CONTEXTS.items():
    marked = build_query(template.replace("{hole}", "{}"), escaped_attack)
    verdict = check_query(marked)
    print(
        f"  addslashes()d attack in {context_name:18} "
        f"{'blocked' if not verdict.safe else 'passed'}: {verdict.query!r}"
    )
