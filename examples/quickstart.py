#!/usr/bin/env python
"""Quickstart: detect the paper's Figure 2 vulnerability in 30 lines.

Writes the vulnerable Utopia News Pro fragment to a scratch directory,
runs both analysis phases, prints the report, and shows the concrete
attack query that the inferred grammar proves reachable.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro.analysis.analyzer import analyze_page
from repro.evaluation.figures import ATTACK_QUERY, FIGURE2_CODE

workspace = Path(tempfile.mkdtemp(prefix="quickstart-"))
(workspace / "useredit.php").write_text(FIGURE2_CODE)

print("analyzing the paper's Figure 2 code (Utopia News Pro excerpt)…\n")
reports, analysis = analyze_page(workspace, "useredit.php")

for report in reports:
    print(report.render())

hotspot = analysis.hotspots[0]
grammar = analysis.builder.grammar
print("\nthe inferred query grammar derives the attack from §2.1.1:")
print(f"  {ATTACK_QUERY!r}")
print(f"  derivable: {grammar.generates(hotspot.query.nt, ATTACK_QUERY)}")

print("\nfixing the regex to '^[0-9]+$' (anchored) and re-analyzing…\n")
fixed = FIGURE2_CODE.replace("eregi('[0-9]+'", "eregi('^[0-9]+$'")
(workspace / "useredit.php").write_text(fixed)
reports, _ = analyze_page(workspace, "useredit.php")
for report in reports:
    print(report.render())
