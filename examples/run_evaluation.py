#!/usr/bin/env python
"""Regenerate the paper's Table 1 end-to-end.

Builds the five-application synthetic corpus, runs both analysis phases
on every entry page of every app, classifies each report against the
corpus ground truth, and prints the table side by side with the paper's
numbers.  Expect a few minutes of wall-clock time (e107 has 741 files).

Run:  python examples/run_evaluation.py [corpus-dir]
"""

import sys
import tempfile

from repro.evaluation.table1 import render_table, run_table1

corpus_root = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="corpus-")
print(f"building and analyzing the corpus under {corpus_root} …\n")
rows = run_table1(corpus_root)
print(render_table(rows))

clean = all(row.clean for row in rows)
print(f"\nground-truth match: {'EXACT' if clean else 'DISCREPANCIES (see above)'}")
