#!/usr/bin/env python
"""Audit a whole web application, the way the paper's §5 evaluation does.

Builds the synthetic Utopia News Pro (the corpus stand-in for the app
where the paper found 14 real direct bugs, 2 false positives, and 12
indirect reports), analyzes every entry page, and prints a per-page
audit with the check that decided each verdict.

Run:  python examples/audit_webapp.py [app-name]
      app-name ∈ e107 | eve_activity_tracker | tiger_php_news |
                 utopia_news_pro (default) | warp_cms
"""

import sys
import tempfile
from pathlib import Path

from repro.analysis.analyzer import analyze_page, entry_pages
from repro.corpus import build_app

app_name = sys.argv[1] if len(sys.argv) > 1 else "utopia_news_pro"
root = Path(tempfile.mkdtemp(prefix="audit-"))
manifest = build_app(root, app_name)
app_root = root / app_name

print(f"auditing {manifest.name} at {app_root}\n")
print(
    f"ground truth: {manifest.expected_direct_real} real direct, "
    f"{manifest.expected_direct_false} direct false positives, "
    f"{manifest.expected_indirect} indirect\n"
)

total_violations = 0
for page in entry_pages(app_root):
    reports, analysis = analyze_page(app_root, page)
    page_violations = [f for r in reports for f in r.violations]
    status = "VULNERABLE" if page_violations else "verified"
    print(f"{page.name:24} {status}")
    for finding in page_violations:
        print(
            f"    [{finding.category}] line {finding.line} via {finding.check}"
            + (f" — witness {finding.witness!r}" if finding.witness else "")
        )
    total_violations += len(page_violations)

print(f"\n{total_violations} violation findings in total")
