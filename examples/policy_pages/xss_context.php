<?php
// CONTEXT-SENSITIVE XSS: one value, three output contexts, three
// different verdicts.  htmlspecialchars with default flags encodes
// < > " but NOT the single quote.
$x = htmlspecialchars($_GET['x']);
// 1. HTML body: safe ('<' cannot appear)
echo '<p>' . $x . '</p>';
// 2. single-quoted attribute: VIOLATION (the quote passes through)
echo "<img alt='" . $x . "'>";
// 3. URL attribute: VIOLATION (a javascript: prefix needs no
//    markup character at all)
echo '<a href="' . $x . '">go</a>';
