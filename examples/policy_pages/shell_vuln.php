<?php
// VULNERABLE (shell): raw GET data concatenated into a system() command
$dir = $_GET['dir'];
system("ls -l " . $dir);
