<?php
echo '<p>About this site.</p>';
