<?php
// SAFE counterpart: ENT_QUOTES also encodes the single quote, and the
// URL attribute only ever receives an integer
$x = htmlspecialchars($_GET['x'], ENT_QUOTES);
echo '<p>' . $x . '</p>';
echo "<img alt='" . $x . "'>";
echo '<a href="item.php?id=' . intval($_GET['id']) . '">view</a>';
