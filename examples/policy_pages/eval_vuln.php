<?php
// VULNERABLE (eval): untrusted text spliced into dynamically evaluated
// code can close the string literal and run arbitrary PHP
$msg = $_GET['msg'];
eval("echo '" . $msg . "';");
