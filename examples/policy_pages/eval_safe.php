<?php
// SAFE (eval): intval confines the untrusted value to an integer
// literal, which carries no PHP metacharacter
$n = intval($_GET['n']);
eval("echo " . $n . ";");
