<?php
// VULNERABLE (path): '..' or an absolute path escapes the uploads dir
$f = $_GET['f'];
readfile("uploads/" . $f);
// and the classic dynamic include of a request parameter (scoped to
// pages/ so include resolution stays inside this example)
include("pages/" . $_GET['page'] . ".php");
