<?php
// SAFE (shell): escapeshellarg wraps the argument in single quotes and
// escapes embedded quotes, so no metacharacter is reachable unquoted
$dir = $_GET['dir'];
system("ls -l " . escapeshellarg($dir));
