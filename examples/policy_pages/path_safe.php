<?php
// SAFE (path): the character whitelist leaves no '..', '/' or drive
// prefix in the untrusted part
$f = preg_replace('/[^a-z0-9_]/', '', $_GET['f']);
readfile("uploads/" . $f . ".txt");
