"""Compatibility shim: the perf registry now lives in :mod:`repro.obs`.

``from repro.perf import PERF`` keeps working everywhere; the actual
implementation — counters, timers, gauges, and the fixed-bucket
histograms added with the observability layer — is
:mod:`repro.obs.metrics`.
"""

from __future__ import annotations

from repro.obs.metrics import (  # noqa: F401  (re-exported API)
    PERF,
    MetricsRegistry,
    PerfRecorder,
    buckets_for,
    cache_rates,
    render_table,
)

#: Bump when an analysis-semantics change invalidates cached results
#: (on-disk ASTs / page reports keyed by content hash + this version).
#: "6": PageResult grew timeline/worker fields with the observability
#: layer — older pickles must not be replayed into the new shape.
ANALYZER_CACHE_VERSION = "6"
