"""Performance telemetry: phase timers, counters, and gauges.

The ROADMAP's north star is a system "as fast as the hardware allows";
this module is the instrument panel that makes speed claims checkable.
One process-wide :class:`PerfRecorder` (:data:`PERF`) collects

* **timers** — cumulative wall-clock seconds per named phase
  (``phase1.string_analysis``, ``phase2.checks``, ``fingerprint`` …),
* **counters** — monotone event counts (cache hits/misses per cache,
  fixpoint iterations, pages analyzed, …), and
* **gauges** — high-water marks (peak memo sizes, largest subgrammar).

Everything is a plain ``float``/``int`` in a flat dict, so a snapshot is
trivially picklable: parallel analysis workers ship their deltas back to
the driver, which folds them into its own recorder (counters/timers add,
gauges take the max).  Recording is cheap enough to leave on
unconditionally — a dict update per event — and is surfaced only when
asked for (CLI ``--profile``, the benchmark harness).
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: Bump when an analysis-semantics change invalidates cached results
#: (on-disk ASTs / page reports keyed by content hash + this version).
ANALYZER_CACHE_VERSION = "5"


class PerfRecorder:
    """A flat bag of timers, counters, and gauges."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}
        self.gauges: dict[str, float] = {}

    # -- recording ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def gauge(self, name: str, value: float) -> None:
        """Record a high-water mark (keeps the max ever seen)."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    @contextmanager
    def timer(self, name: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    # -- snapshots ---------------------------------------------------------

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self.gauges.clear()

    def snapshot(self) -> dict:
        """A picklable copy: ``{"counters": …, "timers": …, "gauges": …}``."""
        return {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "gauges": dict(self.gauges),
        }

    def diff(self, before: dict) -> dict:
        """What happened since ``before`` (an earlier :meth:`snapshot`).

        Counters and timers subtract; gauges keep the current high-water
        mark (a max over a superset of events is still an upper bound).
        """
        now = self.snapshot()
        return {
            "counters": _sub(now["counters"], before["counters"]),
            "timers": _sub(now["timers"], before["timers"]),
            "gauges": dict(now["gauges"]),
        }

    def merge(self, delta: dict) -> None:
        """Fold a worker's snapshot/diff into this recorder."""
        for name, value in delta.get("counters", {}).items():
            self.incr(name, value)
        for name, value in delta.get("timers", {}).items():
            self.add_time(name, value)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name, value)


def _sub(now: dict, before: dict) -> dict:
    out = {}
    for name, value in now.items():
        delta = value - before.get(name, 0)
        if delta:
            out[name] = delta
    return out


def render_table(snapshot: dict) -> str:
    """The ``--profile`` table: timers, then counters, then gauges."""
    lines = ["== perf profile =="]
    timers = snapshot.get("timers", {})
    if timers:
        lines.append("phase timings:")
        width = max(len(n) for n in timers)
        for name in sorted(timers):
            lines.append(f"  {name:<{width}}  {timers[name]:9.3f}s")
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:>9}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges (high-water marks):")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            value = gauges[name]
            shown = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{width}}  {shown:>9}")
    if len(lines) == 1:
        lines.append("(no events recorded)")
    return "\n".join(lines)


#: The process-wide recorder.  Parallel workers each get their own copy
#: (a fresh process), take a :meth:`PerfRecorder.snapshot` before a page
#: and ship ``PERF.diff(before)`` back with the page's result.
PERF = PerfRecorder()
