"""Regenerate the paper's output-bearing figures.

Figures 1 and 3 are architecture diagrams; the rest have observable
content that this module reproduces:

* Figure 2 — the Utopia News Pro vulnerability (analysis + attack witness)
* Figure 4 — the grammar productions extracted from Figure 2's code
* Figure 5 — the SSA/dataflow grammar for the contrived branch program
* Figure 6 — the str_replace("''", "'") transducer
* Figure 7 — taint propagation through CFG–FSA intersection (demonstrated)
* Figure 8 — explode() semantics
* Figure 9 — the type-conversion false positive (reproduced as an FP)
* Figure 10 — the indirect report on postnews.php
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.analyzer import analyze_page
from repro.analysis.stringtaint import StringTaintAnalysis
from repro.lang.grammar import DIRECT
from repro.sql.confinement import check_confinement

FIGURE2_CODE = """\
<?php
isset($_GET['userid']) ?
    $userid = $_GET['userid'] : $userid = '';
if ($USER['groupid'] != 1)
{
    unp_msg($gp_permserror);
    exit;
}
if ($userid == '')
{
    unp_msg($gp_invalidrequest);
    exit;
}
if (!eregi('[0-9]+', $userid))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
$getuser = $DB->query("SELECT * FROM `unp_user` "
    . "WHERE userid='$userid'");
if (!$DB->is_single_row($getuser))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
"""

ATTACK_PAYLOAD = "1'; DROP TABLE unp_user; --"
ATTACK_QUERY = (
    "SELECT * FROM `unp_user` WHERE userid='1'; DROP TABLE unp_user; --'"
)


def _figure2_workspace() -> Path:
    workspace = Path(tempfile.mkdtemp(prefix="fig2-"))
    (workspace / "useredit.php").write_text(FIGURE2_CODE)
    return workspace


def figure2() -> dict:
    """Analyze Figure 2's code; returns the verdict and attack evidence."""
    workspace = _figure2_workspace()
    reports, analysis = analyze_page(workspace, "useredit.php")
    result = analysis.analyze_file  # noqa: F841 (driver kept alive for grammar)
    report = reports[0]
    grammar = analysis.builder.grammar
    hotspot = analysis.hotspots[0]
    attack_derivable = grammar.generates(hotspot.query.nt, ATTACK_QUERY)
    payload_span = (
        ATTACK_QUERY.index(ATTACK_PAYLOAD),
        ATTACK_QUERY.index(ATTACK_PAYLOAD) + len(ATTACK_PAYLOAD),
    )
    confinement = check_confinement(ATTACK_QUERY, *payload_span)
    return {
        "verified": report.verified,
        "violations": [f.check for f in report.violations],
        "attack_query_derivable": attack_derivable,
        "attack_confined": confinement.confined,
        "witness": report.violations[0].witness if report.violations else "",
    }


def figure4() -> dict:
    """The annotated grammar for Figure 2's query (cf. the paper's listing:
    ``userid → GETuid ∩ Σ*[0-9]Σ*``, ``direct = {GETuid}``)."""
    workspace = _figure2_workspace()
    analysis = StringTaintAnalysis(workspace)
    result = analysis.analyze_file("useredit.php")
    hotspot = result.hotspots[0]
    scope = result.grammar.subgrammar(hotspot.query.nt)
    labeled = scope.labeled_nonterminals(DIRECT)
    return {
        "productions": scope.num_productions(),
        "nonterminals": len(scope.productions),
        "direct_labeled": len(labeled),
        "samples": scope.sample_strings(hotspot.query.nt, limit=4),
        "dump": scope.dump(limit=30),
    }


FIGURE5_CODE = """\
<?php
$X = $UNTRUSTED;
if ($A) {
    $X = $X . "s";
} else {
    $X = $X . "s";
}
$Z = $X;
mysql_query($Z);
"""


def figure5() -> dict:
    """The grammar mirrors dataflow: φ over the two branch variants."""
    workspace = Path(tempfile.mkdtemp(prefix="fig5-"))
    (workspace / "page.php").write_text(FIGURE5_CODE)
    analysis = StringTaintAnalysis(workspace)
    result = analysis.analyze_file("page.php")
    hotspot = result.hotspots[0]
    scope = result.grammar.subgrammar(hotspot.query.nt)
    return {
        "dump": scope.dump(limit=20),
        "derives_s": result.grammar.generates(hotspot.query.nt, "s"),
        "derives_ss": result.grammar.generates(hotspot.query.nt, "ss"),
    }


def figure6() -> dict:
    """The FST for str_replace("''", "'", $B)."""
    from repro.lang.fst import FST

    fst = FST.replace_string("''", "'")
    cases = {text: fst.apply_once(text) for text in ("A''B", "''''", "'", "A'B")}
    return {"states": fst.num_states, "cases": cases}


def figure8() -> dict:
    """explode() per its Figure 8 semantics, at the language level."""
    from repro.analysis.absdom import GrammarBuilder
    from repro.php import builtins
    from repro.php.ast import Literal, Var

    builder = GrammarBuilder()
    subject = builder.literal("a,b,c")
    pieces = builtins.model_call(
        "explode",
        builder,
        [builder.literal(","), subject],
        [Literal(value=","), Var(name="s")],
    )
    piece = pieces.default
    return {
        "derives": {
            text: builder.grammar.generates(piece.nt, text)
            for text in ("a", "b", "c", "a,b")
        }
    }


def figures_9_and_10(corpus_root: str | Path) -> dict:
    """The Figure 9 false positive and Figure 10 indirect report, as they
    fall out of analyzing the corpus' Utopia News Pro."""
    root = Path(corpus_root) / "utopia_news_pro"
    fig9_reports, _ = analyze_page(root, "shownews.php")
    fig10_reports, _ = analyze_page(root, "postnews.php")
    fig9_direct = [
        f for r in fig9_reports for f in r.violations if f.category == "direct"
    ]
    fig10_indirect = [
        f for r in fig10_reports for f in r.violations if f.category == "indirect"
    ]
    return {
        "figure9_false_positive_reported": bool(fig9_direct),
        "figure10_indirect_reported": bool(fig10_indirect),
    }
