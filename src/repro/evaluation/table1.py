"""Regenerate the paper's Table 1 on the synthetic corpus.

Columns, as in the paper: name/version, files, lines, grammar size
(|V|, |R|), string-analysis time, SQLCIV-check time, direct errors
(real / false, classified against the corpus ground truth), and indirect
reports.

Counting unit: an *(entry page, category)* pair with at least one
violation — matching how the corpus seeds (and, per our reading, the
paper's per-bug counts) are defined.  Violations repeated through shared
includes are deduplicated by source location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.analyzer import analyze_project
from repro.analysis.reports import ProjectReport
from repro.corpus import APPS, build_corpus
from repro.corpus.manifest import AppManifest, DIRECT_FALSE, DIRECT_REAL, INDIRECT


@dataclass
class Row:
    name: str
    files: int
    lines: int
    nonterminals: int
    productions: int
    string_seconds: float
    check_seconds: float
    direct_real: int
    direct_false: int
    indirect: int
    unexpected: list[str] = field(default_factory=list)
    missed: list[str] = field(default_factory=list)
    # soundness-audit column: how many constructs escaped the model /
    # were widened, and the resulting confidence for the app's verdicts
    escaped: int = 0
    widened: int = 0
    confidence: str = "sound"

    @property
    def clean(self) -> bool:
        return not self.unexpected and not self.missed


def classify(report: ProjectReport, manifest: AppManifest) -> Row:
    """Match the tool's violations against the ground-truth manifest."""
    direct_pages = {
        Path(v.file).name for v in report.direct_violations
    }
    indirect_pages = {
        Path(v.file).name for v in report.indirect_violations
    }
    seeded_direct_real = {
        s.page for s in manifest.seeds if s.kind == DIRECT_REAL
    }
    seeded_direct_false = {
        s.page for s in manifest.seeds if s.kind == DIRECT_FALSE
    }
    seeded_indirect = {s.page for s in manifest.seeds if s.kind == INDIRECT}

    direct_real = len(direct_pages & seeded_direct_real)
    direct_false = len(direct_pages & seeded_direct_false)
    indirect = len(indirect_pages & seeded_indirect)

    unexpected = sorted(
        [
            f"direct:{page}"
            for page in direct_pages - seeded_direct_real - seeded_direct_false
        ]
        + [f"indirect:{page}" for page in indirect_pages - seeded_indirect]
    )
    missed = sorted(
        [f"direct:{page}" for page in (seeded_direct_real | seeded_direct_false) - direct_pages]
        + [f"indirect:{page}" for page in seeded_indirect - indirect_pages]
    )
    return Row(
        name=manifest.name,
        files=report.files,
        lines=report.lines,
        nonterminals=report.grammar_nonterminals,
        productions=report.grammar_productions,
        string_seconds=report.string_analysis_seconds,
        check_seconds=report.check_seconds,
        direct_real=direct_real,
        direct_false=direct_false,
        indirect=indirect,
        unexpected=unexpected,
        missed=missed,
        escaped=len(report.escaped_diagnostics),
        widened=len(report.widened_diagnostics),
        confidence=report.confidence,
    )


def run_table1(
    corpus_root: str | Path | None = None, audit: bool = True
) -> list[Row]:
    """Build (if needed) and analyze the whole corpus; return Table 1 rows.

    The audit adds an audit column (escapes/widenings per app) without
    touching how violations are counted; pass ``audit=False`` for the
    bare paper table.
    """
    import tempfile

    root = Path(corpus_root) if corpus_root else Path(tempfile.mkdtemp(prefix="corpus-"))
    manifests = build_corpus(root)
    rows = []
    for manifest, (_, app_dir) in zip(manifests, APPS):
        report = analyze_project(root / app_dir, manifest.name, audit=audit)
        rows.append(classify(report, manifest))
    return rows


#: the paper's Table 1, for side-by-side comparison in the harness output
PAPER_TABLE1 = {
    "e107 (0.7.5)": dict(
        files=741, lines=132_850, v=62_350, r=377_348, direct_real=1,
        direct_false=0, indirect=4,
    ),
    "EVE Activity Tracker (1.0)": dict(
        files=8, lines=905, v=57, r=1_628, direct_real=4, direct_false=0,
        indirect=1,
    ),
    "Tiger PHP News System (1.0 beta 39)": dict(
        files=16, lines=7_961, v=82_082, r=1_078_768, direct_real=0,
        direct_false=3, indirect=2,
    ),
    "Utopia News Pro (1.3.0)": dict(
        files=25, lines=5_611, v=5_222, r=336_362, direct_real=14,
        direct_false=2, indirect=12,
    ),
    "Warp Content MS (1.2.1)": dict(
        files=42, lines=23_003, v=1_025, r=73_543, direct_real=0,
        direct_false=0, indirect=0,
    ),
}


def render_table(rows: list[Row]) -> str:
    header = (
        f"{'Name':38} {'Files':>5} {'Lines':>8} {'|V|':>8} {'|R|':>9} "
        f"{'t_str':>7} {'t_chk':>7} {'Real':>4} {'False':>5} {'Indir':>5} "
        f"{'Audit':>9}"
    )
    lines = [header, "-" * len(header)]
    totals = [0, 0, 0]
    for row in rows:
        audit_cell = f"{row.escaped}E/{row.widened}W"
        lines.append(
            f"{row.name:38} {row.files:>5} {row.lines:>8} "
            f"{row.nonterminals:>8} {row.productions:>9} "
            f"{row.string_seconds:>6.1f}s {row.check_seconds:>6.1f}s "
            f"{row.direct_real:>4} {row.direct_false:>5} {row.indirect:>5} "
            f"{audit_cell:>9}"
        )
        paper = PAPER_TABLE1.get(row.name)
        if paper:
            lines.append(
                f"{'  (paper)':38} {paper['files']:>5} {paper['lines']:>8} "
                f"{paper['v']:>8} {paper['r']:>9} {'':>7} {'':>7} "
                f"{paper['direct_real']:>4} {paper['direct_false']:>5} "
                f"{paper['indirect']:>5}"
            )
        if row.unexpected:
            lines.append(f"    UNEXPECTED: {row.unexpected}")
        if row.missed:
            lines.append(f"    MISSED: {row.missed}")
        totals[0] += row.direct_real
        totals[1] += row.direct_false
        totals[2] += row.indirect
    lines.append("-" * len(header))
    lines.append(
        f"{'Totals':38} {'':>5} {'':>8} {'':>8} {'':>9} {'':>7} {'':>7} "
        f"{totals[0]:>4} {totals[1]:>5} {totals[2]:>5}"
    )
    lines.append(
        f"{'  (paper totals)':38} {'':>5} {'':>8} {'':>8} {'':>9} "
        f"{'':>7} {'':>7} {19:>4} {5:>5} {'17*':>5}"
    )
    lines.append(
        "  * the paper's totals row prints 17, but its per-app indirect "
        "column sums to 19 (4+1+2+12+0)"
    )
    fp_rate = totals[1] / max(totals[0] + totals[1], 1)
    lines.append(
        f"false positive rate: {totals[1]}/({totals[0]}+{totals[1]}) = "
        f"{fp_rate:.1%} (paper: 5/(19+5) = 20.8%)"
    )
    return "\n".join(lines)
