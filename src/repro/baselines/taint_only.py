"""Baseline: classic binary taint analysis (Pixy / Huang-et-al. style).

The related-work comparison the paper motivates (§1.1, §6.2): static
taint checking classifies every value as *tainted* or *untainted* and
every function as *sanitizer* or *irrelevant*.  It cannot express "this
input is sanitized **for string-literal contexts** but dangerous in a
numeric context", nor model what a regular-expression test actually
admits.  Two systematic failure modes fall out:

* **false negative** — ``escape_quotes`` output used *outside* quotes
  (numeric context): taint analysis says sanitized ⇒ safe; the paper's
  analysis reports it.
* **false positive** — an unanchored-looking but actually tight regex
  test, or a hand-rolled quoting function the whitelist doesn't know:
  taint analysis cannot look inside, so it reports.

This baseline reuses the PHP front end and the same source/sink tables,
so head-to-head comparisons differ only in the *analysis*, not in the
frontend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.php import ast
from repro.php.includes import IncludeResolver
from repro.php.parser import PhpParseError, parse
from repro.analysis import sources

#: functions whose return value the baseline considers untainted when
#: called on tainted data — the standard Pixy-style sanitizer whitelist
SANITIZERS = frozenset(
    """
    addslashes mysql_real_escape_string mysql_escape_string
    mysqli_real_escape_string pg_escape_string sqlite_escape_string
    htmlspecialchars htmlentities intval floatval doubleval
    md5 sha1 crc32 count strlen number_format abs round floor ceil
    urlencode rawurlencode base64_encode
    """.split()
)

#: numeric/no-data builtins: untainted output regardless of input
UNTAINTED_RESULTS = frozenset(
    """
    time mktime rand mt_rand date strftime gmdate uniqid ord hexdec
    phpversion php_uname gettype
    """.split()
)


@dataclass
class TaintFinding:
    file: str
    line: int
    sink: str
    category: str  # "direct" | "indirect"


@dataclass
class TaintResult:
    findings: list[TaintFinding] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)


#: taint lattice: frozenset of labels; empty = untainted
Taint = frozenset


class TaintOnlyAnalysis:
    """Flow-sensitive binary taint propagation over the PHP subset."""

    def __init__(self, project_root: str | Path) -> None:
        self.project_root = Path(project_root)
        self.resolver = IncludeResolver(self.project_root)
        self.result = TaintResult()
        self.functions: dict[str, ast.FunctionDef] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        self.globals: dict[str, Taint] = {}
        self._included: set[Path] = set()
        self._stack: list[str] = []
        self.current_file = ""

    def analyze_file(self, entry: str | Path) -> TaintResult:
        path = Path(entry)
        if not path.is_absolute():
            path = self.project_root / path
        self._interpret(path, self.globals)
        return self.result

    # -- plumbing ----------------------------------------------------------

    def _interpret(self, path: Path, env: dict[str, Taint]) -> None:
        try:
            tree = parse(path.read_text(), str(path))
        except (OSError, PhpParseError, ValueError) as exc:
            self.result.parse_errors.append(str(exc))
            return
        for node in ast.walk(tree.body):
            if isinstance(node, ast.FunctionDef):
                self.functions.setdefault(node.name.lower(), node)
            elif isinstance(node, ast.ClassDef):
                self.classes.setdefault(node.name, node)
        previous = self.current_file
        self.current_file = str(path)
        try:
            self._exec_block(tree.body, env)
        finally:
            self.current_file = previous

    def _exec_block(self, block: ast.Block, env: dict[str, Taint]) -> None:
        for stmt in block.statements:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.Stmt, env: dict[str, Taint]) -> None:
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, env)
        elif isinstance(stmt, ast.ExprStmt):
            self.eval(stmt.expr, env)
        elif isinstance(stmt, ast.Echo):
            for value in stmt.values:
                self.eval(value, env)
        elif isinstance(stmt, ast.If):
            branch_envs = []
            for _, body in [(stmt.condition, stmt.then)] + stmt.elifs:
                branch = dict(env)
                self._exec_block(body, branch)
                branch_envs.append(branch)
            if stmt.orelse is not None:
                branch = dict(env)
                self._exec_block(stmt.orelse, branch)
                branch_envs.append(branch)
            else:
                branch_envs.append(dict(env))
            merged: dict[str, Taint] = {}
            for branch in branch_envs:
                for name, taint in branch.items():
                    merged[name] = merged.get(name, frozenset()) | taint
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            if isinstance(stmt, ast.While):
                self.eval(stmt.condition, env)
            before = dict(env)
            self._exec_block(stmt.body, env)
            for name, taint in before.items():
                env[name] = env.get(name, frozenset()) | taint
        elif isinstance(stmt, ast.For):
            for expr in stmt.init:
                self.eval(expr, env)
            self._exec_block(stmt.body, env)
            for expr in stmt.step:
                self.eval(expr, env)
        elif isinstance(stmt, ast.Foreach):
            subject_taint = self.eval(stmt.subject, env)
            if isinstance(stmt.value_var, ast.Var):
                env[stmt.value_var.name] = subject_taint
            if isinstance(stmt.key_var, ast.Var):
                env[stmt.key_var.name] = subject_taint
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, ast.Switch):
            self.eval(stmt.subject, env)
            for _, body in stmt.cases:
                branch = dict(env)
                self._exec_block(body, branch)
                for name, taint in branch.items():
                    env[name] = env.get(name, frozenset()) | taint
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self.eval(stmt.value, env)
                if self._stack:
                    env["__return__"] = env.get("__return__", frozenset()) | taint
        elif isinstance(stmt, ast.GlobalDecl):
            for name in stmt.names:
                env[name] = self.globals.get(name, frozenset())
        elif isinstance(stmt, ast.Include):
            self._include(stmt, env)
        elif isinstance(stmt, ast.FunctionDef):
            self.functions.setdefault(stmt.name.lower(), stmt)
        elif isinstance(stmt, ast.ClassDef):
            self.classes.setdefault(stmt.name, stmt)

    def _include(self, stmt: ast.Include, env: dict[str, Taint]) -> None:
        from repro.analysis.stringtaint import StringTaintAnalysis

        # reuse the grammar machinery only to resolve the path statically
        helper = StringTaintAnalysis(self.project_root)
        helper.current_file = self.current_file
        value = helper.eval(stmt.path, helper.globals)
        files = helper.resolver.resolve(
            helper.builder.grammar,
            helper.builder.to_str(value).nt,
            Path(self.current_file).parent if self.current_file else self.project_root,
        )
        for file in files:
            if stmt.once and file in self._included:
                continue
            self._included.add(file)
            self._interpret(file, env)

    # -- expressions --------------------------------------------------------

    def eval(self, expr: ast.Expr | None, env: dict[str, Taint]) -> Taint:
        clean: Taint = frozenset()
        if expr is None:
            return clean
        if isinstance(expr, ast.Literal):
            return clean
        if isinstance(expr, ast.Var):
            label = sources.superglobal_label(expr.name)
            if label is not None:
                return frozenset({label})
            return env.get(expr.name, clean)
        if isinstance(expr, ast.ArrayDim):
            return self.eval(expr.base, env)
        if isinstance(expr, ast.Prop):
            return self.eval(expr.base, env)
        if isinstance(expr, ast.Interp):
            taint = clean
            for part in expr.parts:
                taint |= self.eval(part, env)
            return taint
        if isinstance(expr, ast.BinOp):
            return self.eval(expr.left, env) | self.eval(expr.right, env)
        if isinstance(expr, (ast.UnaryOp, ast.Suppress)):
            return self.eval(expr.operand, env)
        if isinstance(expr, ast.Cast):
            if expr.kind in ("int", "float", "bool"):
                return clean
            return self.eval(expr.operand, env)
        if isinstance(expr, ast.Assign):
            taint = self.eval(expr.value, env)
            if expr.op == ".=" and isinstance(expr.target, ast.Var):
                taint |= env.get(expr.target.name, clean)
            target = expr.target
            while isinstance(target, (ast.ArrayDim, ast.Prop)):
                target = target.base
            if isinstance(target, ast.Var):
                if expr.op not in ("=", ".="):
                    taint = clean  # arithmetic result: a number
                env[target.name] = taint
            return taint
        if isinstance(expr, ast.Ternary):
            taint = self.eval(expr.condition, env)
            branches = clean
            if expr.if_true is not None:
                branches |= self.eval(expr.if_true, env)
            else:
                branches |= taint
            branches |= self.eval(expr.if_false, env)
            return branches
        if isinstance(expr, (ast.IssetExpr, ast.EmptyExpr)):
            return clean
        if isinstance(expr, ast.ArrayLit):
            taint = clean
            for _, value in expr.items:
                taint |= self.eval(value, env)
            return taint
        if isinstance(expr, ast.Call):
            return self._call(expr, env)
        if isinstance(expr, ast.MethodCall):
            return self._method_call(expr, env)
        if isinstance(expr, ast.New):
            for arg in expr.args:
                self.eval(arg, env)
            return clean
        return clean

    def _call(self, expr: ast.Call, env: dict[str, Taint]) -> Taint:
        arg_taints = [self.eval(arg, env) for arg in expr.args]
        name = expr.name
        clean: Taint = frozenset()
        sink_index = sources.query_argument_index(name)
        if sink_index is not None:
            if sink_index < len(arg_taints) and arg_taints[sink_index]:
                self._report(expr, name, arg_taints[sink_index])
            return clean
        if sources.is_fetch_function(name):
            return frozenset({"indirect"})
        if name in SANITIZERS or name in UNTAINTED_RESULTS:
            return clean
        user = self.functions.get(name)
        if user is not None and name not in self._stack and len(self._stack) < 8:
            local: dict[str, Taint] = {}
            for index, param in enumerate(user.params):
                local[param.name] = (
                    arg_taints[index] if index < len(arg_taints) else clean
                )
            self._stack.append(name)
            try:
                self._exec_block(user.body, local)
            finally:
                self._stack.pop()
            return local.get("__return__", clean)
        # unknown function: taint flows through
        taint = clean
        for arg_taint in arg_taints:
            taint |= arg_taint
        return taint

    def _method_call(self, expr: ast.MethodCall, env: dict[str, Taint]) -> Taint:
        self.eval(expr.obj, env)
        arg_taints = [self.eval(arg, env) for arg in expr.args]
        if sources.is_query_method(expr.name):
            if arg_taints and arg_taints[0]:
                self._report(expr, f"->{expr.name}", arg_taints[0])
            return frozenset()
        if sources.is_fetch_method(expr.name):
            return frozenset({"indirect"})
        taint: Taint = frozenset()
        for arg_taint in arg_taints:
            taint |= arg_taint
        return taint

    def _report(self, node: ast.Expr, sink: str, taint: Taint) -> None:
        category = "direct" if "direct" in taint else "indirect"
        self.result.findings.append(
            TaintFinding(
                file=self.current_file, line=node.line, sink=sink, category=category
            )
        )


def analyze_page_taint_only(project_root: str | Path, entry: str | Path) -> TaintResult:
    return TaintOnlyAnalysis(project_root).analyze_file(entry)
