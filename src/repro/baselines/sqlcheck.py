"""Baseline: SQLCheck-style *runtime* enforcement (Su & Wassermann, POPL'06).

The paper's own prior work, cited as [25] and used there to justify the
syntactic-confinement policy: at runtime, mark the substrings that came
from user input and check — per concrete query — that each marked
substring is syntactically confined (Definition 2.2).  Precise for the
queries actually seen, but provides no pre-deployment guarantee: it only
inspects executions you run.

This implementation wraps the confinement oracle from
:mod:`repro.sql.confinement` with the POPL-style metacharacter marking.
The benchmark harness uses it (a) to validate that statically-reported
witness queries really are attacks, and (b) for the static-vs-runtime
comparison discussed in §6.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.confinement import check_confinement

#: delimiters wrapped around untrusted input at the (simulated) source
MARK_OPEN = "⦃"   # ⦃
MARK_CLOSE = "⦄"  # ⦄


def mark(text: str) -> str:
    """Wrap user input in metacharacter delimiters at its source."""
    return f"{MARK_OPEN}{text}{MARK_CLOSE}"


@dataclass
class RuntimeCheck:
    safe: bool
    query: str           # the unmarked query, as the database would see it
    spans: list[tuple[int, int]]
    offending: tuple[int, int] | None = None


def strip_marks(marked_query: str) -> tuple[str, list[tuple[int, int]]]:
    """Remove delimiters, returning the real query and untrusted spans."""
    spans: list[tuple[int, int]] = []
    out: list[str] = []
    stack: list[int] = []
    for char in marked_query:
        if char == MARK_OPEN:
            stack.append(len(out))
        elif char == MARK_CLOSE:
            if not stack:
                raise ValueError("unbalanced input marks")
            start = stack.pop()
            if not stack:  # only outermost spans count
                spans.append((start, len(out)))
        else:
            out.append(char)
    if stack:
        raise ValueError("unbalanced input marks")
    return "".join(out), spans


def check_query(marked_query: str) -> RuntimeCheck:
    """The runtime check: every untrusted span must be confined."""
    query, spans = strip_marks(marked_query)
    for span in spans:
        result = check_confinement(query, *span)
        if not result.confined:
            return RuntimeCheck(False, query, spans, offending=span)
    return RuntimeCheck(True, query, spans)


def build_query(template: str, *user_inputs: str) -> str:
    """Substitute ``{}`` placeholders with *marked* user input — the
    instrumented equivalent of PHP string interpolation."""
    return template.format(*(mark(value) for value in user_inputs))
