"""Finite-state transducers for modeling string operations.

The paper (§3.1.2, Figure 6) models PHP string functions — ``str_replace``,
``addslashes``, sanitizer-style ``preg_replace`` — as finite-state
transducers, and computes the *image* of a CFG under such a transducer.

Model
-----
Every transition consumes exactly one input character (drawn from a
:class:`~repro.lang.charset.CharSet` label) and emits a sequence of
*output items*.  An item is either a literal string or one of the markers
:data:`COPY` / :data:`LOWER` / :data:`UPPER`, which stand for the consumed
character (identity / lower-cased / upper-cased).  Marker outputs keep
transducers over huge charsets finite: ``A/A`` in the paper's Figure 6 is
one transition ``(q, Σ∖{'}, (COPY,), q)``.

States may carry a *final output* — a literal flushed when the input ends
in that state.  This is how a replace-all transducer emits a buffered
partial match at end of input (e.g. ``str_replace("''", "'", "x'")``
must still emit the lone quote).

There are no input-epsilon transitions; everything the analysis needs
(including multi-character outputs like ``addslashes``) fits without
them, and their absence keeps the grammar-image construction simple.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

from dataclasses import dataclass
from typing import Iterable, Sequence

from .charset import CharSet


class _Marker:
    """Singleton output markers referring to the consumed character."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


COPY = _Marker("COPY")
LOWER = _Marker("LOWER")
UPPER = _Marker("UPPER")

OutputItem = str | _Marker
Output = tuple[OutputItem, ...]


@dataclass(frozen=True)
class Transition:
    label: CharSet
    output: Output
    dst: int


class FST:
    """A finite-state transducer (1 char in, item sequence out)."""

    def __init__(self) -> None:
        self.num_states = 0
        self.start = 0
        self.transitions: dict[int, list[Transition]] = {}
        #: literal emitted if the input ends in this state (default "").
        self.final_output: dict[int, str] = {}
        #: states where input may legally end; None means "all states".
        self.accepts: set[int] | None = None

    def new_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    def add_transition(self, src: int, label: CharSet, output: Output, dst: int) -> None:
        if label:
            self.transitions.setdefault(src, []).append(Transition(label, output, dst))

    def is_accepting(self, state: int) -> bool:
        return self.accepts is None or state in self.accepts

    def content_key(self) -> str:
        """Content-addressed identity: equal keys ⇒ equal transducers.

        The :class:`~repro.lang.image.ImageCache` keys entries by
        ``id(fst)``, which is process-local; sharing image memo entries
        *across* worker processes needs a key derived from the
        transducer's content alone.  Canonical rendering: state count,
        start, accepts, final outputs, and every transition with its
        charset intervals and output items (markers by name).  Cached —
        transducers are immutable once built.
        """
        cached = getattr(self, "_content_key", None)
        if cached is not None:
            return cached
        parts: list[str] = [
            f"n={self.num_states}",
            f"s={self.start}",
            "a=*" if self.accepts is None else f"a={sorted(self.accepts)}",
            f"f={sorted(self.final_output.items())}",
        ]
        for src in sorted(self.transitions):
            for t in self.transitions[src]:
                output = ",".join(
                    f"M:{item.name}" if isinstance(item, _Marker)
                    else f"L:{item}"
                    for item in t.output
                )
                parts.append(f"t={src}:{t.label.intervals}:{output}:{t.dst}")
        key = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
        self._content_key = key
        return key

    # -- semantics -------------------------------------------------------

    def apply_to_string(self, text: str, limit: int = 256) -> set[str]:
        """All outputs the transducer can produce for ``text``.

        For the (deterministic) transducers the builtin models construct
        this is a singleton; nondeterministic models may return several.
        ``limit`` bounds the path explosion defensively.
        """
        frontier: list[tuple[int, str]] = [(self.start, "")]
        for char in text:
            next_frontier: list[tuple[int, str]] = []
            for state, out in frontier:
                for transition in self.transitions.get(state, ()):
                    if char in transition.label:
                        emitted = render_output(transition.output, char)
                        next_frontier.append((transition.dst, out + emitted))
                        if len(next_frontier) > limit:
                            raise FSTExplosion(
                                f"more than {limit} transducer paths on {text!r}"
                            )
            frontier = next_frontier
            if not frontier:
                return set()
        return {
            out + self.final_output.get(state, "")
            for state, out in frontier
            if self.is_accepting(state)
        }

    def apply_once(self, text: str) -> str:
        """The unique output for ``text`` (raises if not exactly one)."""
        outputs = self.apply_to_string(text)
        if len(outputs) != 1:
            raise ValueError(f"expected 1 output for {text!r}, got {sorted(outputs)}")
        return next(iter(outputs))

    # -- stock constructors ----------------------------------------------

    @staticmethod
    @lru_cache(maxsize=64)
    def identity() -> "FST":
        fst = FST()
        q0 = fst.new_state()
        fst.add_transition(q0, CharSet.any_char(), (COPY,), q0)
        return fst

    @staticmethod
    def char_map(mapping: Sequence[tuple[CharSet, Output]], default_copy: bool = True) -> "FST":
        """One-state transducer applying per-character rewrites.

        ``mapping`` is checked in order; overlapping earlier entries win.
        Characters matched by no entry are copied (if ``default_copy``)
        or deleted.
        """
        fst = FST()
        q0 = fst.new_state()
        remaining = CharSet.any_char()
        for charset, output in mapping:
            effective = charset.intersect(remaining)
            fst.add_transition(q0, effective, output, q0)
            remaining = remaining.difference(charset)
        if remaining:
            fst.add_transition(q0, remaining, (COPY,) if default_copy else ("",), q0)
        return fst

    @staticmethod
    @lru_cache(maxsize=64)
    def replace_chars(charset: CharSet, replacement: str) -> "FST":
        """Replace every character of ``charset`` with ``replacement``."""
        return FST.char_map([(charset, (replacement,))])

    @staticmethod
    @lru_cache(maxsize=64)
    def delete_chars(charset: CharSet) -> "FST":
        return FST.char_map([(charset, ("",))])

    @staticmethod
    @lru_cache(maxsize=64)
    def lowercase() -> "FST":
        return FST.char_map([(CharSet.any_char(), (LOWER,))])

    @staticmethod
    @lru_cache(maxsize=64)
    def uppercase() -> "FST":
        return FST.char_map([(CharSet.any_char(), (UPPER,))])

    @staticmethod
    @lru_cache(maxsize=64)
    def escape_chars(charset: CharSet, escape: str = "\\") -> "FST":
        """Prefix every character of ``charset`` with ``escape``.

        ``escape_chars(CharSet.of("'\\\"\\\\"))`` is PHP's ``addslashes``
        (modulo NUL, which the charset caller includes).
        """
        return FST.char_map([(charset, (escape, COPY))])

    @staticmethod
    @lru_cache(maxsize=512)
    def replace_string(pattern: str, replacement: str) -> "FST":
        """Leftmost, non-overlapping replace-all of a fixed ``pattern``.

        Memoized per ``(pattern, replacement)``: transducers are
        immutable once built, and a stable object identity is what lets
        the image cache (keyed on FST identity + input fingerprint)
        recognize repeated sanitizer applications across call sites and
        pages.

        This is PHP's ``str_replace($pattern, $replacement, $subject)``,
        built as a KMP matcher: state *j* means "the last *j* input
        characters are ``pattern[:j]`` (buffered, unemitted)".  The
        paper's Figure 6 (``str_replace("''", "'", $B)``) is an instance.
        """
        if not pattern:
            raise ValueError("str_replace with empty pattern is identity")
        failure = _kmp_failure(pattern)
        fst = FST()
        length = len(pattern)
        states = [fst.new_state() for _ in range(length)]
        for j in range(length):
            fst.final_output[states[j]] = pattern[:j]
            seen = CharSet.empty()
            # Advancing edge: next pattern character.
            advance_char = pattern[j]
            if j + 1 == length:
                # Full match: emit replacement, restart (non-overlapping).
                fst.add_transition(
                    states[j], CharSet.of(advance_char), (replacement,), states[0]
                )
            else:
                fst.add_transition(
                    states[j], CharSet.of(advance_char), ("",), states[j + 1]
                )
            seen = seen.union(CharSet.of(advance_char))
            # Mismatch edges via the failure chain.  Group all characters
            # that lead to the same fallback state.
            fallback_chars: dict[int, list[str]] = {}
            candidates = set(pattern) | {None}
            for char in sorted(c for c in candidates if c is not None):
                if char == advance_char:
                    continue
                k = failure[j]
                while k > 0 and pattern[k] != char:
                    k = failure[k]
                new_state = k + 1 if pattern[k] == char else 0
                fallback_chars.setdefault(new_state, []).append(char)
                seen = seen.union(CharSet.of(char))
            for new_state, chars in fallback_chars.items():
                for char in chars:
                    # Buffer was pattern[:j]; after consuming char the new
                    # buffer is pattern[:new_state]; emit the difference.
                    emitted = (pattern[:j] + char)[: j + 1 - new_state]
                    fst.add_transition(
                        states[j], CharSet.of(char), (emitted,), states[new_state]
                    )
            # Default edge: any character not in the pattern alphabet.
            rest = seen.complement()
            if rest:
                fst.add_transition(
                    states[j], rest, (pattern[:j], COPY), states[0]
                )
        return fst

    @staticmethod
    def collapse_class(charset: CharSet, replacement: str) -> "FST":
        """Replace each maximal run of ``charset`` chars with ``replacement``.

        This is ``preg_replace('/[class]+/', replacement, $x)`` — exact
        for greedy maximal-run semantics (a run of length *k* produces
        *one* copy of the replacement, not *k*).
        """
        fst = FST()
        outside = fst.new_state()
        inside = fst.new_state()
        other = charset.complement()
        fst.add_transition(outside, charset, (replacement,), inside)
        fst.add_transition(outside, other, (COPY,), outside)
        fst.add_transition(inside, charset, ("",), inside)
        fst.add_transition(inside, other, (COPY,), outside)
        return fst


class FSTExplosion(RuntimeError):
    """Raised when nondeterministic transducer simulation blows up."""


def render_output(output: Output, consumed: str) -> str:
    """Materialize an output item sequence for a concrete consumed char."""
    parts = []
    for item in output:
        if isinstance(item, str):
            parts.append(item)
        elif item is COPY:
            parts.append(consumed)
        elif item is LOWER:
            parts.append(consumed.lower())
        elif item is UPPER:
            parts.append(consumed.upper())
        else:
            raise TypeError(f"unknown output item {item!r}")
    return "".join(parts)


def map_marker_charset(item: OutputItem, charset: CharSet) -> CharSet | str:
    """Image of a consumed-char ``charset`` under one output item.

    Literal items pass through; COPY yields the charset itself; LOWER and
    UPPER yield the (ASCII) case-mapped charset.
    """
    if isinstance(item, str):
        return item
    if item is COPY:
        return charset
    shifted = []
    for lo, hi in charset.intervals:
        if item is LOWER:
            a_lo, a_hi = max(lo, 0x41), min(hi, 0x5A)
            if a_lo <= a_hi:
                shifted.append((a_lo + 32, a_hi + 32))
            for piece in _intervals_minus(lo, hi, 0x41, 0x5A):
                shifted.append(piece)
        elif item is UPPER:
            a_lo, a_hi = max(lo, 0x61), min(hi, 0x7A)
            if a_lo <= a_hi:
                shifted.append((a_lo - 32, a_hi - 32))
            for piece in _intervals_minus(lo, hi, 0x61, 0x7A):
                shifted.append(piece)
        else:
            raise TypeError(f"unknown output item {item!r}")
    return CharSet(shifted)


def _intervals_minus(lo: int, hi: int, cut_lo: int, cut_hi: int) -> Iterable[tuple[int, int]]:
    """``[lo,hi]`` minus ``[cut_lo,cut_hi]`` as intervals."""
    if lo < cut_lo:
        yield (lo, min(hi, cut_lo - 1))
    if hi > cut_hi:
        yield (max(lo, cut_hi + 1), hi)


def _kmp_failure(pattern: str) -> list[int]:
    """KMP failure function: failure[j] = longest proper border of pattern[:j]."""
    failure = [0] * (len(pattern) + 1)
    k = 0
    for j in range(1, len(pattern)):
        while k > 0 and pattern[j] != pattern[k]:
            k = failure[k]
        if pattern[j] == pattern[k]:
            k += 1
        failure[j + 1] = k
    # failure[0] and failure[1] are 0 by construction
    return failure[:-1] if len(failure) > len(pattern) else failure
