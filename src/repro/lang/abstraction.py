"""Sound string abstractions: a cheap pre-filter before CFG ∩ FSA.

The phase-2 cascade and every :class:`SinkPolicy` substring check decide
emptiness of ``L(G, X) ∩ L(D)`` with the full pair-fixpoint product
construction (:mod:`repro.lang.intersect`).  Most of those queries are
*obviously* empty: the attack automaton needs a quote or a metacharacter
the subgrammar can never produce, or needs more characters than the
subgrammar can ever emit.  Following the length/charset domains of the
string-constraint-solving literature, this module over-approximates
``L(G, X)`` by a :class:`StringAbstraction` —

    ``L(G, X)  ⊆  { w ∈ closure(X)* : lo ≤ |w| ≤ hi }``

where ``closure(X)`` is the union of every character any derivation can
emit and ``[lo, hi]`` bounds derivation lengths (``hi = None`` when the
language is unbounded).  If the abstraction's intersection with ``L(D)``
is empty, the exact intersection is empty *a fortiori* and the product
construction can be skipped.

Soundness (DESIGN.md §5h carries the full argument):

* every character of a string of ``L(G, X)`` lies in ``closure(X)``, so
  any accepting DFA run over such a string uses only edges whose label
  overlaps ``closure(X)`` — runs never leave the *pruned* automaton;
* therefore if no accepting state is reachable in the pruned automaton,
  or every pruned accepting path is longer than ``hi``, or the pruned
  live subgraph is acyclic and its longest accepting path is shorter
  than ``lo``, then no string of the abstraction — hence none of
  ``L(G, X)`` — is accepted.

The pre-filter only ever answers "provably empty"; every other outcome
falls through to the exact check, so verdicts (and the bytes of every
report) are identical with the filter on or off.
"""

from __future__ import annotations

import os
import sys
from collections import deque

from repro.obs.timeline import TIMELINE
from repro.obs.metrics import PERF

from .charset import CharSet
from .fsa import DFA
from .grammar import Grammar, Lit, Nonterminal

#: Kill switch (for measurement and for the cross-check tests): set the
#: environment variable ``REPRO_PREFILTER=0`` or toggle at runtime.
ENABLED = os.environ.get("REPRO_PREFILTER", "1") != "0"

#: Lengths above this are treated as unbounded — the finite bound buys
#: nothing once it exceeds any plausible automaton diameter.
_MAX_TRACKED_LEN = 1 << 20


class StringAbstraction:
    """Charset closure + length interval for one grammar root."""

    __slots__ = ("closure", "min_len", "max_len")

    def __init__(
        self, closure: CharSet, min_len: int, max_len: int | None
    ) -> None:
        self.closure = closure
        self.min_len = min_len
        self.max_len = max_len

    def __repr__(self) -> str:
        hi = "∞" if self.max_len is None else self.max_len
        return f"StringAbstraction({self.closure!r}, len=[{self.min_len},{hi}])"


def abstraction_of(grammar: Grammar, root: Nonterminal) -> StringAbstraction:
    """The abstraction of ``L(grammar, root)``; memoized on the grammar's
    revision stamp so repeated queries against one scope are O(1)."""
    cached = grammar._memo_get(("abs", root))
    if cached is not None:
        return cached
    closure = grammar.charset_closure(root)
    min_len = _min_lengths(grammar, root)
    max_len = _max_length(grammar, root)
    abstraction = StringAbstraction(closure, min_len, max_len)
    grammar._memo_set(("abs", root), abstraction)
    return abstraction


def _symbol_min(symbol, min_len: dict[Nonterminal, int]) -> int:
    if isinstance(symbol, Lit):
        return len(symbol.text)
    if isinstance(symbol, CharSet):
        return 1
    return min_len.get(symbol, _MAX_TRACKED_LEN)


def _min_lengths(grammar: Grammar, root: Nonterminal) -> int:
    """Shortest-derivation fixpoint; returns the root's minimum length
    (0 if the root derives nothing — harmless for a *lower* bound)."""
    reachable = grammar.reachable(root)
    min_len: dict[Nonterminal, int] = {}
    changed = True
    while changed:
        changed = False
        for nt in reachable:
            best = min_len.get(nt, _MAX_TRACKED_LEN)
            for rhs in grammar.productions.get(nt, ()):
                total = 0
                for symbol in rhs:
                    total += _symbol_min(symbol, min_len)
                    if total >= _MAX_TRACKED_LEN:
                        total = _MAX_TRACKED_LEN
                        break
                if total < best:
                    best = total
            if best < min_len.get(nt, _MAX_TRACKED_LEN):
                min_len[nt] = best
                changed = True
    found = min_len.get(root, _MAX_TRACKED_LEN)
    return 0 if found >= _MAX_TRACKED_LEN else found


def _max_length(grammar: Grammar, root: Nonterminal) -> int | None:
    """Longest-derivation bound, or None when unbounded (any reachable
    cycle, or any bound overflowing the tracked range)."""
    reachable = grammar.reachable(root)
    cyclic = grammar.cyclic_nonterminals()
    if any(nt in cyclic for nt in reachable):
        return None
    memo: dict[Nonterminal, int | None] = {}

    def longest(nt: Nonterminal) -> int | None:
        if nt in memo:
            return memo[nt]
        best: int | None = None
        for rhs in grammar.productions.get(nt, ()):
            total = 0
            for symbol in rhs:
                if isinstance(symbol, Lit):
                    total += len(symbol.text)
                elif isinstance(symbol, CharSet):
                    total += 1
                else:
                    sub = longest(symbol)
                    if sub is None:
                        memo[nt] = None
                        return None
                    total += sub
            if total > _MAX_TRACKED_LEN:
                memo[nt] = None
                return None
            if best is None or total > best:
                best = total
        # a production-less nonterminal derives nothing; 0 keeps the
        # bound valid (it can't contribute any string at all)
        memo[nt] = 0 if best is None else best
        return memo[nt]

    old_limit = sys.getrecursionlimit()
    if old_limit < 20000:
        sys.setrecursionlimit(20000)
    try:
        return longest(root)
    finally:
        sys.setrecursionlimit(old_limit)


# -- pruned-automaton reachability ------------------------------------------

#: (dfa, closure) → (min accepting distance | None, max accepting path
#: length | None-if-cyclic-or-unreachable).  Keys hold strong references
#: so ids can't be recycled; bounded by clearing wholesale.
_PRUNED_MEMO: dict[tuple[int, CharSet], tuple] = {}
_PRUNED_MEMO_CAP = 4096


def _pruned_profile(
    dfa: DFA, closure: CharSet
) -> tuple[int | None, int | None, DFA]:
    """Distances over the closure-pruned automaton.

    Returns ``(min_accept_dist, max_accept_dist, dfa)`` where distances
    are over edges whose label overlaps ``closure``; ``min`` is None when
    no accepting state is reachable, ``max`` is None when the pruned live
    subgraph has a cycle (accepting path lengths unbounded).
    """
    key = (id(dfa), closure)
    cached = _PRUNED_MEMO.get(key)
    if cached is not None and cached[2] is dfa:
        return cached
    # forward BFS over pruned edges: shortest distances
    dist: dict[int, int] = {dfa.start: 0}
    queue = deque([dfa.start])
    pruned_edges: dict[int, list[int]] = {}
    while queue:
        state = queue.popleft()
        outs = pruned_edges.setdefault(state, [])
        for label, dst in dfa.transitions.get(state, ()):
            if closure.overlaps(label):
                outs.append(dst)
                if dst not in dist:
                    dist[dst] = dist[state] + 1
                    queue.append(dst)
    reachable_accepts = [s for s in dfa.accepts if s in dist]
    if not reachable_accepts:
        result = (None, None, dfa)
    else:
        min_dist = min(dist[s] for s in reachable_accepts)
        # backward reachability: states that can still reach an accept
        incoming: dict[int, set[int]] = {}
        for src, dsts in pruned_edges.items():
            for dst in dsts:
                incoming.setdefault(dst, set()).add(src)
        live = set(reachable_accepts)
        queue = deque(live)
        while queue:
            state = queue.popleft()
            for src in incoming.get(state, ()):
                if src not in live and src in dist:
                    live.add(src)
                    queue.append(src)
        # longest accepting path, None if the live subgraph is cyclic
        max_dist = _longest_path(dfa.start, pruned_edges, live, set(dfa.accepts))
        result = (min_dist, max_dist, dfa)
    if len(_PRUNED_MEMO) >= _PRUNED_MEMO_CAP:
        _PRUNED_MEMO.clear()
    _PRUNED_MEMO[key] = result
    return result


def _longest_path(
    start: int,
    edges: dict[int, list[int]],
    live: set[int],
    accepts: set[int],
) -> int | None:
    """Longest start→accept path inside ``live``, or None on a cycle."""
    if start not in live:
        return None
    memo: dict[int, int | None] = {}
    on_path: set[int] = set()

    def walk(state: int) -> int | None | str:
        if state in memo:
            return memo[state]
        if state in on_path:
            return "cycle"
        on_path.add(state)
        best = 0 if state in accepts else None
        for dst in edges.get(state, ()):
            if dst not in live:
                continue
            sub = walk(dst)
            if sub == "cycle":
                return "cycle"
            if sub is not None and (best is None or sub + 1 > best):
                best = sub + 1
        on_path.discard(state)
        memo[state] = best
        return best

    old_limit = sys.getrecursionlimit()
    if old_limit < 20000:
        sys.setrecursionlimit(20000)
    try:
        found = walk(start)
    finally:
        sys.setrecursionlimit(old_limit)
    return None if found == "cycle" else found


def prefilter_decides_empty(
    grammar: Grammar, root: Nonterminal, dfa: DFA
) -> bool:
    """True only when the abstraction *proves* the intersection empty.

    A ``False`` answer means "don't know" — the caller must run the
    exact product construction.  Never inspects more than the charset
    closure and length bounds, so a ``True`` here is always confirmed
    by the exact check (the cross-check property test enforces this).
    """
    if not ENABLED:
        return False
    with PERF.timer("prefilter"), TIMELINE.phase("prefilter"):
        abstraction = abstraction_of(grammar, root)
        min_dist, max_dist, _ = _pruned_profile(dfa, abstraction.closure)
        if min_dist is None:
            # no accepting state reachable over the closure alphabet
            return True
        if abstraction.max_len is not None and min_dist > abstraction.max_len:
            # every accepted closure-string is longer than anything X makes
            return True
        if max_dist is not None and max_dist < abstraction.min_len:
            # every accepted closure-string is shorter than anything X makes
            return True
    return False
