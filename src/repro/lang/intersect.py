"""CFG ∩ FSA intersection with taint propagation (paper Figure 7).

Given a grammar ``G``, a root nonterminal, and a DFA ``F``, construct a
grammar for ``L(G, root) ∩ L(F)`` whose nonterminals are triples
``X_{ij}`` ("X, entered at automaton state *i*, leaving at *j*").  The
paper's ``TAINTIF`` step — every ``X_{ij}`` inherits the taint labels of
``X`` — is what makes Theorem 3.1 hold: tainted-substring boundaries
survive the intersection.

The construction runs in two stages:

1. a *pair fixpoint* computing, for every nonterminal ``X``, the set of
   state pairs ``(i, j)`` such that some string of ``X`` drives the DFA
   from ``i`` to ``j`` (this alone answers emptiness queries, which is
   all the policy checks need), and
2. on demand, materialization of the triple grammar.

Working over a *deterministic* automaton keeps literal terminals cheap:
a multi-character literal reaches exactly one ``j`` from each ``i``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.obs.metrics import PERF

from .charset import CharSet
from .fsa import DFA
from .grammar import Grammar, Lit, Nonterminal, Rhs, Symbol, is_terminal


class _PairTable:
    """State-pair sets per grammar symbol, computed to fixpoint."""

    def __init__(self, grammar: Grammar, root: Nonterminal, dfa: DFA) -> None:
        self.grammar = grammar.normalized(root)
        self.root = root
        self.dfa = dfa
        self.states = sorted(dfa.live_states())
        self.pairs: dict[Nonterminal, set[tuple[int, int]]] = defaultdict(set)
        # Instance-local memo, freed with the table (one table per
        # intersection query): at most (distinct literal texts) × states
        # entries, so it needs no eviction policy — its high-water mark
        # is surfaced via the perf gauge recorded in _solve().
        self._lit_cache: dict[tuple[str, int], int | None] = {}
        self._solve()

    # -- terminal pair sets -------------------------------------------------

    def lit_target(self, text: str, state: int) -> int | None:
        key = (text, state)
        if key not in self._lit_cache:
            self._lit_cache[key] = self.dfa.run_string(state, text)
        return self._lit_cache[key]

    def term_pairs(self, symbol: Symbol) -> Iterable[tuple[int, int]]:
        if isinstance(symbol, Lit):
            for i in self.states:
                j = self.lit_target(symbol.text, i)
                if j is not None:
                    yield (i, j)
        else:  # CharSet
            for i in self.states:
                for label, j in self.dfa.transitions.get(i, ()):
                    if symbol.overlaps(label):
                        yield (i, j)

    def charset_refined(self, charset: CharSet, i: int, j: int) -> CharSet:
        """The characters of ``charset`` that actually drive i → j."""
        overlap = CharSet.empty()
        for label, dst in self.dfa.transitions.get(i, ()):
            if dst == j:
                overlap = overlap.union(charset.intersect(label))
        return overlap

    def symbol_pairs(self, symbol: Symbol) -> set[tuple[int, int]]:
        if is_terminal(symbol):
            return set(self.term_pairs(symbol))
        return self.pairs[symbol]

    # -- fixpoint -------------------------------------------------------------

    def _solve(self) -> None:
        """Worklist fixpoint over the normalized (rhs ≤ 2) grammar.

        This is the paper's Figure 7 organized around "which nonterminal
        gained pairs" instead of raw triples; the computed relation is
        identical.
        """
        rules = self.grammar.productions
        # occurrences[Y] = productions in which Y appears on the rhs;
        # memoized on the (frozen) normalized grammar — one scope serves
        # many DFA queries in a policy cascade
        occurrences = self.grammar._memo_get(("occ_lhs_rhs",))
        if occurrences is None:
            occurrences = defaultdict(list)
            for lhs, rhss in rules.items():
                for rhs in rhss:
                    for symbol in rhs:
                        if isinstance(symbol, Nonterminal):
                            occurrences[symbol].append((lhs, rhs))
            self.grammar._memo_set(("occ_lhs_rhs",), occurrences)

        term_cache: dict[int, set[tuple[int, int]]] = {}

        def sym_pairs(symbol: Symbol) -> set[tuple[int, int]]:
            if isinstance(symbol, Nonterminal):
                return self.pairs[symbol]
            key = id(symbol)
            if key not in term_cache:
                term_cache[key] = set(self.term_pairs(symbol))
            return term_cache[key]

        # id(symbol) -> [pair-count at build time, start -> [ends]];
        # rebuilt only while the symbol's pair set is still growing
        by_start_cache: dict[int, list] = {}

        def by_start_of(symbol: Symbol) -> dict[int, list[int]]:
            found = sym_pairs(symbol)
            key = id(symbol)
            cached = by_start_cache.get(key)
            if cached is not None and cached[0] == len(found):
                return cached[1]
            index: dict[int, list[int]] = {}
            for j, k in found:
                index.setdefault(j, []).append(k)
            by_start_cache[key] = [len(found), index]
            return index

        def eval_rhs(rhs: Rhs) -> set[tuple[int, int]]:
            if not rhs:
                return {(i, i) for i in self.states}
            if len(rhs) == 1:
                return set(sym_pairs(rhs[0]))
            left = sym_pairs(rhs[0])
            by_start = by_start_of(rhs[1])
            out: set[tuple[int, int]] = set()
            for i, j in left:
                ks = by_start.get(j)
                if ks:
                    for k in ks:
                        out.add((i, k))
            return out

        worklist = list(rules)
        queued = set(worklist)
        iterations = 0
        while worklist:
            iterations += 1
            lhs = worklist.pop()
            queued.discard(lhs)
            added = False
            target = self.pairs[lhs]
            for rhs in rules.get(lhs, ()):
                before = len(target)
                target |= eval_rhs(rhs)
                if len(target) != before:
                    added = True
            if added:
                for parent, _ in occurrences.get(lhs, ()):
                    if parent not in queued:
                        queued.add(parent)
                        worklist.append(parent)
        PERF.incr("intersect.fixpoint_iterations", iterations)
        PERF.gauge("intersect.lit_cache.max_size", len(self._lit_cache))


def _pair_table(grammar: Grammar, root: Nonterminal, dfa: DFA) -> _PairTable:
    """Solved :class:`_PairTable`, memoized on the scope grammar.

    Every non-empty policy check runs the same query twice — once for
    the emptiness verdict and once to materialize the witness grammar —
    and a cascade probes one scope against several danger DFAs.  Tables
    are read-only after ``_solve``, so sharing them is safe.  The memo
    value keeps a strong reference to the DFA: while the entry lives, no
    other automaton can recycle its ``id``.
    """
    key = ("pairtable", root, id(dfa))
    cached = grammar._memo_get(key)
    if cached is not None and cached[0] is dfa:
        return cached[1]
    table = _PairTable(grammar, root, dfa)
    grammar._memo_set(key, (dfa, table))
    return table


def _reach_trim(result: Grammar, start: Nonterminal) -> Grammar:
    """Reachability-only trim for freshly materialized triple grammars.

    Every triple minted by ``get_triple`` carries a state pair from the
    solved table, i.e. some string of the original nonterminal drives
    the DFA between its states — so every nonterminal of ``result``
    derives a terminal string and ``productive()`` would return the
    full set.  ``trim`` therefore reduces to its reachability filter,
    and since reachable nonterminals only reference reachable ones, no
    individual rule is ever dropped.  Rule lists are shared rather than
    re-added (the untrimmed grammar is discarded on return); iteration
    over ``sorted(keep)`` and the label copy mirror ``trim`` exactly,
    keeping the production order — and hence output bytes — identical.
    """
    if not result.productions.get(start):
        # no accepting pair: degenerate empty-language grammar
        return result.trim(start)
    keep = result.reachable(start)
    trimmed = Grammar(start)
    productions = trimmed.productions
    nrules = 0
    source = result.productions
    for nt in sorted(keep):
        rules = source.get(nt) or []
        productions[nt] = rules
        nrules += len(rules)
    trimmed._nrules = nrules
    trimmed.copy_labels_from(result, keep)
    return trimmed


def intersection_is_empty(grammar: Grammar, root: Nonterminal, dfa: DFA) -> bool:
    """True iff L(grammar, root) ∩ L(dfa) = ∅ (no triple grammar built).

    Consults the charset/length abstraction first
    (:func:`repro.lang.abstraction.prefilter_decides_empty`): the
    abstraction over-approximates ``L(grammar, root)``, so a "provably
    empty" answer from it is always the exact answer and the pair
    fixpoint can be skipped.  Anything else falls through.
    """
    from .abstraction import prefilter_decides_empty

    if prefilter_decides_empty(grammar, root, dfa):
        PERF.incr("prefilter.hits")
        return True
    PERF.incr("prefilter.misses")
    table = _pair_table(grammar, root, dfa)
    return not any(
        (dfa.start, qf) in table.pairs[root] for qf in dfa.accepts
    )


def intersect(
    grammar: Grammar, root: Nonterminal, dfa: DFA
) -> tuple[Grammar, Nonterminal]:
    """The annotated intersection grammar (paper Figure 7 + TAINTIF).

    Returns ``(result, start)``; the result is trimmed.  Labels on
    ``X_{ij}`` mirror the labels on ``X`` (Theorem 3.1).
    """
    table = _pair_table(grammar, root, dfa)
    normalized = table.grammar
    result = Grammar()
    triple: dict[tuple[Nonterminal, int, int], Nonterminal] = {}

    def get_triple(nt: Nonterminal, i: int, j: int) -> Nonterminal:
        key = (nt, i, j)
        if key not in triple:
            fresh = result.fresh(f"{nt.name}@{i},{j}")
            triple[key] = fresh
            # TAINTIF: propagate source labels through the construction
            # (inlined add_label: ``fresh`` is already in productions and
            # no memo has been taken on the result grammar yet).
            labels = normalized.labels.get(nt)
            if labels:
                result.labels[fresh] = set(labels)
        return triple[key]

    def rhs_symbol(symbol: Symbol, i: int, j: int) -> Symbol | None:
        """The (i, j)-restriction of one rhs symbol, or None if invalid."""
        kind = type(symbol)
        if kind is Nonterminal:
            if (i, j) in table.pairs[symbol]:
                return get_triple(symbol, i, j)
            return None
        if kind is Lit:
            return symbol if table.lit_target(symbol.text, i) == j else None
        refined = table.charset_refined(symbol, i, j)
        return refined if refined else None

    # Pair sets are frozen once the table is solved, so terminal pair
    # sets and the start-state index of each symbol are computed once.
    # by_start preserves the pair set's own iteration order, keeping
    # triple creation order (and hence output bytes) identical to the
    # direct `for i2, mid in pairs if i2 == i` scan it replaces.
    term_cache: dict[int, set[tuple[int, int]]] = {}
    by_start_cache: dict[int, dict[int, list[int]]] = {}

    def by_start_of(symbol: Symbol) -> dict[int, list[int]]:
        key = id(symbol)
        index = by_start_cache.get(key)
        if index is None:
            if isinstance(symbol, Nonterminal):
                found = table.pairs[symbol]
            else:
                found = term_cache.get(key)
                if found is None:
                    found = set(table.term_pairs(symbol))
                    term_cache[key] = found
            index = {}
            for i2, mid in found:
                index.setdefault(i2, []).append(mid)
            by_start_cache[key] = index
        return index

    for lhs, rhss in normalized.productions.items():
        # Pre-dispatch each rhs once per lhs instead of once per state
        # pair; the prepared tuples carry no side effects, so hoisting
        # them leaves triple creation order unchanged.
        prepared: list[tuple] | None = None
        for i, j in table.pairs[lhs]:
            if prepared is None:
                prepared = []
                for rhs in rhss:
                    if not rhs:
                        prepared.append((0, None, None, None))
                    elif len(rhs) == 1:
                        prepared.append((1, rhs[0], None, None))
                    else:
                        first, second = rhs
                        prepared.append((2, first, second, by_start_of(first)))
            lhs_triple = get_triple(lhs, i, j)
            bodies: list[Rhs] = []
            for kind, first, second, index in prepared:
                if kind == 2:
                    for mid in index.get(i, ()):
                        left = rhs_symbol(first, i, mid)
                        right = rhs_symbol(second, mid, j)
                        if left is not None and right is not None:
                            bodies.append((left, right))
                elif kind == 1:
                    restricted = rhs_symbol(first, i, j)
                    if restricted is not None:
                        bodies.append((restricted,))
                elif i == j:
                    bodies.append(())
            if bodies:
                result._bulk_add(lhs_triple, bodies)

    start = result.fresh(f"{root.name}∩")
    result.start = start
    for label in normalized.labels.get(root, ()):
        result.add_label(start, label)
    for qf in dfa.accepts:
        if (dfa.start, qf) in table.pairs[root]:
            result.add(start, (get_triple(root, dfa.start, qf),))
    return _reach_trim(result, start), start
