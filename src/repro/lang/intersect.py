"""CFG ∩ FSA intersection with taint propagation (paper Figure 7).

Given a grammar ``G``, a root nonterminal, and a DFA ``F``, construct a
grammar for ``L(G, root) ∩ L(F)`` whose nonterminals are triples
``X_{ij}`` ("X, entered at automaton state *i*, leaving at *j*").  The
paper's ``TAINTIF`` step — every ``X_{ij}`` inherits the taint labels of
``X`` — is what makes Theorem 3.1 hold: tainted-substring boundaries
survive the intersection.

The construction runs in two stages:

1. a *pair fixpoint* computing, for every nonterminal ``X``, the set of
   state pairs ``(i, j)`` such that some string of ``X`` drives the DFA
   from ``i`` to ``j`` (this alone answers emptiness queries, which is
   all the policy checks need), and
2. on demand, materialization of the triple grammar.

Working over a *deterministic* automaton keeps literal terminals cheap:
a multi-character literal reaches exactly one ``j`` from each ``i``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.perf import PERF

from .charset import CharSet
from .fsa import DFA
from .grammar import Grammar, Lit, Nonterminal, Rhs, Symbol, is_terminal


class _PairTable:
    """State-pair sets per grammar symbol, computed to fixpoint."""

    def __init__(self, grammar: Grammar, root: Nonterminal, dfa: DFA) -> None:
        self.grammar = grammar.normalized(root)
        self.root = root
        self.dfa = dfa
        self.states = sorted(dfa.live_states())
        self.pairs: dict[Nonterminal, set[tuple[int, int]]] = defaultdict(set)
        # Instance-local memo, freed with the table (one table per
        # intersection query): at most (distinct literal texts) × states
        # entries, so it needs no eviction policy — its high-water mark
        # is surfaced via the perf gauge recorded in _solve().
        self._lit_cache: dict[tuple[str, int], int | None] = {}
        self._solve()

    # -- terminal pair sets -------------------------------------------------

    def lit_target(self, text: str, state: int) -> int | None:
        key = (text, state)
        if key not in self._lit_cache:
            self._lit_cache[key] = self.dfa.run_string(state, text)
        return self._lit_cache[key]

    def term_pairs(self, symbol: Symbol) -> Iterable[tuple[int, int]]:
        if isinstance(symbol, Lit):
            for i in self.states:
                j = self.lit_target(symbol.text, i)
                if j is not None:
                    yield (i, j)
        else:  # CharSet
            for i in self.states:
                for label, j in self.dfa.transitions.get(i, ()):
                    if symbol.overlaps(label):
                        yield (i, j)

    def charset_refined(self, charset: CharSet, i: int, j: int) -> CharSet:
        """The characters of ``charset`` that actually drive i → j."""
        overlap = CharSet.empty()
        for label, dst in self.dfa.transitions.get(i, ()):
            if dst == j:
                overlap = overlap.union(charset.intersect(label))
        return overlap

    def symbol_pairs(self, symbol: Symbol) -> set[tuple[int, int]]:
        if is_terminal(symbol):
            return set(self.term_pairs(symbol))
        return self.pairs[symbol]

    # -- fixpoint -------------------------------------------------------------

    def _solve(self) -> None:
        """Worklist fixpoint over the normalized (rhs ≤ 2) grammar.

        This is the paper's Figure 7 organized around "which nonterminal
        gained pairs" instead of raw triples; the computed relation is
        identical.
        """
        rules = self.grammar.productions
        # occurrences[Y] = productions in which Y appears on the rhs
        occurrences: dict[Nonterminal, list[tuple[Nonterminal, Rhs]]] = defaultdict(list)
        for lhs, rhss in rules.items():
            for rhs in rhss:
                for symbol in rhs:
                    if isinstance(symbol, Nonterminal):
                        occurrences[symbol].append((lhs, rhs))

        term_cache: dict[int, set[tuple[int, int]]] = {}

        def sym_pairs(symbol: Symbol) -> set[tuple[int, int]]:
            if isinstance(symbol, Nonterminal):
                return self.pairs[symbol]
            key = id(symbol)
            if key not in term_cache:
                term_cache[key] = set(self.term_pairs(symbol))
            return term_cache[key]

        def eval_rhs(rhs: Rhs) -> set[tuple[int, int]]:
            if not rhs:
                return {(i, i) for i in self.states}
            if len(rhs) == 1:
                return set(sym_pairs(rhs[0]))
            first, second = rhs
            left = sym_pairs(first)
            right = sym_pairs(second)
            by_start: dict[int, list[int]] = defaultdict(list)
            for j, k in right:
                by_start[j].append(k)
            return {
                (i, k)
                for i, j in left
                for k in by_start.get(j, ())
            }

        worklist = list(rules)
        queued = set(worklist)
        iterations = 0
        while worklist:
            iterations += 1
            lhs = worklist.pop()
            queued.discard(lhs)
            added = False
            for rhs in rules.get(lhs, ()):
                new_pairs = eval_rhs(rhs) - self.pairs[lhs]
                if new_pairs:
                    self.pairs[lhs].update(new_pairs)
                    added = True
            if added:
                for parent, _ in occurrences.get(lhs, ()):
                    if parent not in queued:
                        queued.add(parent)
                        worklist.append(parent)
        PERF.incr("intersect.fixpoint_iterations", iterations)
        PERF.gauge("intersect.lit_cache.max_size", len(self._lit_cache))


def intersection_is_empty(grammar: Grammar, root: Nonterminal, dfa: DFA) -> bool:
    """True iff L(grammar, root) ∩ L(dfa) = ∅ (no triple grammar built)."""
    table = _PairTable(grammar, root, dfa)
    return not any(
        (dfa.start, qf) in table.pairs[root] for qf in dfa.accepts
    )


def intersect(
    grammar: Grammar, root: Nonterminal, dfa: DFA
) -> tuple[Grammar, Nonterminal]:
    """The annotated intersection grammar (paper Figure 7 + TAINTIF).

    Returns ``(result, start)``; the result is trimmed.  Labels on
    ``X_{ij}`` mirror the labels on ``X`` (Theorem 3.1).
    """
    table = _PairTable(grammar, root, dfa)
    normalized = table.grammar
    result = Grammar()
    triple: dict[tuple[Nonterminal, int, int], Nonterminal] = {}

    def get_triple(nt: Nonterminal, i: int, j: int) -> Nonterminal:
        key = (nt, i, j)
        if key not in triple:
            fresh = result.fresh(f"{nt.name}@{i},{j}")
            triple[key] = fresh
            # TAINTIF: propagate source labels through the construction.
            for label in normalized.labels.get(nt, ()):
                result.add_label(fresh, label)
        return triple[key]

    def rhs_symbol(symbol: Symbol, i: int, j: int) -> Symbol | None:
        """The (i, j)-restriction of one rhs symbol, or None if invalid."""
        if isinstance(symbol, Lit):
            return symbol if table.lit_target(symbol.text, i) == j else None
        if isinstance(symbol, CharSet):
            refined = table.charset_refined(symbol, i, j)
            return refined if refined else None
        if (i, j) in table.pairs[symbol]:
            return get_triple(symbol, i, j)
        return None

    for lhs, rhss in normalized.productions.items():
        for i, j in table.pairs[lhs]:
            lhs_triple = get_triple(lhs, i, j)
            for rhs in rhss:
                if not rhs:
                    if i == j:
                        result.add(lhs_triple, ())
                    continue
                if len(rhs) == 1:
                    restricted = rhs_symbol(rhs[0], i, j)
                    if restricted is not None:
                        result.add(lhs_triple, (restricted,))
                    continue
                first, second = rhs
                first_pairs = table.symbol_pairs(first)
                for i2, mid in first_pairs:
                    if i2 != i:
                        continue
                    left = rhs_symbol(first, i, mid)
                    right = rhs_symbol(second, mid, j)
                    if left is not None and right is not None:
                        result.add(lhs_triple, (left, right))

    start = result.fresh(f"{root.name}∩")
    result.start = start
    for label in normalized.labels.get(root, ()):
        result.add_label(start, label)
    for qf in dfa.accepts:
        if (dfa.start, qf) in table.pairs[root]:
            result.add(start, (get_triple(root, dfa.start, qf),))
    return result.trim(start), start
