"""The formal-language substrate: everything the analysis is built on.

* :mod:`~repro.lang.charset` — interval character sets (a Boolean algebra)
* :mod:`~repro.lang.fsa` — NFA/DFA over charset labels
* :mod:`~repro.lang.regex` — PCRE/POSIX-subset regex engine
* :mod:`~repro.lang.fst` — finite-state transducers (string operations)
* :mod:`~repro.lang.grammar` — taint-labeled context-free grammars
* :mod:`~repro.lang.intersect` — CFG ∩ FSA with taint (paper Fig. 7)
* :mod:`~repro.lang.image` — CFG image under an FST with taint
* :mod:`~repro.lang.earley` — sentential-form Earley parsing and
  Definition 3.2 grammar derivability
"""

from .charset import CharSet
from .fsa import DFA, NFA
from .fst import FST
from .grammar import DIRECT, Grammar, INDIRECT, Lit, Nonterminal

__all__ = [
    "CharSet",
    "DFA",
    "DIRECT",
    "FST",
    "Grammar",
    "INDIRECT",
    "Lit",
    "NFA",
    "Nonterminal",
]
