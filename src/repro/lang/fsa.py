"""Finite automata over character-set labels.

Two classes:

* :class:`NFA` — nondeterministic automaton with epsilon moves and
  :class:`~repro.lang.charset.CharSet` edge labels.  Supports the regular
  operations (union, concatenation, star, …) used by the regex compiler
  and by the grammar analyses.
* :class:`DFA` — deterministic automaton with *disjoint* charset labels
  per state and an implicit dead state (missing transition = reject).
  Supports minimization, complement, product intersection, emptiness,
  and shortest-witness extraction.

Automaton states are small integers local to each automaton.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .charset import CharSet, partition_charsets


class NFA:
    """Nondeterministic finite automaton with epsilon transitions."""

    def __init__(self) -> None:
        self.num_states = 0
        self.start = 0
        self.accepts: set[int] = set()
        self.transitions: dict[int, list[tuple[CharSet, int]]] = {}
        self.epsilons: dict[int, set[int]] = {}

    # -- construction helpers -----------------------------------------

    def new_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    def add_edge(self, src: int, label: CharSet, dst: int) -> None:
        if label:
            self.transitions.setdefault(src, []).append((label, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilons.setdefault(src, set()).add(dst)

    # -- primitive automata --------------------------------------------

    @staticmethod
    def nothing() -> "NFA":
        """The empty language."""
        nfa = NFA()
        nfa.start = nfa.new_state()
        return nfa

    @staticmethod
    def epsilon_language() -> "NFA":
        """The language containing only the empty string."""
        nfa = NFA()
        nfa.start = nfa.new_state()
        nfa.accepts = {nfa.start}
        return nfa

    @staticmethod
    def from_charset(charset: CharSet) -> "NFA":
        nfa = NFA()
        nfa.start = nfa.new_state()
        end = nfa.new_state()
        nfa.add_edge(nfa.start, charset, end)
        nfa.accepts = {end}
        return nfa

    @staticmethod
    def from_string(text: str) -> "NFA":
        nfa = NFA()
        nfa.start = nfa.new_state()
        current = nfa.start
        for char in text:
            nxt = nfa.new_state()
            nfa.add_edge(current, CharSet.of(char), nxt)
            current = nxt
        nfa.accepts = {current}
        return nfa

    @staticmethod
    def any_string() -> "NFA":
        """Sigma* — all strings."""
        return NFA.from_charset(CharSet.any_char()).star()

    # -- regular operations (functional: return new automata) ----------

    def _import_states(self, other: "NFA") -> dict[int, int]:
        """Copy ``other``'s states/edges into ``self``; return the state map."""
        offset = self.num_states
        mapping = {s: s + offset for s in range(other.num_states)}
        self.num_states += other.num_states
        for src, edges in other.transitions.items():
            for label, dst in edges:
                self.add_edge(mapping[src], label, mapping[dst])
        for src, dsts in other.epsilons.items():
            for dst in dsts:
                self.add_epsilon(mapping[src], mapping[dst])
        return mapping

    def union(self, other: "NFA") -> "NFA":
        result = NFA()
        result.start = result.new_state()
        map_self = result._import_states(self)
        map_other = result._import_states(other)
        result.add_epsilon(result.start, map_self[self.start])
        result.add_epsilon(result.start, map_other[other.start])
        result.accepts = {map_self[s] for s in self.accepts}
        result.accepts |= {map_other[s] for s in other.accepts}
        return result

    def concat(self, other: "NFA") -> "NFA":
        result = NFA()
        result.start = result.new_state()
        map_self = result._import_states(self)
        map_other = result._import_states(other)
        result.add_epsilon(result.start, map_self[self.start])
        for s in self.accepts:
            result.add_epsilon(map_self[s], map_other[other.start])
        result.accepts = {map_other[s] for s in other.accepts}
        return result

    def star(self) -> "NFA":
        result = NFA()
        result.start = result.new_state()
        mapping = result._import_states(self)
        result.add_epsilon(result.start, mapping[self.start])
        for s in self.accepts:
            result.add_epsilon(mapping[s], result.start)
        result.accepts = {result.start}
        return result

    def plus(self) -> "NFA":
        return self.concat(self.star())

    def optional(self) -> "NFA":
        return self.union(NFA.epsilon_language())

    def repeat(self, low: int, high: int | None) -> "NFA":
        """``{low,high}`` quantifier; ``high=None`` means unbounded."""
        result = NFA.epsilon_language()
        for _ in range(low):
            result = result.concat(self)
        if high is None:
            result = result.concat(self.star())
        else:
            for _ in range(high - low):
                result = result.concat(self.optional())
        return result

    # -- semantics ------------------------------------------------------

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        closure = set(states)
        stack = list(closure)
        while stack:
            state = stack.pop()
            for nxt in self.epsilons.get(state, ()):
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def _state_closure(self, state: int, memo: dict[int, frozenset[int]]) -> frozenset[int]:
        """Single-state epsilon closure with memoization (closure of a
        set is the union of its members' closures)."""
        cached = memo.get(state)
        if cached is None:
            cached = self.epsilon_closure([state])
            memo[state] = cached
        return cached

    def accepts_string(self, text: str) -> bool:
        current = self.epsilon_closure([self.start])
        for char in text:
            moved = set()
            for state in current:
                for label, dst in self.transitions.get(state, ()):
                    if char in label:
                        moved.add(dst)
            if not moved:
                return False
            current = self.epsilon_closure(moved)
        return bool(current & self.accepts)

    def determinize(self) -> "DFA":
        """Subset construction with on-the-fly alphabet refinement."""
        dfa = DFA()
        closure_memo: dict[int, frozenset[int]] = {}
        start = self.epsilon_closure([self.start])
        state_ids: dict[frozenset[int], int] = {start: dfa.new_state()}
        dfa.start = state_ids[start]
        if start & self.accepts:
            dfa.accepts.add(dfa.start)
        queue = deque([start])
        while queue:
            subset = queue.popleft()
            src_id = state_ids[subset]
            out_edges = [
                (label, dst)
                for state in subset
                for label, dst in self.transitions.get(state, ())
            ]
            if not out_edges:
                continue
            for cls in partition_charsets([label for label, _ in out_edges]):
                targets: set[int] = set()
                for label, dst in out_edges:
                    if dst not in targets and cls.overlaps(label):
                        targets.add(dst)
                target_closure: set[int] = set()
                for dst in targets:
                    target_closure |= self._state_closure(dst, closure_memo)
                target = frozenset(target_closure)
                if target not in state_ids:
                    state_ids[target] = dfa.new_state()
                    if target & self.accepts:
                        dfa.accepts.add(state_ids[target])
                    queue.append(target)
                dfa.add_edge(src_id, cls, state_ids[target])
        dfa._merge_parallel_edges()
        return dfa

    def is_empty(self) -> bool:
        return self.determinize().is_empty()

    def reverse(self) -> "NFA":
        result = NFA()
        result.num_states = self.num_states
        new_start = result.new_state()
        result.start = new_start
        for src, edges in self.transitions.items():
            for label, dst in edges:
                result.add_edge(dst, label, src)
        for src, dsts in self.epsilons.items():
            for dst in dsts:
                result.add_epsilon(dst, src)
        for acc in self.accepts:
            result.add_epsilon(new_start, acc)
        result.accepts = {self.start}
        return result


class DFA:
    """Deterministic automaton; absent transitions go to an implicit sink."""

    def __init__(self) -> None:
        self.num_states = 0
        self.start = 0
        self.accepts: set[int] = set()
        self.transitions: dict[int, list[tuple[CharSet, int]]] = {}
        #: lazily built per-state ASCII jump tables for :meth:`step`;
        #: invalidated by the (only) two transition mutators below.
        self._step_cache: dict[int, dict[str, int]] | None = None

    def new_state(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state

    def add_edge(self, src: int, label: CharSet, dst: int) -> None:
        if label:
            self.transitions.setdefault(src, []).append((label, dst))
            self._step_cache = None

    def _merge_parallel_edges(self) -> None:
        for src, edges in self.transitions.items():
            by_target: dict[int, list[CharSet]] = {}
            for label, dst in edges:
                by_target.setdefault(dst, []).append(label)
            self.transitions[src] = [
                (CharSet.union_of(labels), dst) for dst, labels in by_target.items()
            ]
        self._step_cache = None

    # -- semantics ------------------------------------------------------

    def _step_tables(self) -> dict[int, dict[str, int]]:
        tables = self._step_cache
        if tables is None:
            tables = {}
            for src, edges in self.transitions.items():
                jump: dict[str, int] = {}
                for label, dst in edges:
                    bits = label.ascii_bits
                    while bits:
                        low = bits & -bits
                        jump[chr(low.bit_length() - 1)] = dst
                        bits ^= low
                tables[src] = jump
            self._step_cache = tables
        return tables

    def step(self, state: int, char: str) -> int | None:
        if char < "\x80":
            tables = self._step_cache
            if tables is None:
                tables = self._step_tables()
            jump = tables.get(state)
            return jump.get(char) if jump is not None else None
        for label, dst in self.transitions.get(state, ()):
            if char in label:
                return dst
        return None

    def accepts_string(self, text: str) -> bool:
        state: int | None = self.start
        for char in text:
            state = self.step(state, char)
            if state is None:
                return False
        return state in self.accepts

    def run_string(self, state: int, text: str) -> int | None:
        """Run ``text`` from ``state``; None if it falls off the automaton."""
        current: int | None = state
        for char in text:
            current = self.step(current, char)
            if current is None:
                return None
        return current

    def is_empty(self) -> bool:
        return self.shortest_string() is None

    def shortest_string(self) -> str | None:
        """A shortest accepted string, or None if the language is empty."""
        if self.start in self.accepts:
            return ""
        seen = {self.start}
        queue: deque[tuple[int, str]] = deque([(self.start, "")])
        while queue:
            state, prefix = queue.popleft()
            for label, dst in self.transitions.get(state, ()):
                if dst in seen:
                    continue
                seen.add(dst)
                word = prefix + label.sample_char()
                if dst in self.accepts:
                    return word
                queue.append((dst, word))
        return None

    def live_states(self) -> set[int]:
        """States reachable from start that can reach an accept state."""
        reachable = {self.start}
        queue = deque([self.start])
        while queue:
            state = queue.popleft()
            for _, dst in self.transitions.get(state, ()):
                if dst not in reachable:
                    reachable.add(dst)
                    queue.append(dst)
        # backward reachability from accepts
        incoming: dict[int, set[int]] = {}
        for src, edges in self.transitions.items():
            for _, dst in edges:
                incoming.setdefault(dst, set()).add(src)
        productive = set(self.accepts)
        queue = deque(self.accepts)
        while queue:
            state = queue.popleft()
            for src in incoming.get(state, ()):
                if src not in productive:
                    productive.add(src)
                    queue.append(src)
        return reachable & productive

    # -- boolean operations ----------------------------------------------

    def complement(self) -> "DFA":
        """Complement; makes the automaton total by materializing the sink."""
        result = DFA()
        result.num_states = self.num_states
        result.start = self.start
        sink = result.new_state()
        for state in range(self.num_states):
            edges = self.transitions.get(state, [])
            covered = CharSet.union_of([label for label, _ in edges])
            for label, dst in edges:
                result.add_edge(state, label, dst)
            rest = covered.complement()
            if rest:
                result.add_edge(state, rest, sink)
        result.add_edge(sink, CharSet.any_char(), sink)
        result.accepts = {
            s for s in range(result.num_states) if s not in self.accepts
        }
        return result

    def intersect(self, other: "DFA") -> "DFA":
        result = DFA()
        state_ids: dict[tuple[int, int], int] = {}

        def get_id(pair: tuple[int, int]) -> int:
            if pair not in state_ids:
                state_ids[pair] = result.new_state()
            return state_ids[pair]

        start_pair = (self.start, other.start)
        result.start = get_id(start_pair)
        queue = deque([start_pair])
        seen = {start_pair}
        while queue:
            pair = queue.popleft()
            s1, s2 = pair
            src_id = state_ids[pair]
            if s1 in self.accepts and s2 in other.accepts:
                result.accepts.add(src_id)
            for label1, dst1 in self.transitions.get(s1, ()):
                for label2, dst2 in other.transitions.get(s2, ()):
                    both = label1.intersect(label2)
                    if not both:
                        continue
                    target = (dst1, dst2)
                    if target not in seen:
                        seen.add(target)
                        queue.append(target)
                    result.add_edge(src_id, both, get_id(target))
        result._merge_parallel_edges()
        return result

    def difference(self, other: "DFA") -> "DFA":
        return self.intersect(other.complement())

    def is_subset_of(self, other: "DFA") -> bool:
        return self.difference(other).is_empty()

    def minimize(self) -> "DFA":
        """Moore's partition-refinement minimization over refined classes."""
        live = self.live_states()
        if self.start not in live:
            empty = DFA()
            empty.start = empty.new_state()
            return empty
        states = sorted(live)
        labels = [
            label
            for s in states
            for label, dst in self.transitions.get(s, ())
            if dst in live
        ]
        classes = partition_charsets(labels) if labels else []

        # destination table computed once: dest_table[s][i] is where state
        # s goes on refinement class i (None = dead).  The old code
        # re-scanned the edge list for every (state, class) pair on every
        # refinement round.
        dest_table: dict[int, list[int | None]] = {}
        for s in states:
            edges = [
                (label, dst)
                for label, dst in self.transitions.get(s, ())
                if dst in live
            ]
            row: list[int | None] = []
            for cls in classes:
                found = None
                for label, dst in edges:
                    if cls.overlaps(label):
                        found = dst
                        break
                row.append(found)
            dest_table[s] = row

        partition: dict[int, object] = {s: (s in self.accepts) for s in states}
        while True:
            blocks: dict[object, int] = {}
            new_partition = {}
            for s in states:
                key = (
                    partition[s],
                    tuple(
                        None if dst is None else partition[dst]
                        for dst in dest_table[s]
                    ),
                )
                block = blocks.get(key)
                if block is None:
                    block = len(blocks)
                    blocks[key] = block
                new_partition[s] = block
            if len(blocks) == len(set(partition.values())):
                partition = new_partition
                break
            partition = new_partition

        result = DFA()
        result.num_states = len(set(partition.values()))
        result.start = partition[self.start]
        result.accepts = {partition[s] for s in self.accepts if s in live}
        added: set[tuple[int, CharSet, int]] = set()
        for s in states:
            for label, dst in self.transitions.get(s, ()):
                if dst not in live:
                    continue
                edge = (partition[s], label, partition[dst])
                if edge not in added:
                    added.add(edge)
                    result.add_edge(*edge)
        result._merge_parallel_edges()
        return result

    def to_nfa(self) -> NFA:
        nfa = NFA()
        nfa.num_states = self.num_states
        nfa.start = self.start
        nfa.accepts = set(self.accepts)
        for src, edges in self.transitions.items():
            for label, dst in edges:
                nfa.add_edge(src, label, dst)
        return nfa
