"""Earley parsing of sentential forms and grammar derivability.

The fallback policy check (paper §3.2.2) asks: is every string derivable
from a labeled nonterminal also derivable from *some one nonterminal* of
the reference SQL grammar, in the context where it appears?  Context-free
language inclusion is undecidable, so the paper approximates it with
*grammar derivability* (Definition 3.2, after Thiemann): a homomorphism
``F`` from the generated grammar's symbols to the reference grammar's
symbols such that every production image is derivable.

Two pieces live here:

* :class:`TokenGrammar` — a plain token-level grammar (symbols are
  strings; a symbol is a nonterminal iff it has productions).
* :func:`parse_sentential_form` — an Earley recognizer whose *input* may
  contain reference-grammar nonterminals; an input nonterminal scans
  like a token that matches itself.  This is exactly what "parsing a
  sentential form" means.
* :func:`derivability` — the Definition 3.2 fixed point: shrink
  candidate sets ``C(X) ⊆ V₂ ∪ Σ₂`` until stable, then verify one
  concrete mapping ``F`` (so a "derivable" answer is trustworthy — the
  soundness direction the paper's Theorem 3.4 needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # symbol-level grammars, lowered by char_token_grammar
    from .charset import CharSet
    from .grammar import Grammar, Nonterminal


class TokenGrammar:
    """A CFG over string symbols.  Nonterminal ⇔ has a productions entry."""

    def __init__(self, start: str) -> None:
        self.start = start
        self.productions: dict[str, list[tuple[str, ...]]] = {}
        #: compiled integer-indexed tables (see :class:`_Compiled`),
        #: rebuilt lazily whenever the size stamp changes.
        self._compiled: "_Compiled | None" = None

    def add(self, lhs: str, rhs: Sequence[str]) -> None:
        rules = self.productions.setdefault(lhs, [])
        rhs_tuple = tuple(rhs)
        if rhs_tuple not in rules:
            rules.append(rhs_tuple)

    def is_nonterminal(self, symbol: str) -> bool:
        return symbol in self.productions

    def signature(self) -> tuple:
        """Structural identity: symbols, production order, start symbol.

        Two grammars with equal signatures behave identically under
        every algorithm in this module (the recognizer, the candidate
        fixpoint, and the verified-mapping search all walk productions
        in insertion order), so signatures key the derivability memo.
        """
        stamp = _grammar_stamp(self)
        cached = getattr(self, "_signature", None)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        sig = (
            self.start,
            tuple(
                (lhs, tuple(rules)) for lhs, rules in self.productions.items()
            ),
        )
        self._signature = (stamp, sig)
        return sig

    def nonterminals(self) -> list[str]:
        return list(self.productions)

    def terminals(self) -> set[str]:
        found = set()
        for rules in self.productions.values():
            for rhs in rules:
                for symbol in rhs:
                    if symbol not in self.productions:
                        found.add(symbol)
        return found

    def nullable(self) -> set[str]:
        """Nonterminals that derive the empty sequence."""
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for lhs, rules in self.productions.items():
                if lhs in nullable:
                    continue
                for rhs in rules:
                    if all(s in nullable for s in rhs):
                        nullable.add(lhs)
                        changed = True
                        break
        return nullable


def enumerate_strings(
    grammar: TokenGrammar,
    start: str,
    max_strings: int = 64,
    max_len: int = 64,
) -> list[tuple[str, ...]] | None:
    """All token strings of ``L(start)`` if finite and small, else None.

    Production-less nonterminals (holes) are treated as opaque tokens and
    appear in the output — so the result is really the set of *sentential
    forms* over terminals and holes.
    """
    expandable = {nt for nt, rules in grammar.productions.items() if rules}
    # cycle check among expandable nonterminals
    visiting: set[str] = set()
    visited: set[str] = set()

    def cyclic(nt: str) -> bool:
        if nt in visited:
            return False
        if nt in visiting:
            return True
        visiting.add(nt)
        for rhs in grammar.productions.get(nt, ()):
            for symbol in rhs:
                if symbol in expandable and cyclic(symbol):
                    return True
        visiting.discard(nt)
        visited.add(nt)
        return False

    if start in expandable and cyclic(start):
        return None
    results: set[tuple[str, ...]] = set()
    forms: list[tuple[str, ...]] = [(start,)]
    steps = 0
    while forms:
        steps += 1
        if steps > 20_000:
            return None
        form = forms.pop()
        idx = next((i for i, s in enumerate(form) if s in expandable), None)
        if idx is None:
            if len(form) > max_len:
                return None
            results.add(form)
            if len(results) > max_strings:
                return None
            continue
        for rhs in grammar.productions[form[idx]]:
            forms.append(form[:idx] + tuple(rhs) + form[idx + 1 :])
    return sorted(results)


class _Compiled:
    """Integer-indexed tables for a :class:`TokenGrammar` snapshot.

    Symbols are renamed to dense ints, productions flattened into parallel
    ``rule_lhs``/``rule_rhs`` arrays, nullable nonterminals precomputed
    once (the old recognizer recomputed the nullable fixpoint on *every*
    parse).  The stamp (|V|, |R|) detects grammar growth — TokenGrammar
    only ever gains symbols/rules, so size equality implies freshness.
    """

    __slots__ = (
        "stamp", "ids", "rule_lhs", "rule_rhs", "rules_by_lhs", "nullable"
    )

    def __init__(self, grammar: TokenGrammar) -> None:
        productions = grammar.productions
        self.stamp = _grammar_stamp(grammar)
        ids: dict[str, int] = {}

        def intern(symbol: str) -> int:
            sid = ids.get(symbol)
            if sid is None:
                sid = len(ids)
                ids[symbol] = sid
            return sid

        for lhs in productions:
            intern(lhs)
        rule_lhs: list[int] = []
        rule_rhs: list[tuple[int, ...]] = []
        rules_by_lhs: dict[int, list[int]] = {}
        for lhs, rules in productions.items():
            lhs_id = ids[lhs]
            indices = rules_by_lhs.setdefault(lhs_id, [])
            for rhs in rules:
                indices.append(len(rule_lhs))
                rule_lhs.append(lhs_id)
                rule_rhs.append(tuple(intern(s) for s in rhs))
        self.ids = ids
        self.rule_lhs = rule_lhs
        self.rule_rhs = rule_rhs
        self.rules_by_lhs = rules_by_lhs
        # nullable fixpoint over rule ids
        nullable: set[int] = set()
        changed = True
        while changed:
            changed = False
            for ridx, rhs in enumerate(rule_rhs):
                lhs_id = rule_lhs[ridx]
                if lhs_id not in nullable and all(s in nullable for s in rhs):
                    nullable.add(lhs_id)
                    changed = True
        self.nullable = nullable


def _grammar_stamp(grammar: TokenGrammar) -> tuple[int, int]:
    return (
        len(grammar.productions),
        sum(len(rules) for rules in grammar.productions.values()),
    )


def _compile(grammar: TokenGrammar) -> _Compiled:
    compiled = grammar._compiled
    if compiled is None or compiled.stamp != _grammar_stamp(grammar):
        compiled = _Compiled(grammar)
        grammar._compiled = compiled
    return compiled


def parse_sentential_form(
    grammar: TokenGrammar,
    start: str,
    form: Sequence[str],
    match_classes: Mapping[str, frozenset[str]] | None = None,
) -> bool:
    """Earley recognition of ``form`` from ``start``.

    ``form`` may mix terminals and nonterminals of ``grammar``; an input
    nonterminal matches a predicted occurrence of itself (so a form is
    accepted iff ``start ⇒* form``).  ``match_classes`` optionally lets
    an input symbol match a *set* of grammar symbols — used by the
    derivability fixed point, where a generated-grammar variable ranges
    over its current candidate set.

    The recognizer works over the compiled integer tables: items are
    ``(rule, dot, origin)`` int triples, completion uses per-position
    waiting lists instead of chart rescans (same-position completions
    are exactly the nullable case, which the Aycock–Horspool prediction
    fix already covers), and the per-position match sets double as a
    sound pruning pass — if some input position matches no grammar
    symbol at all, no parse can cross it and we reject immediately.
    """
    comp = _compile(grammar)
    ids = comp.ids
    rule_lhs = comp.rule_lhs
    rule_rhs = list(comp.rule_rhs)
    rules_by_lhs = comp.rules_by_lhs
    nullable = comp.nullable
    n = len(form)

    # the augmented start symbol/rule live outside the compiled tables
    start_id = ids.get(start, -1)  # -1: ad-hoc symbol, matchable by scan only
    aug_rule = len(rule_rhs)
    rule_rhs.append((start_id,))

    # per-position sets of symbol ids the input token can scan as
    match_ids: list[set[int]] = []
    for actual in form:
        matched: set[int] = set()
        aid = ids.get(actual)
        if aid is not None:
            matched.add(aid)
        if start_id == -1 and actual == start:
            matched.add(-1)
        if match_classes:
            klass = match_classes.get(actual)
            if klass is not None:
                for expected in klass:
                    eid = ids.get(expected)
                    if eid is not None:
                        matched.add(eid)
                    if start_id == -1 and expected == start:
                        matched.add(-1)
        if not matched:
            # chart pruning: nothing can ever scan this token, and every
            # item in chart[p+1..n] descends from a scan at p
            return False
        match_ids.append(matched)

    chart: list[set[tuple[int, int, int]]] = [set() for _ in range(n + 1)]
    waiting: list[dict[int, list[tuple[int, int, int]]]] = [
        {} for _ in range(n + 1)
    ]
    chart[0].add((aug_rule, 0, 0))

    for position in range(n + 1):
        items = chart[position]
        agenda = list(items)
        wait_here = waiting[position]
        scan_ok = match_ids[position] if position < n else None
        next_chart = chart[position + 1] if position < n else None
        while agenda:
            item = agenda.pop()
            rule, dot, origin = item
            rhs = rule_rhs[rule]
            if dot == len(rhs):
                # complete: advance everyone waiting on lhs at origin.
                # waiting[origin] is final for origin < position; for
                # origin == position (lhs nullable) late waiters are
                # advanced by the prediction fix below instead.
                lhs = rule_lhs[rule] if rule != aug_rule else None
                if lhs is not None:
                    for parent in waiting[origin].get(lhs, ()):
                        advanced = (parent[0], parent[1] + 1, parent[2])
                        if advanced not in items:
                            items.add(advanced)
                            agenda.append(advanced)
                continue
            symbol = rhs[dot]
            wait_here.setdefault(symbol, []).append(item)
            indices = rules_by_lhs.get(symbol)
            if indices is not None:
                # predict
                for ridx in indices:
                    predicted = (ridx, 0, position)
                    if predicted not in items:
                        items.add(predicted)
                        agenda.append(predicted)
                # Aycock–Horspool nullable fix: a nullable prediction can
                # complete instantly, so advance over it right away.
                if symbol in nullable:
                    advanced = (rule, dot + 1, origin)
                    if advanced not in items:
                        items.add(advanced)
                        agenda.append(advanced)
            # scan (terminals AND nonterminals may be scanned from the form)
            if scan_ok is not None and symbol in scan_ok:
                next_chart.add((rule, dot + 1, origin))
    return (aug_rule, 1, 0) in chart[n]


@dataclass
class Derivability:
    """Result of the Definition 3.2 check."""

    derivable: bool
    mapping: dict[str, str] | None = None
    reason: str = ""


def candidate_fixpoint(
    generated: TokenGrammar,
    reference: TokenGrammar,
    allowed: Mapping[str, Iterable[str]] | None = None,
) -> dict[str, set[str]]:
    """The shrinking candidate sets ``C(X) ⊆ V₂ ∪ Σ₂`` of Definition 3.2.

    ``allowed`` pre-restricts chosen nonterminals (e.g. pin the root to
    the reference start symbol, or a context hole to one candidate).
    The result over-approximates the valid mappings: every valid ``F``
    satisfies ``F(X) ∈ C(X)``; membership alone does not guarantee a
    globally consistent ``F`` (use :func:`derivability` to verify one).
    """
    ref_terminals = reference.terminals()
    all_candidates = set(reference.nonterminals()) | ref_terminals
    candidates: dict[str, set[str]] = {
        nt: set(all_candidates) for nt in generated.productions
    }
    if allowed:
        for nt, allowed_set in allowed.items():
            candidates[nt] = set(allowed_set) & all_candidates

    # occurrences of "holes" (production-less nonterminals) for the
    # context-shrinking pass below
    holes = [nt for nt, rules in generated.productions.items() if not rules]
    occurrences: dict[str, list[tuple[str, tuple[str, ...]]]] = {h: [] for h in holes}
    for lhs, rules in generated.productions.items():
        for rhs in rules:
            for symbol in rhs:
                if symbol in occurrences:
                    occurrences[symbol].append((lhs, rhs))

    # Parse memo: across fixpoint iterations most (candidate, rhs)
    # queries recur with unchanged candidate sets for the variables in
    # rhs; key on exactly that slice of the match classes so repeats
    # are O(1) instead of a fresh Earley run.
    parse_memo: dict[tuple, bool] = {}

    def memo_parse(cand: str, rhs: tuple[str, ...], classes) -> bool:
        relevant = tuple(
            sorted((s, classes[s]) for s in set(rhs) if s in classes)
        )
        key = (cand, rhs, relevant)
        cached = parse_memo.get(key)
        if cached is None:
            cached = parse_sentential_form(reference, cand, rhs, classes)
            parse_memo[key] = cached
        return cached

    changed = True
    while changed:
        changed = False
        match_classes = {
            nt: frozenset(cands) for nt, cands in candidates.items()
        }
        for nt in generated.productions:
            if not generated.productions[nt]:
                continue  # handled by the hole pass
            survivors = set()
            for cand in candidates[nt]:
                ok = True
                for rhs in generated.productions[nt]:
                    if cand in ref_terminals:
                        if not (
                            len(rhs) == 1
                            and (
                                rhs[0] == cand
                                or (
                                    generated.is_nonterminal(rhs[0])
                                    and cand in candidates[rhs[0]]
                                )
                            )
                        ):
                            ok = False
                            break
                    elif not memo_parse(cand, rhs, match_classes):
                        ok = False
                        break
                if ok:
                    survivors.add(cand)
            if survivors != candidates[nt]:
                candidates[nt] = survivors
                changed = True
        # Hole pass: a hole has no productions of its own, so its
        # candidates shrink by *context* — candidate A survives only if
        # every production mentioning the hole still parses with the
        # hole pinned to A.
        for hole in holes:
            if not occurrences[hole]:
                continue
            survivors = set()
            for cand in candidates[hole]:
                pinned_classes = dict(match_classes)
                pinned_classes[hole] = frozenset({cand})
                ok = all(
                    any(
                        memo_parse(parent_cand, rhs, pinned_classes)
                        for parent_cand in candidates[lhs]
                        if parent_cand not in ref_terminals
                    )
                    for lhs, rhs in occurrences[hole]
                )
                if ok:
                    survivors.add(cand)
            if survivors != candidates[hole]:
                candidates[hole] = survivors
                changed = True
    return candidates


#: Results of :func:`derivability` keyed on the *content* of both
#: grammars (their structural signatures) plus every argument that can
#: influence the answer.  Phase-2 subgrammars recur heavily — the same
#: sanitized fragment reaches many hotspots, and every hotspot asks
#: about the same reference grammar — so content addressing turns the
#: Definition 3.2 fixpoint + search into a dictionary lookup on repeats.
_DERIVABILITY_MEMO: dict[tuple, Derivability] = {}
_DERIVABILITY_MEMO_CAP = 4096


def derivability(
    generated: TokenGrammar,
    reference: TokenGrammar,
    root: str,
    allowed_roots: Iterable[str] | None = None,
    pinned: Mapping[str, str] | None = None,
    search_budget: int = 2000,
) -> Derivability:
    """Is ``generated`` (rooted at ``root``) derivable from ``reference``?

    Definition 3.2: find ``F`` with ``F(X) ⇒*_ref F*(α)`` for every
    production ``X → α``.  Terminals map to themselves; every terminal of
    the generated grammar must therefore be a terminal of the reference
    grammar (otherwise: not derivable).

    The candidate sets start at all reference nonterminals (or
    ``allowed_roots`` for the root) and shrink: drop ``A`` from ``C(X)``
    if some production of ``X`` cannot be parsed from ``A`` with inner
    variables ranging over their current candidates.  After the fixed
    point, a concrete ``F`` is searched for and *verified* — only a
    verified mapping yields ``derivable=True``.
    """
    if allowed_roots is not None:
        allowed_roots = list(allowed_roots)
    memo_key = (
        generated.signature(),
        reference.signature(),
        root,
        tuple(sorted(allowed_roots)) if allowed_roots is not None else None,
        tuple(sorted(pinned.items())) if pinned else None,
        search_budget,
    )
    cached = _DERIVABILITY_MEMO.get(memo_key)
    if cached is None:
        cached = _derivability_uncached(
            generated, reference, root, allowed_roots, pinned, search_budget
        )
        if len(_DERIVABILITY_MEMO) >= _DERIVABILITY_MEMO_CAP:
            _DERIVABILITY_MEMO.clear()
        _DERIVABILITY_MEMO[memo_key] = cached
    # hand out a copy so callers can't poison the memo entry
    return Derivability(
        cached.derivable,
        dict(cached.mapping) if cached.mapping is not None else None,
        cached.reason,
    )


def _derivability_uncached(
    generated: TokenGrammar,
    reference: TokenGrammar,
    root: str,
    allowed_roots: Iterable[str] | None,
    pinned: Mapping[str, str] | None,
    search_budget: int,
) -> Derivability:
    ref_terminals = reference.terminals()
    for rules in generated.productions.values():
        for rhs in rules:
            for symbol in rhs:
                if not generated.is_nonterminal(symbol) and symbol not in ref_terminals:
                    return Derivability(
                        False, reason=f"terminal {symbol!r} unknown to reference grammar"
                    )

    allowed: dict[str, Iterable[str]] = {}
    if allowed_roots is not None:
        allowed[root] = list(allowed_roots)
    if pinned:
        for nt, symbol in pinned.items():
            allowed[nt] = [symbol]
    candidates = candidate_fixpoint(generated, reference, allowed)
    if not candidates[root]:
        return Derivability(False, reason="no candidate for root survives")
    if any(not cands for cands in candidates.values()):
        empty = [nt for nt, cands in candidates.items() if not cands]
        return Derivability(
            False, reason=f"no candidates survive for {empty[:3]}"
        )

    # ---- verification: pick and check one concrete mapping ----------------
    order = sorted(generated.productions, key=lambda nt: len(candidates[nt]))
    budget = [search_budget]

    def verify(mapping: dict[str, str]) -> bool:
        for nt, rules in generated.productions.items():
            target = mapping[nt]
            for rhs in rules:
                image = tuple(
                    mapping[s] if generated.is_nonterminal(s) else s for s in rhs
                )
                if target in ref_terminals:
                    if image != (target,):
                        return False
                elif not parse_sentential_form(reference, target, image):
                    return False
        return True

    def search(index: int, mapping: dict[str, str]) -> dict[str, str] | None:
        if budget[0] <= 0:
            return None
        if index == len(order):
            budget[0] -= 1
            return dict(mapping) if verify(mapping) else None
        nt = order[index]
        for cand in sorted(candidates[nt]):
            mapping[nt] = cand
            found = search(index + 1, mapping)
            if found is not None:
                return found
            del mapping[nt]
        return None

    mapping = search(0, {})
    if mapping is None:
        return Derivability(False, reason="no consistent mapping verified")
    return Derivability(True, mapping=mapping)


# ---------------------------------------------------------------------------
# character-level membership in a symbol grammar
# ---------------------------------------------------------------------------
#
# The differential oracle (:mod:`repro.oracle`) must decide, for every
# concrete query a fuzzed page produces, whether the string is a member
# of the hotspot's analysis grammar.  :meth:`Grammar.generates` answers
# that with a per-query CYK over a binarized copy — fine for tests,
# too slow inside a fuzz loop that asks thousands of membership queries
# against the *same* grammar.  Here we lower the symbol grammar once to
# a character-level :class:`TokenGrammar` (literals split into
# single-character tokens, each distinct ``CharSet`` interned as one
# placeholder token) and answer each query with the Earley recognizer
# above, using ``match_classes`` to let an input character scan any
# charset token that contains it.


def char_token_grammar(
    grammar: "Grammar", root: "Nonterminal"
) -> tuple[TokenGrammar, dict[str, "CharSet"]]:
    """Lower ``grammar`` (rooted at ``root``) to a char-level token
    grammar.  Returns the token grammar plus the interning table mapping
    placeholder tokens back to their charsets.

    Nonterminals are renamed to canonical indices, so equal-fingerprint
    grammars lower to identical token grammars.  Production-less
    nonterminals (pure labels) become nonterminals with an empty rule
    list — the empty language, which is the correct reading: nothing is
    derivable from them.
    """
    from .charset import CharSet
    from .grammar import Lit

    order = grammar.canonical_order(root)
    names = {nt: f"N{i}" for i, nt in enumerate(order)}
    lowered = TokenGrammar(names[root])
    charset_tokens: dict[str, CharSet] = {}
    interned: dict[CharSet, str] = {}
    for nt in order:
        name = names[nt]
        lowered.productions.setdefault(name, [])
        for rhs in grammar.productions.get(nt, ()):
            tokens: list[str] = []
            for symbol in rhs:
                if isinstance(symbol, Lit):
                    tokens.extend(symbol.text)
                elif isinstance(symbol, CharSet):
                    token = interned.get(symbol)
                    if token is None:
                        token = f"⟨cs{len(interned)}⟩"
                        interned[symbol] = token
                        charset_tokens[token] = symbol
                    tokens.append(token)
                else:
                    tokens.append(names[symbol])
            lowered.add(name, tokens)
    return lowered, charset_tokens


def char_membership(
    prepared: tuple[TokenGrammar, dict[str, "CharSet"]], text: str
) -> bool:
    """Is ``text`` in the language of a grammar lowered by
    :func:`char_token_grammar`?  ``prepared`` is that function's result —
    build it once per hotspot and reuse it across queries."""
    lowered, charset_tokens = prepared
    match_classes = {
        char: frozenset(
            {char}
            | {token for token, charset in charset_tokens.items() if char in charset}
        )
        for char in set(text)
    }
    return parse_sentential_form(lowered, lowered.start, list(text), match_classes)
