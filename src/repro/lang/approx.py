"""Regular approximation of context-free grammars (Mohri & Nederhof).

The paper's reference [21]: Christensen et al. used this transformation
to approximate CFGs by finite automata; Minamide's analysis (and ours)
mostly avoids it by keeping CFGs, but a *structure-preserving* regular
over-approximation is still the right tool in two places:

* widening cyclic operands with more precision than the charset-closure
  bound (``GrammarBuilder.widen(strategy="mohri-nederhof")``), and
* converting loop-built query grammars to automata for checks that need
  a regular language.

The transformation: for every strongly-connected component ``M`` of the
nonterminal reference graph that is not already right-linear *within
M*, introduce a primed copy ``A'`` per ``A ∈ M`` and replace each
production ``A → α₀B₁α₁B₂…Bₘαₘ`` (``Bᵢ ∈ M``; ``αⱼ`` free of ``M``) by

    A   → α₀ B₁
    Bᵢ' → αᵢ Bᵢ₊₁      (1 ≤ i < m)
    Bₘ' → αₘ A'

and ``A → α₀ A'`` when ``m = 0``, plus ``A' → ε``.  The result is
*strongly regular* (every SCC right-linear), its language a superset of
the original — and equal when the grammar was strongly regular already.
"""

from __future__ import annotations

from collections import defaultdict

from .charset import CharSet
from .fsa import NFA
from .grammar import Grammar, Lit, Nonterminal, Rhs, Symbol


def _sccs(grammar: Grammar) -> dict[Nonterminal, int]:
    """Tarjan SCC ids over the nonterminal reference graph (iterative)."""
    index: dict[Nonterminal, int] = {}
    lowlink: dict[Nonterminal, int] = {}
    on_stack: set[Nonterminal] = set()
    stack: list[Nonterminal] = []
    component: dict[Nonterminal, int] = {}
    counter = [0]
    comp_counter = [0]

    successors = {
        nt: [s for rhs in rules for s in rhs if isinstance(s, Nonterminal)]
        for nt, rules in grammar.productions.items()
    }

    for root in grammar.productions:
        if root in index:
            continue
        work: list[tuple[Nonterminal, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recursed = False
            children = successors.get(node, [])
            for i in range(child_index, len(children)):
                child = children[i]
                if child not in grammar.productions:
                    continue
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    recursed = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if recursed:
                continue
            if lowlink[node] == index[node]:
                comp_id = comp_counter[0]
                comp_counter[0] += 1
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component[member] = comp_id
                    if member is node:
                        break
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component


def _component_is_right_linear(
    grammar: Grammar, members: set[Nonterminal]
) -> bool:
    """Right-linear within the SCC: at most one member reference per rhs,
    and only in the final position."""
    for nt in members:
        for rhs in grammar.productions.get(nt, ()):
            positions = [
                i for i, s in enumerate(rhs) if isinstance(s, Nonterminal) and s in members
            ]
            if len(positions) > 1:
                return False
            if positions and positions[0] != len(rhs) - 1:
                return False
    return True


def _component_is_trivial(
    grammar: Grammar, members: set[Nonterminal]
) -> bool:
    """A singleton SCC with no self reference (not recursive at all)."""
    if len(members) != 1:
        return False
    (nt,) = members
    return not any(
        s is nt for rhs in grammar.productions.get(nt, ()) for s in rhs
    )


def mohri_nederhof(grammar: Grammar, root: Nonterminal) -> tuple[Grammar, Nonterminal]:
    """The Mohri–Nederhof strongly-regular over-approximation.

    Returns a new grammar (reusing the original nonterminal objects for
    unchanged parts) and the same root.  Taint labels carry over; primed
    nonterminals inherit the labels of their originals.
    """
    scope = grammar.subgrammar(root)
    component = _sccs(scope)
    by_component: dict[int, set[Nonterminal]] = defaultdict(set)
    for nt, comp_id in component.items():
        by_component[comp_id].add(nt)

    needs_transform = {
        comp_id: members
        for comp_id, members in by_component.items()
        if not _component_is_trivial(scope, members)
        and not _component_is_right_linear(scope, members)
    }

    result = Grammar(root)
    primes: dict[Nonterminal, Nonterminal] = {}

    def prime(nt: Nonterminal) -> Nonterminal:
        if nt not in primes:
            primes[nt] = result.fresh(f"{nt.name}'")
            for label in scope.labels.get(nt, ()):
                result.add_label(primes[nt], label)
        return primes[nt]

    for nt, rules in scope.productions.items():
        comp_id = component.get(nt)
        members = needs_transform.get(comp_id)
        if members is None:
            for rhs in rules:
                result.add(nt, rhs)
            result.productions.setdefault(nt, [])
            continue
        prime(nt)
        for rhs in rules:
            # split the rhs into αᵢ pieces around member references Bᵢ:
            # rhs = α₀ B₁ α₁ B₂ … Bₘ αₘ
            pieces: list[list[Symbol]] = [[]]
            member_refs: list[Nonterminal] = []
            for symbol in rhs:
                if isinstance(symbol, Nonterminal) and symbol in members:
                    member_refs.append(symbol)
                    pieces.append([])
                else:
                    pieces[-1].append(symbol)
            if not member_refs:
                # A → α₀ A'
                result.add(nt, tuple(pieces[0]) + (prime(nt),))
                continue
            # A → α₀ B₁
            result.add(nt, tuple(pieces[0]) + (member_refs[0],))
            # Bᵢ' → αᵢ Bᵢ₊₁
            for i, member in enumerate(member_refs[:-1]):
                result.add(
                    prime(member), tuple(pieces[i + 1]) + (member_refs[i + 1],)
                )
            # Bₘ' → αₘ A'
            result.add(
                prime(member_refs[-1]), tuple(pieces[-1]) + (prime(nt),)
            )
        result.productions.setdefault(nt, [])
    for members in needs_transform.values():
        for nt in members:
            result.add(prime(nt), ())

    result.copy_labels_from(scope, scope.productions)
    return result, root


def is_strongly_regular(grammar: Grammar, root: Nonterminal) -> bool:
    scope = grammar.subgrammar(root)
    component = _sccs(scope)
    by_component: dict[int, set[Nonterminal]] = defaultdict(set)
    for nt, comp_id in component.items():
        by_component[comp_id].add(nt)
    return all(
        _component_is_trivial(scope, members)
        or _component_is_right_linear(scope, members)
        for members in by_component.values()
    )


def strongly_regular_to_nfa(grammar: Grammar, root: Nonterminal) -> NFA:
    """Compile a strongly regular grammar to an NFA (Nederhof's
    construction): each recursive SCC becomes one sub-automaton with a
    state per member; everything below recurses (the reference DAG of
    SCCs is acyclic, so this terminates)."""
    scope = grammar.subgrammar(root)
    component = _sccs(scope)
    by_component: dict[int, set[Nonterminal]] = defaultdict(set)
    for nt, comp_id in component.items():
        by_component[comp_id].add(nt)

    nfa = NFA()
    memo: dict[Nonterminal, tuple[int, int]] = {}

    def splice_symbol(symbol: Symbol, src: int) -> int:
        """Attach the automaton of one symbol after state ``src``."""
        if isinstance(symbol, Lit):
            current = src
            for char in symbol.text:
                nxt = nfa.new_state()
                nfa.add_edge(current, CharSet.of(char), nxt)
                current = nxt
            return current
        if isinstance(symbol, CharSet):
            nxt = nfa.new_state()
            nfa.add_edge(src, symbol, nxt)
            return nxt
        entry, exit_state = build_nt(symbol)
        nfa.add_epsilon(src, entry)
        return exit_state

    def splice_sequence(symbols: Rhs, src: int) -> int:
        current = src
        for symbol in symbols:
            current = splice_symbol(symbol, current)
        return current

    def build_nt(nt: Nonterminal) -> tuple[int, int]:
        if nt in memo:
            return memo[nt]
        members = by_component[component[nt]]
        if _component_is_trivial(scope, members):
            entry = nfa.new_state()
            exit_state = nfa.new_state()
            memo[nt] = (entry, exit_state)
            for rhs in scope.productions.get(nt, ()):
                end = splice_sequence(rhs, entry)
                nfa.add_epsilon(end, exit_state)
            return memo[nt]
        if not _component_is_right_linear(scope, members):
            raise ValueError(
                f"grammar is not strongly regular at {nt.name}; apply "
                "mohri_nederhof() first"
            )
        # one shared sub-automaton for the whole SCC
        member_state = {member: nfa.new_state() for member in members}
        exit_state = nfa.new_state()
        for member in members:
            memo[member] = (member_state[member], exit_state)
        for member in members:
            for rhs in scope.productions.get(member, ()):
                if rhs and isinstance(rhs[-1], Nonterminal) and rhs[-1] in members:
                    end = splice_sequence(rhs[:-1], member_state[member])
                    nfa.add_epsilon(end, member_state[rhs[-1]])
                else:
                    end = splice_sequence(rhs, member_state[member])
                    nfa.add_epsilon(end, exit_state)
        return memo[nt]

    entry, exit_state = build_nt(root)
    nfa.start = entry
    nfa.accepts = {exit_state}
    return nfa


def regular_approximation(grammar: Grammar, root: Nonterminal) -> NFA:
    """CFG → NFA over-approximation: Mohri–Nederhof, then compile."""
    if is_strongly_regular(grammar, root):
        return strongly_regular_to_nfa(grammar, root)
    approximated, new_root = mohri_nederhof(grammar, root)
    return strongly_regular_to_nfa(approximated, new_root)
