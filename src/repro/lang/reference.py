"""Retained reference implementations of the optimized kernels.

The hot kernels — :mod:`repro.lang.charset`, the Earley recognizer in
:mod:`repro.lang.earley`, the FST-image construction in
:mod:`repro.lang.image` — were rewritten for speed (hash-consed bitset
charsets, integer-indexed charts, lazy triple materialization).  This
module keeps the original, obviously-correct formulations *verbatim in
spirit*: interval-walk set algebra, the textbook item-set recognizer,
and the eager full-product image.  They are deliberately slow and
deliberately simple.

``tests/lang/test_kernel_equivalence.py`` drives randomized inputs
through both implementations and asserts extensional equality — the
optimized kernels must agree with these on every query.  Nothing in the
analysis imports this module; it exists only as the executable
specification the property tests check against.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .charset import MAX_CODEPOINT, CharSet

# ---------------------------------------------------------------------------
# charset algebra on raw interval tuples
# ---------------------------------------------------------------------------

Intervals = tuple[tuple[int, int], ...]


def ref_normalize(intervals: Iterable[tuple[int, int]]) -> Intervals:
    """Sort, clamp, drop empties, and merge touching/overlapping intervals."""
    clamped = []
    for lo, hi in intervals:
        lo = max(lo, 0)
        hi = min(hi, MAX_CODEPOINT)
        if lo <= hi:
            clamped.append((lo, hi))
    clamped.sort()
    merged: list[tuple[int, int]] = []
    for lo, hi in clamped:
        if merged and lo <= merged[-1][1] + 1:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


def ref_contains(intervals: Intervals, cp: int) -> bool:
    return any(lo <= cp <= hi for lo, hi in intervals)


def ref_union(a: Intervals, b: Intervals) -> Intervals:
    return ref_normalize(a + b)


def ref_intersect(a: Intervals, b: Intervals) -> Intervals:
    result = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo <= hi:
            result.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return ref_normalize(result)


def ref_complement(a: Intervals) -> Intervals:
    result = []
    prev_end = -1
    for lo, hi in a:
        if lo > prev_end + 1:
            result.append((prev_end + 1, lo - 1))
        prev_end = hi
    if prev_end < MAX_CODEPOINT:
        result.append((prev_end + 1, MAX_CODEPOINT))
    return tuple(result)


def ref_difference(a: Intervals, b: Intervals) -> Intervals:
    return ref_intersect(a, ref_complement(b))


def ref_overlaps(a: Intervals, b: Intervals) -> bool:
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i][0] > b[j][1]:
            j += 1
        elif b[j][0] > a[i][1]:
            i += 1
        else:
            return True
    return False


def ref_is_subset(a: Intervals, b: Intervals) -> bool:
    return not ref_difference(a, b)


def ref_partition(sets: Sequence[Intervals]) -> list[Intervals]:
    """Alphabet refinement into disjoint classes covering the union."""
    boundaries: set[int] = set()
    for s in sets:
        for lo, hi in s:
            boundaries.add(lo)
            boundaries.add(hi + 1)
    cuts = sorted(boundaries)
    classes = []
    for lo, next_lo in zip(cuts, cuts[1:]):
        piece = ((lo, next_lo - 1),)
        if any(ref_overlaps(piece, s) for s in sets):
            classes.append(piece)
    return classes


# ---------------------------------------------------------------------------
# the original Earley recognizer over string symbols
# ---------------------------------------------------------------------------


class _RefItem(tuple):
    """(lhs, rhs, dot, origin) — plain tuple for hashing."""

    __slots__ = ()

    @property
    def lhs(self):
        return self[0]

    @property
    def rhs(self):
        return self[1]

    @property
    def dot(self):
        return self[2]

    @property
    def origin(self):
        return self[3]

    def next_symbol(self):
        return self[1][self[2]] if self[2] < len(self[1]) else None

    def advanced(self):
        return _RefItem((self[0], self[1], self[2] + 1, self[3]))


def ref_nullable(productions: Mapping[str, list[tuple[str, ...]]]) -> set[str]:
    nullable: set[str] = set()
    changed = True
    while changed:
        changed = False
        for lhs, rules in productions.items():
            if lhs in nullable:
                continue
            for rhs in rules:
                if all(s in nullable for s in rhs):
                    nullable.add(lhs)
                    changed = True
                    break
    return nullable


def ref_parse_sentential_form(
    grammar,
    start: str,
    form: Sequence[str],
    match_classes: Mapping[str, frozenset[str]] | None = None,
) -> bool:
    """The original (pre-optimization) Earley recognition of ``form``.

    ``grammar`` is a :class:`repro.lang.earley.TokenGrammar` (only its
    ``productions`` mapping is consulted).  Semantics are identical to
    :func:`repro.lang.earley.parse_sentential_form`: input nonterminals
    scan like tokens matching themselves, ``match_classes`` lets an
    input symbol match a set of grammar symbols, and the
    Aycock–Horspool nullable fix keeps empty derivations exact.
    """
    productions = grammar.productions
    augmented = "__start__"
    while augmented in productions:
        augmented += "_"
    nullable = ref_nullable(productions)
    chart: list[set[_RefItem]] = [set() for _ in range(len(form) + 1)]
    chart[0].add(_RefItem((augmented, (start,), 0, 0)))

    def matches(expected: str, actual: str) -> bool:
        if expected == actual:
            return True
        if match_classes and actual in match_classes:
            return expected in match_classes[actual]
        return False

    for position in range(len(form) + 1):
        worklist = list(chart[position])
        seen = set(worklist)
        while worklist:
            item = worklist.pop()
            symbol = item.next_symbol()
            if symbol is None:
                for parent in list(chart[item.origin]):
                    if parent.next_symbol() == item.lhs:
                        advanced = parent.advanced()
                        if advanced not in seen and advanced.origin <= position:
                            if advanced not in chart[position]:
                                chart[position].add(advanced)
                                seen.add(advanced)
                                worklist.append(advanced)
                continue
            if symbol in productions:
                for rhs in productions[symbol]:
                    predicted = _RefItem((symbol, rhs, 0, position))
                    if predicted not in chart[position]:
                        chart[position].add(predicted)
                        seen.add(predicted)
                        worklist.append(predicted)
                if symbol in nullable:
                    advanced = item.advanced()
                    if advanced not in chart[position]:
                        chart[position].add(advanced)
                        seen.add(advanced)
                        worklist.append(advanced)
            if position < len(form) and matches(symbol, form[position]):
                advanced = item.advanced()
                if advanced not in chart[position + 1]:
                    chart[position + 1].add(advanced)
    return any(
        item.lhs == augmented and item.dot == 1 for item in chart[len(form)]
    )


# ---------------------------------------------------------------------------
# the original eager FST-image construction
# ---------------------------------------------------------------------------


def ref_fst_image(grammar, root, fst):
    """The original (pre-optimization) image construction: eager pair
    fixpoint over every nonterminal, full triple materialization, then a
    trim.  Returns ``(result, start)``.

    Used by the equivalence tests to validate the lazy implementation:
    the trimmed results must have equal canonical fingerprints (the
    strongest equality the analysis itself relies on — same language,
    same labels, same deterministic downstream behaviour).
    """
    from collections import defaultdict

    from .fst import map_marker_charset, render_output
    from .grammar import Grammar, Lit, Rhs, Symbol, is_terminal
    from .grammar import Nonterminal as NT

    normalized = grammar.normalized(root)
    states = list(range(fst.num_states))

    def lit_runs(text: str, start: int) -> dict[int, set[str]]:
        frontier: dict[int, set[str]] = {start: {""}}
        for char in text:
            next_frontier: dict[int, set[str]] = defaultdict(set)
            for state, outputs in frontier.items():
                for transition in fst.transitions.get(state, ()):
                    if char not in transition.label:
                        continue
                    emitted = render_output(transition.output, char)
                    for out in outputs:
                        next_frontier[transition.dst].add(out + emitted)
            frontier = dict(next_frontier)
            if not frontier:
                break
        return frontier

    def charset_steps(charset, start: int):
        result: dict[int, list[tuple[Symbol, ...]]] = defaultdict(list)
        for transition in fst.transitions.get(start, ()):
            overlap = charset.intersect(transition.label)
            if not overlap:
                continue
            symbols: list[Symbol] = []
            for item in transition.output:
                mapped = map_marker_charset(item, overlap)
                if isinstance(mapped, str):
                    if mapped:
                        symbols.append(Lit(mapped))
                else:
                    symbols.append(mapped)
            result[transition.dst].append(tuple(symbols))
        return result

    pairs: dict[NT, set[tuple[int, int]]] = defaultdict(set)
    term_cache: dict[int, set[tuple[int, int]]] = {}

    def term_pairs(symbol) -> set[tuple[int, int]]:
        found = set()
        if isinstance(symbol, Lit):
            for p in states:
                for q in lit_runs(symbol.text, p):
                    found.add((p, q))
        else:
            for p in states:
                for q in charset_steps(symbol, p):
                    found.add((p, q))
        return found

    def sym_pairs(symbol) -> set[tuple[int, int]]:
        if isinstance(symbol, NT):
            return pairs[symbol]
        key = id(symbol)
        if key not in term_cache:
            term_cache[key] = term_pairs(symbol)
        return term_cache[key]

    rules = normalized.productions

    def eval_rhs(rhs: Rhs) -> set[tuple[int, int]]:
        if not rhs:
            return {(p, p) for p in states}
        if len(rhs) == 1:
            return set(sym_pairs(rhs[0]))
        left, right = sym_pairs(rhs[0]), sym_pairs(rhs[1])
        by_start: dict[int, list[int]] = defaultdict(list)
        for j, k in right:
            by_start[j].append(k)
        return {(i, k) for i, j in left for k in by_start.get(j, ())}

    changed = True
    while changed:
        changed = False
        for lhs, rhss in rules.items():
            for rhs in rhss:
                new_pairs = eval_rhs(rhs) - pairs[lhs]
                if new_pairs:
                    pairs[lhs].update(new_pairs)
                    changed = True

    result = Grammar()
    triple: dict[tuple[NT, int, int], NT] = {}
    term_triple: dict[tuple[int, int, int], NT] = {}

    def get_triple(nt, p: int, q: int):
        key = (nt, p, q)
        if key not in triple:
            fresh = result.fresh(f"{nt.name}/{p},{q}")
            triple[key] = fresh
            for label in normalized.labels.get(nt, ()):
                result.add_label(fresh, label)
        return triple[key]

    def term_symbol(symbol, p: int, q: int):
        key = (id(symbol), p, q)
        if key in term_triple:
            return term_triple[key]
        if isinstance(symbol, Lit):
            outputs = lit_runs(symbol.text, p).get(q)
            if not outputs:
                return None
            if len(outputs) == 1:
                return Lit(next(iter(outputs)))
            wrapper = result.fresh(f"lit/{p},{q}")
            for out in sorted(outputs):
                result.add(wrapper, (Lit(out),) if out else ())
            term_triple[key] = wrapper
            return wrapper
        sequences = charset_steps(symbol, p).get(q)
        if not sequences:
            return None
        if len(sequences) == 1 and len(sequences[0]) == 1:
            return sequences[0][0]
        wrapper = result.fresh(f"cls/{p},{q}")
        for seq in sequences:
            result.add(wrapper, seq)
        term_triple[key] = wrapper
        return wrapper

    def rhs_symbol(symbol, p: int, q: int):
        if is_terminal(symbol):
            return term_symbol(symbol, p, q)
        if (p, q) in pairs[symbol]:
            return get_triple(symbol, p, q)
        return None

    for lhs, rhss in rules.items():
        for p, q in pairs[lhs]:
            lhs_triple = get_triple(lhs, p, q)
            for rhs in rhss:
                if not rhs:
                    if p == q:
                        result.add(lhs_triple, ())
                    continue
                if len(rhs) == 1:
                    restricted = rhs_symbol(rhs[0], p, q)
                    if restricted is not None:
                        result.add(lhs_triple, (restricted,))
                    continue
                first, second = rhs
                for p2, mid in sym_pairs(first):
                    if p2 != p:
                        continue
                    left = rhs_symbol(first, p, mid)
                    right = rhs_symbol(second, mid, q)
                    if left is not None and right is not None:
                        result.add(lhs_triple, (left, right))

    start = result.fresh(f"{root.name}»")
    result.start = start
    for label in normalized.labels.get(root, ()):
        result.add_label(start, label)
    for q in states:
        if not fst.is_accepting(q):
            continue
        if (fst.start, q) not in pairs[root]:
            continue
        flush = fst.final_output.get(q, "")
        body: Rhs = (get_triple(root, fst.start, q),)
        if flush:
            body = body + (Lit(flush),)
        result.add(start, body)
    return result.trim(start), start


def ref_generates(grammar, root, text: str) -> bool:
    """Reference membership: the grammar's own CYK-style checker."""
    return grammar.generates(root, text)
