"""Interval-based character sets.

The whole formal-language substrate (automata, transducers, grammars)
labels transitions and terminals with *character sets* rather than single
characters.  A :class:`CharSet` is an immutable, normalized union of
closed codepoint intervals ``[lo, hi]``.  This keeps automata over large
alphabets (all of Unicode) small: a transition on ``[^']`` is one edge,
not 1,114,110 edges.

CharSets form a Boolean algebra: union, intersection, complement, and
difference are all closed and cheap (linear in the number of intervals).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

#: Highest codepoint we model.  sys.maxunicode is the honest bound; the
#: analyses never depend on the exact value, only on "everything else".
MAX_CODEPOINT = 0x10FFFF


def _normalize(intervals: Iterable[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    """Sort, clamp, drop empties, and merge touching/overlapping intervals."""
    clamped = []
    for lo, hi in intervals:
        lo = max(lo, 0)
        hi = min(hi, MAX_CODEPOINT)
        if lo <= hi:
            clamped.append((lo, hi))
    clamped.sort()
    merged: list[tuple[int, int]] = []
    for lo, hi in clamped:
        if merged and lo <= merged[-1][1] + 1:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


class CharSet:
    """An immutable set of Unicode codepoints stored as sorted intervals."""

    __slots__ = ("intervals", "_hash")

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()) -> None:
        self.intervals: tuple[tuple[int, int], ...] = _normalize(intervals)
        self._hash: int | None = None

    # -- constructors -------------------------------------------------

    @staticmethod
    def empty() -> "CharSet":
        return _EMPTY

    @staticmethod
    def any_char() -> "CharSet":
        """The full alphabet Sigma (one arbitrary character)."""
        return _ANY

    @staticmethod
    def of(chars: str) -> "CharSet":
        """The set containing exactly the characters of ``chars``."""
        return CharSet((ord(c), ord(c)) for c in chars)

    @staticmethod
    def range(lo: str, hi: str) -> "CharSet":
        return CharSet([(ord(lo), ord(hi))])

    @staticmethod
    def union_of(sets: Iterable["CharSet"]) -> "CharSet":
        intervals: list[tuple[int, int]] = []
        for s in sets:
            intervals.extend(s.intervals)
        return CharSet(intervals)

    # -- queries -------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def __contains__(self, char: str | int) -> bool:
        cp = char if isinstance(char, int) else ord(char)
        lo_idx, hi_idx = 0, len(self.intervals)
        while lo_idx < hi_idx:
            mid = (lo_idx + hi_idx) // 2
            lo, hi = self.intervals[mid]
            if cp < lo:
                hi_idx = mid
            elif cp > hi:
                lo_idx = mid + 1
            else:
                return True
        return False

    def size(self) -> int:
        """Number of codepoints in the set."""
        return sum(hi - lo + 1 for lo, hi in self.intervals)

    def is_singleton(self) -> bool:
        return len(self.intervals) == 1 and self.intervals[0][0] == self.intervals[0][1]

    def min_char(self) -> str:
        """An arbitrary (the smallest) member; useful for witness strings."""
        if not self.intervals:
            raise ValueError("empty CharSet has no member")
        return chr(self.intervals[0][0])

    def sample_char(self) -> str:
        """A *readable* member if one exists (prefers printable ASCII)."""
        for lo, hi in self.intervals:
            start = max(lo, 0x20)
            if start <= min(hi, 0x7E):
                return chr(start)
        return self.min_char()

    def chars(self, limit: int = 64) -> Iterator[str]:
        """Iterate members (up to ``limit``), smallest first."""
        count = 0
        for lo, hi in self.intervals:
            for cp in range(lo, hi + 1):
                if count >= limit:
                    return
                yield chr(cp)
                count += 1

    # -- algebra -------------------------------------------------------

    def union(self, other: "CharSet") -> "CharSet":
        return CharSet(self.intervals + other.intervals)

    def intersect(self, other: "CharSet") -> "CharSet":
        result = []
        a, b = self.intervals, other.intervals
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                result.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return CharSet(result)

    def complement(self) -> "CharSet":
        result = []
        prev_end = -1
        for lo, hi in self.intervals:
            if lo > prev_end + 1:
                result.append((prev_end + 1, lo - 1))
            prev_end = hi
        if prev_end < MAX_CODEPOINT:
            result.append((prev_end + 1, MAX_CODEPOINT))
        return CharSet(result)

    def difference(self, other: "CharSet") -> "CharSet":
        return self.intersect(other.complement())

    def overlaps(self, other: "CharSet") -> bool:
        a, b = self.intervals, other.intervals
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i][0] > b[j][1]:
                j += 1
            elif b[j][0] > a[i][1]:
                i += 1
            else:
                return True
        return False

    def is_subset_of(self, other: "CharSet") -> bool:
        return not self.difference(other)

    # -- dunder --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharSet) and self.intervals == other.intervals

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self.intervals)
        return self._hash

    def __repr__(self) -> str:
        if not self.intervals:
            return "CharSet(∅)"
        if self == _ANY:
            return "CharSet(Σ)"
        parts = []
        for lo, hi in self.intervals[:8]:
            if lo == hi:
                parts.append(_show(lo))
            else:
                parts.append(f"{_show(lo)}-{_show(hi)}")
        if len(self.intervals) > 8:
            parts.append("…")
        return f"CharSet[{','.join(parts)}]"


def _show(cp: int) -> str:
    if 0x21 <= cp <= 0x7E:
        return chr(cp)
    return f"\\u{cp:04x}"


def partition_charsets(sets: Sequence[CharSet]) -> list[CharSet]:
    """Refine ``sets`` into disjoint, nonempty classes covering their union.

    Every input set is a union of some of the returned classes.  This is
    the standard alphabet-refinement step used before automaton
    determinization and product constructions.
    """
    boundaries: set[int] = set()
    for s in sets:
        for lo, hi in s.intervals:
            boundaries.add(lo)
            boundaries.add(hi + 1)
    cuts = sorted(boundaries)
    classes = []
    for lo, next_lo in zip(cuts, cuts[1:]):
        piece = CharSet([(lo, next_lo - 1)])
        if any(piece.overlaps(s) for s in sets):
            classes.append(piece)
    return classes


_EMPTY = CharSet()
_ANY = CharSet([(0, MAX_CODEPOINT)])

#: Convenient named classes used throughout the PHP/SQL layers.
DIGITS = CharSet.range("0", "9")
LOWER = CharSet.range("a", "z")
UPPER = CharSet.range("A", "Z")
ALPHA = LOWER.union(UPPER)
ALNUM = ALPHA.union(DIGITS)
WORD = ALNUM.union(CharSet.of("_"))
SPACE = CharSet.of(" \t\r\n\f\v")
