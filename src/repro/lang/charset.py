"""Interval-based character sets.

The whole formal-language substrate (automata, transducers, grammars)
labels transitions and terminals with *character sets* rather than single
characters.  A :class:`CharSet` is an immutable, normalized union of
closed codepoint intervals ``[lo, hi]``.  This keeps automata over large
alphabets (all of Unicode) small: a transition on ``[^']`` is one edge,
not 1,114,110 edges.

CharSets form a Boolean algebra: union, intersection, complement, and
difference are all closed and cheap (linear in the number of intervals).

Representation notes.  CharSets are *hash-consed*: constructing the same
set of codepoints twice yields the very same object, so equality is
(almost always) a pointer comparison and per-pair operation memos stay
valid for the life of the process.  Each set additionally carries a
128-bit mask of its ASCII members, giving O(1) membership and overlap
tests on the alphabet that dominates every analysis (PHP source, SQL,
HTML, shell).  The Boolean algebra is memoized on operand identity; the
memo tables are bounded so adversarial inputs (the fuzzer) cannot grow
them without limit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

#: Highest codepoint we model.  sys.maxunicode is the honest bound; the
#: analyses never depend on the exact value, only on "everything else".
MAX_CODEPOINT = 0x10FFFF

_ASCII_LIMIT = 128

#: Bound on the per-operation memo tables; cleared wholesale on overflow.
_MEMO_CAP = 1 << 17


def _normalize(intervals: Iterable[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    """Sort, clamp, drop empties, and merge touching/overlapping intervals."""
    clamped = []
    for lo, hi in intervals:
        lo = max(lo, 0)
        hi = min(hi, MAX_CODEPOINT)
        if lo <= hi:
            clamped.append((lo, hi))
    clamped.sort()
    merged: list[tuple[int, int]] = []
    for lo, hi in clamped:
        if merged and lo <= merged[-1][1] + 1:
            prev_lo, prev_hi = merged[-1]
            merged[-1] = (prev_lo, max(prev_hi, hi))
        else:
            merged.append((lo, hi))
    return tuple(merged)


def _ascii_mask(intervals: tuple[tuple[int, int], ...]) -> int:
    bits = 0
    for lo, hi in intervals:
        if lo >= _ASCII_LIMIT:
            break
        top = min(hi, _ASCII_LIMIT - 1)
        bits |= ((1 << (top - lo + 1)) - 1) << lo
    return bits


class CharSet:
    """An immutable, hash-consed set of codepoints stored as intervals."""

    __slots__ = ("intervals", "ascii_bits", "_ascii_only", "_hash", "_sample")

    #: The hash-consing table: normalized interval tuple -> instance.
    _interned: dict[tuple[tuple[int, int], ...], "CharSet"] = {}

    def __new__(cls, intervals: Iterable[tuple[int, int]] = ()) -> "CharSet":
        normalized = _normalize(intervals)
        interned = cls._interned.get(normalized)
        if interned is not None:
            return interned
        self = super().__new__(cls)
        self.intervals = normalized
        self.ascii_bits = _ascii_mask(normalized)
        self._ascii_only = not normalized or normalized[-1][1] < _ASCII_LIMIT
        self._hash = hash(normalized)
        self._sample = None
        cls._interned[normalized] = self
        return self

    def __reduce__(self):
        # Re-intern on unpickle so identity-based fast paths stay sound
        # in worker processes.
        return (CharSet, (self.intervals,))

    # -- constructors -------------------------------------------------

    @staticmethod
    def empty() -> "CharSet":
        return _EMPTY

    @staticmethod
    def any_char() -> "CharSet":
        """The full alphabet Sigma (one arbitrary character)."""
        return _ANY

    @staticmethod
    def of(chars: str) -> "CharSet":
        """The set containing exactly the characters of ``chars``."""
        cached = _OF_MEMO.get(chars)
        if cached is None:
            cached = CharSet((ord(c), ord(c)) for c in chars)
            if len(_OF_MEMO) >= _MEMO_CAP:
                _OF_MEMO.clear()
            _OF_MEMO[chars] = cached
        return cached

    @staticmethod
    def range(lo: str, hi: str) -> "CharSet":
        return CharSet([(ord(lo), ord(hi))])

    @staticmethod
    def union_of(sets: Iterable["CharSet"]) -> "CharSet":
        intervals: list[tuple[int, int]] = []
        for s in sets:
            intervals.extend(s.intervals)
        return CharSet(intervals)

    # -- queries -------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def __contains__(self, char: str | int) -> bool:
        cp = char if isinstance(char, int) else ord(char)
        if cp < _ASCII_LIMIT:
            return bool(self.ascii_bits >> cp & 1)
        lo_idx, hi_idx = 0, len(self.intervals)
        while lo_idx < hi_idx:
            mid = (lo_idx + hi_idx) // 2
            lo, hi = self.intervals[mid]
            if cp < lo:
                hi_idx = mid
            elif cp > hi:
                lo_idx = mid + 1
            else:
                return True
        return False

    def size(self) -> int:
        """Number of codepoints in the set."""
        return sum(hi - lo + 1 for lo, hi in self.intervals)

    def is_singleton(self) -> bool:
        return len(self.intervals) == 1 and self.intervals[0][0] == self.intervals[0][1]

    def min_char(self) -> str:
        """An arbitrary (the smallest) member; useful for witness strings."""
        if not self.intervals:
            raise ValueError("empty CharSet has no member")
        return chr(self.intervals[0][0])

    def sample_char(self) -> str:
        """A *readable* member if one exists (prefers printable ASCII)."""
        cached = self._sample
        if cached is not None:
            return cached
        for lo, hi in self.intervals:
            start = max(lo, 0x20)
            if start <= min(hi, 0x7E):
                self._sample = chr(start)
                return self._sample
        self._sample = self.min_char()
        return self._sample

    def chars(self, limit: int = 64) -> Iterator[str]:
        """Iterate members (up to ``limit``), smallest first."""
        count = 0
        for lo, hi in self.intervals:
            for cp in range(lo, hi + 1):
                if count >= limit:
                    return
                yield chr(cp)
                count += 1

    # -- algebra -------------------------------------------------------

    def union(self, other: "CharSet") -> "CharSet":
        if self is other or not other:
            return self
        if not self:
            return other
        key = (self, other)
        result = _UNION_MEMO.get(key)
        if result is None:
            result = CharSet(self.intervals + other.intervals)
            _memo_put(_UNION_MEMO, key, result)
        return result

    def intersect(self, other: "CharSet") -> "CharSet":
        if self is other:
            return self
        if not self or not other:
            return _EMPTY
        key = (self, other)
        result = _INTERSECT_MEMO.get(key)
        if result is None:
            a, b = self.intervals, other.intervals
            parts = []
            i = j = 0
            len_a, len_b = len(a), len(b)
            while i < len_a and j < len_b:
                a_lo, a_hi = a[i]
                b_lo, b_hi = b[j]
                lo = a_lo if a_lo > b_lo else b_lo
                hi = a_hi if a_hi < b_hi else b_hi
                if lo <= hi:
                    parts.append((lo, hi))
                if a_hi < b_hi:
                    i += 1
                else:
                    j += 1
            result = CharSet(parts)
            _memo_put(_INTERSECT_MEMO, key, result)
        return result

    def complement(self) -> "CharSet":
        result = _COMPLEMENT_MEMO.get(self)
        if result is None:
            parts = []
            prev_end = -1
            for lo, hi in self.intervals:
                if lo > prev_end + 1:
                    parts.append((prev_end + 1, lo - 1))
                prev_end = hi
            if prev_end < MAX_CODEPOINT:
                parts.append((prev_end + 1, MAX_CODEPOINT))
            result = CharSet(parts)
            _memo_put(_COMPLEMENT_MEMO, self, result)
            _memo_put(_COMPLEMENT_MEMO, result, self)
        return result

    def difference(self, other: "CharSet") -> "CharSet":
        if self is other or not self:
            return _EMPTY
        if not other:
            return self
        return self.intersect(other.complement())

    def overlaps(self, other: "CharSet") -> bool:
        if self.ascii_bits & other.ascii_bits:
            return True
        if self._ascii_only or other._ascii_only:
            # Any common member would have to be ASCII, and the masks
            # just said there is none.
            return False
        a, b = self.intervals, other.intervals
        i = j = 0
        len_a, len_b = len(a), len(b)
        while i < len_a and j < len_b:
            if a[i][0] > b[j][1]:
                j += 1
            elif b[j][0] > a[i][1]:
                i += 1
            else:
                return True
        return False

    def is_subset_of(self, other: "CharSet") -> bool:
        if self is other or not self:
            return True
        if self.ascii_bits & ~other.ascii_bits:
            return False
        if self._ascii_only:
            return True
        return not self.intersect(other.complement())

    # -- dunder --------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        # Hash-consing makes equal sets identical, but stay safe for
        # exotic instances (e.g. ones created before a table clear).
        return self is other or (
            isinstance(other, CharSet) and self.intervals == other.intervals
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if not self.intervals:
            return "CharSet(∅)"
        if self == _ANY:
            return "CharSet(Σ)"
        parts = []
        for lo, hi in self.intervals[:8]:
            if lo == hi:
                parts.append(_show(lo))
            else:
                parts.append(f"{_show(lo)}-{_show(hi)}")
        if len(self.intervals) > 8:
            parts.append("…")
        return f"CharSet[{','.join(parts)}]"


def _memo_put(memo: dict, key, value) -> None:
    if len(memo) >= _MEMO_CAP:
        memo.clear()
    memo[key] = value


_OF_MEMO: dict[str, CharSet] = {}
_UNION_MEMO: dict[tuple[CharSet, CharSet], CharSet] = {}
_INTERSECT_MEMO: dict[tuple[CharSet, CharSet], CharSet] = {}
_COMPLEMENT_MEMO: dict[CharSet, CharSet] = {}
_PARTITION_MEMO: dict[tuple[CharSet, ...], list[CharSet]] = {}


def _show(cp: int) -> str:
    if 0x21 <= cp <= 0x7E:
        return chr(cp)
    return f"\\u{cp:04x}"


def partition_charsets(sets: Sequence[CharSet]) -> list[CharSet]:
    """Refine ``sets`` into disjoint, nonempty classes covering their union.

    Every input set is a union of some of the returned classes.  This is
    the standard alphabet-refinement step used before automaton
    determinization and product constructions.
    """
    key = tuple(sets)
    cached = _PARTITION_MEMO.get(key)
    if cached is not None:
        return list(cached)
    boundaries: set[int] = set()
    for s in sets:
        for lo, hi in s.intervals:
            boundaries.add(lo)
            boundaries.add(hi + 1)
    cuts = sorted(boundaries)
    classes = []
    for lo, next_lo in zip(cuts, cuts[1:]):
        piece = CharSet([(lo, next_lo - 1)])
        if any(piece.overlaps(s) for s in sets):
            classes.append(piece)
    if len(_PARTITION_MEMO) >= _MEMO_CAP:
        _PARTITION_MEMO.clear()
    _PARTITION_MEMO[key] = classes
    return list(classes)


_EMPTY = CharSet()
_ANY = CharSet([(0, MAX_CODEPOINT)])

#: Convenient named classes used throughout the PHP/SQL layers.
DIGITS = CharSet.range("0", "9")
LOWER = CharSet.range("a", "z")
UPPER = CharSet.range("A", "Z")
ALPHA = LOWER.union(UPPER)
ALNUM = ALPHA.union(DIGITS)
WORD = ALNUM.union(CharSet.of("_"))
SPACE = CharSet.of(" \t\r\n\f\v")
