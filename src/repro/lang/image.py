"""Image of a CFG under a finite-state transducer, with taint propagation.

The string-taint analysis converts an extended production like
``x → escape_quotes(y)`` into ordinary productions by computing the image
of the grammar rooted at ``y`` under the FST modeling ``escape_quotes``
(paper §3.1.2).  The construction mirrors the CFG–FSA intersection
(Figure 7): nonterminals become triples ``X_{pq}`` deriving *the outputs
of* FST runs from state ``p`` to ``q`` over strings of ``X``, and
``TAINTIF`` keeps the taint labels attached — the image of a tainted
subgrammar is tainted.

Because FSTs may be nondeterministic, a literal terminal can map to a
*set* of outputs per state pair; these become alternation productions.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict

from repro.obs.timeline import TIMELINE
from repro.obs.metrics import PERF
from repro.obs.trace import TRACE

from .charset import CharSet
from .fst import FST, FSTExplosion, map_marker_charset, render_output
from .grammar import Grammar, Lit, Nonterminal, Rhs, Symbol


#: How one generated nonterminal's name derives from the input grammar:
#: ``(input insertion ordinal, template)`` — ``template.format(name)``
#: with the ordinal-th input nonterminal's name, or a literal template
#: when the ordinal is None (terminal wrappers, whose names are
#: input-independent).
NameRecipe = tuple[int | None, str]


class ImageCache:
    """Content-addressed memo over transducer images (bounded LRU).

    Keyed by ``(id(fst), input-subgrammar shape fingerprint)``: the
    image of a grammar under an FST is a pure function of the two, and
    sanitizer FSTs (``addslashes``, ``str_replace`` models, …) are
    applied to the same include-derived subgrammars over and over across
    a project's pages.  Entries keep a strong reference to the FST, so a
    live entry's ``id(fst)`` can never be recycled for a different
    transducer.

    The *shape* fingerprint abstracts nonterminal names away, so a hit
    may come from a page whose name counters differ; each entry
    therefore carries the :data:`NameRecipe` per cached nonterminal, and
    :func:`fst_image` re-derives names from the hitting input grammar —
    handing back exactly what an uncached construction would have built
    (same names, same production order, fresh nonterminal objects).
    """

    def __init__(self, maxsize: int = 512) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, fst: FST, fingerprint: str
    ) -> tuple[Grammar, Nonterminal, dict[Nonterminal, NameRecipe]] | None:
        """The raw cached entry (not a copy) — callers must not mutate."""
        entry = self._entries.get((id(fst), fingerprint))
        if entry is None or entry[0] is not fst:
            return None
        self._entries.move_to_end((id(fst), fingerprint))
        _, grammar, start, recipes = entry
        return grammar, start, recipes

    def put(
        self,
        fst: FST,
        fingerprint: str,
        grammar: Grammar,
        start: Nonterminal,
        recipes: dict[Nonterminal, NameRecipe],
    ) -> None:
        self._entries[(id(fst), fingerprint)] = (fst, grammar, start, recipes)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            PERF.incr("image.cache.evictions")
        PERF.gauge("image.cache.size", len(self._entries))

    def clear(self) -> None:
        self._entries.clear()


#: Process-wide image memo (one per worker in parallel runs).
IMAGE_CACHE = ImageCache()

#: Farm hook: a :class:`repro.farm.memo.ImageMemo` in worker processes,
#: ``None`` everywhere else.  The cross-process key replaces ``id(fst)``
#: with :meth:`FST.content_key` — content-addressed, so a shared entry
#: rebinds exactly like a locally computed one.  A shared hit still
#: counts as a local ``image.cache.misses`` (plus
#: ``farm.image.shared_hits``), keeping the hits+misses lookup total
#: scheduling-invariant.
SHARED_IMAGES = None

#: Sentinel distinguishing "not computed" from a cached None result.
_TERM_MISS = object()


def _lit_runs(
    fst: FST, text: str, start: int, limit: int = 64
) -> dict[int, set[str]]:
    """All FST runs over ``text`` from ``start``: end state → output set."""
    frontier: dict[int, set[str]] = {start: {""}}
    for char in text:
        next_frontier: dict[int, set[str]] = defaultdict(set)
        total = 0
        for state, outputs in frontier.items():
            for transition in fst.transitions.get(state, ()):
                if char not in transition.label:
                    continue
                emitted = render_output(transition.output, char)
                for out in outputs:
                    next_frontier[transition.dst].add(out + emitted)
                    total += 1
                    if total > limit:
                        raise FSTExplosion(
                            f"literal {text!r} has >{limit} transducer images"
                        )
        frontier = dict(next_frontier)
        if not frontier:
            break
    return frontier


def _charset_steps(
    fst: FST, charset: CharSet, start: int
) -> dict[int, list[tuple[Symbol, ...]]]:
    """Single-char images: end state → list of output symbol sequences."""
    result: dict[int, list[tuple[Symbol, ...]]] = defaultdict(list)
    for transition in fst.transitions.get(start, ()):
        overlap = charset.intersect(transition.label)
        if not overlap:
            continue
        symbols: list[Symbol] = []
        for item in transition.output:
            mapped = map_marker_charset(item, overlap)
            if isinstance(mapped, str):
                if mapped:
                    symbols.append(Lit(mapped))
            else:
                symbols.append(mapped)
        result[transition.dst].append(tuple(symbols))
    return result


def fst_image(
    grammar: Grammar, root: Nonterminal, fst: FST
) -> tuple[Grammar, Nonterminal]:
    """Grammar for ``{ output : input ∈ L(grammar, root) }`` under ``fst``.

    Returns ``(result, start)``, trimmed, with labels propagated to
    every triple of a labeled nonterminal (the FST analogue of
    Theorem 3.1).  Memoized in :data:`IMAGE_CACHE` by
    ``(FST identity, input fingerprint)``; only successful constructions
    are cached (an :class:`FSTExplosion` re-raises every time and the
    caller's widening fallback handles it).
    """
    with PERF.latency("image.lookup_seconds"):
        with PERF.timer("image.fingerprint"):
            # order-sensitive, name-insensitive: equal shapes guarantee
            # the construction runs the same operation sequence, and the
            # name recipes recover this input's names on a hit
            position = next(
                (i for i, nt in enumerate(grammar.productions) if nt is root),
                -1,
            )
            fingerprint = f"{grammar.shape_fingerprint()}:{position}"
        entry = IMAGE_CACHE.get(fst, fingerprint)
    if entry is not None:
        PERF.incr("image.cache.hits")
        TRACE.annotate("cache", "hit")
        cached_grammar, cached_start, recipes = entry
        # a hit replays the memoized construction onto this grammar's
        # names, one recipe per cached nonterminal — the replay count is
        # the volume of construction work the memo turned into rebinds
        PERF.incr("image.cache.replays", len(recipes))
        with PERF.timer("image.rebind"), TIMELINE.phase("image.rebind"):
            return _rebind_image(cached_grammar, cached_start, recipes, grammar)
    PERF.incr("image.cache.misses")
    if SHARED_IMAGES is not None:
        shared = SHARED_IMAGES.fetch((fst.content_key(), fingerprint))
        if shared is not None:
            cached_grammar, cached_start, recipes = shared
            IMAGE_CACHE.put(fst, fingerprint, cached_grammar, cached_start, recipes)
            TRACE.annotate("cache", "shared-hit")
            PERF.incr("image.cache.replays", len(recipes))
            with PERF.timer("image.rebind"), TIMELINE.phase("image.rebind"):
                return _rebind_image(
                    cached_grammar, cached_start, recipes, grammar
                )
    TRACE.annotate("cache", "miss")
    with PERF.timer("image.construct"), TIMELINE.phase("image.construct"):
        result, start, recipes = _fst_image_uncached(grammar, root, fst)
    IMAGE_CACHE.put(fst, fingerprint, result, start, recipes)
    if SHARED_IMAGES is not None:
        SHARED_IMAGES.publish(
            (fst.content_key(), fingerprint), (result, start, recipes)
        )
    # hand the first caller a copy too: the cached original must never
    # be reachable from mutating callers
    return result.structural_copy(), start


def _rebind_image(
    cached: Grammar,
    cached_start: Nonterminal,
    recipes: dict[Nonterminal, "NameRecipe"],
    grammar: Grammar,
) -> tuple[Grammar, Nonterminal]:
    """Re-create a cached image against ``grammar``'s nonterminal names.

    Mints fresh :class:`Nonterminal` objects in the cached grammar's
    insertion order (= the creation order of the surviving nonterminals
    in the original construction), with each name re-derived from the
    hitting input via its :data:`NameRecipe` — so the result is exactly
    what :func:`_fst_image_uncached` would have produced on this input:
    identical names, identical production and label structure, and the
    same relative creation order of every surviving nonterminal.
    """
    inputs = list(grammar.productions)
    mapping: dict[Nonterminal, Nonterminal] = {}
    for nt in cached.productions:
        ordinal, template = recipes[nt]
        name = template.format(inputs[ordinal].name) if ordinal is not None else template
        mapping[nt] = Nonterminal(name)
    result = Grammar()
    result.productions = {
        mapping[nt]: [tuple(mapping.get(s, s) for s in rhs) for rhs in rules]
        for nt, rules in cached.productions.items()
    }
    result._nrules = cached._nrules
    result.labels = {
        mapping[nt]: set(labels) for nt, labels in cached.labels.items()
    }
    start = mapping[cached_start]
    result.start = start
    return result, start


def _fst_image_uncached(
    grammar: Grammar, root: Nonterminal, fst: FST
) -> tuple[Grammar, Nonterminal, dict[Nonterminal, NameRecipe]]:
    normalized = grammar.normalized(root)
    states = list(range(fst.num_states))
    # name provenance for the cache: which input nonterminal each
    # generated name string derives from (chain variables inherit the
    # lhs they were split from)
    input_ordinal = {nt: i for i, nt in enumerate(grammar.productions)}
    chain_source: dict[Nonterminal, Nonterminal] = getattr(
        normalized, "_chain_source", {}
    )
    recipes: dict[Nonterminal, NameRecipe] = {}

    # ---- pair fixpoint (which (p, q) are realizable per nonterminal) ----
    pairs: dict[Nonterminal, set[tuple[int, int]]] = defaultdict(set)
    # Call-local memos, freed when this construction returns: their size
    # is bounded by (distinct literals in the input subgrammar) × states,
    # so no global bound is needed — but their high-water marks are
    # reported through the perf gauges below so a pathological grammar
    # shows up in --profile instead of as silent memory growth.
    lit_cache: dict[tuple[int, str, int], dict[int, set[str]]] = {}

    def lit_runs(text: str, p: int) -> dict[int, set[str]]:
        key = (id(fst), text, p)
        if key not in lit_cache:
            lit_cache[key] = _lit_runs(fst, text, p)
        return lit_cache[key]

    def term_pairs(symbol: Symbol) -> set[tuple[int, int]]:
        found = set()
        if isinstance(symbol, Lit):
            for p in states:
                for q in lit_runs(symbol.text, p):
                    found.add((p, q))
        else:
            for p in states:
                for q in _charset_steps(fst, symbol, p):
                    found.add((p, q))
        return found

    term_cache: dict[int, set[tuple[int, int]]] = {}

    def sym_pairs(symbol: Symbol) -> set[tuple[int, int]]:
        if isinstance(symbol, Nonterminal):
            return pairs[symbol]
        key = id(symbol)
        if key not in term_cache:
            term_cache[key] = term_pairs(symbol)
        return term_cache[key]

    rules = normalized.productions
    # memoized on the (frozen) normalized grammar, shared across the
    # transducer images taken of the same scope
    occurrences = normalized._memo_get(("occ_lhs",))
    if occurrences is None:
        occurrences = defaultdict(list)
        for lhs, rhss in rules.items():
            for rhs in rhss:
                for symbol in rhs:
                    if isinstance(symbol, Nonterminal):
                        occurrences[symbol].append(lhs)
        normalized._memo_set(("occ_lhs",), occurrences)

    # id(symbol) -> [pair-count at build time, start -> [ends]]; rebuilt
    # only when the symbol's pair set has grown since the last build, so
    # converged symbols stop paying the re-index cost every visit.
    by_start_cache: dict[int, list] = {}

    def by_start_of(symbol: Symbol) -> dict[int, list[int]]:
        found = sym_pairs(symbol)
        key = id(symbol)
        cached = by_start_cache.get(key)
        if cached is not None and cached[0] == len(found):
            return cached[1]
        index: dict[int, list[int]] = {}
        for j, k in found:
            index.setdefault(j, []).append(k)
        by_start_cache[key] = [len(found), index]
        return index

    def eval_rhs(rhs: Rhs) -> set[tuple[int, int]]:
        if not rhs:
            return {(p, p) for p in states}
        if len(rhs) == 1:
            return set(sym_pairs(rhs[0]))
        left = sym_pairs(rhs[0])
        by_start = by_start_of(rhs[1])
        out: set[tuple[int, int]] = set()
        for i, j in left:
            ks = by_start.get(j)
            if ks:
                for k in ks:
                    out.add((i, k))
        return out

    worklist = list(rules)
    queued = set(worklist)
    iterations = 0
    with PERF.timer("image.fixpoint"):
        while worklist:
            iterations += 1
            lhs = worklist.pop()
            queued.discard(lhs)
            added = False
            target = pairs[lhs]
            for rhs in rules.get(lhs, ()):
                before = len(target)
                target |= eval_rhs(rhs)
                if len(target) != before:
                    added = True
            if added:
                for parent in occurrences.get(lhs, ()):
                    if parent not in queued:
                        queued.add(parent)
                        worklist.append(parent)
    PERF.incr("image.fixpoint_iterations", iterations)
    PERF.gauge("image.lit_cache.max_size", len(lit_cache))
    PERF.gauge("image.term_cache.max_size", len(term_cache))

    # ---- reachable-triple prepass ---------------------------------------
    # Only triples reachable from an accepting start pair survive the
    # final trim, so materializing the rest is pure waste (the pair
    # fixpoint makes every triple productive, hence trim keeps exactly
    # the reachable set).  Walk the triple graph top-down *before*
    # creating anything: a production of X_{pq} references Y_{p,mid} /
    # B_{mid,q} only when both sides cross realizable pairs, which is
    # decidable from the fixpoint alone.  The materialization loop below
    # then runs in its original order, skipping non-members — identical
    # per-production order and identical relative creation order of
    # everything the eager construction would have kept.
    starts_index: dict[int, dict[int, list[int]]] = {}

    def by_first(symbol: Symbol) -> dict[int, list[int]]:
        key = id(symbol)
        index = starts_index.get(key)
        if index is None:
            index = {}
            for p2, mid in sym_pairs(symbol):
                index.setdefault(p2, []).append(mid)
            starts_index[key] = index
        return index

    prepass_timer = PERF.timer("image.prepass")
    prepass_timer.__enter__()
    reachable_triples: set[tuple[Nonterminal, int, int]] = set()
    stack: list[tuple[Nonterminal, int, int]] = []
    for q in states:
        if fst.is_accepting(q) and (fst.start, q) in pairs[root]:
            entry = (root, fst.start, q)
            if entry not in reachable_triples:
                reachable_triples.add(entry)
                stack.append(entry)
    while stack:
        lhs, p, q = stack.pop()
        for rhs in rules.get(lhs, ()):
            if not rhs:
                continue
            if len(rhs) == 1:
                symbol = rhs[0]
                if isinstance(symbol, Nonterminal) and (p, q) in pairs[symbol]:
                    succ = (symbol, p, q)
                    if succ not in reachable_triples:
                        reachable_triples.add(succ)
                        stack.append(succ)
                continue
            first, second = rhs
            second_pairs = sym_pairs(second)
            first_is_nt = isinstance(first, Nonterminal)
            second_is_nt = isinstance(second, Nonterminal)
            for mid in by_first(first).get(p, ()):
                if (mid, q) not in second_pairs:
                    continue
                if first_is_nt:
                    succ = (first, p, mid)
                    if succ not in reachable_triples:
                        reachable_triples.add(succ)
                        stack.append(succ)
                if second_is_nt:
                    succ = (second, mid, q)
                    if succ not in reachable_triples:
                        reachable_triples.add(succ)
                        stack.append(succ)
    prepass_timer.__exit__(None, None, None)
    PERF.gauge("image.reachable_triples", len(reachable_triples))

    # ---- materialize the output grammar ---------------------------------
    materialize_timer = PERF.timer("image.materialize")
    materialize_timer.__enter__()
    result = Grammar()
    triple: dict[tuple[Nonterminal, int, int], Nonterminal] = {}
    term_triple: dict[tuple[int, int, int], Symbol | None] = {}

    def get_triple(nt: Nonterminal, p: int, q: int) -> Nonterminal:
        key = (nt, p, q)
        if key not in triple:
            fresh = result.fresh(f"{nt.name}/{p},{q}")
            triple[key] = fresh
            source = chain_source.get(nt)
            base, suffix = (nt, f"/{p},{q}") if source is None else (
                source, f"~/{p},{q}"
            )
            ordinal = input_ordinal.get(base)
            recipes[fresh] = (
                (ordinal, "{}" + suffix) if ordinal is not None
                else (None, fresh.name)
            )
            # inlined add_label: ``fresh`` is already in productions and
            # no memo has been taken on the result grammar yet
            labels = normalized.labels.get(nt)
            if labels:
                result.labels[fresh] = set(labels)
        return triple[key]

    def term_symbol(symbol: Symbol, p: int, q: int) -> Symbol | None:
        """Output-side symbol for a terminal crossing (p, q), or None.

        Every outcome is cached, including "no crossing" (None) and the
        plain-symbol cases — a hot str_replace image asks about the same
        (literal, p, q) key once per referencing production.
        """
        key = (id(symbol), p, q)
        cached = term_triple.get(key, _TERM_MISS)
        if cached is not _TERM_MISS:
            return cached
        out_symbol: Symbol | None
        if isinstance(symbol, Lit):
            outputs = lit_runs(symbol.text, p).get(q)
            if not outputs:
                out_symbol = None
            elif len(outputs) == 1:
                out_symbol = Lit(next(iter(outputs)))
            else:
                wrapper = result.fresh(f"lit/{p},{q}")
                recipes[wrapper] = (None, wrapper.name)
                for out in sorted(outputs):
                    wrapper_rhs = (Lit(out),) if out else ()
                    result.add(wrapper, wrapper_rhs)
                out_symbol = wrapper
        else:
            sequences = _charset_steps(fst, symbol, p).get(q)
            if not sequences:
                out_symbol = None
            elif len(sequences) == 1 and len(sequences[0]) == 1:
                out_symbol = sequences[0][0]
            else:
                wrapper = result.fresh(f"cls/{p},{q}")
                recipes[wrapper] = (None, wrapper.name)
                for seq in sequences:
                    result.add(wrapper, seq)
                out_symbol = wrapper
        term_triple[key] = out_symbol
        return out_symbol

    def rhs_symbol(symbol: Symbol, p: int, q: int) -> Symbol | None:
        if type(symbol) is Nonterminal:
            if (p, q) in pairs[symbol]:
                return get_triple(symbol, p, q)
            return None
        return term_symbol(symbol, p, q)

    for lhs, rhss in rules.items():
        # Pre-dispatch each rhs once per lhs instead of once per state
        # pair: the (kind, symbols, start-index) tuples carry no side
        # effects, so hoisting them leaves the creation order of every
        # triple and wrapper unchanged.
        prepared: list[tuple] | None = None
        for p, q in pairs[lhs]:
            if (lhs, p, q) not in reachable_triples:
                continue
            if prepared is None:
                prepared = []
                for rhs in rhss:
                    if not rhs:
                        prepared.append((0, None, None, None))
                    elif len(rhs) == 1:
                        prepared.append((1, rhs[0], None, None))
                    else:
                        first, second = rhs
                        prepared.append((2, first, second, by_first(first)))
            lhs_triple = get_triple(lhs, p, q)
            bodies: list[Rhs] = []
            for kind, first, second, index in prepared:
                if kind == 2:
                    for mid in index.get(p, ()):
                        left = rhs_symbol(first, p, mid)
                        right = rhs_symbol(second, mid, q)
                        if left is not None and right is not None:
                            bodies.append((left, right))
                elif kind == 1:
                    restricted = rhs_symbol(first, p, q)
                    if restricted is not None:
                        bodies.append((restricted,))
                elif p == q:
                    bodies.append(())
            result._bulk_add(lhs_triple, bodies)

    start = result.fresh(f"{root.name}»")
    root_ordinal = input_ordinal.get(root)
    recipes[start] = (
        (root_ordinal, "{}»") if root_ordinal is not None else (None, start.name)
    )
    result.start = start
    for label in normalized.labels.get(root, ()):
        result.add_label(start, label)
    for q in states:
        if not fst.is_accepting(q):
            continue
        if (fst.start, q) not in pairs[root]:
            continue
        flush = fst.final_output.get(q, "")
        body: Rhs = (get_triple(root, fst.start, q),)
        if flush:
            body = body + (Lit(flush),)
        result.add(start, body)
    materialize_timer.__exit__(None, None, None)
    with PERF.timer("image.trim"):
        trimmed = _image_trim(result, start)
    kept_recipes = {nt: recipes[nt] for nt in trimmed.productions}
    return trimmed, start, kept_recipes


def _image_trim(result: Grammar, start: Nonterminal) -> Grammar:
    """``result.trim(start)`` specialized to freshly materialized images.

    The reachable-triple prepass guarantees every materialized triple is
    productive and reachable from ``start``, and ``fresh()`` inserts
    nonterminals into the production dict at creation, so the insertion
    order already equals the uid order ``trim`` would sort into.  What a
    full trim actually removes here is only (a) orphan triples — created
    on first reference from a production body that was then dropped
    because its other side had no realizable crossing — which have empty
    rule lists, and (b) orphan multi-output terminal wrappers, which
    have rules but are referenced by no surviving body.  Both are
    recognized with one linear pass instead of the reachable/productive
    fixpoints.
    """
    if not result.productions.get(start):
        # empty language (no accepting crossing): defer to the general
        # trim for the exact degenerate shape
        return result.trim(start)
    referenced: set[Nonterminal] = set()
    for rules in result.productions.values():
        for rhs in rules:
            for s in rhs:
                if type(s) is Nonterminal:
                    referenced.add(s)
    trimmed = Grammar(start)
    productions = trimmed.productions
    nrules = 0
    for nt, rules in result.productions.items():
        if rules and (nt in referenced or nt is start):
            productions[nt] = rules
            nrules += len(rules)
    trimmed._nrules = nrules
    trimmed.copy_labels_from(result, productions)
    return trimmed


def regular_image(charset: CharSet, fst: FST) -> tuple[Grammar, Nonterminal]:
    """Image of ``charset*`` under ``fst`` — the widening target used when a
    string operation occurs in a grammar cycle (paper §3.1.2).

    ``charset*`` is expressed as the one-nonterminal cyclic grammar
    ``W → ε | C W`` and run through :func:`fst_image`.
    """
    grammar = Grammar()
    w = grammar.fresh("Σ*")
    grammar.start = w
    grammar.add(w, ())
    grammar.add(w, (charset, w))
    return fst_image(grammar, w, fst)
