"""Image of a CFG under a finite-state transducer, with taint propagation.

The string-taint analysis converts an extended production like
``x → escape_quotes(y)`` into ordinary productions by computing the image
of the grammar rooted at ``y`` under the FST modeling ``escape_quotes``
(paper §3.1.2).  The construction mirrors the CFG–FSA intersection
(Figure 7): nonterminals become triples ``X_{pq}`` deriving *the outputs
of* FST runs from state ``p`` to ``q`` over strings of ``X``, and
``TAINTIF`` keeps the taint labels attached — the image of a tainted
subgrammar is tainted.

Because FSTs may be nondeterministic, a literal terminal can map to a
*set* of outputs per state pair; these become alternation productions.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict

from repro.perf import PERF
from repro.trace import TRACE

from .charset import CharSet
from .fst import FST, FSTExplosion, map_marker_charset, render_output
from .grammar import Grammar, Lit, Nonterminal, Rhs, Symbol, is_terminal


class ImageCache:
    """Content-addressed memo over transducer images (bounded LRU).

    Keyed by ``(id(fst), input-subgrammar fingerprint)``: the image of a
    grammar under an FST is a pure function of the two, and sanitizer
    FSTs (``addslashes``, ``str_replace`` models, …) are applied to the
    same include-derived subgrammars over and over across a project's
    pages.  Entries keep a strong reference to the FST, so a live entry's
    ``id(fst)`` can never be recycled for a different transducer.

    Hits hand out a :meth:`~repro.lang.grammar.Grammar.structural_copy`
    — callers (``GrammarBuilder._absorb``, the explosion fallback's
    ``add_label``) may mutate what they receive, and the cached original
    must stay pristine.
    """

    def __init__(self, maxsize: int = 512) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fst: FST, fingerprint: str) -> tuple[Grammar, Nonterminal] | None:
        entry = self._entries.get((id(fst), fingerprint))
        if entry is None or entry[0] is not fst:
            return None
        self._entries.move_to_end((id(fst), fingerprint))
        _, grammar, start = entry
        return grammar.structural_copy(), start

    def put(
        self, fst: FST, fingerprint: str, grammar: Grammar, start: Nonterminal
    ) -> None:
        self._entries[(id(fst), fingerprint)] = (fst, grammar, start)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            PERF.incr("image.cache.evictions")
        PERF.gauge("image.cache.size", len(self._entries))

    def clear(self) -> None:
        self._entries.clear()


#: Process-wide image memo (one per worker in parallel runs).
IMAGE_CACHE = ImageCache()


def _lit_runs(
    fst: FST, text: str, start: int, limit: int = 64
) -> dict[int, set[str]]:
    """All FST runs over ``text`` from ``start``: end state → output set."""
    frontier: dict[int, set[str]] = {start: {""}}
    for char in text:
        next_frontier: dict[int, set[str]] = defaultdict(set)
        total = 0
        for state, outputs in frontier.items():
            for transition in fst.transitions.get(state, ()):
                if char not in transition.label:
                    continue
                emitted = render_output(transition.output, char)
                for out in outputs:
                    next_frontier[transition.dst].add(out + emitted)
                    total += 1
                    if total > limit:
                        raise FSTExplosion(
                            f"literal {text!r} has >{limit} transducer images"
                        )
        frontier = dict(next_frontier)
        if not frontier:
            break
    return frontier


def _charset_steps(
    fst: FST, charset: CharSet, start: int
) -> dict[int, list[tuple[Symbol, ...]]]:
    """Single-char images: end state → list of output symbol sequences."""
    result: dict[int, list[tuple[Symbol, ...]]] = defaultdict(list)
    for transition in fst.transitions.get(start, ()):
        overlap = charset.intersect(transition.label)
        if not overlap:
            continue
        symbols: list[Symbol] = []
        for item in transition.output:
            mapped = map_marker_charset(item, overlap)
            if isinstance(mapped, str):
                if mapped:
                    symbols.append(Lit(mapped))
            else:
                symbols.append(mapped)
        result[transition.dst].append(tuple(symbols))
    return result


def fst_image(
    grammar: Grammar, root: Nonterminal, fst: FST
) -> tuple[Grammar, Nonterminal]:
    """Grammar for ``{ output : input ∈ L(grammar, root) }`` under ``fst``.

    Returns ``(result, start)``, trimmed, with labels propagated to
    every triple of a labeled nonterminal (the FST analogue of
    Theorem 3.1).  Memoized in :data:`IMAGE_CACHE` by
    ``(FST identity, input fingerprint)``; only successful constructions
    are cached (an :class:`FSTExplosion` re-raises every time and the
    caller's widening fallback handles it).
    """
    with PERF.timer("image.fingerprint"):
        fingerprint = grammar.fingerprint(root)
    cached = IMAGE_CACHE.get(fst, fingerprint)
    if cached is not None:
        PERF.incr("image.cache.hits")
        TRACE.annotate("cache", "hit")
        return cached
    PERF.incr("image.cache.misses")
    TRACE.annotate("cache", "miss")
    with PERF.timer("image.construct"):
        result, start = _fst_image_uncached(grammar, root, fst)
    IMAGE_CACHE.put(fst, fingerprint, result, start)
    # hand the first caller a copy too: the cached original must never
    # be reachable from mutating callers
    return result.structural_copy(), start


def _fst_image_uncached(
    grammar: Grammar, root: Nonterminal, fst: FST
) -> tuple[Grammar, Nonterminal]:
    normalized = grammar.normalized(root)
    states = list(range(fst.num_states))

    # ---- pair fixpoint (which (p, q) are realizable per nonterminal) ----
    pairs: dict[Nonterminal, set[tuple[int, int]]] = defaultdict(set)
    # Call-local memos, freed when this construction returns: their size
    # is bounded by (distinct literals in the input subgrammar) × states,
    # so no global bound is needed — but their high-water marks are
    # reported through the perf gauges below so a pathological grammar
    # shows up in --profile instead of as silent memory growth.
    lit_cache: dict[tuple[int, str, int], dict[int, set[str]]] = {}

    def lit_runs(text: str, p: int) -> dict[int, set[str]]:
        key = (id(fst), text, p)
        if key not in lit_cache:
            lit_cache[key] = _lit_runs(fst, text, p)
        return lit_cache[key]

    def term_pairs(symbol: Symbol) -> set[tuple[int, int]]:
        found = set()
        if isinstance(symbol, Lit):
            for p in states:
                for q in lit_runs(symbol.text, p):
                    found.add((p, q))
        else:
            for p in states:
                for q in _charset_steps(fst, symbol, p):
                    found.add((p, q))
        return found

    term_cache: dict[int, set[tuple[int, int]]] = {}

    def sym_pairs(symbol: Symbol) -> set[tuple[int, int]]:
        if isinstance(symbol, Nonterminal):
            return pairs[symbol]
        key = id(symbol)
        if key not in term_cache:
            term_cache[key] = term_pairs(symbol)
        return term_cache[key]

    rules = normalized.productions
    occurrences: dict[Nonterminal, list[Nonterminal]] = defaultdict(list)
    for lhs, rhss in rules.items():
        for rhs in rhss:
            for symbol in rhs:
                if isinstance(symbol, Nonterminal):
                    occurrences[symbol].append(lhs)

    def eval_rhs(rhs: Rhs) -> set[tuple[int, int]]:
        if not rhs:
            return {(p, p) for p in states}
        if len(rhs) == 1:
            return set(sym_pairs(rhs[0]))
        left, right = sym_pairs(rhs[0]), sym_pairs(rhs[1])
        by_start: dict[int, list[int]] = defaultdict(list)
        for j, k in right:
            by_start[j].append(k)
        return {(i, k) for i, j in left for k in by_start.get(j, ())}

    worklist = list(rules)
    queued = set(worklist)
    iterations = 0
    while worklist:
        iterations += 1
        lhs = worklist.pop()
        queued.discard(lhs)
        added = False
        for rhs in rules.get(lhs, ()):
            new_pairs = eval_rhs(rhs) - pairs[lhs]
            if new_pairs:
                pairs[lhs].update(new_pairs)
                added = True
        if added:
            for parent in occurrences.get(lhs, ()):
                if parent not in queued:
                    queued.add(parent)
                    worklist.append(parent)
    PERF.incr("image.fixpoint_iterations", iterations)
    PERF.gauge("image.lit_cache.max_size", len(lit_cache))
    PERF.gauge("image.term_cache.max_size", len(term_cache))

    # ---- materialize the output grammar ---------------------------------
    result = Grammar()
    triple: dict[tuple[Nonterminal, int, int], Nonterminal] = {}
    term_triple: dict[tuple[int, int, int], Nonterminal] = {}

    def get_triple(nt: Nonterminal, p: int, q: int) -> Nonterminal:
        key = (nt, p, q)
        if key not in triple:
            fresh = result.fresh(f"{nt.name}/{p},{q}")
            triple[key] = fresh
            for label in normalized.labels.get(nt, ()):
                result.add_label(fresh, label)
        return triple[key]

    def term_symbol(symbol: Symbol, p: int, q: int) -> Symbol | None:
        """Output-side symbol for a terminal crossing (p, q), or None."""
        key = (id(symbol), p, q)
        if key in term_triple:
            return term_triple[key]
        if isinstance(symbol, Lit):
            outputs = lit_runs(symbol.text, p).get(q)
            if not outputs:
                return None
            if len(outputs) == 1:
                out = next(iter(outputs))
                return Lit(out)
            wrapper = result.fresh(f"lit/{p},{q}")
            for out in sorted(outputs):
                wrapper_rhs = (Lit(out),) if out else ()
                result.add(wrapper, wrapper_rhs)
            term_triple[key] = wrapper
            return wrapper
        sequences = _charset_steps(fst, symbol, p).get(q)
        if not sequences:
            return None
        if len(sequences) == 1 and len(sequences[0]) == 1:
            return sequences[0][0]
        wrapper = result.fresh(f"cls/{p},{q}")
        for seq in sequences:
            result.add(wrapper, seq)
        term_triple[key] = wrapper
        return wrapper

    def rhs_symbol(symbol: Symbol, p: int, q: int) -> Symbol | None:
        if is_terminal(symbol):
            return term_symbol(symbol, p, q)
        if (p, q) in pairs[symbol]:
            return get_triple(symbol, p, q)
        return None

    for lhs, rhss in rules.items():
        for p, q in pairs[lhs]:
            lhs_triple = get_triple(lhs, p, q)
            for rhs in rhss:
                if not rhs:
                    if p == q:
                        result.add(lhs_triple, ())
                    continue
                if len(rhs) == 1:
                    restricted = rhs_symbol(rhs[0], p, q)
                    if restricted is not None:
                        result.add(lhs_triple, (restricted,))
                    continue
                first, second = rhs
                for p2, mid in sym_pairs(first):
                    if p2 != p:
                        continue
                    left = rhs_symbol(first, p, mid)
                    right = rhs_symbol(second, mid, q)
                    if left is not None and right is not None:
                        result.add(lhs_triple, (left, right))

    start = result.fresh(f"{root.name}»")
    result.start = start
    for label in normalized.labels.get(root, ()):
        result.add_label(start, label)
    for q in states:
        if not fst.is_accepting(q):
            continue
        if (fst.start, q) not in pairs[root]:
            continue
        flush = fst.final_output.get(q, "")
        body: Rhs = (get_triple(root, fst.start, q),)
        if flush:
            body = body + (Lit(flush),)
        result.add(start, body)
    return result.trim(start), start


def regular_image(charset: CharSet, fst: FST) -> tuple[Grammar, Nonterminal]:
    """Image of ``charset*`` under ``fst`` — the widening target used when a
    string operation occurs in a grammar cycle (paper §3.1.2).

    ``charset*`` is expressed as the one-nonterminal cyclic grammar
    ``W → ε | C W`` and run through :func:`fst_image`.
    """
    grammar = Grammar()
    w = grammar.fresh("Σ*")
    grammar.start = w
    grammar.add(w, ())
    grammar.add(w, (charset, w))
    return fst_image(grammar, w, fst)
