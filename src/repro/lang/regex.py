"""A regular-expression engine for the PCRE/POSIX subset web code uses.

PHP programs filter input with ``preg_match``, ``ereg``/``eregi``, and
``preg_replace``.  The string-taint analysis needs the *language* of such
patterns (as automata), not a matcher, so this module compiles a regex
AST to :class:`~repro.lang.fsa.NFA`.

Two match semantics matter (this distinction is the heart of the paper's
Figure 2 bug):

* :func:`full_match_language` — strings the pattern matches *entirely*
  (implicit anchors at both ends).
* :func:`search_language` — strings the pattern matches *somewhere*
  (``preg_match``/``ereg`` semantics).  ``^``/``$`` anchors inside the
  pattern constrain where; an unanchored ``[0-9]+`` accepts
  ``1'; DROP TABLE …`` because one digit occurs somewhere.

Supported syntax: literals, ``.``, escapes (``\\d \\D \\w \\W \\s \\S
\\n \\t \\r \\xHH`` and escaped punctuation), character classes with
ranges and negation, ``* + ? {m} {m,} {m,n}`` (greedy and lazy — the
languages coincide), alternation, capturing and ``(?:…)`` groups, and
``^``/``$`` anchors.
"""

from __future__ import annotations

from dataclasses import dataclass

from .charset import ALNUM, CharSet, DIGITS, SPACE, WORD
from .fsa import NFA


class RegexError(ValueError):
    """Raised on a malformed pattern."""


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    pass


@dataclass(frozen=True)
class Chars(Node):
    """One character drawn from a set."""

    charset: CharSet


@dataclass(frozen=True)
class Literal(Node):
    """A literal string (a run of fixed characters)."""

    text: str


@dataclass(frozen=True)
class Seq(Node):
    parts: tuple[Node, ...]


@dataclass(frozen=True)
class Alt(Node):
    options: tuple[Node, ...]


@dataclass(frozen=True)
class Repeat(Node):
    node: Node
    low: int
    high: int | None  # None = unbounded


@dataclass(frozen=True)
class Group(Node):
    node: Node
    index: int | None  # None for non-capturing


@dataclass(frozen=True)
class Anchor(Node):
    kind: str  # "start" or "end"


@dataclass
class Pattern:
    """A parsed pattern plus its flags and capture-group count."""

    root: Node
    ignore_case: bool = False
    group_count: int = 0
    source: str = ""


_CLASS_ESCAPES = {
    "d": DIGITS,
    "D": DIGITS.complement(),
    "w": WORD,
    "W": WORD.complement(),
    "s": SPACE,
    "S": SPACE.complement(),
}

_CHAR_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "a": "\a",
    "e": "\x1b",
}

#: ``.`` in PCRE excludes newline by default.
DOT = CharSet.of("\n").complement()


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.group_count = 0

    # -- plumbing ------------------------------------------------------

    def peek(self) -> str | None:
        return self.source[self.pos] if self.pos < len(self.source) else None

    def take(self) -> str:
        if self.pos >= len(self.source):
            raise RegexError(f"unexpected end of pattern: {self.source!r}")
        char = self.source[self.pos]
        self.pos += 1
        return char

    def expect(self, char: str) -> None:
        if self.take() != char:
            raise RegexError(f"expected {char!r} at {self.pos} in {self.source!r}")

    # -- grammar ---------------------------------------------------------

    def parse(self) -> Node:
        node = self.alternation()
        if self.pos != len(self.source):
            raise RegexError(f"trailing input at {self.pos} in {self.source!r}")
        return node

    def alternation(self) -> Node:
        options = [self.sequence()]
        while self.peek() == "|":
            self.take()
            options.append(self.sequence())
        if len(options) == 1:
            return options[0]
        return Alt(tuple(options))

    def sequence(self) -> Node:
        parts: list[Node] = []
        while self.peek() not in (None, "|", ")"):
            parts.append(self.quantified())
        if len(parts) == 1:
            return parts[0]
        return Seq(tuple(parts))

    def quantified(self) -> Node:
        atom = self.atom()
        while True:
            char = self.peek()
            if char == "*":
                self.take()
                atom = Repeat(atom, 0, None)
            elif char == "+":
                self.take()
                atom = Repeat(atom, 1, None)
            elif char == "?":
                self.take()
                atom = Repeat(atom, 0, 1)
            elif char == "{":
                bound = self._try_counted()
                if bound is None:
                    break
                atom = Repeat(atom, bound[0], bound[1])
            else:
                break
            # lazy / possessive modifiers do not change the language
            if self.peek() in ("?", "+") and isinstance(atom, Repeat):
                modifier = self.take()
                if modifier == "+":
                    # possessive: language-equal for our purposes
                    pass
        return atom

    def _try_counted(self) -> tuple[int, int | None] | None:
        """Parse ``{m}``, ``{m,}``, ``{m,n}``; None if not a counted repeat."""
        mark = self.pos
        self.take()  # "{"
        digits = ""
        while self.peek() and self.peek().isdigit():
            digits += self.take()
        if not digits:
            self.pos = mark
            return None
        low = int(digits)
        if self.peek() == "}":
            self.take()
            return (low, low)
        if self.peek() != ",":
            self.pos = mark
            return None
        self.take()
        digits = ""
        while self.peek() and self.peek().isdigit():
            digits += self.take()
        if self.peek() != "}":
            self.pos = mark
            return None
        self.take()
        return (low, int(digits) if digits else None)

    def atom(self) -> Node:
        char = self.take()
        if char == "(":
            if self.peek() == "?":
                self.take()
                nxt = self.take()
                if nxt == ":":
                    node = self.alternation()
                    self.expect(")")
                    return Group(node, None)
                if nxt in ("=", "!"):
                    # Lookaheads: we cannot express them regularly in
                    # general; a positive lookahead is dropped (language
                    # over-approximation, sound for refinement use).
                    self.alternation()
                    self.expect(")")
                    return Seq(())
                raise RegexError(f"unsupported group (?{nxt} in {self.source!r}")
            self.group_count += 1
            index = self.group_count
            node = self.alternation()
            self.expect(")")
            return Group(node, index)
        if char == "[":
            return Chars(self._char_class())
        if char == ".":
            return Chars(DOT)
        if char == "^":
            return Anchor("start")
        if char == "$":
            return Anchor("end")
        if char == "\\":
            return self._escape()
        if char in ")|":
            raise RegexError(f"unexpected {char!r} in {self.source!r}")
        return Literal(char)

    def _escape(self) -> Node:
        char = self.take()
        if char in _CLASS_ESCAPES:
            return Chars(_CLASS_ESCAPES[char])
        if char in _CHAR_ESCAPES:
            return Literal(_CHAR_ESCAPES[char])
        if char == "x":
            hex_digits = self.take() + self.take()
            return Literal(chr(int(hex_digits, 16)))
        if char == "b":
            # word boundary: zero-width; drop (over-approximation)
            return Seq(())
        if char.isdigit():
            raise RegexError("backreferences are not regular")
        return Literal(char)

    def _char_class(self) -> CharSet:
        negate = False
        if self.peek() == "^":
            self.take()
            negate = True
        members: list[CharSet] = []
        first = True
        while True:
            char = self.peek()
            if char is None:
                raise RegexError(f"unterminated class in {self.source!r}")
            if char == "]" and not first:
                self.take()
                break
            first = False
            item = self._class_item()
            if (
                isinstance(item, str)
                and self.peek() == "-"
                and self.pos + 1 < len(self.source)
                and self.source[self.pos + 1] != "]"
            ):
                self.take()  # "-"
                upper = self._class_item()
                if not isinstance(upper, str):
                    raise RegexError(f"bad range in class in {self.source!r}")
                members.append(CharSet.range(item, upper))
            elif isinstance(item, str):
                members.append(CharSet.of(item))
            else:
                members.append(item)
        charset = CharSet.union_of(members)
        return charset.complement() if negate else charset

    def _class_item(self) -> str | CharSet:
        char = self.take()
        if char == "\\":
            esc = self.take()
            if esc in _CLASS_ESCAPES:
                return _CLASS_ESCAPES[esc]
            if esc in _CHAR_ESCAPES:
                return _CHAR_ESCAPES[esc]
            if esc == "x":
                return chr(int(self.take() + self.take(), 16))
            return esc
        if char == "[" and self.peek() == ":":
            return self._posix_class()
        return char

    def _posix_class(self) -> CharSet:
        self.take()  # ":"
        name = ""
        while self.peek() not in (":", None):
            name += self.take()
        self.expect(":")
        self.expect("]")
        table = {
            "digit": DIGITS,
            "alpha": CharSet.range("a", "z").union(CharSet.range("A", "Z")),
            "alnum": ALNUM,
            "space": SPACE,
            "upper": CharSet.range("A", "Z"),
            "lower": CharSet.range("a", "z"),
            "punct": CharSet([(0x21, 0x2F), (0x3A, 0x40), (0x5B, 0x60), (0x7B, 0x7E)]),
            "xdigit": DIGITS.union(CharSet.range("a", "f")).union(CharSet.range("A", "F")),
        }
        if name not in table:
            raise RegexError(f"unknown POSIX class [:{name}:]")
        return table[name]


def parse_regex(source: str, ignore_case: bool = False) -> Pattern:
    """Parse a bare regex (no delimiters) into a :class:`Pattern`."""
    parser = _Parser(source)
    root = parser.parse()
    return Pattern(
        root=root,
        ignore_case=ignore_case,
        group_count=parser.group_count,
        source=source,
    )


def parse_php_regex(delimited: str) -> Pattern:
    """Parse a PHP ``preg_*`` pattern with delimiters and flags.

    ``"/^[\\d]+$/i"`` → the pattern ``^[\\d]+$`` with ignore-case set.
    """
    if len(delimited) < 2:
        raise RegexError(f"pattern too short: {delimited!r}")
    open_delim = delimited[0]
    close_delim = {"(": ")", "[": "]", "{": "}", "<": ">"}.get(open_delim, open_delim)
    end = delimited.rfind(close_delim)
    if end <= 0:
        raise RegexError(f"missing closing delimiter in {delimited!r}")
    body = delimited[1:end]
    flags = delimited[end + 1 :]
    for flag in flags:
        if flag not in "imsxuUD":
            raise RegexError(f"unsupported flag {flag!r} in {delimited!r}")
    return parse_regex(body, ignore_case="i" in flags)


# --------------------------------------------------------------------------
# Compilation to NFA
# --------------------------------------------------------------------------


def _case_fold(charset: CharSet) -> CharSet:
    """Add the case-swapped ASCII letters (enough for web-code patterns)."""
    extra = []
    for lo, hi in charset.intervals:
        a_lo, a_hi = max(lo, ord("a")), min(hi, ord("z"))
        if a_lo <= a_hi:
            extra.append((a_lo - 32, a_hi - 32))
        b_lo, b_hi = max(lo, ord("A")), min(hi, ord("Z"))
        if b_lo <= b_hi:
            extra.append((b_lo + 32, b_hi + 32))
    return charset.union(CharSet(extra))


@dataclass
class _Compiled:
    """Compilation result for one node under search semantics.

    ``starts_anchored``/``ends_anchored`` record whether a ``^``/``$``
    anchor constrains the corresponding side.
    """

    nfa: NFA
    starts_anchored: bool
    ends_anchored: bool


def _compile(node: Node, ignore_case: bool) -> _Compiled:
    if isinstance(node, Chars):
        charset = _case_fold(node.charset) if ignore_case else node.charset
        return _Compiled(NFA.from_charset(charset), False, False)
    if isinstance(node, Literal):
        if ignore_case:
            nfa = NFA.epsilon_language()
            for char in node.text:
                nfa = nfa.concat(NFA.from_charset(_case_fold(CharSet.of(char))))
            return _Compiled(nfa, False, False)
        return _Compiled(NFA.from_string(node.text), False, False)
    if isinstance(node, Anchor):
        return _Compiled(
            NFA.epsilon_language(),
            node.kind == "start",
            node.kind == "end",
        )
    if isinstance(node, Group):
        return _compile(node.node, ignore_case)
    if isinstance(node, Seq):
        if not node.parts:
            return _Compiled(NFA.epsilon_language(), False, False)
        parts = [_compile(p, ignore_case) for p in node.parts]
        nfa = parts[0].nfa
        for part in parts[1:]:
            nfa = nfa.concat(part.nfa)
        return _Compiled(nfa, parts[0].starts_anchored, parts[-1].ends_anchored)
    if isinstance(node, Alt):
        parts = [_compile(p, ignore_case) for p in node.options]
        nfa = parts[0].nfa
        for part in parts[1:]:
            nfa = nfa.union(part.nfa)
        # Mixed anchoring across alternatives: be conservative (treat the
        # whole alternation as unanchored unless every branch is anchored).
        return _Compiled(
            nfa,
            all(p.starts_anchored for p in parts),
            all(p.ends_anchored for p in parts),
        )
    if isinstance(node, Repeat):
        inner = _compile(node.node, ignore_case)
        return _Compiled(inner.nfa.repeat(node.low, node.high), False, False)
    raise TypeError(f"unknown node {node!r}")


def compile_pattern(pattern: Pattern) -> NFA:
    """NFA of the strings the pattern matches exactly (anchors ignored)."""
    return _compile(pattern.root, pattern.ignore_case).nfa


def full_match_language(pattern: Pattern) -> NFA:
    """Language under full-string (both-ends-anchored) semantics."""
    return compile_pattern(pattern)


def search_language(pattern: Pattern) -> NFA:
    """Language of strings that *contain* a match (``preg_match`` truth).

    Anchors written in the pattern constrain the corresponding side; an
    unanchored side gains a ``Σ*`` wing.  This is exactly the semantics
    that makes the paper's Figure 2 check (``eregi('[0-9]+', …)`` with no
    anchors) pass attack strings through.
    """
    compiled = _compile(pattern.root, pattern.ignore_case)
    nfa = compiled.nfa
    if not compiled.starts_anchored:
        nfa = NFA.any_string().concat(nfa)
    if not compiled.ends_anchored:
        nfa = nfa.concat(NFA.any_string())
    return nfa


def literal_prefix(pattern: Pattern) -> str:
    """Longest fixed prefix every match starts with (used for heuristics)."""
    prefix = []
    node = pattern.root
    parts = node.parts if isinstance(node, Seq) else (node,)
    for part in parts:
        if isinstance(part, Literal):
            prefix.append(part.text)
        elif isinstance(part, Anchor):
            continue
        else:
            break
    return "".join(prefix)
