"""Context-free grammars with taint-labeled nonterminals.

The string-taint analysis (paper §3.1) represents the set of query
strings a program can generate as a CFG whose *nonterminals mirror the
program's dataflow* (one per SSA-style assignment, Figure 5).  Untrusted
sources are marked by labeling their nonterminals ``DIRECT`` or
``INDIRECT``; Theorem 3.1 guarantees the labels survive intersection and
transducer images.

Symbols
-------
A production right-hand side is a tuple of:

* :class:`Lit` — a literal string chunk (possibly multi-character; the
  constant query fragments of Definition 2.1),
* a :class:`~repro.lang.charset.CharSet` — one character from a set
  (compact encoding of e.g. ``[0-9]``), and
* :class:`Nonterminal` values.

Keeping literals multi-character keeps real query grammars small; the
intersection/image algorithms handle them natively.
"""

from __future__ import annotations

import hashlib
import itertools
from collections import deque
from typing import Iterable, Iterator, Sequence

from .charset import CharSet

#: Taint labels (paper §2.2).
DIRECT = "direct"
INDIRECT = "indirect"


class Lit:
    """A literal terminal string (may be several characters, never None).

    Hand-rolled (not a dataclass) with the hash precomputed at
    construction: Lit hashing dominates rhs dedup and sentential-form
    dedup in hot loops, and strings already cache their own hash, so the
    per-instance copy makes ``hash(lit)`` a slot load.
    """

    __slots__ = ("text", "_hash")

    def __init__(self, text: str) -> None:
        self.text = text
        self._hash = hash(text)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Lit) and other.text == self.text

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Lit, (self.text,))

    def __repr__(self) -> str:
        return f"Lit({self.text!r})"


class Nonterminal:
    """An interned grammar variable.  Identity-based: two nonterminals are
    equal only if they are the same object, so fresh variables are cheap."""

    __slots__ = ("name", "uid")
    _counter = itertools.count()

    def __init__(self, name: str) -> None:
        self.name = name
        self.uid = next(Nonterminal._counter)

    def __repr__(self) -> str:
        return self.name

    def __lt__(self, other: "Nonterminal") -> bool:
        return self.uid < other.uid


Symbol = Lit | CharSet | Nonterminal
Rhs = tuple[Symbol, ...]

#: Process-wide sample-string memo shared across Grammar instances,
#: keyed on (shape fingerprint, root position, limit, max_len).  Safe
#: because samples are plain strings (no nonterminal names leak) and the
#: sampling BFS depends only on what the shape fingerprint covers.
_SHARED_SAMPLES: dict[tuple[str, int, int, int], list[str]] = {}


def is_terminal(symbol: Symbol) -> bool:
    return isinstance(symbol, (Lit, CharSet))


class Grammar:
    """A mutable CFG with per-nonterminal taint labels."""

    def __init__(self, start: Nonterminal | None = None) -> None:
        self.start = start
        self.productions: dict[Nonterminal, list[Rhs]] = {}
        self.labels: dict[Nonterminal, set[str]] = {}
        #: provenance side-tables (:mod:`repro.analysis.provenance`).
        #: ``origins`` maps a nonterminal to the *event* that minted it —
        #: an untrusted-source birth, a sanitizer/FST image, a
        #: refinement, a widening — as a plain picklable dict.
        #: ``prov_inputs`` records dataflow edges the productions alone
        #: cannot show: an operation like a transducer image absorbs a
        #: structurally fresh grammar, so its result nonterminal has no
        #: production path back to the operand; the edge lives here.
        #: Both are deliberately excluded from :meth:`canonical_form`
        #: (and hence :meth:`fingerprint`): provenance describes *where
        #: in the program* a grammar came from, which must not perturb
        #: content-addressed caching, and is re-derived per page when a
        #: cached verdict is replayed.
        self.origins: dict[Nonterminal, dict] = {}
        self.prov_inputs: dict[Nonterminal, tuple[Nonterminal, ...]] = {}
        #: mutation counter + derived-value memos.  ``_rev`` ticks on
        #: every ``add``/``add_label``; memo entries carry a validity
        #: stamp (rev, |V|, |R|) so even mutations that bypass the
        #: methods (``productions.setdefault`` from the bridge/absdom
        #: layers) are caught by the size components.
        self._rev = 0
        #: per-lhs dedup cell ``[rule_set, list_len_at_last_sync]``; the
        #: length component detects lists touched behind our back.
        self._dedup: dict[Nonterminal, list] = {}
        self._memo: dict = {}
        #: running rule count.  Sound because every rule-list mutation in
        #: the codebase goes through ``add``/``_bulk_add`` (external
        #: callers only ever ``productions.setdefault(nt, [])`` to force a
        #: nonterminal into existence, which adds no rules) — the
        #: kernel-equivalence property tests cross-check this invariant.
        self._nrules = 0

    # -- construction -----------------------------------------------------

    def fresh(self, name: str) -> Nonterminal:
        nt = Nonterminal(name)
        self.productions.setdefault(nt, [])
        return nt

    def add(self, lhs: Nonterminal, rhs: Sequence[Symbol]) -> None:
        """Add ``lhs -> rhs`` (dedups; drops empty-Lit clutter)."""
        for s in rhs:
            if isinstance(s, Lit) and s.text == "":
                cleaned = tuple(
                    x for x in rhs if not (isinstance(x, Lit) and x.text == "")
                )
                break
        else:
            cleaned = rhs if type(rhs) is tuple else tuple(rhs)
        rules = self.productions.setdefault(lhs, [])
        cached = self._dedup.get(lhs)
        if cached is None or cached[1] != len(rules):
            # first add for this lhs, or the rule list was touched
            # behind our back (structural_copy, direct appends)
            cached = [set(rules), len(rules)]
            self._dedup[lhs] = cached
        rule_set = cached[0]
        if cleaned not in rule_set:
            rules.append(cleaned)
            rule_set.add(cleaned)
            cached[1] = len(rules)
            self._rev += 1
            self._nrules += 1

    def _bulk_add(self, lhs: Nonterminal, rhss: Iterable[Rhs]) -> None:
        """Exactly ``for rhs in rhss: self.add(lhs, rhs)``, amortized.

        The copy-heavy operations (trim, subgrammar, grammar absorption,
        the triple materialization in :mod:`repro.lang.image`) funnel
        hundreds of thousands of already-clean rules through ``add``;
        hoisting the dedup-cell bookkeeping out of the loop roughly
        halves their cost while keeping order and dedup semantics
        identical."""
        rules = self.productions.setdefault(lhs, [])
        cached = self._dedup.get(lhs)
        if cached is None or cached[1] != len(rules):
            cached = [set(rules), len(rules)]
            self._dedup[lhs] = cached
        rule_set = cached[0]
        append = rules.append
        seen_add = rule_set.add
        before = len(rules)
        for rhs in rhss:
            for s in rhs:
                if type(s) is Lit and not s.text:
                    rhs = tuple(
                        x for x in rhs if not (type(x) is Lit and not x.text)
                    )
                    break
            else:
                if type(rhs) is not tuple:
                    rhs = tuple(rhs)
            if rhs not in rule_set:
                seen_add(rhs)
                append(rhs)
        added = len(rules) - before
        if added:
            cached[1] = len(rules)
            self._rev += added
            self._nrules += added

    def add_label(self, nt: Nonterminal, label: str) -> None:
        self.labels.setdefault(nt, set()).add(label)
        self.productions.setdefault(nt, [])
        self._rev += 1

    def set_origin(
        self,
        nt: Nonterminal,
        event: dict,
        inputs: Sequence[Nonterminal] = (),
    ) -> None:
        """Record the provenance event that produced ``nt`` (first writer
        wins: a nonterminal is minted by exactly one operation) and the
        operand nonterminals it consumed."""
        self.origins.setdefault(nt, event)
        if inputs:
            self.add_prov_inputs(nt, inputs)

    def add_prov_inputs(
        self, nt: Nonterminal, inputs: Sequence[Nonterminal]
    ) -> None:
        current = self.prov_inputs.get(nt, ())
        fresh = tuple(i for i in inputs if i not in current)
        if fresh:
            self.prov_inputs[nt] = current + fresh

    def copy_labels(self, src: Nonterminal, dst: Nonterminal) -> None:
        """The paper's TAINTIF: dst inherits every label of src."""
        for label in self.labels.get(src, ()):
            self.add_label(dst, label)

    def has_label(self, nt: Nonterminal, label: str | None = None) -> bool:
        if label is None:
            return bool(self.labels.get(nt))
        return label in self.labels.get(nt, ())

    def labeled_nonterminals(self, label: str | None = None) -> list[Nonterminal]:
        return [nt for nt in self.productions if self.has_label(nt, label)]

    # -- structure queries -------------------------------------------------

    def nonterminals(self) -> list[Nonterminal]:
        return list(self.productions)

    def num_productions(self) -> int:
        return self._nrules

    def rhs_nonterminals(self, rhs: Rhs) -> Iterator[Nonterminal]:
        for symbol in rhs:
            if isinstance(symbol, Nonterminal):
                yield symbol

    def _stamp(self) -> tuple[int, int, int]:
        """Validity stamp for derived-value memos (see ``_rev``)."""
        return (self._rev, len(self.productions), self._nrules)

    def _memo_get(self, key):
        entry = self._memo.get(key)
        if entry is not None and entry[0] == self._stamp():
            return entry[1]
        return None

    def _memo_set(self, key, value) -> None:
        if len(self._memo) > 256:
            self._memo.clear()
        self._memo[key] = (self._stamp(), value)

    def reachable(self, root: Nonterminal | None = None) -> set[Nonterminal]:
        root = root or self.start
        if root is None:
            return set()
        cached = self._memo_get(("reach", root))
        if cached is not None:
            return set(cached)
        seen = {root}
        queue = deque([root])
        while queue:
            nt = queue.popleft()
            for rhs in self.productions.get(nt, ()):
                for ref in rhs:
                    if isinstance(ref, Nonterminal) and ref not in seen:
                        seen.add(ref)
                        queue.append(ref)
        self._memo_set(("reach", root), seen)
        return set(seen)

    def productive(self) -> set[Nonterminal]:
        """Nonterminals that derive at least one terminal string.

        Worklist formulation: each rule keeps a count of its still
        unproductive nonterminal references; when a nonterminal becomes
        productive it decrements the counts of the rules waiting on it.
        Linear in the grammar size instead of a quadratic re-scan.
        """
        cached = self._memo_get(("productive",))
        if cached is not None:
            return set(cached)
        productive: set[Nonterminal] = set()
        waiting: dict[Nonterminal, list[tuple[Nonterminal, list]]] = {}
        queue: deque[Nonterminal] = deque()
        for nt, rules in self.productions.items():
            for rhs in rules:
                refs = [s for s in rhs if isinstance(s, Nonterminal)]
                if not refs:
                    if nt not in productive:
                        productive.add(nt)
                        queue.append(nt)
                    continue
                # the pending-count cell is shared by every waiter entry
                cell = [0]
                pending = 0
                for ref in refs:
                    if ref in productive:
                        continue
                    pending += 1
                    waiting.setdefault(ref, []).append((nt, cell))
                cell[0] = pending
                if pending == 0 and nt not in productive:
                    productive.add(nt)
                    queue.append(nt)
        while queue:
            ready = queue.popleft()
            for waiter, cell in waiting.pop(ready, ()):
                cell[0] -= 1
                if cell[0] == 0 and waiter not in productive:
                    productive.add(waiter)
                    queue.append(waiter)
        self._memo_set(("productive",), productive)
        return set(productive)

    def trim(self, root: Nonterminal | None = None) -> "Grammar":
        """Remove unreachable and unproductive nonterminals."""
        root = root or self.start
        productive = self.productive()
        result = Grammar(root)
        if root not in productive:
            if root is not None:
                result.productions[root] = []
                result.copy_labels_from(self, [root])
            return result
        keep = {
            nt
            for nt in self.reachable(root)
            if nt in productive
        }
        # sorted by uid (= creation order): keeps the production-dict
        # insertion order deterministic across runs and processes, which
        # downstream ordering (maximal_labeled, canonical fingerprints,
        # report rendering) depends on.  Identity-based set iteration
        # would leak memory addresses into report ordering.
        for nt in sorted(keep):
            kept_rules = []
            for rhs in self.productions.get(nt, ()):
                for s in rhs:
                    if isinstance(s, Nonterminal) and s not in keep:
                        break
                else:
                    kept_rules.append(rhs)
            result._bulk_add(nt, kept_rules)
        result.copy_labels_from(self, keep)
        return result

    def copy_labels_from(self, other: "Grammar", nts: Iterable[Nonterminal]) -> None:
        for nt in nts:
            for label in other.labels.get(nt, ()):
                self.add_label(nt, label)

    def subgrammar(self, root: Nonterminal) -> "Grammar":
        """The grammar restricted to symbols reachable from ``root``."""
        result = Grammar(root)
        keep = self.reachable(root)
        for nt in sorted(keep):  # uid order: deterministic across processes
            result._bulk_add(nt, self.productions.get(nt, ()))
        result.copy_labels_from(self, keep)
        return result

    def structural_copy(self) -> "Grammar":
        """A shallow structural copy: fresh production/label containers,
        shared :class:`Nonterminal` objects and rhs tuples.  Mutating the
        copy (``add``, ``add_label``) never touches the original — this is
        what the content-addressed caches hand out so cache entries stay
        immutable."""
        result = Grammar(self.start)
        result.productions = {nt: list(rules) for nt, rules in self.productions.items()}
        result.labels = {nt: set(labels) for nt, labels in self.labels.items()}
        result.origins = dict(self.origins)
        result.prov_inputs = dict(self.prov_inputs)
        result._nrules = self._nrules
        return result

    # -- content addressing -------------------------------------------------

    def canonical_order(self, root: Nonterminal) -> list[Nonterminal]:
        """Nonterminals reachable from ``root`` in canonical (BFS over
        production insertion order) order.  Position in this list is a
        nonterminal's *canonical index* — stable across processes and
        independent of names, uids, and memory addresses."""
        cached = self._memo_get(("order", root))
        if cached is not None:
            return list(cached)
        order = [root]
        seen = {root}
        queue = deque([root])
        while queue:
            nt = queue.popleft()
            for rhs in self.productions.get(nt, ()):
                for ref in rhs:
                    if isinstance(ref, Nonterminal) and ref not in seen:
                        seen.add(ref)
                        order.append(ref)
                        queue.append(ref)
        self._memo_set(("order", root), order)
        return list(order)

    def canonical_form(self, root: Nonterminal, order: list[Nonterminal] | None = None) -> str:
        """A name-independent serialization of the grammar rooted at
        ``root``: nonterminals are renamed to their canonical index, and
        productions are listed in insertion order with taint labels.

        Two grammars have equal canonical forms iff they are isomorphic
        as *labeled, production-ordered* grammars — same language, same
        taint labeling, and the same deterministic behaviour under every
        downstream algorithm that walks productions in order.  That is
        the invariant the content-addressed verdict/image caches rely on
        (see DESIGN.md "Content-addressed caching").
        """
        if order is None:
            order = self.canonical_order(root)
        index = {nt: i for i, nt in enumerate(order)}
        pieces: list[str] = []
        for i, nt in enumerate(order):
            labels = ",".join(sorted(self.labels.get(nt, ())))
            pieces.append(f"N{i}[{labels}]:")
            for rhs in self.productions.get(nt, ()):
                pieces.append(
                    "->" + " ".join(_canonical_symbol(s, index) for s in rhs)
                )
        return "\n".join(pieces)

    def fingerprint(self, root: Nonterminal, order: list[Nonterminal] | None = None) -> str:
        """SHA-256 content address of :meth:`canonical_form`."""
        if order is None:
            cached = self._memo_get(("fp", root))
            if cached is not None:
                return cached
        form = self.canonical_form(root, order=order)
        digest = hashlib.sha256(form.encode("utf-8")).hexdigest()
        if order is None:
            self._memo_set(("fp", root), digest)
        return digest

    def shape_fingerprint(self) -> str:
        """SHA-256 of the grammar *exactly as algorithms consume it* —
        production-dict insertion order, per-rule order, and labels —
        with nonterminal names abstracted to insertion ordinals.

        Sits between :meth:`fingerprint` (fully canonical: pins neither
        names nor insertion order) and raw identity.  Two grammars with
        equal shape fingerprints drive any deterministic construction
        that iterates ``productions`` in insertion order — the
        transducer image in particular — through the *same* sequence of
        operations; only the name strings threaded into generated
        nonterminals differ, and those the image cache re-derives on a
        hit from its name recipes.  The weaker canonical fingerprint
        remains the right key for the verdict cache, which re-binds
        names on replay by canonical index."""
        cached = self._memo_get(("shape_fp",))
        if cached is not None:
            return cached
        ordinal = {nt: i for i, nt in enumerate(self.productions)}
        pieces: list[str] = []
        for nt, i in ordinal.items():
            labels = ",".join(sorted(self.labels.get(nt, ())))
            pieces.append(f"{i}[{labels}]:")
            for rhs in self.productions.get(nt, ()):
                pieces.append(
                    "->"
                    + " ".join(
                        f"N{ordinal.get(s, -1)}" if isinstance(s, Nonterminal)
                        else _canonical_symbol(s, ordinal)
                        for s in rhs
                    )
                )
        digest = hashlib.sha256("\n".join(pieces).encode("utf-8")).hexdigest()
        self._memo_set(("shape_fp",), digest)
        return digest

    def cyclic_nonterminals(self) -> set[Nonterminal]:
        """Nonterminals on a reference cycle (Tarjan SCC, iterative)."""
        index: dict[Nonterminal, int] = {}
        lowlink: dict[Nonterminal, int] = {}
        on_stack: set[Nonterminal] = set()
        stack: list[Nonterminal] = []
        counter = itertools.count()
        cyclic: set[Nonterminal] = set()

        successors = {
            nt: [ref for rhs in rules for ref in self.rhs_nonterminals(rhs)]
            for nt, rules in self.productions.items()
        }

        for root in self.productions:
            if root in index:
                continue
            work = [(root, 0)]
            while work:
                node, child_idx = work.pop()
                if child_idx == 0:
                    index[node] = lowlink[node] = next(counter)
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                children = successors.get(node, [])
                for i in range(child_idx, len(children)):
                    child = children[i]
                    if child not in index:
                        work.append((node, i + 1))
                        work.append((child, 0))
                        recurse = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member is node:
                            break
                    if len(component) > 1:
                        cyclic.update(component)
                    else:
                        member = component[0]
                        if any(child is member for child in successors.get(member, [])):
                            cyclic.add(member)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return cyclic

    # -- language queries --------------------------------------------------

    def charset_closure(self, root: Nonterminal) -> CharSet:
        """Union of all characters any string of ``root`` may contain."""
        cached = self._memo_get(("closure", root))
        if cached is not None:
            return cached
        parts: list[CharSet] = []
        for nt in self.reachable(root):
            for rhs in self.productions.get(nt, ()):
                for symbol in rhs:
                    if isinstance(symbol, Lit):
                        parts.append(CharSet.of(symbol.text))
                    elif isinstance(symbol, CharSet):
                        parts.append(symbol)
        chars = CharSet.union_of(parts)
        self._memo_set(("closure", root), chars)
        return chars

    def sample_strings(
        self,
        root: Nonterminal,
        limit: int = 20,
        max_len: int = 200,
        *,
        shared: bool = False,
    ) -> list[str]:
        """Up to ``limit`` distinct strings of L(root), shortest-ish first.

        Breadth-first expansion of sentential forms; charset symbols
        contribute their sample character (plus ``'`` if present, since
        quotes are what the analyses care about).

        ``shared=True`` additionally consults a process-wide memo keyed
        on the shape fingerprint.  Only pass it for grammars that are no
        longer mutated (policy scope subgrammars): fingerprinting a
        still-growing grammar re-hashes everything on every call.
        """
        memo_key = ("samples", root, limit, max_len)
        cached = self._memo_get(memo_key)
        if cached is not None:
            return list(cached)
        shared_key = None
        if shared:
            # Cross-grammar memo: the sampled strings contain no
            # nonterminal names, and the BFS below is fully determined
            # by production insertion order + rule content — exactly
            # what shape_fingerprint() pins.  Policy cascades rebuild
            # identical scope subgrammars per namespace; this collapses
            # those repeats.
            position = next(
                (i for i, nt in enumerate(self.productions) if nt is root), -1
            )
            shared_key = (self.shape_fingerprint(), position, limit, max_len)
            hit = _SHARED_SAMPLES.get(shared_key)
            if hit is not None:
                self._memo_set(memo_key, hit)
                return list(hit)
        results: list[str] = []
        seen_forms: set[tuple] = set()
        seen_add = seen_forms.add
        # Sentential forms hold literals as plain ``str`` (not Lit):
        # CPython caches str hashes in C, so deduplicating a form tuple
        # skips one Python-level __hash__ call per literal.  The Lit ↔
        # str bijection (equal texts ⇔ equal objects in a form slot)
        # keeps dedup decisions, queue order, and results identical to
        # the Lit-based walk.  Production rhss are converted once each.
        conv_cache: dict[int, tuple] = {}
        # each queue entry carries a scan hint: every symbol left of the
        # previous expansion point is a literal, so the search for the
        # first non-literal can resume there instead of rescanning
        queue: deque[tuple[tuple, int]] = deque([((root,), 0)])
        pop = queue.popleft
        push = queue.append
        productions = self.productions
        steps = 0
        seen_count = 0
        while queue and len(results) < limit and steps < 20000:
            steps += 1
            form, scan = pop()
            # find first nonterminal / charset
            idx = None
            n = len(form)
            while scan < n:
                if type(form[scan]) is not str:
                    idx = scan
                    break
                scan += 1
            if idx is None:
                text = "".join(form)
                if len(text) <= max_len and text not in results:
                    results.append(text)
                continue
            symbol = form[idx]
            if type(symbol) is CharSet:
                choices = {symbol.sample_char()}
                if "'" in symbol:
                    choices.add("'")
                if "-" in symbol:
                    choices.add("-")
                # sorted: set iteration over strings is hash-seed
                # dependent, and samples must not vary across processes
                for char in sorted(choices):
                    expanded = form[:idx] + (char,) + form[idx + 1 :]
                    # single-hash membership: add() and compare sizes
                    # instead of a `not in` probe followed by add()
                    seen_add(expanded)
                    if len(seen_forms) != seen_count:
                        seen_count += 1
                        push((expanded, idx))
                continue
            prefix = form[:idx]
            suffix = form[idx + 1 :]
            for rhs in productions.get(symbol, ()):
                conv = conv_cache.get(id(rhs))
                if conv is None:
                    conv = tuple(
                        s.text if type(s) is Lit else s for s in rhs
                    )
                    conv_cache[id(rhs)] = conv
                expanded = prefix + conv + suffix
                if len(expanded) <= 40:
                    seen_add(expanded)
                    if len(seen_forms) != seen_count:
                        seen_count += 1
                        push((expanded, idx))
        self._memo_set(memo_key, results)
        if shared_key is not None:
            if len(_SHARED_SAMPLES) > 4096:
                _SHARED_SAMPLES.clear()
            _SHARED_SAMPLES[shared_key] = results
        return list(results)

    def enumerate_finite(
        self,
        root: Nonterminal,
        max_strings: int = 64,
        max_charset: int = 16,
        max_len: int = 200,
    ) -> list[str] | None:
        """All strings of ``L(root)`` if the language is finite and small.

        Returns None when the language is (or may be) infinite, when a
        charset symbol is too wide to enumerate, or when the bounds are
        exceeded.  Used by the token bridge to handle whitelist values
        (``ASC``/``DESC`` …) exactly.
        """
        scope = self.subgrammar(root).trim(root)
        if scope.cyclic_nonterminals():
            return None
        results: set[str] = set()
        forms: deque[Rhs] = deque([(root,)])
        steps = 0
        while forms:
            steps += 1
            if steps > 10_000:
                return None
            form = forms.popleft()
            idx = next(
                (i for i, s in enumerate(form) if not isinstance(s, Lit)), None
            )
            if idx is None:
                text = "".join(s.text for s in form)
                if len(text) > max_len:
                    return None
                results.add(text)
                if len(results) > max_strings:
                    return None
                continue
            symbol = form[idx]
            if isinstance(symbol, CharSet):
                if symbol.size() > max_charset:
                    return None
                for char in symbol.chars(limit=max_charset):
                    forms.append(form[:idx] + (Lit(char),) + form[idx + 1 :])
                continue
            for rhs in scope.productions.get(symbol, ()):
                forms.append(form[:idx] + rhs + form[idx + 1 :])
        return sorted(results)

    def affix_summary(
        self, root: Nonterminal
    ) -> tuple[str, str, int] | None:
        """``(forced_prefix, forced_suffix, min_length)`` of L(root).

        Sound under-approximations: every string of the language starts
        with ``forced_prefix``, ends with ``forced_suffix``, and is at
        least ``min_length`` characters long.  Returns ``None`` when the
        language is provably empty.  Cycles and charset alternatives
        simply truncate the forced affix (to the empty string in the
        worst case), so the summary is always a valid *necessary*
        condition for membership — the include resolver uses it to prune
        candidate paths before the exact :meth:`generates` test.
        """
        cached = self._memo_get(("affix", root))
        if cached is not None:
            return cached[0]
        min_len = self._min_lengths(root).get(root)
        if min_len is None:
            self._memo_set(("affix", root), (None,))
            return None
        prefix = self._forced_affix(root, reverse=False)
        suffix = self._forced_affix(root, reverse=True)
        summary = (prefix, suffix, min_len)
        self._memo_set(("affix", root), (summary,))
        return summary

    def _min_lengths(self, root: Nonterminal) -> dict[Nonterminal, int]:
        """Shortest derivable string length per reachable nonterminal.

        Nonterminals with an empty language (unproductive, or undefined
        references) are absent from the result.
        """
        reach = self.reachable(root)
        lengths: dict[Nonterminal, int] = {}
        changed = True
        while changed:
            changed = False
            for nt in reach:
                best = lengths.get(nt)
                for rhs in self.productions.get(nt, ()):
                    total = 0
                    for symbol in rhs:
                        if isinstance(symbol, Lit):
                            total += len(symbol.text)
                        elif isinstance(symbol, CharSet):
                            if symbol.size() == 0:
                                break
                            total += 1
                        else:
                            ref = lengths.get(symbol)
                            if ref is None:
                                break
                            total += ref
                    else:
                        if best is None or total < best:
                            best = total
                if best is not None and lengths.get(nt) != best:
                    lengths[nt] = best
                    changed = True
        return lengths

    def _forced_affix(self, root: Nonterminal, *, reverse: bool) -> str:
        """Longest literal prefix (or suffix, ``reverse=True``) every
        string of L(root) must carry.  Under-approximate but sound."""
        memo: dict[Nonterminal, tuple[str, bool] | None] = {}

        def symbol_affix(symbol) -> tuple[str, bool]:
            # (affix, exact): exact means the symbol derives exactly
            # that one string, so a following symbol's affix may extend it.
            if isinstance(symbol, Lit):
                text = symbol.text[::-1] if reverse else symbol.text
                return text, True
            if isinstance(symbol, CharSet):
                if symbol.size() == 1:
                    return next(symbol.chars(limit=1)), True
                return "", False
            return nt_affix(symbol)

        def seq_affix(rhs: Rhs) -> tuple[str, bool]:
            parts: list[str] = []
            for symbol in reversed(rhs) if reverse else rhs:
                affix, exact = symbol_affix(symbol)
                parts.append(affix)
                if not exact:
                    return "".join(parts), False
            return "".join(parts), True

        def nt_affix(nt: Nonterminal) -> tuple[str, bool]:
            if nt in memo:
                entry = memo[nt]
                # A cycle (entry is None) forces the affix open here.
                return ("", False) if entry is None else entry
            rhss = self.productions.get(nt)
            if not rhss:
                memo[nt] = ("", False)
                return memo[nt]
            memo[nt] = None
            options = [seq_affix(rhs) for rhs in rhss]
            common = options[0][0]
            for text, _ in options[1:]:
                limit = min(len(common), len(text))
                i = 0
                while i < limit and common[i] == text[i]:
                    i += 1
                common = common[:i]
            exact = all(e for _, e in options) and all(
                text == common for text, _ in options
            )
            memo[nt] = (common, exact)
            return memo[nt]

        affix, _ = nt_affix(root)
        return affix[::-1] if reverse else affix

    def generates(self, root: Nonterminal, text: str) -> bool:
        """Membership test: does ``root`` derive ``text``?

        A bottom-up span table (CYK-style, but directly over our symbol
        kinds) with a per-span fixpoint so cyclic/unit/epsilon rules are
        handled exactly.  Not meant for production use — the policy
        checks use automata intersections — but invaluable for tests and
        for validating witness strings.
        """
        n = len(text)
        reach = [nt for nt in self.reachable(root) if nt in self.productions]
        table: set[tuple[Nonterminal, int, int]] = set()

        def seq_derives(rhs: Rhs, k: int, i: int, j: int) -> bool:
            if k == len(rhs):
                return i == j
            symbol = rhs[k]
            if isinstance(symbol, Lit):
                split = i + len(symbol.text)
                return (
                    split <= j
                    and text[i:split] == symbol.text
                    and seq_derives(rhs, k + 1, split, j)
                )
            if isinstance(symbol, CharSet):
                return i < j and text[i] in symbol and seq_derives(rhs, k + 1, i + 1, j)
            return any(
                (symbol, i, split) in table and seq_derives(rhs, k + 1, split, j)
                for split in range(i, j + 1)
            )

        for length in range(n + 1):
            spans = [(i, i + length) for i in range(n - length + 1)]
            changed = True
            while changed:
                changed = False
                for i, j in spans:
                    for nt in reach:
                        if (nt, i, j) in table:
                            continue
                        if any(
                            seq_derives(rhs, 0, i, j)
                            for rhs in self.productions.get(nt, ())
                        ):
                            table.add((nt, i, j))
                            changed = True
        return (root, 0, n) in table

    # -- transformation ----------------------------------------------------

    def normalized(self, root: Nonterminal | None = None) -> "Grammar":
        """Equivalent grammar with every rhs of length ≤ 2 (paper's NORMALIZE).

        Long right-hand sides are split with fresh unlabeled chain
        variables; labels on original nonterminals are preserved.

        Memoized per (grammar revision, root): policy cascades run many
        intersection queries against one frozen scope subgrammar, and
        every consumer (:class:`~repro.lang.intersect._PairTable`,
        :func:`~repro.lang.image.fst_image`) treats the result as
        read-only.
        """
        root = root or self.start
        memo_key = ("normalized", root)
        cached = self._memo_get(memo_key)
        if cached is not None:
            return cached
        result = Grammar(root)
        # chain variable -> the original lhs its name derives from; the
        # image cache uses this to re-derive generated names on a hit
        chain_source: dict[Nonterminal, Nonterminal] = {}
        result._chain_source = chain_source
        for nt in self.productions:
            result.productions.setdefault(nt, [])
        for nt, rules in self.productions.items():
            for rhs in rules:
                current = nt
                remaining = rhs
                while len(remaining) > 2:
                    chain = result.fresh(f"{nt.name}~")
                    chain_source[chain] = nt
                    result.add(current, (remaining[0], chain))
                    current = chain
                    remaining = remaining[1:]
                result.add(current, remaining)
        result.copy_labels_from(self, self.productions)
        self._memo_set(memo_key, result)
        return result

    def __repr__(self) -> str:
        return (
            f"Grammar(start={self.start}, |V|={len(self.productions)}, "
            f"|R|={self.num_productions()})"
        )

    def dump(self, root: Nonterminal | None = None, limit: int = 60) -> str:
        """Human-readable production listing (for reports and debugging)."""
        root = root or self.start
        order = sorted(self.reachable(root) if root else self.productions)
        lines = []
        for nt in order[:limit]:
            tags = ",".join(sorted(self.labels.get(nt, ())))
            tag_str = f"  [{tags}]" if tags else ""
            for rhs in self.productions.get(nt, ()):
                shown = " ".join(_show_symbol(s) for s in rhs) or "ε"
                lines.append(f"{nt.name} -> {shown}{tag_str}")
            if not self.productions.get(nt):
                lines.append(f"{nt.name} -> <no productions>{tag_str}")
        if len(order) > limit:
            lines.append(f"… ({len(order) - limit} more nonterminals)")
        return "\n".join(lines)


def _canonical_symbol(symbol: Symbol, index: dict[Nonterminal, int]) -> str:
    if isinstance(symbol, Lit):
        return "L" + repr(symbol.text)
    if isinstance(symbol, CharSet):
        # raw intervals, not repr() (which truncates past 8 intervals)
        return "C" + ";".join(f"{lo}-{hi}" for lo, hi in symbol.intervals)
    return f"N{index[symbol]}"


def _show_symbol(symbol: Symbol) -> str:
    if isinstance(symbol, Lit):
        return repr(symbol.text)
    if isinstance(symbol, CharSet):
        return repr(symbol)
    return symbol.name
