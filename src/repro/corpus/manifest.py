"""Ground-truth manifests for the synthetic corpus.

The paper's evaluation (Table 1) reports, per application, the number of
*real* direct errors, *false positive* direct reports, and indirect
reports.  Real applications need a human to classify reports; our
synthetic stand-ins carry machine-readable ground truth: every seeded
report site is recorded here, so the harness can mark each tool report
real / false-positive / unexpected automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

DIRECT_REAL = "direct-real"
DIRECT_FALSE = "direct-false"   # the tool *will* report it; ground truth: safe
INDIRECT = "indirect"


@dataclass(frozen=True)
class Seed:
    """One seeded report site."""

    page: str       # entry page (relative path) whose analysis reports it
    kind: str       # DIRECT_REAL | DIRECT_FALSE | INDIRECT
    description: str


@dataclass
class AppManifest:
    name: str
    seeds: list[Seed] = field(default_factory=list)

    def count(self, kind: str) -> int:
        return sum(1 for seed in self.seeds if seed.kind == kind)

    @property
    def expected_direct_real(self) -> int:
        return self.count(DIRECT_REAL)

    @property
    def expected_direct_false(self) -> int:
        return self.count(DIRECT_FALSE)

    @property
    def expected_indirect(self) -> int:
        return self.count(INDIRECT)
