"""Synthetic stand-in for Utopia News Pro 1.3.0 (paper Table 1, row 4).

The paper found: **14 real direct** SQLCIVs, **2 direct false
positives**, and **12 indirect** reports in 25 files / 5,611 lines.
This generator seeds exactly that anatomy, using the idioms the paper
describes:

* the Figure 2 unanchored-``eregi`` bug (plus "two others similar"),
* the Figure 9 string→bool type-conversion false positive (plus "the
  other is similar"),
* the Figure 10 unchecked-``$USER`` indirect INSERT,
* escaped-but-unquoted numeric contexts, stripslashes-after-addslashes,
  raw cookie/POST/GET flows,
* and properly sanitized queries that the tool must *verify* (anchored
  regexes, ``$DB->escape`` inside quotes, ``intval``, whitelists).
"""

from __future__ import annotations

from pathlib import Path

from .manifest import AppManifest, DIRECT_FALSE, DIRECT_REAL, INDIRECT, Seed
from .snippets import (
    db_class,
    formatting_helpers,
    language_file,
    markup_filter,
    page_shell,
)

APP = "utopia_news_pro"
INCLUDES = ["includes/header.php"]


def build(root: Path) -> AppManifest:
    app = root / APP
    (app / "includes").mkdir(parents=True, exist_ok=True)
    manifest = AppManifest(name="Utopia News Pro (1.3.0)")

    _write_includes(app)

    pages = {
        "index.php": _page_index(),
        "news.php": _page_news(),
        "shownews.php": _page_shownews(),
        "postnews.php": _page_postnews(),
        "useredit.php": _page_useredit(),
        "userdel.php": _page_userdel(),
        "usernew.php": _page_usernew(),
        "viewuser.php": _page_viewuser(),
        "search.php": _page_search(),
        "comment.php": _page_comment(),
        "archive.php": _page_archive(),
        "profile.php": _page_profile(),
        "rss.php": _page_rss(),
        "category.php": _page_category(),
        "editnews.php": _page_editnews(),
        "delnews.php": _page_delnews(),
        "login.php": _page_login(),
        "register.php": _page_register(),
        "subscribe.php": _page_subscribe(),
        "members.php": _page_members(),
        "logout.php": _page_logout(),
    }
    for name, source in pages.items():
        (app / name).write_text(source)

    manifest.seeds = [
        Seed("useredit.php", DIRECT_REAL, "Figure 2: unanchored eregi('[0-9]+')"),
        Seed("userdel.php", DIRECT_REAL, "unanchored preg_match('/[0-9]+/')"),
        Seed("usernew.php", DIRECT_REAL, "unanchored eregi('[a-z0-9]+') on username"),
        Seed("news.php", DIRECT_REAL, "raw GET catid inside quotes"),
        Seed("search.php", DIRECT_REAL, "raw POST term inside LIKE pattern"),
        Seed("comment.php", DIRECT_REAL, "addslashes()d input in unquoted numeric context"),
        Seed("archive.php", DIRECT_REAL, "raw GET month inside quotes"),
        Seed("profile.php", DIRECT_REAL, "raw COOKIE theme inside quotes"),
        Seed("rss.php", DIRECT_REAL, "raw GET limit in LIMIT clause"),
        Seed("category.php", DIRECT_REAL, "raw REQUEST cat inside quotes"),
        Seed("editnews.php", DIRECT_REAL, "start-anchored-only preg_match('/^[0-9]+/')"),
        Seed("delnews.php", DIRECT_REAL, "stripslashes undoes addslashes"),
        Seed("login.php", DIRECT_REAL, "raw POST username inside quotes"),
        Seed("subscribe.php", DIRECT_REAL, "raw POST email inside quotes"),
        Seed("shownews.php", DIRECT_FALSE, "Figure 9: string→bool cast guards the query"),
        Seed("viewuser.php", DIRECT_FALSE, "Figure 9 twin with POST input"),
        Seed("postnews.php", INDIRECT, "Figure 10: unchecked $USER fields in INSERT"),
        Seed("index.php", INDIRECT, "lastvisit UPDATE keyed on raw $USER username"),
        Seed("members.php", INDIRECT, "group filter from $USER groupname"),
        Seed("logout.php", INDIRECT, "session DELETE keyed on raw $USER session"),
        Seed("register.php", INDIRECT, "referrer column from $USER username"),
        Seed("news.php", INDIRECT, "view-count UPDATE keyed on $USER lastcat"),
        Seed("shownews.php", INDIRECT, "read-log INSERT of $USER username"),
        Seed("search.php", INDIRECT, "search-log INSERT of $USER username"),
        Seed("archive.php", INDIRECT, "prefs UPDATE keyed on $USER stylepref"),
        Seed("profile.php", INDIRECT, "signature UPDATE from $USER signature"),
        Seed("category.php", INDIRECT, "audit INSERT of $USER username"),
        Seed("login.php", INDIRECT, "failed-login INSERT of $USER lastname"),
    ]
    return manifest


# ---------------------------------------------------------------------------
# includes
# ---------------------------------------------------------------------------


def _write_includes(app: Path) -> None:
    (app / "includes" / "db.php").write_text(db_class("UNP_DB", "unp_"))
    (app / "includes" / "functions.php").write_text(
        "<?php\n"
        + formatting_helpers("unp")
        + "\n"
        + markup_filter("unp", rounds=3)
        + "\n"
        + _extra_helpers()
    )
    (app / "includes" / "lang.php").write_text(
        language_file(
            "gp",
            [
                ("permserror", "You do not have permission to view this page."),
                ("invalidrequest", "Invalid request."),
                ("invaliduser", "You entered an invalid user ID."),
                ("allfields", "All fields are required."),
                ("newsposted", "Your news item has been posted."),
                ("newsdeleted", "The news item has been deleted."),
                ("loginfailed", "Login failed. Check your credentials."),
                ("welcome", "Welcome to Utopia News Pro!"),
                ("subscribed", "You have been subscribed to the newsletter."),
                ("commentposted", "Your comment has been saved."),
                ("profileupdated", "Your profile has been updated."),
                ("registered", "Your account has been created."),
                ("searchempty", "Your search returned no results."),
                ("sessionexpired", "Your session has expired. Please log in."),
                ("accessdenied", "Access denied."),
            ],
        )
    )
    (app / "includes" / "header.php").write_text(
        """\
<?php
require_once 'includes/db.php';
require_once 'includes/functions.php';
require_once 'includes/lang.php';

$DB = new UNP_DB('localhost', 'unp', 'secret', 'unp');

// restore the current user from the session cookie; every column of
// $USER is database data (an INDIRECT source in the analysis)
$session = isset($_COOKIE['unp_session']) ? $_COOKIE['unp_session'] : '';
$session = $DB->escape($session);
$getuser = $DB->query("SELECT * FROM `unp_user` WHERE session='$session'");
$USER = $DB->fetch_array($getuser);
$showall = 0;
"""
    )


def _extra_helpers() -> str:
    return """\
function unp_redirect($target)
{
    header('Location: ' . $target);
    exit;
}

function unp_isEmpty($value)
{
    $value = trim($value);
    return strlen($value) == 0;
}

function unp_checkemail($email)
{
    return preg_match('/^[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+$/', $email);
}

function unp_trimtext($text, $max)
{
    if (strlen($text) > $max)
    {
        return substr($text, 0, $max) . '...';
    }
    return $text;
}
"""


# ---------------------------------------------------------------------------
# entry pages
# ---------------------------------------------------------------------------


def _page_index() -> str:
    return page_shell(
        "Utopia News Pro",
        """\
// front page: latest news, sanitized paging (verifies clean)
$page = isset($_GET['page']) ? intval($_GET['page']) : 1;
$offset = ($page - 1) * 10;
$getnews = $DB->query("SELECT * FROM `unp_news` ORDER BY `date` DESC LIMIT $offset, 10");
while ($news = $DB->fetch_array($getnews))
{
    echo '<div class="item"><h2>' . unp_html($news['subject']) . '</h2>';
    echo '<p>' . unp_markup(unp_html($news['news'])) . '</p>';
    echo '<span class="byline">' . unp_html($news['poster']) . ' on '
        . unp_date($news['date']) . '</span></div>';
}

// SEEDED (indirect): lastvisit bookkeeping trusts the DB-loaded username
$username = $USER['username'];
$posttime = time();
$DB->query("UPDATE `unp_user` SET lastvisit='$posttime' WHERE username='$username'");
""",
        INCLUDES,
        filler=190,
    )


def _page_news() -> str:
    return page_shell(
        "News",
        """\
// SEEDED (direct-real): category id straight from the URL into quotes
$catid = isset($_GET['catid']) ? $_GET['catid'] : '';
$getnews = $DB->query("SELECT * FROM `unp_news` WHERE catid='$catid' ORDER BY `date` DESC");
while ($news = $DB->fetch_array($getnews))
{
    echo '<h3>' . unp_html($news['subject']) . '</h3>';
    echo '<p>' . unp_excerpt($news['news']) . '</p>';
}

// SEEDED (indirect): per-user category counter keyed on a DB value
$lastcat = $USER['lastcat'];
$DB->query("UPDATE `unp_stats` SET views=views+1 WHERE catid='$lastcat'");
""",
        INCLUDES,
        filler=190,
    )


def _page_shownews() -> str:
    """Figure 9, nearly verbatim: the false positive the paper analyzes."""
    return page_shell(
        "Show News",
        """\
// SEEDED (direct-false, Figure 9): the string→bool conversion makes
// this safe at runtime — '' and '0' fail the second test, everything
// non-numeric exits — but that needs type-conversion reasoning.
isset($_GET['newsid']) ? $getnewsid = $_GET['newsid'] : $getnewsid = false;
if (($getnewsid != false) && (!preg_match('/^[\\d]+$/', $getnewsid)))
{
    unp_msg('You entered an invalid news ID.');
    exit;
}
if (!$showall && $getnewsid)
{
    $getnews = $DB->query("SELECT * FROM `unp_news`"
        . " WHERE `newsid`='$getnewsid'"
        . " ORDER BY `date` DESC LIMIT 1");
    $news = $DB->fetch_array($getnews);
    echo '<h2>' . unp_html($news['subject']) . '</h2>';
    echo '<div>' . unp_markup(unp_html($news['news'])) . '</div>';
}

// SEEDED (indirect): reading log records the DB-loaded username
$reader = $USER['username'];
$DB->query("INSERT INTO `unp_readlog` (`who`) VALUES ('$reader')");
""",
        INCLUDES,
        filler=190,
    )


def _page_postnews() -> str:
    """Figure 10, nearly verbatim: the indirect report the paper shows."""
    return page_shell(
        "Post News",
        """\
$subject = $DB->escape(isset($_POST['subject']) ? $_POST['subject'] : '');
$news = $DB->escape(isset($_POST['news']) ? $_POST['news'] : '');
$posttime = time();

// SEEDED (indirect, Figure 10): $newsposterid is checked, $newsposter is
// not — "at the least it represents inconsistent programming"
$newsposter = $USER['username'];
$newsposterid = $USER['userid'];
if (unp_isEmpty($subject) || unp_isEmpty($news))
{
    unp_msg($gp_allfields);
    exit;
}
if (!preg_match('/^[\\d]+$/', $newsposterid))
{
    unp_msg($gp_invalidrequest);
    exit;
}
$submitnews = $DB->query("INSERT INTO `unp_news`"
    . " (`date`, `subject`, `news`, `posterid`, `poster`)"
    . " VALUES "
    . "('$posttime','$subject','$news',"
    . "'$newsposterid','$newsposter')");
unp_msg($gp_newsposted);
""",
        INCLUDES,
        filler=190,
    )


def _page_useredit() -> str:
    """Figure 2, verbatim modulo helper names."""
    return page_shell(
        "Edit User",
        """\
// SEEDED (direct-real, Figure 2): the regular expression lacks anchors,
// so any value with one digit somewhere passes the check
isset($_GET['userid']) ?
    $userid = $_GET['userid'] : $userid = '';
if ($USER['groupid'] != 1)
{
    unp_msg($gp_permserror);
    exit;
}
if ($userid == '')
{
    unp_msg($gp_invalidrequest);
    exit;
}
if (!eregi('[0-9]+', $userid))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
$getuser = $DB->query("SELECT * FROM `unp_user`"
    . " WHERE userid='$userid'");
if (!$DB->is_single_row($getuser))
{
    unp_msg('You entered an invalid user ID.');
    exit;
}
$edituser = $DB->fetch_array($getuser);
echo '<form action="useredit.php" method="post">';
echo '<input type="text" name="username" value="'
    . unp_html($edituser['username']) . '" />';
echo '<input type="submit" value="Save" /></form>';
""",
        INCLUDES,
        filler=190,
    )


def _page_userdel() -> str:
    return page_shell(
        "Delete User",
        """\
if ($USER['groupid'] != 1)
{
    unp_msg($gp_permserror);
    exit;
}
// SEEDED (direct-real): same bug family as Figure 2 — preg_match with
// no anchors accepts '9; DROP ...'
$userid = isset($_GET['userid']) ? $_GET['userid'] : '';
if (!preg_match('/[0-9]+/', $userid))
{
    unp_msg($gp_invalidrequest);
    exit;
}
$DB->query("DELETE FROM `unp_user` WHERE userid='$userid' LIMIT 1");
unp_msg('User deleted.');
""",
        INCLUDES,
        filler=190,
    )


def _page_usernew() -> str:
    return page_shell(
        "New User",
        """\
if ($USER['groupid'] != 1)
{
    unp_msg($gp_permserror);
    exit;
}
// SEEDED (direct-real): third of the Figure-2 family — the character
// class looks tight but the match is unanchored
$username = isset($_POST['username']) ? $_POST['username'] : '';
if (!eregi('[a-z0-9]+', $username))
{
    unp_msg($gp_invalidrequest);
    exit;
}
$password = md5(isset($_POST['password']) ? $_POST['password'] : '');
$DB->query("INSERT INTO `unp_user` (`username`, `password`)"
    . " VALUES ('$username', '$password')");
unp_msg('User created.');
""",
        INCLUDES,
        filler=190,
    )


def _page_viewuser() -> str:
    return page_shell(
        "View User",
        """\
// SEEDED (direct-false): the Figure 9 pattern again, with POST data —
// safe at runtime for the same type-conversion reason
isset($_POST['uid']) ? $uid = $_POST['uid'] : $uid = false;
if (($uid != false) && (!preg_match('/^[\\d]+$/', $uid)))
{
    unp_msg($gp_invalidrequest);
    exit;
}
if ($uid)
{
    $getuser = $DB->query("SELECT * FROM `unp_user` WHERE userid='$uid'");
    $user = $DB->fetch_array($getuser);
    echo '<h2>' . unp_html($user['username']) . '</h2>';
    echo '<p>Member since ' . unp_date($user['joined']) . '</p>';
}
""",
        INCLUDES,
        filler=190,
    )


def _page_search() -> str:
    return page_shell(
        "Search",
        """\
// SEEDED (direct-real): search term embedded raw in a LIKE pattern
$term = isset($_POST['term']) ? $_POST['term'] : '';
if ($term != '')
{
    $results = $DB->query("SELECT * FROM `unp_news`"
        . " WHERE subject LIKE '%$term%' ORDER BY `date` DESC");
    while ($news = $DB->fetch_array($results))
    {
        echo '<h3>' . unp_html($news['subject']) . '</h3>';
    }
    // SEEDED (indirect): the search log trusts the DB-loaded username
    $who = $USER['username'];
    $DB->query("INSERT INTO `unp_searchlog` (`who`) VALUES ('$who')");
}
else
{
    echo '<form method="post"><input name="term" />'
        . '<input type="submit" value="Search" /></form>';
}
""",
        INCLUDES,
        filler=190,
    )


def _page_comment() -> str:
    return page_shell(
        "Comment",
        """\
// SEEDED (direct-real): the input IS escaped — but used in an unquoted
// numeric context, where escaping does not confine it (the paper's
// argument against binary sanitizer models, §1.1)
$newsid = addslashes(isset($_GET['newsid']) ? $_GET['newsid'] : '0');
$comment = $DB->escape(isset($_POST['comment']) ? $_POST['comment'] : '');
$getnews = $DB->query("SELECT * FROM `unp_news` WHERE newsid=$newsid");
if ($DB->is_single_row($getnews))
{
    $DB->query("INSERT INTO `unp_comment` (`newsid`, `body`)"
        . " VALUES ($newsid, '$comment')");
    unp_msg($gp_commentposted);
}
""",
        INCLUDES,
        filler=190,
    )


def _page_archive() -> str:
    return page_shell(
        "Archive",
        """\
// SEEDED (direct-real): month selector straight from the URL
$month = isset($_GET['month']) ? $_GET['month'] : '01';
$getnews = $DB->query("SELECT * FROM `unp_news`"
    . " WHERE month='$month' ORDER BY `date` DESC");
while ($news = $DB->fetch_array($getnews))
{
    echo '<li>' . unp_html($news['subject']) . '</li>';
}

// SEEDED (indirect): style preference round-trips through the DB
$style = $USER['stylepref'];
$DB->query("UPDATE `unp_user` SET style='$style' WHERE userid=1");
""",
        INCLUDES,
        filler=190,
    )


def _page_profile() -> str:
    return page_shell(
        "Profile",
        """\
// SEEDED (direct-real): theme cookie used raw — cookies are user data
$theme = isset($_COOKIE['unp_theme']) ? $_COOKIE['unp_theme'] : 'default';
$gettheme = $DB->query("SELECT * FROM `unp_themes` WHERE name='$theme'");
$themerow = $DB->fetch_array($gettheme);
echo '<link rel="stylesheet" href="' . unp_html($themerow['css']) . '" />';

// SEEDED (indirect): signature written back from the DB-loaded value
$sig = $USER['signature'];
$DB->query("UPDATE `unp_profile` SET signature='$sig' WHERE userid=1");
""",
        INCLUDES,
        filler=190,
    )


def _page_rss() -> str:
    return page_shell(
        "RSS",
        """\
// SEEDED (direct-real): feed length from the URL, unquoted LIMIT
$limit = isset($_GET['limit']) ? $_GET['limit'] : '10';
$getnews = $DB->query("SELECT * FROM `unp_news` ORDER BY `date` DESC LIMIT $limit");
echo '<?xml version="1.0"?>' . "\\n" . '<rss version="2.0"><channel>';
while ($news = $DB->fetch_array($getnews))
{
    echo '<item><title>' . unp_html($news['subject']) . '</title></item>';
}
echo '</channel></rss>';
""",
        INCLUDES,
        filler=190,
    )


def _page_category() -> str:
    return page_shell(
        "Categories",
        """\
// SEEDED (direct-real): $_REQUEST merges GET/POST/COOKIE — all user data
$cat = isset($_REQUEST['cat']) ? $_REQUEST['cat'] : '';
$getcat = $DB->query("SELECT * FROM `unp_category` WHERE name='$cat'");
$catrow = $DB->fetch_array($getcat);
echo '<h2>' . unp_html($catrow['title']) . '</h2>';

// SEEDED (indirect): audit trail of the DB-loaded username
$who = $USER['username'];
$DB->query("INSERT INTO `unp_audit` (`who`, `what`) VALUES ('$who', 'cat')");
""",
        INCLUDES,
        filler=190,
    )


def _page_editnews() -> str:
    return page_shell(
        "Edit News",
        """\
if ($USER['groupid'] != 1)
{
    unp_msg($gp_permserror);
    exit;
}
// SEEDED (direct-real): anchored at the start only — '1; DROP ...'
// still passes because nothing pins the end of the string
$newsid = isset($_GET['newsid']) ? $_GET['newsid'] : '';
if (!preg_match('/^[0-9]+/', $newsid))
{
    unp_msg($gp_invalidrequest);
    exit;
}
$subject = $DB->escape(isset($_POST['subject']) ? $_POST['subject'] : '');
$DB->query("UPDATE `unp_news` SET subject='$subject'"
    . " WHERE newsid='$newsid'");
unp_msg('News updated.');
""",
        INCLUDES,
        filler=190,
    )


def _page_delnews() -> str:
    return page_shell(
        "Delete News",
        """\
if ($USER['groupid'] != 1)
{
    unp_msg($gp_permserror);
    exit;
}
// SEEDED (direct-real): magic-quotes compensation gone wrong — the
// stripslashes undoes the addslashes, leaving the input raw
$newsid = addslashes(isset($_POST['newsid']) ? $_POST['newsid'] : '');
$newsid = stripslashes($newsid);
$DB->query("DELETE FROM `unp_news` WHERE newsid='$newsid' LIMIT 1");
unp_msg($gp_newsdeleted);
""",
        INCLUDES,
        filler=190,
    )


def _page_login() -> str:
    return page_shell(
        "Login",
        """\
// SEEDED (direct-real): the classic — username raw, password hashed
$username = isset($_POST['username']) ? $_POST['username'] : '';
$password = md5(isset($_POST['password']) ? $_POST['password'] : '');
if ($username != '')
{
    $check = $DB->query("SELECT * FROM `unp_user`"
        . " WHERE username='$username' AND password='$password'");
    if ($DB->is_single_row($check))
    {
        unp_msg($gp_welcome);
    }
    else
    {
        unp_msg($gp_loginfailed);
        // SEEDED (indirect): failure log trusts the DB-loaded value
        $last = $USER['lastname'];
        $DB->query("INSERT INTO `unp_loginlog` (`name`) VALUES ('$last')");
    }
}
""",
        INCLUDES,
        filler=190,
    )


def _page_register() -> str:
    return page_shell(
        "Register",
        """\
// registration form: inputs properly escaped inside quotes (verifies)
$username = $DB->escape(isset($_POST['username']) ? $_POST['username'] : '');
$email = isset($_POST['email']) ? $_POST['email'] : '';
if (!unp_checkemail($email))
{
    unp_msg($gp_invalidrequest);
    exit;
}
$email = $DB->escape($email);
$DB->query("INSERT INTO `unp_user` (`username`, `email`)"
    . " VALUES ('$username', '$email')");

// SEEDED (indirect): referrer column from the DB-loaded username
$referrer = $USER['username'];
$DB->query("UPDATE `unp_user` SET referrer='$referrer'"
    . " WHERE username='$username'");
unp_msg($gp_registered);
""",
        INCLUDES,
        filler=190,
    )


def _page_subscribe() -> str:
    return page_shell(
        "Subscribe",
        """\
// SEEDED (direct-real): the email is validated… and then the RAW value
// is used, not the validated one (note the unanchored check elsewhere
// is not even needed: the query uses $_POST directly)
$email = isset($_POST['email']) ? $_POST['email'] : '';
$DB->query("INSERT INTO `unp_newsletter` (`email`) VALUES ('$email')");
unp_msg($gp_subscribed);
""",
        INCLUDES,
        filler=190,
    )


def _page_members() -> str:
    return page_shell(
        "Members",
        """\
// member list with a whitelisted sort order (verifies clean)
$order = isset($_GET['order']) ? $_GET['order'] : 'ASC';
if (!in_array($order, array('ASC', 'DESC')))
{
    exit;
}
$getusers = $DB->query("SELECT * FROM `unp_user` ORDER BY username $order");
while ($user = $DB->fetch_array($getusers))
{
    echo '<li>' . unp_html($user['username']) . '</li>';
}

// SEEDED (indirect): group banner text comes straight from the DB
$group = $USER['groupname'];
$DB->query("UPDATE `unp_stats` SET lastgroup='$group' WHERE id=1");
""",
        INCLUDES,
        filler=190,
    )


def _page_logout() -> str:
    return page_shell(
        "Logout",
        """\
// SEEDED (indirect): the session token from the DB row is reused raw
$token = $USER['session'];
$DB->query("DELETE FROM `unp_session` WHERE token='$token'");
setcookie('unp_session', '');
unp_msg('You have been logged out.');
""",
        INCLUDES,
        filler=190,
    )
