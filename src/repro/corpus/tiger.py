"""Synthetic stand-in for Tiger PHP News System 1.0b39 (Table 1, row 3).

The paper found **0 real direct** errors, **3 direct false positives**,
and **2 indirect** reports in 16 files / 7,961 lines.  Tiger "is
designed to be secure"; the false positives all come from a hand-written
sanitizing routine that branches on a character's numeric ASCII value —
semantics no string-transducer model can see (§5.2).  Tiger also carries
the forum-markup replacement chains that §5.3 blames for grammar
blow-up, which we reproduce.
"""

from __future__ import annotations

from pathlib import Path

from .manifest import AppManifest, DIRECT_FALSE, INDIRECT, Seed
from .snippets import (
    db_class,
    formatting_helpers,
    language_file,
    markup_filter,
    page_shell,
)

APP = "tiger_php_news"
INCLUDES = ["includes/common.php"]

#: the §5.2 sanitizer: encodes characters by ASCII value.  ord('\'') is
#: 39 < 48, so quotes are always encoded — the routine is *safe* — but
#: the analyzer cannot relate ord($c) to $c and must assume $c flows.
ASCII_SANITIZER = """\
function tiger_encode($text)
{
    $out = '';
    for ($i = 0; $i < strlen($text); $i++)
    {
        $char = $text[$i];
        $code = ord($char);
        if ($code < 48 || ($code > 57 && $code < 65) || $code > 122)
        {
            $out .= '&#' . $code . ';';
        }
        else
        {
            $out .= $char;
        }
    }
    return $out;
}
"""


def build(root: Path) -> AppManifest:
    app = root / APP
    (app / "includes").mkdir(parents=True, exist_ok=True)
    manifest = AppManifest(name="Tiger PHP News System (1.0 beta 39)")

    _write_includes(app)
    for name, source in _pages().items():
        (app / name).write_text(source)

    manifest.seeds = [
        Seed("post.php", DIRECT_FALSE, "ASCII-value sanitizer on the subject"),
        Seed("comments.php", DIRECT_FALSE, "ASCII-value sanitizer on the comment"),
        Seed("profile.php", DIRECT_FALSE, "ASCII-value sanitizer on the signature"),
        Seed("article.php", INDIRECT, "view counter keyed on a fetched column"),
        Seed("forum.php", INDIRECT, "last-poster update from a fetched row"),
    ]
    return manifest


def _write_includes(app: Path) -> None:
    (app / "includes" / "config.php").write_text(
        "<?php\n"
        "$config_dbhost = 'localhost';\n"
        "$config_dbuser = 'tiger';\n"
        "$config_dbpass = 'secret';\n"
        "$config_dbname = 'tigernews';\n"
        "$config_perpage = 15;\n"
        "$config_sitename = 'Tiger News';\n"
    )
    (app / "includes" / "database.php").write_text(db_class("TigerDB", "tiger_"))
    (app / "includes" / "functions.php").write_text(
        "<?php\n"
        + ASCII_SANITIZER
        + "\n"
        + formatting_helpers("tiger")
        + "\n"
        + markup_filter("tiger_forum", rounds=5)
        + "\n"
        + _smiley_filter()
    )
    (app / "includes" / "common.php").write_text(
        """\
<?php
require_once 'includes/config.php';
require_once 'includes/database.php';
require_once 'includes/functions.php';
require_once 'includes/lang.php';

$DB = new TigerDB($config_dbhost, $config_dbuser, $config_dbpass, $config_dbname);
$uid = intval(isset($_COOKIE['tiger_uid']) ? $_COOKIE['tiger_uid'] : 0);
$getviewer = $DB->query("SELECT * FROM `tiger_user` WHERE uid=$uid");
$VIEWER = $DB->fetch_array($getviewer);
"""
    )
    (app / "includes" / "lang.php").write_text(
        language_file(
            "tl",
            [
                ("posted", "Your article has been posted."),
                ("edited", "Your article has been updated."),
                ("deleted", "The article has been removed."),
                ("invalid", "Invalid request."),
                ("noperm", "You do not have permission."),
                ("search", "Search the archive"),
                ("comments", "Reader comments"),
                ("profileok", "Profile saved."),
                ("loginbad", "Wrong username or password."),
                ("welcome", "Welcome back!"),
            ],
        )
    )


def _smiley_filter() -> str:
    """More §5.3 replacement chains: emoticon substitution for the forum."""
    smileys = [
        (":D", "biggrin"), (";)", "wink"), (":P", "tongue"),
        (":o", "surprised"), (":roll:", "rolleyes"), (":cry:", "cry"),
        (":evil:", "evil"), (":idea:", "idea"), (":!:", "exclaim"),
    ]
    lines = ["function tiger_smileys($text)", "{"]
    for code, name in smileys:
        escaped = code.replace("'", "\\'")
        lines.append(
            f"    $text = str_replace('{escaped}', "
            f"'<img src=\"icons/{name}.gif\" alt=\"{name}\" />', $text);"
        )
    lines.append("    return $text;")
    lines.append("}")
    return "\n".join(lines)


def _pages() -> dict[str, str]:
    pages: dict[str, str] = {}

    pages["index.php"] = page_shell(
        "Tiger News",
        """\
// front page, fully sanitized paging (verifies clean)
$page = intval(isset($_GET['page']) ? $_GET['page'] : 1);
$offset = ($page - 1) * $config_perpage;
$getnews = $DB->query("SELECT * FROM `tiger_news`"
    . " ORDER BY posted DESC LIMIT $offset, 15");
while ($news = $DB->fetch_array($getnews))
{
    echo '<h2><a href="article.php?id=' . intval($news['id']) . '">'
        . tiger_html($news['subject']) . '</a></h2>';
    echo '<div>' . tiger_forum_markup(tiger_smileys(tiger_excerpt($news['body'])))
        . '</div>';
}
""",
        INCLUDES,
        filler=620,
    )

    pages["article.php"] = page_shell(
        "Article",
        """\
// article display: id sanitized with intval (verifies clean)
$id = intval(isset($_GET['id']) ? $_GET['id'] : 0);
$getnews = $DB->query("SELECT * FROM `tiger_news` WHERE id=$id");
$news = $DB->fetch_array($getnews);
echo '<h1>' . tiger_html($news['subject']) . '</h1>';
echo '<div>' . tiger_forum_markup(tiger_smileys(tiger_html($news['body'])))
    . '</div>';

// SEEDED (indirect): the view counter keys on the *fetched* category
$cat = $news['category'];
$DB->query("UPDATE `tiger_stats` SET hits=hits+1 WHERE category='$cat'");
""",
        INCLUDES,
        filler=620,
    )

    pages["post.php"] = page_shell(
        "Post Article",
        """\
if ($VIEWER['level'] != 1)
{
    tiger_msg($tl_noperm);
    exit;
}
// SEEDED (direct-false): tiger_encode() encodes every character whose
// ASCII code falls outside [0-9A-Za-z] — quotes included — so this is
// safe at runtime; the analyzer cannot model ord() comparisons.
$subject = tiger_encode(isset($_POST['subject']) ? $_POST['subject'] : '');
$body = tiger_encode(isset($_POST['body']) ? $_POST['body'] : '');
$stamp = time();
$DB->query("INSERT INTO `tiger_news` (subject, body, posted)"
    . " VALUES ('$subject', '$body', $stamp)");
tiger_msg($tl_posted);
""",
        INCLUDES,
        filler=620,
    )

    pages["comments.php"] = page_shell(
        "Comments",
        """\
$id = intval(isset($_GET['id']) ? $_GET['id'] : 0);
$getcomments = $DB->query("SELECT * FROM `tiger_comment` WHERE newsid=$id");
while ($comment = $DB->fetch_array($getcomments))
{
    echo '<div class="comment">' . tiger_html($comment['body']) . '</div>';
}
// SEEDED (direct-false): same ASCII-value sanitizer on the new comment
$body = tiger_encode(isset($_POST['body']) ? $_POST['body'] : '');
if ($body != '')
{
    $DB->query("INSERT INTO `tiger_comment` (newsid, body)"
        . " VALUES ($id, '$body')");
    tiger_msg($tl_comments);
}
""",
        INCLUDES,
        filler=620,
    )

    pages["profile.php"] = page_shell(
        "Profile",
        """\
// SEEDED (direct-false): the signature passes through tiger_encode too
$signature = tiger_encode(isset($_POST['signature']) ? $_POST['signature'] : '');
$uid = intval($VIEWER['uid']);
$DB->query("UPDATE `tiger_user` SET signature='$signature' WHERE uid=$uid");
tiger_msg($tl_profileok);
""",
        INCLUDES,
        filler=620,
    )

    pages["forum.php"] = page_shell(
        "Forum",
        """\
$thread = intval(isset($_GET['thread']) ? $_GET['thread'] : 0);
$getposts = $DB->query("SELECT * FROM `tiger_post` WHERE thread=$thread"
    . " ORDER BY posted ASC");
while ($post = $DB->fetch_array($getposts))
{
    $body = tiger_html($post['body']);
    $body = tiger_forum_markup($body);
    $body = tiger_smileys($body);
    $body = str_replace('[code]', '<pre>', $body);
    $body = str_replace('[/code]', '</pre>', $body);
    $body = str_replace('[url]', '<a href="', $body);
    $body = str_replace('[/url]', '">link</a>', $body);
    echo '<div class="post">' . $body . '</div>';
}
// SEEDED (indirect): last-poster column comes from the fetched row
$lastposter = $post['author'];
$DB->query("UPDATE `tiger_thread` SET lastposter='$lastposter'"
    . " WHERE id=$thread");
""",
        INCLUDES,
        filler=620,
    )

    pages["search.php"] = page_shell(
        "Search",
        """\
// search term escaped inside quotes (verifies clean)
$term = $DB->escape(isset($_POST['term']) ? $_POST['term'] : '');
if ($term != '')
{
    $results = $DB->query("SELECT * FROM `tiger_news`"
        . " WHERE subject LIKE '%$term%'");
    while ($news = $DB->fetch_array($results))
    {
        echo '<h3>' . tiger_html($news['subject']) . '</h3>';
    }
}
""",
        INCLUDES,
        filler=620,
    )

    pages["edit.php"] = page_shell(
        "Edit Article",
        """\
if ($VIEWER['level'] != 1)
{
    tiger_msg($tl_noperm);
    exit;
}
// anchored id check + escaped text (verifies clean)
$id = isset($_GET['id']) ? $_GET['id'] : '';
if (!preg_match('/^[0-9]+$/', $id))
{
    tiger_msg($tl_invalid);
    exit;
}
$subject = $DB->escape(isset($_POST['subject']) ? $_POST['subject'] : '');
$DB->query("UPDATE `tiger_news` SET subject='$subject' WHERE id='$id'");
tiger_msg($tl_edited);
""",
        INCLUDES,
        filler=620,
    )

    pages["delete_article.php"] = page_shell(
        "Delete Article",
        """\
if ($VIEWER['level'] != 1)
{
    tiger_msg($tl_noperm);
    exit;
}
$id = intval(isset($_POST['id']) ? $_POST['id'] : 0);
$DB->query("DELETE FROM `tiger_news` WHERE id=$id LIMIT 1");
tiger_msg($tl_deleted);
""",
        INCLUDES,
        filler=620,
    )

    pages["login.php"] = page_shell(
        "Login",
        """\
// credentials escaped inside quotes (verifies clean)
$username = $DB->escape(isset($_POST['username']) ? $_POST['username'] : '');
$password = md5(isset($_POST['password']) ? $_POST['password'] : '');
$check = $DB->query("SELECT * FROM `tiger_user`"
    . " WHERE username='$username' AND password='$password'");
if ($DB->is_single_row($check))
{
    tiger_msg($tl_welcome);
}
else
{
    tiger_msg($tl_loginbad);
}
""",
        INCLUDES,
        filler=620,
    )

    pages["admin.php"] = page_shell(
        "Administration",
        """\
if ($VIEWER['level'] != 1)
{
    tiger_msg($tl_noperm);
    exit;
}
// admin action dispatch over a whitelist (verifies clean)
$action = isset($_GET['action']) ? $_GET['action'] : 'overview';
switch ($action)
{
    case 'prune':
        $DB->query("DELETE FROM `tiger_comment` WHERE flagged=1");
        tiger_msg('Pruned.');
        break;
    case 'optimize':
        $DB->query("SELECT COUNT(*) FROM `tiger_news`");
        tiger_msg('Optimized.');
        break;
    default:
        echo '<p>Overview</p>';
}
""",
        INCLUDES,
        filler=620,
    )

    return pages
