"""The synthetic evaluation corpus (paper §5.1's five subjects).

``build_corpus(root)`` writes all five applications under ``root`` and
returns their manifests in Table 1 order.  See DESIGN.md §3 for why each
app is shaped the way it is.
"""

from __future__ import annotations

from pathlib import Path

from . import e107, eve, tiger, unp, warp
from .manifest import AppManifest

#: (module, directory name) in Table 1 row order
APPS = [
    (e107, e107.APP),
    (eve, eve.APP),
    (tiger, tiger.APP),
    (unp, unp.APP),
    (warp, warp.APP),
]


def build_corpus(root: str | Path) -> list[AppManifest]:
    """Write all five applications under ``root``; returns the manifests."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    return [module.build(root) for module, _ in APPS]


def build_app(root: str | Path, name: str) -> AppManifest:
    """Write one application by its directory name."""
    for module, app_dir in APPS:
        if app_dir == name:
            return module.build(Path(root))
    raise KeyError(f"unknown corpus app {name!r}; have {[d for _, d in APPS]}")
