"""Synthetic stand-in for EVE Activity Tracker 1.0 (paper Table 1, row 2).

The paper found **4 real direct** SQLCIVs and **1 indirect** report in a
tiny 8-file / 905-line tracker.  The app is a thin layer over the
database with almost no input filtering — the typical hobby-project
profile where raw superglobals flow straight into queries.
"""

from __future__ import annotations

from pathlib import Path

from .manifest import AppManifest, DIRECT_REAL, INDIRECT, Seed
from .snippets import formatting_helpers, page_shell

APP = "eve_activity_tracker"
INCLUDES = ["common.php"]


def build(root: Path) -> AppManifest:
    app = root / APP
    app.mkdir(parents=True, exist_ok=True)
    manifest = AppManifest(name="EVE Activity Tracker (1.0)")

    (app / "common.php").write_text(
        "<?php\n"
        "mysql_connect('localhost', 'eve', 'eve');\n"
        "mysql_select_db('eve');\n"
        "$config_title = 'EVE Activity Tracker';\n"
        "$config_rows = 20;\n\n" + formatting_helpers("eve")
    )

    (app / "style.php").write_text(
        """\
<?php
header('Content-type: text/css');
$color = '#336699';
echo 'body { font-family: sans-serif; }';
echo '#header { background: ' . $color . '; color: white; }';
echo '#nav a { color: ' . $color . '; text-decoration: none; }';
echo '.activity { border-bottom: 1px solid #ccc; padding: 4px; }';
"""
    )

    (app / "index.php").write_text(
        page_shell(
            "Activity Tracker",
            """\
// SEEDED (direct-real): pilot name from the URL, raw, inside quotes
$pilot = isset($_GET['pilot']) ? $_GET['pilot'] : '';
$result = mysql_query("SELECT * FROM activity WHERE pilot='$pilot'"
    . " ORDER BY stamp DESC LIMIT 20");
while ($row = mysql_fetch_array($result))
{
    echo '<div class="activity">' . eve_html($row['what'])
        . ' <span>' . eve_date($row['stamp']) . '</span></div>';
}
""",
            INCLUDES,
            filler=95,
        )
    )

    (app / "add.php").write_text(
        page_shell(
            "Add Activity",
            """\
// SEEDED (direct-real): both POST fields raw in the INSERT
$pilot = isset($_POST['pilot']) ? $_POST['pilot'] : '';
$what = isset($_POST['what']) ? $_POST['what'] : '';
$stamp = time();
mysql_query("INSERT INTO activity (pilot, what, stamp)"
    . " VALUES ('$pilot', '$what', '$stamp')");
echo '<p>Recorded.</p>';
""",
            INCLUDES,
            filler=95,
        )
    )

    (app / "view.php").write_text(
        page_shell(
            "View Entry",
            """\
// SEEDED (direct-real): id from the URL used in an unquoted context
$id = isset($_GET['id']) ? $_GET['id'] : '0';
$result = mysql_query("SELECT * FROM activity WHERE id=$id");
$row = mysql_fetch_array($result);
echo '<h2>' . eve_html($row['what']) . '</h2>';
echo '<p>by ' . eve_html($row['pilot']) . '</p>';

// SEEDED (indirect): the view counter keys on a column read back from
// the database row itself
$corp = $row['corp'];
mysql_query("UPDATE corp_stats SET views=views+1 WHERE corp='$corp'");
""",
            INCLUDES,
            filler=95,
        )
    )

    (app / "delete.php").write_text(
        page_shell(
            "Delete Entry",
            """\
// SEEDED (direct-real): confirmation flag checked, id never validated
$id = isset($_GET['id']) ? $_GET['id'] : '';
$confirm = isset($_GET['confirm']) ? $_GET['confirm'] : '0';
if ($confirm == '1')
{
    mysql_query("DELETE FROM activity WHERE id='$id' LIMIT 1");
    echo '<p>Deleted.</p>';
}
else
{
    echo '<a href="delete.php?id=' . eve_html($id) . '&confirm=1">Confirm?</a>';
}
""",
            INCLUDES,
            filler=95,
        )
    )

    (app / "stats.php").write_text(
        page_shell(
            "Statistics",
            """\
// aggregate stats: period is whitelisted (verifies clean)
$period = isset($_GET['period']) ? $_GET['period'] : 'day';
if (!in_array($period, array('day', 'week', 'month')))
{
    $period = 'day';
}
$result = mysql_query("SELECT pilot, COUNT(*) AS n FROM activity"
    . " GROUP BY pilot ORDER BY n DESC LIMIT 10");
while ($row = mysql_fetch_array($result))
{
    echo '<li>' . eve_html($row['pilot']) . ': ' . eve_html($row['n']) . '</li>';
}
echo '<p>Period: ' . eve_html($period) . '</p>';
""",
            INCLUDES,
            filler=95,
        )
    )

    (app / "igb.php").write_text(
        page_shell(
            "In-Game Browser",
            """\
// the in-game browser header is user data, but here it is escaped
// before use inside quotes (verifies clean)
$charname = isset($_SERVER['HTTP_EVE_CHARNAME'])
    ? $_SERVER['HTTP_EVE_CHARNAME'] : '';
$charname = mysql_real_escape_string($charname);
$result = mysql_query("SELECT * FROM activity WHERE pilot='$charname'"
    . " ORDER BY stamp DESC LIMIT 10");
while ($row = mysql_fetch_array($result))
{
    echo '<div class="activity">' . eve_html($row['what']) . '</div>';
}
""",
            INCLUDES,
            filler=95,
        )
    )

    manifest.seeds = [
        Seed("index.php", DIRECT_REAL, "raw GET pilot inside quotes"),
        Seed("add.php", DIRECT_REAL, "raw POST fields in INSERT"),
        Seed("view.php", DIRECT_REAL, "raw GET id in unquoted context"),
        Seed("delete.php", DIRECT_REAL, "raw GET id inside quotes"),
        Seed("view.php", INDIRECT, "corp column read back from the DB row"),
    ]
    return manifest
