"""Shared PHP snippet builders for the synthetic corpus.

These generate the *boring* bulk of a web application — HTML layout,
language tables, form rendering, validation helpers — so the seeded
security-relevant code sits inside realistically sized pages, exercising
the analyzer the way real code does (lots of irrelevant string work, a
few load-bearing flows).
"""

from __future__ import annotations

HTML_HEADER = """\
<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Transitional//EN">
<html>
<head>
<title>{title}</title>
<link rel="stylesheet" href="style.css" type="text/css" />
</head>
<body>
<div id="wrapper">
<div id="header"><h1>{title}</h1></div>
<div id="nav">
<a href="index.php">Home</a> |
<a href="news.php">News</a> |
<a href="search.php">Search</a> |
<a href="members.php">Members</a>
</div>
<div id="content">
"""

HTML_FOOTER = """\
</div>
<div id="footer">Powered by {title}</div>
</div>
</body>
</html>
"""


def page_shell(
    title: str, body_php: str, includes: list[str], filler: int = 0
) -> str:
    """A full page: includes, HTML header, PHP body, HTML footer.

    ``filler`` appends that many lines of static template HTML — the help
    text, forms, and layout scaffolding that dominates real CMS pages by
    volume without touching the analysis.
    """
    include_lines = "\n".join(f"require_once '{inc}';" for inc in includes)
    return (
        "<?php\n"
        + include_lines
        + "\n?>\n"
        + HTML_HEADER.format(title=title)
        + "<?php\n"
        + body_php
        + "\n?>\n"
        + (filler_html(title, filler) if filler else "")
        + HTML_FOOTER.format(title=title)
    )


_FILLER_SENTENCES = [
    "Use the navigation above to reach the administration area.",
    "Entries are shown in reverse chronological order.",
    "Fields marked with an asterisk are required.",
    "Changes take effect immediately after saving.",
    "Contact the site administrator if you believe this is an error.",
    "The permalink for this entry is shown in the address bar.",
    "Formatting codes are available in the editor toolbar.",
    "Attachments are limited to two megabytes per upload.",
    "Your time zone can be configured in your profile settings.",
    "Printable versions of every page are available.",
]


def filler_html(topic: str, lines: int) -> str:
    """``lines`` lines of plausible static template HTML."""
    out = [f'<div class="help" id="help-{abs(hash(topic)) % 997}">']
    emitted = 1
    index = 0
    while emitted < lines - 1:
        sentence = _FILLER_SENTENCES[index % len(_FILLER_SENTENCES)]
        out.append(f"<p>{sentence} <!-- §{index} --></p>")
        emitted += 1
        index += 1
        if index % 8 == 0 and emitted < lines - 1:
            out.append('<hr class="separator" />')
            emitted += 1
    out.append("</div>")
    return "\n".join(out) + "\n"


def language_file(prefix: str, entries: list[tuple[str, str]]) -> str:
    """A constants file in the style every CMS ships hundreds of."""
    lines = ["<?php", "// auto-generated language pack — do not edit"]
    for key, text in entries:
        escaped = text.replace("'", "\\'")
        lines.append(f"${prefix}_{key} = '{escaped}';")
    lines.append("")
    return "\n".join(lines)


def formatting_helpers(prefix: str) -> str:
    """Plausible display helpers: plenty of string work, no SQL."""
    return f"""\
function {prefix}_date($ts)
{{
    return date('Y-m-d H:i', $ts);
}}

function {prefix}_excerpt($text, $len = 200)
{{
    $clean = strip_tags($text);
    if (strlen($clean) > $len)
    {{
        $clean = substr($clean, 0, $len) . '...';
    }}
    return $clean;
}}

function {prefix}_html($text)
{{
    $text = htmlspecialchars($text);
    $text = nl2br($text);
    return $text;
}}

function {prefix}_msg($text)
{{
    echo '<div class="message">' . $text . '</div>';
}}

function {prefix}_pager($page, $pages)
{{
    $out = '';
    for ($i = 1; $i <= $pages; $i++)
    {{
        if ($i == $page)
        {{
            $out .= ' <b>' . $i . '</b>';
        }}
        else
        {{
            $out .= ' <a href="?page=' . $i . '">' . $i . '</a>';
        }}
    }}
    return $out;
}}
"""


def markup_filter(prefix: str, rounds: int = 4) -> str:
    """Forum-style markup substitution (the §5.3 blow-up pattern): a
    sequence of replacement operations on displayed text."""
    replacements = [
        ("[b]", "<b>"), ("[/b]", "</b>"),
        ("[i]", "<i>"), ("[/i]", "</i>"),
        ("[u]", "<u>"), ("[/u]", "</u>"),
        ("[quote]", "<blockquote>"), ("[/quote]", "</blockquote>"),
        (":)", '<img src="smile.gif" />'), (":(", '<img src="frown.gif" />'),
    ]
    lines = [f"function {prefix}_markup($text)", "{"]
    for source, target in replacements[: rounds * 2]:
        lines.append(f"    $text = str_replace('{source}', '{target}', $text);")
    lines.append("    return $text;")
    lines.append("}")
    return "\n".join(lines)


def db_class(class_name: str, table_prefix: str) -> str:
    """The classic PHP4-era database wrapper."""
    return f"""\
<?php
class {class_name}
{{
    var $link;
    var $prefix = '{table_prefix}';
    var $querycount = 0;

    function {class_name}($host, $user, $pass, $name)
    {{
        $this->link = mysql_connect($host, $user, $pass);
        mysql_select_db($name, $this->link);
    }}

    function escape($value)
    {{
        return mysql_real_escape_string($value);
    }}

    function is_single_row($result)
    {{
        return mysql_num_rows($result) == 1;
    }}

    function insert_id()
    {{
        return mysql_insert_id($this->link);
    }}
}}
"""
