"""Parametric synthetic-application generator for scaling benchmarks.

The §5.3 claims need workloads with tunable knobs:

* ``pages`` / ``queries_per_page`` — code size vs. analysis time,
* ``helpers`` — shared-include weight (the re-analysis overhead the
  paper measures),
* ``markup_chain`` — the replacement-sequence blow-up length,
* ``vulnerable_ratio`` — how many queries use raw input.

Everything is deterministic (seeded by position, not RNG) so benchmark
runs are comparable.

:func:`generate_fuzz_page` is the randomized sibling used by the
differential oracle (``sqlciv fuzz``): it samples pages from construct
pools covering the analysis subset — input reads, sanitizer chains,
regex/equality/switch conditionals, concatenation loops, helper
includes, mixed safe and vulnerable sinks.  All randomness flows
through the caller's single ``random.Random`` so a seed reproduces the
corpus byte-for-byte.
"""

from __future__ import annotations

import random
from pathlib import Path

from .snippets import db_class, formatting_helpers, page_shell


def generate_app(
    root: str | Path,
    pages: int = 5,
    queries_per_page: int = 2,
    helpers: int = 5,
    markup_chain: int = 0,
    vulnerable_ratio: float = 0.0,
    filler: int = 0,
) -> Path:
    """Write a synthetic app under ``root``; returns the app directory."""
    app = Path(root)
    (app / "includes").mkdir(parents=True, exist_ok=True)

    helper_functions = [formatting_helpers("gen")]
    for index in range(helpers):
        helper_functions.append(
            f"""\
function gen_helper_{index}($value)
{{
    $out = 'h{index}:' . $value;
    return $out;
}}
"""
        )
    (app / "includes" / "functions.php").write_text(
        "<?php\n" + "\n".join(helper_functions)
    )
    (app / "includes" / "db.php").write_text(db_class("GenDB", "gen_"))
    (app / "includes" / "common.php").write_text(
        """\
<?php
require_once 'includes/db.php';
require_once 'includes/functions.php';
$DB = new GenDB('localhost', 'gen', 'gen', 'gen');
"""
    )

    vulnerable_budget = int(round(pages * queries_per_page * vulnerable_ratio))
    emitted_vulnerable = 0
    for page_index in range(pages):
        body_lines = []
        if markup_chain:
            body_lines.append("$text = isset($_POST['text']) ? $_POST['text'] : '';")
            for chain_index in range(markup_chain):
                body_lines.append(
                    f"$text = str_replace('[t{chain_index}]', "
                    f"'<em{chain_index}>', $text);"
                )
            body_lines.append("echo $text;")
        for query_index in range(queries_per_page):
            param = f"p{query_index}"
            if emitted_vulnerable < vulnerable_budget:
                emitted_vulnerable += 1
                body_lines.append(
                    f"${param} = isset($_GET['{param}']) ? $_GET['{param}'] : '';"
                )
            else:
                body_lines.append(
                    f"${param} = intval(isset($_GET['{param}']) ? $_GET['{param}'] : 0);"
                )
            body_lines.append(
                f"$DB->query(\"SELECT * FROM gen_table_{query_index}"
                f" WHERE k='${param}'\");"
            )
        (app / f"page_{page_index:03d}.php").write_text(
            page_shell(
                f"Generated page {page_index}",
                "\n".join(body_lines),
                ["includes/common.php"],
                filler=filler,
            )
        )
    return app


# ---------------------------------------------------------------------------
# randomized pages for the differential oracle
# ---------------------------------------------------------------------------

#: sanitizer expression templates; ``%s`` is the subject expression
_FUZZ_SANITIZERS = [
    "addslashes(%s)",
    "mysql_real_escape_string(%s)",
    "htmlspecialchars(%s)",
    "str_replace(\"'\", \"''\", %s)",
    "preg_replace('/[^0-9a-z]/', '', %s)",
    "preg_replace('/[^0-9]/', '', %s)",
    "trim(%s)",
    "strtolower(%s)",
    "strtoupper(%s)",
    "ucfirst(%s)",
    "substr(%s, 0, 10)",
    "sprintf('[%%s]', %s)",
    "str_pad(%s, 6, '_')",
    "stripslashes(%s)",
    "strval(intval(%s))",
]

_FUZZ_GUARDS = [
    "/^[0-9]+$/",
    "/^[a-z]+$/",
    "/^[0-9a-zA-Z_]*$/",
]

_FUZZ_WORDS = ["red", "blue", "list", "edit", "name", "item", "left", "top"]
_FUZZ_TABLES = ["users", "items", "log", "posts"]
_FUZZ_COLUMNS = ["name", "tag", "title", "owner"]
_FUZZ_PARAMS = ["id", "q", "mode", "tag", "page", "sort"]


class _FuzzPage:
    """Accumulates one sampled page: lines + the live variable pool."""

    def __init__(self, rng: random.Random, helper_count: int) -> None:
        self.rng = rng
        self.lines: list[str] = []
        self.vars: list[str] = []
        self.counter = 0
        self.helper_count = helper_count

    def fresh(self) -> str:
        self.counter += 1
        return f"v{self.counter}"

    def pick_var(self) -> str:
        return self.rng.choice(self.vars)

    def word(self) -> str:
        return self.rng.choice(_FUZZ_WORDS)

    def sanitized(self, subject: str) -> str:
        return self.rng.choice(_FUZZ_SANITIZERS) % subject


def _fz_input(page: _FuzzPage) -> None:
    rng = page.rng
    var = page.fresh()
    key = rng.choice(_FUZZ_PARAMS)
    source = rng.choice(["_GET", "_GET", "_POST", "_COOKIE", "_REQUEST"])
    if rng.random() < 0.6:
        page.lines.append(
            f"${var} = isset(${source}['{key}']) ? ${source}['{key}'] "
            f": '{page.word()}';"
        )
    else:
        page.lines.append(f"${var} = ${source}['{key}'];")
    page.vars.append(var)


def _fz_sanitize(page: _FuzzPage) -> None:
    source = page.pick_var()
    target = source if page.rng.random() < 0.5 else page.fresh()
    page.lines.append(f"${target} = {page.sanitized('$' + source)};")
    if target not in page.vars:
        page.vars.append(target)


def _fz_combine(page: _FuzzPage) -> None:
    rng = page.rng
    var = page.fresh()
    a, b = page.pick_var(), page.pick_var()
    template = rng.choice(
        [
            f"${var} = ${a} . '-{page.word()}-' . ${b};",
            f"${var} = '{page.word()}:' . ${a};",
            f"${var} = sprintf('%s/%s', ${a}, ${b});",
        ]
    )
    page.lines.append(template)
    page.vars.append(var)


def _fz_conditional(page: _FuzzPage) -> None:
    rng = page.rng
    a = page.pick_var()
    kind = rng.randrange(4)
    if kind == 0:
        guard = rng.choice(_FUZZ_GUARDS)
        page.lines.extend(
            [
                f"if (preg_match('{guard}', ${a})) {{",
                f"    ${a} = '{page.word()}' . ${a};",
                "} else {",
                f"    ${a} = '{page.word()}';",
                "}",
            ]
        )
    elif kind == 1:
        lit = page.word()
        other = page.pick_var()
        page.lines.extend(
            [
                f"if (${a} == '{lit}') {{",
                f"    ${other} = ${other} . '+';",
                "} else {",
                f"    ${a} = {page.sanitized('$' + a)};",
                "}",
            ]
        )
    elif kind == 2:
        var = page.fresh()
        page.lines.append(
            f"${var} = (${a} == '') ? '{page.word()}' : ${a};"
        )
        page.vars.append(var)
    else:
        labels = rng.sample(_FUZZ_WORDS, 2)
        page.lines.extend(
            [
                f"switch (${a}) {{",
                f"case '{labels[0]}':",
                f"    ${a} = '{labels[0]}_1';",
                "    break;",
                f"case '{labels[1]}':",
                f"    ${a} = '{labels[1]}_2';",
                "    break;",
                "default:",
                f"    ${a} = {page.sanitized('$' + a)};",
                "}",
            ]
        )


def _fz_loop(page: _FuzzPage) -> None:
    rng = page.rng
    a = page.pick_var()
    kind = rng.randrange(3)
    if kind == 0:
        acc = page.fresh()
        count = rng.randrange(2, 5)
        page.lines.extend(
            [
                f"${acc} = '';",
                f"for ($i = 0; $i < {count}; $i = $i + 1) {{",
                f"    ${acc} = ${acc} . ${a} . ',';",
                "}",
            ]
        )
        page.vars.append(acc)
    elif kind == 1:
        acc = page.fresh()
        page.lines.extend(
            [
                f"${acc} = '';",
                f"foreach (explode(',', ${a}) as $piece) {{",
                f"    ${acc} = ${acc} . addslashes($piece) . ';';",
                "}",
            ]
        )
        page.vars.append(acc)
    else:
        var = page.fresh()
        table = rng.choice(_FUZZ_TABLES)
        page.lines.extend(
            [
                f"${var} = '{page.word()}';",
                f"$result = mysql_query(\"SELECT a FROM {table}\");",
                "while ($row = mysql_fetch_assoc($result)) {",
                f"    ${var} = $row['a'];",
                "}",
            ]
        )
        page.vars.append(var)


def _fz_helper_call(page: _FuzzPage) -> None:
    if not page.helper_count:
        return
    index = page.rng.randrange(page.helper_count)
    var = page.fresh()
    page.lines.append(f"${var} = fz_clean{index}(${page.pick_var()});")
    page.vars.append(var)


def _fz_sink(page: _FuzzPage) -> None:
    rng = page.rng
    a = page.pick_var()
    subject = f"${a}" if rng.random() < 0.55 else page.sanitized(f"${a}")
    table = rng.choice(_FUZZ_TABLES)
    column = rng.choice(_FUZZ_COLUMNS)
    sink = rng.choice(["mysql_query", "mysql_query", "pg_query", "sqlite_query"])
    template = rng.choice(
        [
            f'{sink}("SELECT * FROM {table} WHERE {column} = \'" . {subject} . "\'");',
            f'{sink}("SELECT * FROM {table} WHERE id = " . {subject});',
            f'{sink}("UPDATE {table} SET {column} = \'" . {subject} . "\' '
            f'WHERE k = {rng.randrange(100)}");',
            f'{sink}("DELETE FROM {table} WHERE {column} = \'" . {subject} . "\'");',
        ]
    )
    page.lines.append(template)


_FUZZ_SHELL_SINKS = ["system", "exec", "shell_exec", "passthru"]


def _fz_shell_sink(page: _FuzzPage) -> None:
    """A shell-command sink: raw, escapeshellarg'd, or sanitized arg."""
    rng = page.rng
    a = page.pick_var()
    roll = rng.random()
    if roll < 0.4:
        subject = f"escapeshellarg(${a})"
    elif roll < 0.6:
        subject = page.sanitized(f"${a}")
    else:
        subject = f"${a}"
    sink = rng.choice(_FUZZ_SHELL_SINKS)
    template = rng.choice(
        [
            f'{sink}("ls -l " . {subject});',
            f'{sink}("grep -F " . {subject} . " data.txt");',
            f"{sink}('tar cf backup.tar ' . {subject});",
        ]
    )
    page.lines.append(template)


_FUZZ_CONSTRUCTS = [
    (_fz_input, 2),
    (_fz_sanitize, 5),
    (_fz_combine, 3),
    (_fz_conditional, 4),
    (_fz_loop, 3),
    (_fz_helper_call, 2),
    (_fz_sink, 3),
]


def generate_fuzz_page(
    root: str | Path,
    rng: random.Random,
    statements: int = 10,
    policy: str | None = None,
) -> str:
    """Write one randomized page (plus a helper include) under ``root``.

    Returns the entry path relative to ``root``.  Only constructs both
    the analysis and the concrete oracle interpreter support are
    emitted, so every sampled execution stays inside the mirrored
    subset (see :mod:`repro.oracle.interp`).  ``policy="shell"`` mixes
    shell-command sinks into the construct pool and guarantees at
    least one per page.
    """
    app = Path(root)
    (app / "includes").mkdir(parents=True, exist_ok=True)

    helper_count = rng.randrange(1, 4)
    helper_functions = []
    for index in range(helper_count):
        body = rng.choice(_FUZZ_SANITIZERS) % "$x"
        if rng.random() < 0.5:
            body = rng.choice(_FUZZ_SANITIZERS) % body
        helper_functions.append(
            f"function fz_clean{index}($x)\n{{\n    return {body};\n}}\n"
        )
    (app / "includes" / "clean.php").write_text(
        "<?php\n" + "\n".join(helper_functions)
    )

    page = _FuzzPage(rng, helper_count)
    page.lines.append("require_once 'includes/clean.php';")
    for _ in range(rng.randrange(2, 4)):
        _fz_input(page)
    weighted = [fn for fn, weight in _FUZZ_CONSTRUCTS for _ in range(weight)]
    if policy == "shell":
        weighted += [_fz_shell_sink] * 3
    for _ in range(statements):
        rng.choice(weighted)(page)
    _fz_sink(page)
    if policy == "shell":
        _fz_shell_sink(page)

    (app / "index.php").write_text("<?php\n" + "\n".join(page.lines) + "\n")
    return "index.php"
