"""Parametric synthetic-application generator for scaling benchmarks.

The §5.3 claims need workloads with tunable knobs:

* ``pages`` / ``queries_per_page`` — code size vs. analysis time,
* ``helpers`` — shared-include weight (the re-analysis overhead the
  paper measures),
* ``markup_chain`` — the replacement-sequence blow-up length,
* ``vulnerable_ratio`` — how many queries use raw input.

Everything is deterministic (seeded by position, not RNG) so benchmark
runs are comparable.
"""

from __future__ import annotations

from pathlib import Path

from .snippets import db_class, formatting_helpers, page_shell


def generate_app(
    root: str | Path,
    pages: int = 5,
    queries_per_page: int = 2,
    helpers: int = 5,
    markup_chain: int = 0,
    vulnerable_ratio: float = 0.0,
    filler: int = 0,
) -> Path:
    """Write a synthetic app under ``root``; returns the app directory."""
    app = Path(root)
    (app / "includes").mkdir(parents=True, exist_ok=True)

    helper_functions = [formatting_helpers("gen")]
    for index in range(helpers):
        helper_functions.append(
            f"""\
function gen_helper_{index}($value)
{{
    $out = 'h{index}:' . $value;
    return $out;
}}
"""
        )
    (app / "includes" / "functions.php").write_text(
        "<?php\n" + "\n".join(helper_functions)
    )
    (app / "includes" / "db.php").write_text(db_class("GenDB", "gen_"))
    (app / "includes" / "common.php").write_text(
        """\
<?php
require_once 'includes/db.php';
require_once 'includes/functions.php';
$DB = new GenDB('localhost', 'gen', 'gen', 'gen');
"""
    )

    vulnerable_budget = int(round(pages * queries_per_page * vulnerable_ratio))
    emitted_vulnerable = 0
    for page_index in range(pages):
        body_lines = []
        if markup_chain:
            body_lines.append("$text = isset($_POST['text']) ? $_POST['text'] : '';")
            for chain_index in range(markup_chain):
                body_lines.append(
                    f"$text = str_replace('[t{chain_index}]', "
                    f"'<em{chain_index}>', $text);"
                )
            body_lines.append("echo $text;")
        for query_index in range(queries_per_page):
            param = f"p{query_index}"
            if emitted_vulnerable < vulnerable_budget:
                emitted_vulnerable += 1
                body_lines.append(
                    f"${param} = isset($_GET['{param}']) ? $_GET['{param}'] : '';"
                )
            else:
                body_lines.append(
                    f"${param} = intval(isset($_GET['{param}']) ? $_GET['{param}'] : 0);"
                )
            body_lines.append(
                f"$DB->query(\"SELECT * FROM gen_table_{query_index}"
                f" WHERE k='${param}'\");"
            )
        (app / f"page_{page_index:03d}.php").write_text(
            page_shell(
                f"Generated page {page_index}",
                "\n".join(body_lines),
                ["includes/common.php"],
                filler=filler,
            )
        )
    return app
