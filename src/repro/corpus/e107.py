"""Synthetic stand-in for e107 0.7.5 (paper Table 1, row 1).

The paper's largest subject: 741 files / 132,850 lines, with **1 real
direct** SQLCIV and **4 indirect** reports.  The direct bug "comes from
a field read from a cookie, which a user can modify, that is used in a
query in a different file" — reproduced here as ``class2.php`` (the real
e107 bootstrap name) reading the cookie and ``usersettings.php`` using
it.  e107's bulk is its hundreds of language/plugin constant files,
which is also where the paper's dynamic-include discussion lives
(§4: ``include("e107_languages/lan_".$choice.".php")``).
"""

from __future__ import annotations

from pathlib import Path

from .manifest import AppManifest, DIRECT_REAL, INDIRECT, Seed
from .snippets import db_class, formatting_helpers, language_file, page_shell

APP = "e107"
INCLUDES = ["e107_handlers/class2.php"]

#: number of generated language-pack files (the real e107 ships hundreds)
LANGUAGE_PACKS = 697
PACK_ENTRY_COUNT = 180  # ≈183 lines per pack file


def build(root: Path) -> AppManifest:
    app = root / APP
    (app / "e107_handlers").mkdir(parents=True, exist_ok=True)
    (app / "e107_languages").mkdir(parents=True, exist_ok=True)
    manifest = AppManifest(name="e107 (0.7.5)")

    _write_handlers(app)
    _write_language_packs(app)
    for name, source in _pages().items():
        (app / name).write_text(source)

    manifest.seeds = [
        Seed(
            "usersettings.php",
            DIRECT_REAL,
            "cookie read in class2.php, used raw in a query here (cross-file)",
        ),
        Seed("news.php", INDIRECT, "site preferences row used raw in a query"),
        Seed("comment.php", INDIRECT, "moderator name from prefs in audit INSERT"),
        Seed("online.php", INDIRECT, "tracking row column reused in UPDATE"),
        Seed("stats.php", INDIRECT, "referrer column from fetched row in INSERT"),
    ]
    return manifest


# ---------------------------------------------------------------------------
# handlers (the shared core every page includes)
# ---------------------------------------------------------------------------


def _write_handlers(app: Path) -> None:
    handlers = app / "e107_handlers"
    (handlers / "db_handler.php").write_text(db_class("e107_db", "e107_"))
    (handlers / "functions.php").write_text(
        "<?php\n" + formatting_helpers("e107")
    )
    (handlers / "prefs.php").write_text(
        """\
<?php
// site preferences live in the database: everything in $pref is
// INDIRECT data in the analysis
$getprefs = $sql->query("SELECT * FROM `e107_core` WHERE name='SitePrefs'");
$pref = $sql->fetch_array($getprefs);
"""
    )
    (handlers / "template.php").write_text(
        """\
<?php
function tablerender($caption, $text)
{
    echo '<div class="block"><h3>' . $caption . '</h3>';
    echo '<div class="inner">' . $text . '</div></div>';
}

function required($field)
{
    return '<span class="required">' . htmlspecialchars($field) . '*</span>';
}
"""
    )
    (handlers / "lang_loader.php").write_text(
        """\
<?php
// the paper's §4 example: a dynamic include whose argument is resolved
// against the project's file layout
$language = isset($_COOKIE['e107_language']) ? $_COOKIE['e107_language'] : 'en';
include('e107_languages/lan_' . $language . '.php');
"""
    )
    (handlers / "class2.php").write_text(
        """\
<?php
require_once 'e107_handlers/db_handler.php';
require_once 'e107_handlers/functions.php';
require_once 'e107_handlers/template.php';

$sql = new e107_db('localhost', 'e107', 'secret', 'e107');

// SEEDED SOURCE (direct-real lands in usersettings.php): the user id
// cookie is stored raw here and trusted elsewhere
$e107_uid = isset($_COOKIE['e107_uid']) ? $_COOKIE['e107_uid'] : '';

// the sanitized variant most pages use
$e107_uid_safe = intval($e107_uid);

require_once 'e107_handlers/prefs.php';
"""
    )


def _write_language_packs(app: Path) -> None:
    languages = app / "e107_languages"
    entries = [
        (f"LAN_{index}", f"Interface message number {index} for this pack")
        for index in range(PACK_ENTRY_COUNT)
    ]
    # the three dynamically includable packs (match the lan_ prefix)
    for code, greeting in (("en", "Welcome"), ("de", "Willkommen"), ("fr", "Bienvenue")):
        (languages / f"lan_{code}.php").write_text(
            "<?php\n"
            f"$lan_greeting = '{greeting}';\n"
            + language_file(f"lan_{code}", entries)[6:]  # drop duplicate <?php
        )
    # the long tail of pack files (plugins, themes, admin areas)
    for index in range(LANGUAGE_PACKS):
        (languages / f"pack_{index:03d}.php").write_text(
            language_file(f"pack{index:03d}", entries)
        )


# ---------------------------------------------------------------------------
# entry pages
# ---------------------------------------------------------------------------

#: safe plugin-style pages generated from one shape (news archive, polls,
#: downloads, …) — e107's entry surface is wide but repetitive
SAFE_SECTIONS = [
    "download", "links", "poll", "chatbox", "gallery", "calendar",
    "faq", "wiki", "guestbook", "banner", "newsletter", "search_adv",
    "top_posts", "members_recent", "print_friendly", "email_article",
    "bookmark", "rate", "trackback", "backup",
]


def _pages() -> dict[str, str]:
    pages: dict[str, str] = {}

    pages["index.php"] = page_shell(
        "e107 Portal",
        """\
$getnews = $sql->query("SELECT * FROM `e107_news` ORDER BY news_datestamp DESC LIMIT 10");
while ($row = $sql->fetch_array($getnews))
{
    tablerender(e107_html($row['news_title']), e107_html($row['news_body']));
}
""",
        INCLUDES,
        filler=280,
    )

    pages["news.php"] = page_shell(
        "News",
        """\
$item = intval(isset($_GET['item']) ? $_GET['item'] : 0);
$getnews = $sql->query("SELECT * FROM `e107_news` WHERE news_id=$item");
$row = $sql->fetch_array($getnews);
tablerender(e107_html($row['news_title']), e107_html($row['news_body']));

// SEEDED (indirect): the category default comes from the prefs row
$defaultcat = $pref['news_default_category'];
$sql->query("UPDATE `e107_news_stats` SET hits=hits+1"
    . " WHERE category='$defaultcat'");
""",
        INCLUDES,
        filler=280,
    )

    pages["usersettings.php"] = page_shell(
        "User Settings",
        """\
// SEEDED (direct-real, the paper's e107 bug): the raw cookie value set
// in e107_handlers/class2.php crosses the file boundary into this query
$getuser = $sql->query("SELECT * FROM `e107_user`"
    . " WHERE user_id='$e107_uid'");
$row = $sql->fetch_array($getuser);
echo '<form method="post">';
echo '<input name="realname" value="' . e107_html($row['user_name']) . '" />';
echo '</form>';
$realname = mysql_real_escape_string(isset($_POST['realname']) ? $_POST['realname'] : '');
$sql->query("UPDATE `e107_user` SET user_login='$realname'"
    . " WHERE user_id=$e107_uid_safe");
""",
        INCLUDES,
        filler=280,
    )

    pages["user.php"] = page_shell(
        "User Profile",
        """\
// the sanitized twin of usersettings.php (verifies clean)
$uid = intval(isset($_GET['id']) ? $_GET['id'] : 0);
$getuser = $sql->query("SELECT * FROM `e107_user` WHERE user_id=$uid");
$row = $sql->fetch_array($getuser);
tablerender('Profile', e107_html($row['user_name']));
""",
        INCLUDES,
        filler=280,
    )

    pages["comment.php"] = page_shell(
        "Comments",
        """\
$item = intval(isset($_GET['item']) ? $_GET['item'] : 0);
$body = mysql_real_escape_string(isset($_POST['comment']) ? $_POST['comment'] : '');
if ($body != '')
{
    $sql->query("INSERT INTO `e107_comments` (comment_item_id, comment_body)"
        . " VALUES ($item, '$body')");
}
// SEEDED (indirect): the audit line trusts the prefs moderator field
$moderator = $pref['comment_moderator'];
$sql->query("INSERT INTO `e107_audit` (who, what)"
    . " VALUES ('$moderator', 'comment')");
""",
        INCLUDES,
        filler=280,
    )

    pages["online.php"] = page_shell(
        "Who Is Online",
        """\
$getonline = $sql->query("SELECT * FROM `e107_online` ORDER BY online_timestamp DESC");
while ($row = $sql->fetch_array($getonline))
{
    echo '<li>' . e107_html($row['online_user']) . '</li>';
}
// SEEDED (indirect): the page column read from the row goes back raw
$lastpage = $row['online_location'];
$sql->query("UPDATE `e107_online_stats` SET views=views+1"
    . " WHERE page='$lastpage'");
""",
        INCLUDES,
        filler=280,
    )

    pages["stats.php"] = page_shell(
        "Statistics",
        """\
$getstats = $sql->query("SELECT * FROM `e107_stats` ORDER BY hits DESC LIMIT 50");
while ($row = $sql->fetch_array($getstats))
{
    echo '<tr><td>' . e107_html($row['page']) . '</td><td>'
        . e107_html($row['hits']) . '</td></tr>';
}
// SEEDED (indirect): the referrer string from the fetched row is reused
$referrer = $row['referrer'];
$sql->query("INSERT INTO `e107_referrals` (source) VALUES ('$referrer')");
""",
        INCLUDES,
        filler=280,
    )

    pages["language.php"] = page_shell(
        "Language",
        """\
// the §4 dynamic include: the cookie value is intersected with the
// project layout to find which files can actually be included
require_once 'e107_handlers/lang_loader.php';
tablerender('Language', e107_html($lan_greeting));
""",
        INCLUDES,
        filler=200,
    )

    pages["login.php"] = page_shell(
        "Login",
        """\
$username = mysql_real_escape_string(isset($_POST['username']) ? $_POST['username'] : '');
$password = md5(isset($_POST['password']) ? $_POST['password'] : '');
$check = $sql->query("SELECT * FROM `e107_user`"
    . " WHERE user_loginname='$username' AND user_password='$password'");
if ($sql->is_single_row($check))
{
    tablerender('Welcome', 'Login successful.');
}
""",
        INCLUDES,
        filler=280,
    )

    pages["signup.php"] = page_shell(
        "Sign Up",
        """\
$loginname = mysql_real_escape_string(isset($_POST['loginname']) ? $_POST['loginname'] : '');
$email = isset($_POST['email']) ? $_POST['email'] : '';
if (!preg_match('/^[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+$/', $email))
{
    exit;
}
$email = mysql_real_escape_string($email);
$sql->query("INSERT INTO `e107_user` (user_loginname, user_email)"
    . " VALUES ('$loginname', '$email')");
""",
        INCLUDES,
        filler=280,
    )

    pages["contact.php"] = page_shell(
        "Contact",
        """\
$subject = mysql_real_escape_string(isset($_POST['subject']) ? $_POST['subject'] : '');
$body = mysql_real_escape_string(isset($_POST['body']) ? $_POST['body'] : '');
$sql->query("INSERT INTO `e107_messages` (subject, body)"
    . " VALUES ('$subject', '$body')");
""",
        INCLUDES,
        filler=280,
    )

    pages["submitnews.php"] = page_shell(
        "Submit News",
        """\
$title = mysql_real_escape_string(isset($_POST['title']) ? $_POST['title'] : '');
$body = mysql_real_escape_string(isset($_POST['body']) ? $_POST['body'] : '');
$sql->query("INSERT INTO `e107_submitnews` (submitnews_title, submitnews_item)"
    . " VALUES ('$title', '$body')");
""",
        INCLUDES,
        filler=280,
    )

    pages["search.php"] = page_shell(
        "Search",
        """\
$query = mysql_real_escape_string(isset($_GET['q']) ? $_GET['q'] : '');
$results = $sql->query("SELECT * FROM `e107_news`"
    . " WHERE news_title LIKE '%$query%' LIMIT 20");
while ($row = $sql->fetch_array($results))
{
    echo '<h4>' . e107_html($row['news_title']) . '</h4>';
}
""",
        INCLUDES,
        filler=280,
    )

    pages["top.php"] = page_shell(
        "Top Content",
        """\
$area = isset($_GET['area']) ? $_GET['area'] : 'news';
if (!in_array($area, array('news', 'downloads', 'links')))
{
    $area = 'news';
}
$rows = $sql->query("SELECT * FROM `e107_stats`"
    . " WHERE area='$area' ORDER BY hits DESC LIMIT 10");
while ($row = $sql->fetch_array($rows))
{
    echo '<li>' . e107_html($row['page']) . '</li>';
}
""",
        INCLUDES,
        filler=280,
    )

    for section in SAFE_SECTIONS:
        pages[f"{section}.php"] = page_shell(
            section.replace("_", " ").title(),
            f"""\
// generated section page (verifies clean): id is cast, text is escaped
$id = intval(isset($_GET['id']) ? $_GET['id'] : 0);
$rows = $sql->query("SELECT * FROM `e107_{section}` WHERE parent=$id"
    . " ORDER BY id DESC LIMIT 25");
while ($row = $sql->fetch_array($rows))
{{
    tablerender(e107_html($row['title']), e107_html($row['body']));
}}
$note = mysql_real_escape_string(isset($_POST['note']) ? $_POST['note'] : '');
if ($note != '')
{{
    $sql->query("INSERT INTO `e107_{section}_notes` (body) VALUES ('$note')");
}}
""",
            INCLUDES,
            filler=300,
        )

    # 14 named pages + 20 generated sections = 34 entry pages
    # 34 + 6 handlers + 700 language files = 740; add one more: offline page
    pages["offline.php"] = page_shell(
        "Offline",
        """\
echo '<p>The site is currently down for maintenance.</p>';
""",
        [],
        filler=120,
    )
    return pages
