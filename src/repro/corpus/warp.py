"""Synthetic stand-in for Warp Content Management System 1.2.1 (Table 1,
row 5) — the app the paper *verified*: **zero** reports of any kind.

Warp is the precision stress test in the other direction: 42 files /
23,003 lines of queries that are all defensible, using every sanitation
idiom the analysis must prove safe — ``intval``/casts, escaping inside
quotes, anchored regular expressions, and whitelists.  Any report here
is a false positive, so this app keeps the checker honest.
"""

from __future__ import annotations

from pathlib import Path

from .manifest import AppManifest
from .snippets import (
    db_class,
    formatting_helpers,
    language_file,
    page_shell,
)

APP = "warp_cms"
INCLUDES = ["lib/bootstrap.php"]

#: (module name, singular noun) — each becomes list/show/save/remove pages
MODULES = [
    ("pages", "page"),
    ("blocks", "block"),
    ("menus", "menu"),
    ("media", "asset"),
    ("users", "account"),
    ("groups", "group"),
    ("plugins", "plugin"),
    ("themes", "theme"),
]


def build(root: Path) -> AppManifest:
    app = root / APP
    (app / "lib").mkdir(parents=True, exist_ok=True)
    manifest = AppManifest(name="Warp Content MS (1.2.1)")

    _write_lib(app)
    page_count = 0
    for module, noun in MODULES:
        (app / f"{module}_list.php").write_text(_list_page(module, noun))
        (app / f"{module}_show.php").write_text(_show_page(module, noun))
        (app / f"{module}_save.php").write_text(_save_page(module, noun))
        (app / f"{module}_remove.php").write_text(_remove_page(module, noun))
        page_count += 4
    (app / "index.php").write_text(_index_page())
    (app / "sitemap.php").write_text(_sitemap_page())
    (app / "feed.php").write_text(_feed_page())
    (app / "contact.php").write_text(_contact_page())
    # 8 modules × 4 pages + 4 site pages + 6 lib files = 42 files
    return manifest


def _write_lib(app: Path) -> None:
    (app / "lib" / "config.php").write_text(
        "<?php\n"
        "$warp_dbhost = 'localhost';\n"
        "$warp_dbuser = 'warp';\n"
        "$warp_dbpass = 'secret';\n"
        "$warp_dbname = 'warpcms';\n"
        "$warp_theme = 'default';\n"
        "$warp_perpage = 25;\n"
    )
    (app / "lib" / "database.php").write_text(db_class("WarpDB", "warp_"))
    (app / "lib" / "helpers.php").write_text(
        "<?php\n" + formatting_helpers("warp") + _validators()
    )
    (app / "lib" / "lang.php").write_text(
        language_file(
            "wl",
            [
                ("saved", "Saved."),
                ("removed", "Removed."),
                ("invalid", "Invalid request."),
                ("noperm", "Permission denied."),
                ("notfound", "Not found."),
                ("contactok", "Your message has been sent."),
                ("welcome", "Welcome to Warp CMS."),
            ],
        )
    )
    (app / "lib" / "template.php").write_text(
        """\
<?php
function warp_render_head($title)
{
    echo '<html><head><title>' . htmlspecialchars($title) . '</title></head>';
    echo '<body><div id="page">';
}

function warp_render_foot()
{
    echo '</div></body></html>';
}

function warp_render_row($cells)
{
    $out = '<tr>';
    foreach ($cells as $cell)
    {
        $out .= '<td>' . htmlspecialchars($cell) . '</td>';
    }
    return $out . '</tr>';
}
"""
    )
    (app / "lib" / "bootstrap.php").write_text(
        """\
<?php
require_once 'lib/config.php';
require_once 'lib/database.php';
require_once 'lib/helpers.php';
require_once 'lib/lang.php';
require_once 'lib/template.php';

$DB = new WarpDB($warp_dbhost, $warp_dbuser, $warp_dbpass, $warp_dbname);
"""
    )


def _validators() -> str:
    return """\
function warp_id($value)
{
    return intval($value);
}

function warp_text($value)
{
    return mysql_real_escape_string($value);
}

function warp_slug($value)
{
    return preg_replace('/[^a-z0-9_]/', '', strtolower($value));
}

function warp_checkslug($value)
{
    return preg_match('/^[a-z0-9_]+$/', $value);
}
"""


def _list_page(module: str, noun: str) -> str:
    return page_shell(
        f"Warp — {module}",
        f"""\
// listing with cast paging and a whitelisted sort column
$page = warp_id(isset($_GET['page']) ? $_GET['page'] : 1);
$offset = ($page - 1) * $warp_perpage;
$sort = isset($_GET['sort']) ? $_GET['sort'] : 'title';
if (!in_array($sort, array('title', 'created', 'author')))
{{
    $sort = 'title';
}}
$rows = $DB->query("SELECT * FROM `warp_{module}`"
    . " ORDER BY $sort ASC LIMIT $offset, 25");
echo '<table>';
while ($row = $DB->fetch_array($rows))
{{
    echo warp_render_row(array($row['title'], $row['author']));
}}
echo '</table>';
echo warp_pager($page, 10);
""",
        INCLUDES,
        filler=600,
    )


def _show_page(module: str, noun: str) -> str:
    return page_shell(
        f"Warp — view {noun}",
        f"""\
// display by integer id (cast) or by slug (anchored regex)
$id = warp_id(isset($_GET['id']) ? $_GET['id'] : 0);
if ($id > 0)
{{
    $result = $DB->query("SELECT * FROM `warp_{module}` WHERE id=$id");
}}
else
{{
    $slug = isset($_GET['slug']) ? $_GET['slug'] : '';
    if (!warp_checkslug($slug))
    {{
        warp_msg($wl_invalid);
        exit;
    }}
    $result = $DB->query("SELECT * FROM `warp_{module}` WHERE slug='$slug'");
}}
$row = $DB->fetch_array($result);
echo '<h1>' . warp_html($row['title']) . '</h1>';
echo '<div>' . warp_html($row['body']) . '</div>';
""",
        INCLUDES,
        filler=650,
    )


def _save_page(module: str, noun: str) -> str:
    return page_shell(
        f"Warp — save {noun}",
        f"""\
// every field passes through a typed validator before the query
$id = warp_id(isset($_POST['id']) ? $_POST['id'] : 0);
$title = warp_text(isset($_POST['title']) ? $_POST['title'] : '');
$body = warp_text(isset($_POST['body']) ? $_POST['body'] : '');
$slug = warp_slug(isset($_POST['slug']) ? $_POST['slug'] : '');
if ($id > 0)
{{
    $DB->query("UPDATE `warp_{module}`"
        . " SET title='$title', body='$body', slug='$slug'"
        . " WHERE id=$id");
}}
else
{{
    $DB->query("INSERT INTO `warp_{module}` (title, body, slug)"
        . " VALUES ('$title', '$body', '$slug')");
}}
warp_msg($wl_saved);
""",
        INCLUDES,
        filler=700,
    )


def _remove_page(module: str, noun: str) -> str:
    return page_shell(
        f"Warp — remove {noun}",
        f"""\
$id = isset($_POST['id']) ? $_POST['id'] : '';
if (!preg_match('/^[0-9]+$/', $id))
{{
    warp_msg($wl_invalid);
    exit;
}}
$DB->query("DELETE FROM `warp_{module}` WHERE id='$id' LIMIT 1");
warp_msg($wl_removed);
""",
        INCLUDES,
        filler=500,
    )


def _index_page() -> str:
    return page_shell(
        "Warp CMS",
        """\
$home = $DB->query("SELECT * FROM `warp_pages` WHERE slug='home'");
$row = $DB->fetch_array($home);
echo '<h1>' . warp_html($row['title']) . '</h1>';
echo '<div>' . warp_html($row['body']) . '</div>';
""",
        INCLUDES,
        filler=400,
    )


def _sitemap_page() -> str:
    return page_shell(
        "Sitemap",
        """\
$rows = $DB->query("SELECT slug, title FROM `warp_pages` ORDER BY title ASC");
echo '<ul>';
while ($row = $DB->fetch_array($rows))
{
    echo '<li><a href="pages_show.php?slug=' . warp_html($row['slug']) . '">'
        . warp_html($row['title']) . '</a></li>';
}
echo '</ul>';
""",
        INCLUDES,
        filler=400,
    )


def _feed_page() -> str:
    return page_shell(
        "Feed",
        """\
$count = warp_id(isset($_GET['count']) ? $_GET['count'] : 10);
$rows = $DB->query("SELECT * FROM `warp_pages`"
    . " ORDER BY created DESC LIMIT $count");
echo '<rss version="2.0"><channel>';
while ($row = $DB->fetch_array($rows))
{
    echo '<item><title>' . warp_html($row['title']) . '</title></item>';
}
echo '</channel></rss>';
""",
        INCLUDES,
        filler=400,
    )


def _contact_page() -> str:
    return page_shell(
        "Contact",
        """\
$name = warp_text(isset($_POST['name']) ? $_POST['name'] : '');
$message = warp_text(isset($_POST['message']) ? $_POST['message'] : '');
if ($name != '' && $message != '')
{
    $DB->query("INSERT INTO `warp_messages` (name, body)"
        . " VALUES ('$name', '$message')");
    warp_msg($wl_contactok);
}
""",
        INCLUDES,
        filler=400,
    )
