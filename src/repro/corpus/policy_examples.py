"""Vulnerable/safe example pairs for the non-SQL sink policies.

One tiny page pair per policy (shell, eval, path, context-sensitive
XSS): the ``*_vuln.php`` page carries at least one true finding and its
``*_safe.php`` counterpart sanitizes the same flow and must verify.
``xss_context.php`` is the acceptance example for context sensitivity:
the *same* ``htmlspecialchars`` (default flags) value is safe in HTML
body but a violation in a single-quoted attribute and in a URL
attribute — three verdicts on one page.

This app is deliberately **not** part of :data:`repro.corpus.APPS`
(the Table 1 five, whose per-app counts are pinned by the paper);
``build()`` writes it standalone, and the checked-in copies live under
``examples/policy_pages/`` for direct CLI use with
``examples/policies.yaml``.
"""

from __future__ import annotations

from pathlib import Path

from .manifest import AppManifest, Seed

APP = "policy_examples"

#: ground-truth seed kind for policy findings: ``policy-real:<id>``
#: (page has ≥1 violation under that policy) — ``*_safe`` pages are the
#: implicit negatives: zero violations expected under every policy
POLICY_REAL = "policy-real"

#: page name → source text (the single source of truth; the files in
#: ``examples/policy_pages/`` are checked-in copies of exactly these)
PAGES: dict[str, str] = {
    "shell_vuln.php": """\
<?php
// VULNERABLE (shell): raw GET data concatenated into a system() command
$dir = $_GET['dir'];
system("ls -l " . $dir);
""",
    "shell_safe.php": """\
<?php
// SAFE (shell): escapeshellarg wraps the argument in single quotes and
// escapes embedded quotes, so no metacharacter is reachable unquoted
$dir = $_GET['dir'];
system("ls -l " . escapeshellarg($dir));
""",
    "eval_vuln.php": """\
<?php
// VULNERABLE (eval): untrusted text spliced into dynamically evaluated
// code can close the string literal and run arbitrary PHP
$msg = $_GET['msg'];
eval("echo '" . $msg . "';");
""",
    "eval_safe.php": """\
<?php
// SAFE (eval): intval confines the untrusted value to an integer
// literal, which carries no PHP metacharacter
$n = intval($_GET['n']);
eval("echo " . $n . ";");
""",
    "path_vuln.php": """\
<?php
// VULNERABLE (path): '..' or an absolute path escapes the uploads dir
$f = $_GET['f'];
readfile("uploads/" . $f);
// and the classic dynamic include of a request parameter (scoped to
// pages/ so include resolution stays inside this example)
include("pages/" . $_GET['page'] . ".php");
""",
    "path_safe.php": """\
<?php
// SAFE (path): the character whitelist leaves no '..', '/' or drive
// prefix in the untrusted part
$f = preg_replace('/[^a-z0-9_]/', '', $_GET['f']);
readfile("uploads/" . $f . ".txt");
""",
    "xss_context.php": """\
<?php
// CONTEXT-SENSITIVE XSS: one value, three output contexts, three
// different verdicts.  htmlspecialchars with default flags encodes
// < > " but NOT the single quote.
$x = htmlspecialchars($_GET['x']);
// 1. HTML body: safe ('<' cannot appear)
echo '<p>' . $x . '</p>';
// 2. single-quoted attribute: VIOLATION (the quote passes through)
echo "<img alt='" . $x . "'>";
// 3. URL attribute: VIOLATION (a javascript: prefix needs no
//    markup character at all)
echo '<a href="' . $x . '">go</a>';
""",
    "xss_context_safe.php": """\
<?php
// SAFE counterpart: ENT_QUOTES also encodes the single quote, and the
// URL attribute only ever receives an integer
$x = htmlspecialchars($_GET['x'], ENT_QUOTES);
echo '<p>' . $x . '</p>';
echo "<img alt='" . $x . "'>";
echo '<a href="item.php?id=' . intval($_GET['id']) . '">view</a>';
""",
}

#: expected violation policies per page (the test-suite ground truth):
#: page → tuple of policy ids with ≥1 violation there
EXPECTED_VIOLATIONS: dict[str, tuple[str, ...]] = {
    "shell_vuln.php": ("shell",),
    "shell_safe.php": (),
    "eval_vuln.php": ("eval",),
    "eval_safe.php": (),
    "path_vuln.php": ("path",),
    "path_safe.php": (),
    # the context-blind xss policy also fires on the default-flags page
    "xss_context.php": ("xss", "xss-context"),
    "xss_context_safe.php": (),
}


def build(root: Path) -> AppManifest:
    """Write the example pages under ``root/policy_examples``."""
    app = Path(root) / APP
    app.mkdir(parents=True, exist_ok=True)
    manifest = AppManifest(name="Policy Examples")
    for page, source in PAGES.items():
        (app / page).write_text(source)
    (app / "uploads").mkdir(exist_ok=True)
    # the one legitimate target of path_vuln.php's dynamic include
    (app / "pages").mkdir(exist_ok=True)
    (app / "pages" / "about.php").write_text(
        "<?php\necho '<p>About this site.</p>';\n"
    )
    manifest.seeds = [
        Seed(page, f"{POLICY_REAL}:{policy_id}", f"{policy_id} violation")
        for page, policy_ids in EXPECTED_VIOLATIONS.items()
        for policy_id in policy_ids
    ]
    return manifest
