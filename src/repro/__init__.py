"""Reproduction of "Sound and Precise Analysis of Web Applications for
Injection Vulnerabilities" (Wassermann & Su, PLDI 2007).

Public API highlights:

>>> from repro import analyze_page, analyze_project
>>> reports, analysis = analyze_page("webapp/", "page.php")

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.analysis.analyzer import analyze_page, analyze_project, entry_pages
from repro.analysis.reports import Finding, HotspotReport, ProjectReport
from repro.analysis.stringtaint import AnalysisResult, Hotspot, StringTaintAnalysis

__version__ = "1.0.0"

__all__ = [
    "AnalysisResult",
    "Finding",
    "Hotspot",
    "HotspotReport",
    "ProjectReport",
    "StringTaintAnalysis",
    "analyze_page",
    "analyze_project",
    "entry_pages",
    "__version__",
]
