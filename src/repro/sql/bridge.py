"""Bridge between character-level query grammars and token-level SQL.

The string-taint analysis produces grammars over *characters* (literal
chunks and charsets); the derivability check (§3.2.2) runs over *SQL
tokens*.  This module converts conservatively: whenever the conversion
cannot prove that a character-level boundary is also a token boundary,
it raises :class:`TokenizationFailure`, and the policy checker treats
the nonterminal as unsafe.  Failing closed keeps Theorem 3.4 intact.

Three mechanisms:

* *atomic abstraction* — if a nonterminal's entire language fits inside
  one token class (all numbers / all quoted strings / all identifiers),
  the nonterminal maps to that single token;
* *production expansion* — literal chunks are lexed with the real SQL
  lexer and charset terminals must be digit sets (→ ``NUMBER``);
* *boundary analysis* — adjacent items must not be able to merge into
  one token (``1`` next to ``2`` would re-lex as one NUMBER; ``-`` next
  to ``-`` would become a comment).  FIRST/LAST character sets are
  computed per nonterminal to decide this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.charset import CharSet, DIGITS, WORD
from repro.lang.earley import TokenGrammar
from repro.lang.fsa import DFA
from repro.lang.grammar import Grammar, Lit, Nonterminal, Symbol
from repro.lang.intersect import intersection_is_empty
from repro.lang.regex import full_match_language, parse_regex
from .lexer import KEYWORDS, SqlLexError, tokenize


class TokenizationFailure(Exception):
    """The char-level grammar cannot be conservatively tokenized."""


# ---------------------------------------------------------------------------
# Token-class languages (as complement DFAs, for subset checks)
# ---------------------------------------------------------------------------


def _complement_dfa(pattern: str) -> DFA:
    return full_match_language(parse_regex(pattern)).determinize().complement()


_NUMBER_COMPLEMENT = None
_SIGNED_NUMBER_COMPLEMENT = None
_STRING_COMPLEMENT = None
_IDENT_COMPLEMENT = None
_KEYWORDS_DFA = None


def _ensure_dfas() -> None:
    global _NUMBER_COMPLEMENT, _SIGNED_NUMBER_COMPLEMENT, _STRING_COMPLEMENT
    global _IDENT_COMPLEMENT, _KEYWORDS_DFA
    if _NUMBER_COMPLEMENT is None:
        _NUMBER_COMPLEMENT = _complement_dfa(r"[0-9]+(\.[0-9]*)?")
        _SIGNED_NUMBER_COMPLEMENT = _complement_dfa(r"-?[0-9]+(\.[0-9]*)?")
        _STRING_COMPLEMENT = _complement_dfa(r"'([^'\\]|\\.|'')*'")
        _IDENT_COMPLEMENT = _complement_dfa(r"[A-Za-z_][A-Za-z0-9_]*")
        from repro.lang.fsa import NFA

        keywords = NFA.nothing()
        for word in KEYWORDS:
            for variant in (word, word.lower(), word.capitalize()):
                keywords = keywords.union(NFA.from_string(variant))
        _KEYWORDS_DFA = keywords.determinize()


def _language_subset(grammar: Grammar, root: Nonterminal, complement: DFA) -> bool:
    """L(root) ⊆ token-class ⇔ L(root) ∩ complement = ∅."""
    return intersection_is_empty(grammar, root, complement)


def _language_nonempty(grammar: Grammar, root: Nonterminal) -> bool:
    return root in grammar.trim(root).productive()


# ---------------------------------------------------------------------------
# FIRST/LAST character analysis
# ---------------------------------------------------------------------------


@dataclass
class _Edges:
    first: CharSet
    last: CharSet
    nullable: bool


def _boundary_info(grammar: Grammar) -> dict[Nonterminal, _Edges]:
    info = {
        nt: _Edges(CharSet.empty(), CharSet.empty(), False)
        for nt in grammar.productions
    }

    def sym_first(symbol: Symbol) -> tuple[CharSet, bool]:
        if isinstance(symbol, Lit):
            return (CharSet.of(symbol.text[0]), False) if symbol.text else (
                CharSet.empty(),
                True,
            )
        if isinstance(symbol, CharSet):
            return symbol, False
        edge = info[symbol]
        return edge.first, edge.nullable

    def sym_last(symbol: Symbol) -> tuple[CharSet, bool]:
        if isinstance(symbol, Lit):
            return (CharSet.of(symbol.text[-1]), False) if symbol.text else (
                CharSet.empty(),
                True,
            )
        if isinstance(symbol, CharSet):
            return symbol, False
        edge = info[symbol]
        return edge.last, edge.nullable

    changed = True
    while changed:
        changed = False
        for nt, rules in grammar.productions.items():
            edge = info[nt]
            first, last, nullable = edge.first, edge.last, edge.nullable
            for rhs in rules:
                all_nullable = True
                for symbol in rhs:
                    sym_f, sym_nullable = sym_first(symbol)
                    first = first.union(sym_f)
                    if not sym_nullable:
                        all_nullable = False
                        break
                all_nullable_rev = True
                for symbol in reversed(rhs):
                    sym_l, sym_nullable = sym_last(symbol)
                    last = last.union(sym_l)
                    if not sym_nullable:
                        all_nullable_rev = False
                        break
                if all_nullable and all_nullable_rev:
                    nullable = True
            if (
                first != edge.first
                or last != edge.last
                or nullable != edge.nullable
            ):
                info[nt] = _Edges(first, last, nullable)
                changed = True
    return info


_QUOTES = CharSet.of("'\"`")
_DASH = CharSet.of("-")
_EQ_PRE = CharSet.of("<>!=")
_EQ = CharSet.of("=")
_LT = CharSet.of("<")
_GT = CharSet.of(">")
_DOT = CharSet.of(".")


def tokens_can_merge(last: CharSet, first: CharSet) -> bool:
    """Could a character from ``last`` and one from ``first`` re-lex as a
    single token (or change token kinds) when adjacent?  Conservative."""
    if last.overlaps(WORD) and first.overlaps(WORD):
        return True
    if last.overlaps(_DASH) and first.overlaps(_DASH):
        return True
    if last.overlaps(_EQ_PRE) and first.overlaps(_EQ):
        return True
    if last.overlaps(_LT) and first.overlaps(_GT):
        return True
    if last.overlaps(_QUOTES) and first.overlaps(_QUOTES):
        return True
    if last.overlaps(_DOT) and first.overlaps(DIGITS.union(_DOT)):
        return True
    if last.overlaps(DIGITS) and first.overlaps(_DOT):
        return True
    if last.overlaps(CharSet.of("\\")):
        return True  # a trailing backslash can swallow the next character
    return False


# ---------------------------------------------------------------------------
# Conversion
# ---------------------------------------------------------------------------


def grammar_to_tokens(
    grammar: Grammar,
    root: Nonterminal,
    special: dict[Nonterminal, str] | None = None,
) -> TokenGrammar:
    """Convert the char-level ``grammar`` (from ``root``) to token level.

    ``special`` marks hole nonterminals: they become production-less
    token-grammar nonterminals with the given names (used to locate an
    untrusted subgrammar inside its query context).  Raises
    :class:`TokenizationFailure` when conversion would be unsound.
    """
    _ensure_dfas()
    special = special or {}
    info = _boundary_info(grammar)
    result = TokenGrammar(_nt_name(root))
    atomic: dict[Nonterminal, str | None] = {}

    def atomic_token(nt: Nonterminal) -> list[tuple[str, ...]] | None:
        """Token-sequence productions covering L(nt), or None."""
        if nt in atomic:
            return atomic[nt]
        productions: list[tuple[str, ...]] | None = None
        if nt not in special and _language_nonempty(grammar, nt):
            if _language_subset(grammar, nt, _NUMBER_COMPLEMENT):
                productions = [("NUMBER",)]
            elif _language_subset(grammar, nt, _SIGNED_NUMBER_COMPLEMENT):
                productions = [("NUMBER",), ("-", "NUMBER")]
            elif _language_subset(grammar, nt, _STRING_COMPLEMENT):
                productions = [("STRING",)]
            elif _language_subset(grammar, nt, _IDENT_COMPLEMENT):
                if intersection_is_empty(grammar, nt, _KEYWORDS_DFA):
                    productions = [("IDENT",)]
        atomic[nt] = productions
        return productions

    def convert_symbol(symbol: Symbol) -> list[str]:
        if isinstance(symbol, Lit):
            try:
                lexed = tokenize(symbol.text)
            except SqlLexError as exc:
                raise TokenizationFailure(
                    f"literal {symbol.text!r} does not lex: {exc}"
                ) from exc
            if any(token.symbol == "COMMENT" for token in lexed):
                raise TokenizationFailure(
                    f"literal {symbol.text!r} contains a comment"
                )
            return [token.symbol for token in lexed]
        if isinstance(symbol, CharSet):
            if symbol and symbol.is_subset_of(DIGITS):
                return ["NUMBER"]
            if symbol.is_singleton():
                char = symbol.min_char()
                try:
                    lexed = tokenize(char)
                except SqlLexError as exc:
                    raise TokenizationFailure(
                        f"charset char {char!r} does not lex: {exc}"
                    ) from exc
                if len(lexed) == 1 and lexed[0].symbol != "COMMENT":
                    return [lexed[0].symbol]
            raise TokenizationFailure(f"charset {symbol!r} is not a clean token")
        if symbol in special:
            return [special[symbol]]
        if symbol in reaches_hole:
            return [_nt_name(symbol)]
        productions = atomic_token(symbol)
        if productions is not None:
            if len(productions) == 1:
                return list(productions[0])
            name = _nt_name(symbol)
            for rhs in productions:
                result.add(name, rhs)
            return [name]
        return [_nt_name(symbol)]

    def check_boundaries(rhs: tuple[Symbol, ...]) -> None:
        """No adjacent (possibly through nullables) items may merge."""
        edges: list[tuple[CharSet, CharSet, bool]] = []
        for symbol in rhs:
            if isinstance(symbol, Lit):
                if not symbol.text:
                    continue
                edges.append(
                    (CharSet.of(symbol.text[0]), CharSet.of(symbol.text[-1]), False)
                )
            elif isinstance(symbol, CharSet):
                edges.append((symbol, symbol, False))
            else:
                edge = info.get(symbol)
                if edge is None:
                    raise TokenizationFailure(f"unknown nonterminal {symbol!r}")
                edges.append((edge.first, edge.last, edge.nullable))
        for i in range(len(edges)):
            _, last, _ = edges[i]
            for j in range(i + 1, len(edges)):
                first, _, nullable = edges[j]
                if tokens_can_merge(last, first):
                    raise TokenizationFailure(
                        f"items {i} and {j} may merge across a token boundary"
                    )
                if not nullable:
                    break

    # Nonterminals that can reach a special hole must keep their structure
    # (the finite-enumeration shortcut would inline the hole away).
    reaches_hole: set[Nonterminal] = set(special)
    if special:
        incoming: dict[Nonterminal, set[Nonterminal]] = {}
        for lhs, rules in grammar.productions.items():
            for rhs in rules:
                for symbol in rhs:
                    if isinstance(symbol, Nonterminal):
                        incoming.setdefault(symbol, set()).add(lhs)
        frontier = list(special)
        while frontier:
            nt = frontier.pop()
            for parent in incoming.get(nt, ()):
                if parent not in reaches_hole:
                    reaches_hole.add(parent)
                    frontier.append(parent)

    # Walk only the nonterminals that must be *expanded*: descent stops at
    # special holes and atomically-abstracted nonterminals (their internal
    # structure is already summarized by a single token).
    pending = [root]
    visited: set[Nonterminal] = set()
    while pending:
        nt = pending.pop()
        if nt in visited:
            continue
        visited.add(nt)
        if nt in special:
            result.productions.setdefault(special[nt], [])
            continue
        if nt not in reaches_hole and atomic_token(nt) is not None:
            continue
        name = _nt_name(nt)
        # finite whitelist languages (ASC|DESC, column-name sets, …):
        # enumerate and lex each string exactly
        finite = None
        if nt not in reaches_hole:
            finite = grammar.enumerate_finite(nt, max_strings=32)
        if finite is not None and finite:
            converted = []
            for text in finite:
                try:
                    lexed = tokenize(text)
                except SqlLexError as exc:
                    raise TokenizationFailure(
                        f"finite value {text!r} does not lex: {exc}"
                    ) from exc
                if any(token.symbol == "COMMENT" for token in lexed):
                    raise TokenizationFailure(
                        f"finite value {text!r} contains a comment"
                    )
                converted.append([token.symbol for token in lexed])
            for symbols in converted:
                result.add(name, symbols)
            continue
        rules = grammar.productions.get(nt, ())
        if not rules:
            raise TokenizationFailure(f"{nt!r} has no productions and no token")
        for rhs in rules:
            check_boundaries(rhs)
            tokens: list[str] = []
            for symbol in rhs:
                tokens.extend(convert_symbol(symbol))
            result.add(name, tokens)
            for symbol in rhs:
                if isinstance(symbol, Nonterminal):
                    pending.append(symbol)
    # make sure the root exists even if it was atomically abstracted
    root_atomic = atomic_token(root)
    if root_atomic is not None:
        result.start = _nt_name(root)
        for rhs in root_atomic:
            result.add(result.start, rhs)
    if root in special:
        result.start = special[root]
    return result


def _nt_name(nt: Nonterminal) -> str:
    return f"N{nt.uid}"
