"""The reference SQL grammar (token level).

This is the grammar ``G`` of Definition 2.2/2.3: a query is an *attack*
if some untrusted substring is not derivable from a single nonterminal
(i.e. not syntactically confined).  The derivability fallback check
(§3.2.2) asks whether an untrusted subgrammar maps into this grammar
under Definition 3.2.

The subset covers every query form the evaluation corpus generates:
SELECT (with WHERE / ORDER BY / LIMIT / joins / unions), INSERT, UPDATE,
DELETE, DROP TABLE, boolean and arithmetic expressions, ``IN`` lists,
``LIKE``, ``IS [NOT] NULL``, function calls, and qualified columns.
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang.earley import TokenGrammar, parse_sentential_form


@lru_cache(maxsize=1)
def sql_grammar() -> TokenGrammar:
    g = TokenGrammar("query_list")

    # -- statements --------------------------------------------------------
    g.add("query_list", ["query"])
    g.add("query_list", ["query", ";"])
    g.add("query_list", ["query", ";", "query_list"])
    for statement in (
        "select_stmt",
        "insert_stmt",
        "update_stmt",
        "delete_stmt",
        "drop_stmt",
    ):
        g.add("query", [statement])

    g.add("select_stmt", ["select_core"])
    g.add("select_stmt", ["select_core", "UNION", "select_stmt"])
    g.add("select_stmt", ["select_core", "UNION", "ALL", "select_stmt"])
    g.add(
        "select_core",
        [
            "SELECT",
            "distinct_opt",
            "select_items",
            "FROM",
            "table_refs",
            "where_opt",
            "group_opt",
            "order_opt",
            "limit_opt",
        ],
    )
    g.add("distinct_opt", [])
    g.add("distinct_opt", ["DISTINCT"])
    g.add("select_items", ["*"])
    g.add("select_items", ["select_item_list"])
    g.add("select_item_list", ["select_item"])
    g.add("select_item_list", ["select_item", ",", "select_item_list"])
    g.add("select_item", ["expr"])
    g.add("select_item", ["expr", "AS", "IDENT"])

    g.add("table_refs", ["table_ref"])
    g.add("table_refs", ["table_ref", ",", "table_refs"])
    g.add("table_ref", ["IDENT"])
    g.add("table_ref", ["IDENT", "IDENT"])
    g.add("table_ref", ["IDENT", "AS", "IDENT"])
    g.add("table_ref", ["table_ref", "join_kind", "IDENT", "ON", "expr"])
    g.add("join_kind", ["JOIN"])
    g.add("join_kind", ["INNER", "JOIN"])
    g.add("join_kind", ["LEFT", "JOIN"])
    g.add("join_kind", ["LEFT", "OUTER", "JOIN"])
    g.add("join_kind", ["RIGHT", "JOIN"])

    g.add("where_opt", [])
    g.add("where_opt", ["WHERE", "expr"])
    g.add("group_opt", [])
    g.add("group_opt", ["GROUP", "BY", "column_list"])
    g.add("group_opt", ["GROUP", "BY", "column_list", "HAVING", "expr"])
    g.add("order_opt", [])
    g.add("order_opt", ["ORDER", "BY", "order_items"])
    g.add("order_items", ["order_item"])
    g.add("order_items", ["order_item", ",", "order_items"])
    g.add("order_item", ["expr", "direction_opt"])
    g.add("direction_opt", [])
    g.add("direction_opt", ["ASC"])
    g.add("direction_opt", ["DESC"])
    g.add("limit_opt", [])
    g.add("limit_opt", ["LIMIT", "signed_number"])
    g.add("limit_opt", ["LIMIT", "signed_number", ",", "signed_number"])
    g.add("limit_opt", ["LIMIT", "signed_number", "OFFSET", "signed_number"])
    # PHP arithmetic abstracts to a possibly-signed number; accepting the
    # sign here keeps LIMIT contexts parseable (MySQL would reject the
    # negative value at runtime, which is an error, not an injection).
    g.add("signed_number", ["NUMBER"])
    g.add("signed_number", ["-", "NUMBER"])

    g.add("column_list", ["column"])
    g.add("column_list", ["column", ",", "column_list"])

    g.add(
        "insert_stmt",
        ["INSERT", "INTO", "IDENT", "insert_columns_opt", "VALUES", "value_rows"],
    )
    g.add("insert_columns_opt", [])
    g.add("insert_columns_opt", ["(", "column_list", ")"])
    g.add("value_rows", ["(", "expr_list", ")"])
    g.add("value_rows", ["(", "expr_list", ")", ",", "value_rows"])

    g.add("update_stmt", ["UPDATE", "IDENT", "SET", "assignments", "where_opt", "limit_opt"])
    g.add("assignments", ["assignment"])
    g.add("assignments", ["assignment", ",", "assignments"])
    g.add("assignment", ["column", "=", "expr"])

    g.add("delete_stmt", ["DELETE", "FROM", "IDENT", "where_opt", "order_opt", "limit_opt"])

    g.add("drop_stmt", ["DROP", "TABLE", "IDENT"])

    # -- expressions --------------------------------------------------------
    g.add("expr", ["or_expr"])
    g.add("or_expr", ["or_expr", "OR", "and_expr"])
    g.add("or_expr", ["and_expr"])
    g.add("and_expr", ["and_expr", "AND", "not_expr"])
    g.add("and_expr", ["not_expr"])
    g.add("not_expr", ["NOT", "not_expr"])
    g.add("not_expr", ["comparison"])
    g.add("comparison", ["additive"])
    g.add("comparison", ["additive", "comp_op", "additive"])
    g.add("comparison", ["additive", "LIKE", "additive"])
    g.add("comparison", ["additive", "NOT", "LIKE", "additive"])
    g.add("comparison", ["additive", "IS", "NULL"])
    g.add("comparison", ["additive", "IS", "NOT", "NULL"])
    g.add("comparison", ["additive", "IN", "(", "expr_list", ")"])
    g.add("comparison", ["additive", "NOT", "IN", "(", "expr_list", ")"])
    g.add("comparison", ["additive", "BETWEEN", "additive", "AND", "additive"])
    for op in ("=", "!=", "<>", "<", ">", "<=", ">="):
        g.add("comp_op", [op])
    g.add("additive", ["additive", "+", "multiplicative"])
    g.add("additive", ["additive", "-", "multiplicative"])
    g.add("additive", ["multiplicative"])
    g.add("multiplicative", ["multiplicative", "*", "primary"])
    g.add("multiplicative", ["multiplicative", "/", "primary"])
    g.add("multiplicative", ["multiplicative", "%", "primary"])
    g.add("multiplicative", ["primary"])
    g.add("primary", ["literal"])
    g.add("primary", ["column"])
    g.add("primary", ["(", "expr", ")"])
    g.add("primary", ["function_call"])
    g.add("primary", ["-", "primary"])
    g.add("literal", ["NUMBER"])
    g.add("literal", ["STRING"])
    g.add("literal", ["NULL"])
    g.add("column", ["IDENT"])
    g.add("column", ["IDENT", ".", "IDENT"])
    g.add("function_call", ["IDENT", "(", ")"])
    g.add("function_call", ["IDENT", "(", "expr_list", ")"])
    g.add("function_call", ["IDENT", "(", "*", ")"])
    g.add("function_call", ["IDENT", "(", "DISTINCT", "expr", ")"])
    g.add("expr_list", ["expr"])
    g.add("expr_list", ["expr", ",", "expr_list"])
    return g


def parses_as_query(symbols: list[str]) -> bool:
    """Does the token sequence parse as a complete query (or query list)?"""
    return parse_sentential_form(sql_grammar(), "query_list", symbols)


#: Nonterminals an untrusted substring is conventionally allowed to fill
#: (web applications intend inputs to be literals/values; the analysis'
#: fallback check permits any single nonterminal, per the paper).
LITERAL_NONTERMINALS = ("literal", "NUMBER", "STRING")
