"""A lexer for the SQL subset used by the reference grammar.

The policy-conformance analysis needs SQL at two levels: character level
(quote-parity checks) and token level (the Definition 3.2 derivability
check).  This lexer produces the token symbols the reference grammar in
:mod:`repro.sql.grammar` is written over:

* keywords — the token symbol is the uppercase keyword itself
  (``"SELECT"``, ``"WHERE"``, …),
* ``IDENT`` — bare or backquoted identifiers,
* ``NUMBER`` — integer/decimal literals,
* ``STRING`` — single- or double-quoted literals with ``''``/``\\'``
  escapes,
* punctuation — the token symbol is the punctuation text (``"("``,
  ``","``, ``"="``, ``"<="``, …),
* ``COMMENT`` — ``--``/``#`` to end of input (the classic injection
  tail).
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    """
    SELECT FROM WHERE AND OR NOT NULL INSERT INTO VALUES UPDATE SET DELETE
    DROP TABLE CREATE ORDER BY GROUP HAVING LIMIT OFFSET ASC DESC LIKE IN
    IS BETWEEN UNION ALL DISTINCT JOIN INNER LEFT RIGHT OUTER ON AS
    """.split()
)

MULTI_CHAR_OPS = ("<=", ">=", "<>", "!=")
SINGLE_CHAR_OPS = "()=<>,.;*+-/%"

IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
IDENT_CHARS = IDENT_START | frozenset("0123456789")
DIGIT_CHARS = frozenset("0123456789")


class SqlLexError(ValueError):
    """Raised when the input is not lexically well-formed SQL."""


@dataclass(frozen=True)
class Token:
    symbol: str  # the grammar symbol ("SELECT", "IDENT", "(", …)
    text: str    # the matched source text
    position: int


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SqlLexError` on malformed input
    (most importantly: an unterminated string literal)."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        char = text[i]
        if char in " \t\r\n\f\v":
            i += 1
            continue
        if text.startswith("--", i) or char == "#":
            # comment to end of line (or end of input)
            end = text.find("\n", i)
            end = n if end == -1 else end
            tokens.append(Token("COMMENT", text[i:end], i))
            i = end
            continue
        if char in "'\"":
            i = _lex_string(text, i, tokens)
            continue
        if char == "`":
            end = text.find("`", i + 1)
            if end == -1:
                raise SqlLexError(f"unterminated backquoted identifier at {i}")
            tokens.append(Token("IDENT", text[i : end + 1], i))
            i = end + 1
            continue
        if char in DIGIT_CHARS or (
            char == "." and i + 1 < n and text[i + 1] in DIGIT_CHARS
        ):
            i = _lex_number(text, i, tokens)
            continue
        if char in IDENT_START:
            start = i
            while i < n and text[i] in IDENT_CHARS:
                i += 1
            word = text[start:i]
            upper = word.upper()
            symbol = upper if upper in KEYWORDS else "IDENT"
            tokens.append(Token(symbol, word, start))
            continue
        two = text[i : i + 2]
        if two in MULTI_CHAR_OPS:
            tokens.append(Token(two, two, i))
            i += 2
            continue
        if char in SINGLE_CHAR_OPS:
            tokens.append(Token(char, char, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {char!r} at {i}")
    return tokens


def _lex_string(text: str, start: int, tokens: list[Token]) -> int:
    quote = text[start]
    i = start + 1
    n = len(text)
    while i < n:
        char = text[i]
        if char == "\\" and i + 1 < n:
            i += 2
            continue
        if char == quote:
            if i + 1 < n and text[i + 1] == quote:  # '' escape
                i += 2
                continue
            tokens.append(Token("STRING", text[start : i + 1], start))
            return i + 1
        i += 1
    raise SqlLexError(f"unterminated string literal at {start}")


def _lex_number(text: str, start: int, tokens: list[Token]) -> int:
    i = start
    n = len(text)
    while i < n and text[i] in DIGIT_CHARS:
        i += 1
    if i < n and text[i] == ".":
        i += 1
        while i < n and text[i] in DIGIT_CHARS:
            i += 1
    tokens.append(Token("NUMBER", text[start:i], start))
    return i


def token_symbols(text: str, drop_comments: bool = True) -> list[str]:
    """Just the grammar symbols of ``text``'s tokens."""
    return [
        token.symbol
        for token in tokenize(text)
        if not (drop_comments and token.symbol == "COMMENT")
    ]
