"""Syntactic confinement of concrete substrings (Definition 2.2).

Given a generated query ``s = s1 s2 s3``, the substring ``s2`` is
*syntactically confined* iff there is a sentential form ``s1 X s3`` with
one nonterminal ``X`` covering exactly ``s2``.  A query is a command
injection attack (Definition 2.3) iff some untrusted ``f(i)`` substring
is not confined.

This module evaluates the definition directly on strings: tokenize, then
Earley-parse the sentential form ``pre + [X] + post`` and the middle
``X ⇒* mid`` for every candidate nonterminal.  The static analysis never
needs this (it works on grammars), but it powers witness validation in
tests, the SQLCheck-style runtime baseline, and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.earley import parse_sentential_form
from .grammar import sql_grammar
from .lexer import SqlLexError, Token, tokenize


@dataclass
class ConfinementResult:
    confined: bool
    nonterminal: str | None = None
    reason: str = ""


def check_confinement(query: str, lo: int, hi: int) -> ConfinementResult:
    """Is ``query[lo:hi]`` syntactically confined in ``query``?"""
    if lo > hi or lo < 0 or hi > len(query):
        raise ValueError(f"bad span [{lo}, {hi}) for query of length {len(query)}")
    if lo == hi:
        return ConfinementResult(True, reason="empty substring")
    try:
        tokens = tokenize(query)
    except SqlLexError as exc:
        return ConfinementResult(False, reason=f"query does not lex: {exc}")

    inside = _inside_one_token(tokens, lo, hi)
    if inside is not None:
        if _confined_within_token(inside, lo, hi):
            return ConfinementResult(
                True, nonterminal=inside.symbol, reason="inside a single token"
            )
        return ConfinementResult(
            False,
            reason=f"covers a delimiter of a {inside.symbol} token",
        )

    aligned = _token_span(tokens, lo, hi)
    if aligned is None:
        return ConfinementResult(
            False, reason="substring does not align with token boundaries"
        )
    k1, k2 = aligned
    symbols = [token.symbol for token in tokens]
    pre, mid, post = symbols[:k1], symbols[k1:k2], symbols[k2:]
    grammar = sql_grammar()
    for candidate in grammar.nonterminals():
        if not parse_sentential_form(grammar, candidate, mid):
            continue
        if parse_sentential_form(grammar, grammar.start, pre + [candidate] + post):
            return ConfinementResult(True, nonterminal=candidate)
    # A single whole token (e.g. one NUMBER) confined under itself:
    if len(mid) == 1 and parse_sentential_form(
        grammar, grammar.start, pre + mid + post
    ):
        return ConfinementResult(True, nonterminal=mid[0])
    return ConfinementResult(False, reason="no covering nonterminal")


def is_attack(query: str, lo: int, hi: int) -> bool:
    """Definition 2.3 for one untrusted span: attack ⇔ not confined."""
    return not check_confinement(query, lo, hi).confined


def _inside_one_token(tokens: list[Token], lo: int, hi: int) -> Token | None:
    """The single token that *properly* contains the span, if any."""
    for token in tokens:
        start, end = token.position, token.position + len(token.text)
        if start <= lo and hi <= end and (start < lo or hi < end):
            return token
    return None


def _confined_within_token(token: Token, lo: int, hi: int) -> bool:
    """Is a proper sub-span of this token syntactically confined?

    In a character-level SQL grammar, the *content* characters of string
    literals, numbers, identifiers, and comment bodies are each derivable
    from a character nonterminal, so spans within them are confined.  A
    span that covers a *delimiter* (the quote of a string, the backquote
    of a quoted identifier) or part of a keyword/operator is not.
    """
    start, end = token.position, token.position + len(token.text)
    if token.symbol == "STRING" or token.text.startswith("`"):
        return lo >= start + 1 and hi <= end - 1
    if token.symbol in ("NUMBER", "IDENT"):
        return True
    if token.symbol == "COMMENT":
        marker = 2 if token.text.startswith("--") else 1
        return lo >= start + marker
    return False


def _token_span(tokens: list[Token], lo: int, hi: int) -> tuple[int, int] | None:
    """Token index range [k1, k2) covered by chars [lo, hi), or None if the
    span cuts a token in half.  Surrounding whitespace is tolerated."""
    k1 = None
    k2 = None
    for index, token in enumerate(tokens):
        start, end = token.position, token.position + len(token.text)
        if end <= lo:
            continue
        if start >= hi:
            break
        # token overlaps the span: must be fully inside
        if start < lo or end > hi:
            return None
        if k1 is None:
            k1 = index
        k2 = index + 1
    if k1 is None:
        return None
    return k1, k2
