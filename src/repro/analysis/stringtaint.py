"""Phase 1: the string-taint analysis (paper §3.1).

A flow-sensitive abstract interpreter over the PHP AST that builds one
growing CFG reflecting the program's dataflow (Figure 5): every
assignment mints a fresh nonterminal, control-flow joins become φ
productions, loops become cyclic productions, string operations become
transducer images, and regular-expression conditionals refine the
branch environments by CFG∩FSA intersection (Figure 7).  Untrusted
sources are born with ``DIRECT``/``INDIRECT`` labels that Theorem 3.1
keeps attached through every construction.

The output is a list of :class:`Hotspot` records — one per reachable
query-sink call — each carrying the annotated grammar rooted at the
query's nonterminal.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path

from repro.lang.fsa import NFA
from repro.lang.grammar import Grammar, INDIRECT, Nonterminal
from repro.lang.regex import Pattern
from repro.obs.metrics import PERF
from repro.php import ast, builtins
from repro.obs.timeline import TIMELINE
from repro.obs.trace import TRACE
from repro.php.includes import IncludeResolver
from repro.php.parser import PhpParseError, parse

from . import sources
from .absdom import GrammarBuilder
from .diskcache import DiskCache
from .values import ArrVal, ObjVal, StrVal, Value

MAX_CALL_DEPTH = 8

#: Farm hook: a :class:`repro.farm.memo.AstMemo` in worker processes,
#: ``None`` everywhere else.  ASTs are keyed by source bytes + path
#: (:meth:`DiskCache.ast_key`), so a shared entry is exactly what a
#: local parse would produce — sharing changes when a tree is parsed,
#: never what it contains.
SHARED_ASTS = None

log = logging.getLogger(__name__)


def _has_eval_modifier(pattern: str) -> bool:
    """True for PCRE pattern literals carrying the ``/e`` modifier."""
    if len(pattern) < 2:
        return False
    delimiter = pattern[0]
    closing = {"(": ")", "[": "]", "{": "}", "<": ">"}.get(delimiter, delimiter)
    end = pattern.rfind(closing)
    if end <= 0:
        return False
    return "e" in pattern[end + 1 :]


@dataclass
class Hotspot:
    """One query-construction point: a sink call and its query grammar.

    ``kind`` names the sink policy the hotspot belongs to: ``"sql"`` for
    the classic query sinks, or a :mod:`repro.analysis.policies` id
    (``"xss"``, ``"shell"``, ``"eval"``, ``"path"``, …) for sinks
    recorded on behalf of an enabled policy config.
    """

    file: str
    line: int
    query: StrVal
    sink: str
    kind: str = "sql"


@dataclass
class AnalysisResult:
    builder: GrammarBuilder
    hotspots: list[Hotspot]
    parse_errors: list[str] = field(default_factory=list)
    files_analyzed: list[str] = field(default_factory=list)
    #: the entry page this result belongs to
    page: str = ""
    #: parsed ASTs of the include closure, keyed by absolute path — what
    #: the soundness audit (:mod:`repro.analysis.audit`) inventories
    trees: dict[str, ast.File] = field(default_factory=dict)
    #: lower-cased names of user functions seen anywhere in the closure
    known_functions: frozenset[str] = frozenset()
    #: the run-time :class:`~repro.analysis.audit.AuditTrail`, when one
    #: was attached to the interpreter
    audit_trail: object | None = None
    #: every file this page's analysis observed (absolute-path strings):
    #: the entry page, every parsed or parse-failed file, and every file
    #: an include resolved to even if interpretation then skipped it.
    #: This is the page's file-dependency closure — the exact set whose
    #: contents can influence the page's grammar (see
    #: :mod:`repro.server.depgraph`)
    dep_files: frozenset[str] = frozenset()
    #: True when the page's dependencies go beyond ``dep_files`` content:
    #: some include argument was dynamic (its resolution intersects the
    #: *project layout*, paper §4) or resolved to no file at all (a file
    #: created later could satisfy it) — such a page must be re-analyzed
    #: whenever resolver-visible files are added or removed
    layout_sensitive: bool = False

    @property
    def grammar(self) -> Grammar:
        return self.builder.grammar


class _Terminated(Exception):
    """Control left the current trace (exit/die or return)."""

    def __init__(self, value: Value | None = None, kind: str = "exit") -> None:
        self.value = value
        self.kind = kind  # "exit" | "return"


class Env:
    """A flow-sensitive variable environment."""

    def __init__(self, variables: dict[str, Value] | None = None) -> None:
        self.variables: dict[str, Value] = dict(variables or {})

    def copy(self) -> "Env":
        return Env(self.variables)

    def get(self, name: str) -> Value | None:
        return self.variables.get(name)

    def set(self, name: str, value: Value) -> None:
        self.variables[name] = value


class StringTaintAnalysis:
    """The interpreter.  One instance per analyzed entry page."""

    def __init__(
        self,
        project_root: str | Path,
        builder: GrammarBuilder | None = None,
        parse_cache: dict | None = None,
        resolver: IncludeResolver | None = None,
        audit=None,
        disk_cache=None,
        policies=None,
    ) -> None:
        self.project_root = Path(project_root)
        self.builder = builder or GrammarBuilder()
        self.resolver = resolver or IncludeResolver(self.project_root)
        #: optional :class:`repro.analysis.policies.PolicyConfig` — when
        #: set, extra sink signatures (shell/eval/path/XSS…) record
        #: hotspots alongside the classic SQL query sinks.  ``None``
        #: keeps the historical SQL-only behaviour bit-for-bit.
        self.policies = policies
        if policies is None:
            self._extra_function_sinks = {}
            self._construct_sinks = {}
            self._preg_eval_kinds = ()
        else:
            self._extra_function_sinks = policies.function_sink_table()
            self._construct_sinks = policies.construct_sink_table()
            self._preg_eval_kinds = policies.preg_eval_kinds()
        # soundness-audit instrumentation (an AuditTrail, or None); the
        # builder shares it so grammar-level widenings get attributed
        self.audit = audit
        if audit is not None:
            self.builder.audit = audit
        self.hotspots: list[Hotspot] = []
        self.functions: dict[str, ast.FunctionDef] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        self.parse_errors: list[str] = []
        self.files_analyzed: list[str] = []
        self.trees: dict[str, ast.File] = {}
        # the page's file-dependency closure + layout sensitivity (see
        # AnalysisResult.dep_files / .layout_sensitive)
        self.dep_files: set[str] = set()
        self.layout_sensitive = False
        self._included_once: set[Path] = set()
        # files currently being interpreted: breaks include cycles (a
        # dynamic include whose path language matches the includer)
        self._include_stack: list[str] = []
        self._call_stack: list[str] = []
        self._return_collectors: list[list[Value]] = []
        # ASTs can be shared across the per-page analyses of one project
        # (the paper's §5.3 memoization observation); interpretation state
        # cannot, but parsing dominates I/O on large apps.  Entries are
        # (tree, error) pairs so cache hits still report parse failures
        # and still count toward the page's include closure.
        self._parse_cache: dict[Path, tuple[ast.File | None, str | None]] = (
            parse_cache if parse_cache is not None else {}
        )
        #: optional :class:`repro.analysis.diskcache.DiskCache` — parsed
        #: trees keyed by content hash survive across runs (``--cache-dir``)
        self.disk_cache = disk_cache
        self.globals = Env()
        self.constants: dict[str, Value] = {}
        self.current_file = ""

    # -- entry ------------------------------------------------------------------

    def analyze_file(self, entry: str | Path) -> AnalysisResult:
        entry_path = Path(entry)
        if not entry_path.is_absolute() and not entry_path.exists():
            # a bare page name is project-root-relative; paths that
            # already resolve from the cwd (e.g. entry_pages() output
            # under a relative root) are used as-is, not double-joined
            entry_path = self.project_root / entry_path
        tree = self._parse(entry_path)
        if tree is not None:
            self._interpret_file(tree, self.globals)
        return AnalysisResult(
            builder=self.builder,
            hotspots=self.hotspots,
            parse_errors=self.parse_errors,
            files_analyzed=self.files_analyzed,
            page=str(entry_path),
            trees=dict(self.trees),
            known_functions=frozenset(self.functions),
            audit_trail=self.audit,
            dep_files=frozenset(self.dep_files),
            layout_sensitive=self.layout_sensitive,
        )

    def _parse(self, path: Path) -> ast.File | None:
        # every file we so much as try to read is a dependency of this
        # page — parse failures included (the failure is reported)
        self.dep_files.add(str(path))
        with TRACE.span("parse", file=str(path)) as span, TIMELINE.phase(
            "parse"
        ):
            if path in self._parse_cache:
                PERF.incr("parse.memory_hits")
                span.set("cache", "memory")
                tree, error = self._parse_cache[path]
            else:
                tree, error = self._parse_uncached(path)
                self._parse_cache[path] = (tree, error)
        # per-page bookkeeping happens on cache hits too: this page's
        # include closure (and its parse failures) must be complete for
        # the soundness audit, regardless of which page parsed first
        key = str(path)
        if tree is not None:
            if key not in self.trees:
                self.trees[key] = tree
                self.files_analyzed.append(key)
        elif error is not None and error not in self.parse_errors:
            self.parse_errors.append(error)
        return tree

    def _parse_uncached(self, path: Path) -> tuple[ast.File | None, str | None]:
        """Read + parse one file, consulting the on-disk AST cache (and,
        in farm workers, the cross-process shared AST memo)."""
        try:
            data = path.read_bytes()
        except OSError as exc:
            PERF.incr("parse.files")
            return None, str(exc)
        ast_key = DiskCache.ast_key(data, str(path))
        if self.disk_cache is not None:
            entry = self.disk_cache.load("ast", ast_key)
            if entry is not None:
                TRACE.annotate("cache", "disk")
                return entry
        if SHARED_ASTS is not None:
            entry = SHARED_ASTS.fetch(ast_key)
            if entry is not None:
                TRACE.annotate("cache", "shared")
                return entry
        TRACE.annotate("cache", "miss")
        try:
            with PERF.timer("parse"):
                source = data.decode("utf-8")
                tree, error = parse(source, str(path)), None
        except (PhpParseError, ValueError) as exc:
            tree, error = None, str(exc)
        PERF.incr("parse.files")
        if self.disk_cache is not None:
            self.disk_cache.store("ast", ast_key, (tree, error))
        if SHARED_ASTS is not None:
            SHARED_ASTS.publish(ast_key, (tree, error))
        return tree, error

    def _interpret_file(self, tree: ast.File, env: Env) -> None:
        previous = self.current_file
        self.current_file = tree.path
        self._include_stack.append(tree.path)
        try:
            self._collect_definitions(tree.body)
            self._exec_block(tree.body, env)
        except _Terminated:
            pass
        finally:
            self._include_stack.pop()
            self.current_file = previous

    def _collect_definitions(self, block: ast.Block) -> None:
        for stmt in ast.walk(block):
            if isinstance(stmt, ast.FunctionDef):
                self.functions.setdefault(stmt.name.lower(), stmt)
            elif isinstance(stmt, ast.ClassDef):
                self.classes.setdefault(stmt.name, stmt)

    # -- statements ------------------------------------------------------------------

    def _exec_block(self, block: ast.Block, env: Env) -> None:
        for stmt in block.statements:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.Stmt, env: Env) -> None:
        if stmt.line:
            # provenance context: origin events minted while this
            # statement is interpreted carry its site
            self.builder.site = (self.current_file, stmt.line)
            if self.audit is not None:
                self.audit.location = (self.current_file, stmt.line)
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is not None:
            method(stmt, env)

    def _exec_Block(self, stmt: ast.Block, env: Env) -> None:
        self._exec_block(stmt, env)

    def _exec_ExprStmt(self, stmt: ast.ExprStmt, env: Env) -> None:
        self.eval(stmt.expr, env)
        if isinstance(stmt.expr, ast.Call) and stmt.expr.name == "exit":
            raise _Terminated()

    def _exec_Echo(self, stmt: ast.Echo, env: Env) -> None:
        kinds = self._construct_sinks.get("echo", ())
        for value in stmt.values:
            result = self.eval(value, env)
            for kind in kinds:
                self.hotspots.append(
                    Hotspot(
                        file=self.current_file,
                        line=stmt.line,
                        query=self.builder.to_str(result),
                        sink="echo",
                        kind=kind,
                    )
                )

    def _exec_InlineHtml(self, stmt: ast.InlineHtml, env: Env) -> None:
        pass

    def _exec_If(self, stmt: ast.If, env: Env) -> None:
        branches: list[tuple[ast.Expr | None, ast.Block]] = [(stmt.condition, stmt.then)]
        branches.extend(stmt.elifs)
        surviving: list[Env] = []
        current_neg = env
        for index, (condition, body) in enumerate(branches):
            branch_env = current_neg.copy()
            if condition is not None:
                self._refine_condition(condition, branch_env, positive=True)
            try:
                self._exec_block(body, branch_env)
                surviving.append(branch_env)
            except _Terminated:
                pass  # exit/return: this branch contributes nothing downstream
            next_neg = current_neg.copy()
            if condition is not None:
                self._refine_condition(condition, next_neg, positive=False)
            current_neg = next_neg
        if stmt.orelse is not None:
            else_env = current_neg
            try:
                self._exec_block(stmt.orelse, else_env)
                surviving.append(else_env)
            except _Terminated:
                pass
        else:
            surviving.append(current_neg)
        if not surviving:
            raise _Terminated()
        merged = self._merge_envs(surviving)
        env.variables = merged.variables

    def _exec_While(self, stmt: ast.While, env: Env) -> None:
        self.eval(stmt.condition, env)
        self._exec_loop(stmt.body, env, condition=stmt.condition)

    def _exec_DoWhile(self, stmt: ast.DoWhile, env: Env) -> None:
        self._exec_loop(stmt.body, env, condition=stmt.condition)

    def _exec_For(self, stmt: ast.For, env: Env) -> None:
        for expr in stmt.init:
            self.eval(expr, env)
        if stmt.condition is not None:
            self.eval(stmt.condition, env)
        body = ast.Block(
            statements=list(stmt.body.statements)
            + [ast.ExprStmt(expr=e, line=stmt.line) for e in stmt.step],
            line=stmt.body.line,
        )
        self._exec_loop(body, env, condition=stmt.condition)

    def _exec_Foreach(self, stmt: ast.Foreach, env: Env) -> None:
        subject = self.eval(stmt.subject, env)
        if isinstance(subject, ArrVal):
            element_values = subject.all_values()
            element = (
                self._join_values(element_values)
                if element_values
                else self.builder.literal("")
            )
            keys = [self.builder.literal(k) for k in subject.elements]
            key_value: Value = (
                self.builder.join(keys, "keys")
                if keys and subject.default is None
                else self.builder.any_string(hint="key")
            )
        else:
            element = self.builder.any_string(hint="elem")
            self.builder.taint_through(element, [subject], "foreach")
            key_value = self.builder.any_string(hint="key")
        if stmt.key_var is not None:
            self._assign_to(stmt.key_var, key_value, env)
        self._assign_to(stmt.value_var, element, env)
        self._exec_loop(stmt.body, env, condition=None)

    def _exec_loop(
        self, body: ast.Block, env: Env, condition: ast.Expr | None
    ) -> None:
        """Loop fixed point: header φ nonterminals with back-edge
        productions (the natural cyclic-grammar encoding)."""
        assigned = self._assigned_variables(body)
        headers: dict[str, Nonterminal] = {}
        for name in assigned:
            current = env.get(name)
            header = self.builder.fresh(f"loop.{name}")
            if isinstance(current, StrVal):
                self.builder.grammar.add(header, (current.nt,))
            elif current is None:
                self.builder.grammar.add(header, ())
            else:
                # arrays/objects flow through loops without φ (coarse)
                continue
            headers[name] = header
            env.set(name, StrVal(header))
        body_env = env.copy()
        if condition is not None:
            self._refine_condition(condition, body_env, positive=True)
        try:
            self._exec_block(body, body_env)
        except _Terminated:
            pass
        for name, header in headers.items():
            result = body_env.get(name)
            if isinstance(result, StrVal) and result.nt is not header:
                self.builder.grammar.add(header, (result.nt,))
        for name in assigned:
            if name not in headers and body_env.get(name) is not None:
                merged = self._join_values(
                    [v for v in (env.get(name), body_env.get(name)) if v is not None]
                )
                env.set(name, merged)

    def _assigned_variables(self, body: ast.Block) -> list[str]:
        names: list[str] = []
        for node in ast.walk(body):
            if isinstance(node, ast.Assign):
                target = node.target
                while isinstance(target, (ast.ArrayDim, ast.Prop)):
                    target = target.base
                if isinstance(target, ast.Var) and target.name not in names:
                    names.append(target.name)
            elif isinstance(node, ast.Foreach):
                for var in (node.key_var, node.value_var):
                    if isinstance(var, ast.Var) and var.name not in names:
                        names.append(var.name)
        return names

    def _exec_Switch(self, stmt: ast.Switch, env: Env) -> None:
        self.eval(stmt.subject, env)
        surviving: list[Env] = []
        has_default = any(label is None for label, _ in stmt.cases)
        for index in range(len(stmt.cases)):
            case_env = env.copy()
            label = stmt.cases[index][0]
            if label is not None and isinstance(stmt.subject, ast.Var):
                self._refine_equality(stmt.subject, label, case_env, positive=True)
            try:
                # fallthrough: execute from this case until Break
                for _, case_block in stmt.cases[index:]:
                    done = self._exec_until_break(case_block, case_env)
                    if done:
                        break
                surviving.append(case_env)
            except _Terminated:
                pass
        if not has_default:
            surviving.append(env.copy())
        if not surviving:
            raise _Terminated()
        env.variables = self._merge_envs(surviving).variables

    def _exec_until_break(self, block: ast.Block, env: Env) -> bool:
        for stmt in block.statements:
            if isinstance(stmt, ast.Break):
                return True
            self._exec(stmt, env)
        return False

    def _exec_Break(self, stmt: ast.Break, env: Env) -> None:
        pass  # loop bodies are interpreted once; break is a no-op join

    def _exec_Continue(self, stmt: ast.Continue, env: Env) -> None:
        pass

    def _exec_Return(self, stmt: ast.Return, env: Env) -> None:
        value = self.eval(stmt.value, env) if stmt.value is not None else None
        if self._return_collectors:
            if value is not None:
                self._return_collectors[-1].append(value)
            raise _Terminated(value, kind="return")
        raise _Terminated()  # top-level return ends the page

    def _exec_GlobalDecl(self, stmt: ast.GlobalDecl, env: Env) -> None:
        for name in stmt.names:
            value = self.globals.get(name)
            if value is None:
                value = self.builder.any_string(hint=f"global.{name}")
                self.globals.set(name, value)
            env.set(name, value)

    def _exec_Include(self, stmt: ast.Include, env: Env) -> None:
        with TRACE.span(
            "include", file=self.current_file, line=stmt.line
        ) as span, TIMELINE.phase("include"):
            path_value = self.builder.to_str(self.eval(stmt.path, env))
            include_kinds = self._construct_sinks.get("include", ())
            if include_kinds:
                sink = ("require" if stmt.required else "include") + (
                    "_once" if stmt.once else ""
                )
                for kind in include_kinds:
                    self.hotspots.append(
                        Hotspot(
                            file=self.current_file,
                            line=stmt.line,
                            query=path_value,
                            sink=sink,
                            kind=kind,
                        )
                    )
            current_dir = Path(self.current_file).parent if self.current_file else self.project_root
            files = self.resolver.resolve(
                self.builder.grammar,
                path_value.nt,
                current_dir,
                audit=self.audit,
                site=(self.current_file, stmt.line),
                literal=isinstance(stmt.path, ast.Literal),
                deps=self.dep_files,
            )
            # a dynamic include's resolution — and a failed one's — is a
            # function of the project layout itself, not just of the
            # resolved files' contents: adding/removing files can change it
            if not isinstance(stmt.path, ast.Literal) or not files:
                self.layout_sensitive = True
            span.set("resolved", len(files))
            log.debug(
                "include at %s:%s resolved to %d file(s)",
                self.current_file, stmt.line, len(files),
            )
            pending = []
            for file in files:
                if stmt.once and file in self._included_once:
                    continue
                self._included_once.add(file)
                tree = self._parse(file)
                if tree is not None and tree.path not in self._include_stack:
                    pending.append(tree)
            if not pending:
                return
            if len(pending) == 1:
                self._interpret_file(pending[0], env)
                return
            # several candidate files: each is an *alternative* execution
            branch_envs = []
            for tree in pending:
                branch = env.copy()
                self._interpret_file(tree, branch)
                branch_envs.append(branch)
            env.variables = self._merge_envs(branch_envs).variables

    def _exec_FunctionDef(self, stmt: ast.FunctionDef, env: Env) -> None:
        self.functions.setdefault(stmt.name.lower(), stmt)

    def _exec_ClassDef(self, stmt: ast.ClassDef, env: Env) -> None:
        self.classes.setdefault(stmt.name, stmt)

    # -- joins -----------------------------------------------------------------------

    def _merge_envs(self, envs: list[Env]) -> Env:
        if len(envs) == 1:
            return envs[0]
        merged = Env()
        names = {name for env in envs for name in env.variables}
        for name in names:
            values = [env.get(name) for env in envs]
            present = [v for v in values if v is not None]
            if len(present) < len(values):
                # undefined on some path: PHP yields "" there
                present.append(self.builder.literal(""))
            merged.set(name, self._join_values(present))
        return merged

    def _join_values(self, values: list[Value]) -> Value:
        if len(values) == 1:
            return values[0]
        if all(isinstance(v, ArrVal) for v in values):
            keys = set()
            for v in values:
                keys |= set(v.elements)
            elements = {}
            for key in keys:
                slot = [v.elements.get(key) or v.default for v in values]
                elements[key] = self._join_values([s for s in slot if s is not None])
            defaults = [v.default for v in values if v.default is not None]
            default = self._join_values(defaults) if defaults else None
            return ArrVal(elements=elements, default=default)
        if all(isinstance(v, ObjVal) for v in values):
            return values[0]
        return self.builder.join([self.builder.to_str(v) for v in values])

    # -- condition refinement (§3.1.2) --------------------------------------------------

    def _refine_condition(self, condition: ast.Expr, env: Env, positive: bool) -> None:
        self.eval(condition, env.copy())  # surface nested hotspots/effects
        self._refine(condition, env, positive)

    def _refine(self, condition: ast.Expr, env: Env, positive: bool) -> None:
        if isinstance(condition, ast.UnaryOp) and condition.op == "!":
            self._refine(condition.operand, env, not positive)
            return
        if isinstance(condition, ast.Suppress):
            self._refine(condition.operand, env, positive)
            return
        if isinstance(condition, ast.BinOp):
            if condition.op == "&&" and positive:
                self._refine(condition.left, env, True)
                self._refine(condition.right, env, True)
                return
            if condition.op == "||" and not positive:
                self._refine(condition.left, env, False)
                self._refine(condition.right, env, False)
                return
            if condition.op in ("==", "===") :
                self._refine_equality(condition.left, condition.right, env, positive)
                self._refine_equality(condition.right, condition.left, env, positive)
                return
            if condition.op in ("!=", "!==", "<>"):
                self._refine_equality(condition.left, condition.right, env, not positive)
                self._refine_equality(condition.right, condition.left, env, not positive)
                return
        if isinstance(condition, ast.Call):
            predicate = builtins.predicate_language(condition)
            if predicate is not None:
                subject_node, language = predicate
                self._refine_to_language(subject_node, language, env, positive)
                return
            wrapped = self._user_predicate(condition)
            if wrapped is not None:
                subject_node, language, negated = wrapped
                self._refine_to_language(
                    subject_node, language, env, positive != negated
                )
            return
        if isinstance(condition, ast.Assign):
            # while ($row = fetch(...)) — evaluate for effect
            self.eval(condition, env)
            return

    def _user_predicate(
        self, call: ast.Call
    ) -> tuple[ast.Expr, object, bool] | None:
        """Resolve predicate *wrapper* functions interprocedurally.

        A user function whose body is a single ``return preg_match(...)``
        (possibly negated) applied to one of its parameters acts as a
        predicate on the corresponding call argument — the common
        ``function check_id($v) { return preg_match('/^\\d+$/', $v); }``
        idiom.  Returns ``(argument_node, language, negated)``.
        """
        definition = self.functions.get(call.name)
        if definition is None:
            return None
        statements = [
            stmt
            for stmt in definition.body.statements
            if not isinstance(stmt, ast.InlineHtml)
        ]
        if len(statements) != 1 or not isinstance(statements[0], ast.Return):
            return None
        inner = statements[0].value
        negated = False
        while isinstance(inner, ast.UnaryOp) and inner.op == "!":
            inner = inner.operand
            negated = not negated
        if not isinstance(inner, ast.Call):
            return None
        predicate = builtins.predicate_language(inner)
        if predicate is None:
            return None
        subject_node, language = predicate
        if not isinstance(subject_node, ast.Var):
            return None
        for index, param in enumerate(definition.params):
            if param.name == subject_node.name:
                if index < len(call.args):
                    return call.args[index], language, negated
                return None
        return None

    def _refine_equality(
        self, subject: ast.Expr, other: ast.Expr, env: Env, positive: bool
    ) -> None:
        if not isinstance(subject, ast.Var):
            return
        if not isinstance(other, ast.Literal):
            return
        if isinstance(other.value, bool) or other.value is None:
            return  # boolean/null comparisons need type reasoning (§5.2!)
        text = (
            other.value
            if isinstance(other.value, str)
            else builtins._php_number_str(other.value)
        )
        if positive:
            env.set(subject.name, self.builder.literal(text))
        else:
            current = env.get(subject.name)
            if isinstance(current, StrVal):
                complement = NFA.from_string(text).determinize().complement()
                env.set(subject.name, self.builder.refine(current, complement, "≠"))

    def _refine_to_language(
        self,
        subject_node: ast.Expr,
        language: Pattern | NFA,
        env: Env,
        positive: bool,
    ) -> None:
        if not isinstance(subject_node, ast.Var):
            return
        current = env.get(subject_node.name)
        if not isinstance(current, StrVal):
            return
        if isinstance(language, Pattern):
            refined = self.builder.refine_regex(current, language, positive)
        else:
            dfa = language.determinize()
            if not positive:
                dfa = dfa.complement()
            refined = self.builder.refine(current, dfa, "set∩")
        env.set(subject_node.name, refined)

    # -- expressions ----------------------------------------------------------------------

    def eval(self, expr: ast.Expr | None, env: Env) -> Value:
        if expr is None:
            return self.builder.literal("")
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            return self.builder.any_string(hint=type(expr).__name__)
        return method(expr, env)

    def _eval_Literal(self, expr: ast.Literal, env: Env) -> Value:
        value = expr.value
        if isinstance(value, str):
            return self.builder.literal(value)
        if isinstance(value, bool):
            return self.builder.literal("1" if value else "")
        if value is None:
            return self.builder.literal("")
        return self.builder.literal(builtins._php_number_str(value))

    def _eval_Var(self, expr: ast.Var, env: Env) -> Value:
        label = sources.superglobal_label(expr.name)
        if label is None and self.policies is not None:
            # YAML-declared extra taint sources (--policy-config sources:)
            label = self.policies.source_label(expr.name)
        if label is not None:
            origin = {}
            if expr.span is not None:
                origin["span"] = list(expr.span)
            return ArrVal(
                default=self.builder.any_string(label, hint=expr.name, **origin)
            )
        value = env.get(expr.name)
        if value is None:
            return self.builder.literal("")
        return value

    def _eval_ArrayDim(self, expr: ast.ArrayDim, env: Env) -> Value:
        # superglobal reads like $_GET['id'] mint their taint source while
        # evaluating the base: hand the birth event the full expression's
        # byte span and the literal key, so remediation can both splice a
        # patch and rebuild a witness input vector
        extra: dict | None = None
        if isinstance(expr.base, ast.Var):
            extra = {}
            if expr.span is not None:
                extra["span"] = list(expr.span)
            if isinstance(expr.index, ast.Literal) and isinstance(
                expr.index.value, (str, int)
            ):
                extra["key"] = str(expr.index.value)
            self.builder.source_extra = extra
        try:
            base = self.eval(expr.base, env)
        finally:
            if extra is not None:
                self.builder.source_extra = None
        key = self._static_key(expr.index, env)
        if isinstance(base, ArrVal):
            value = base.get(key)
            if value is not None:
                return value
            return self.builder.literal("")
        if isinstance(base, StrVal):
            # $s[0]: one character of the string
            char_value = self.builder.charset_star(
                self.builder.grammar.charset_closure(base.nt), "char"
            )
            return self.builder.taint_through(char_value, [base], "str-index")
        return self.builder.literal("")

    def _static_key(self, index: ast.Expr | None, env: Env) -> str | None:
        if isinstance(index, ast.Literal):
            if isinstance(index.value, str):
                return index.value
            if isinstance(index.value, (int, float)):
                return builtins._php_number_str(index.value)
        return None

    def _eval_Prop(self, expr: ast.Prop, env: Env) -> Value:
        base = self.eval(expr.base, env)
        if isinstance(base, ObjVal):
            value = base.props.get(expr.name)
            if value is not None:
                return value
        return self.builder.any_string(hint=f"prop.{expr.name}")

    def _eval_Interp(self, expr: ast.Interp, env: Env) -> Value:
        parts = [self.builder.to_str(self.eval(part, env)) for part in expr.parts]
        return self.builder.concat_all(parts)

    def _eval_BinOp(self, expr: ast.BinOp, env: Env) -> Value:
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if expr.op == ".":
            return self.builder.concat(
                self.builder.to_str(left), self.builder.to_str(right)
            )
        if expr.op in ("+", "-", "*", "/", "%", "<<", ">>"):
            return builtins.regular_result(
                self.builder, r"-?[0-9]+(\.[0-9]+)?", "arith"
            )
        # comparisons and logic: boolean
        return self._boolean_value()

    def _boolean_value(self) -> StrVal:
        return self.builder.join(
            [self.builder.literal(""), self.builder.literal("1")], "bool"
        )

    def _eval_UnaryOp(self, expr: ast.UnaryOp, env: Env) -> Value:
        self.eval(expr.operand, env)
        if expr.op == "-":
            return builtins.regular_result(self.builder, r"-?[0-9]+(\.[0-9]+)?", "neg")
        return self._boolean_value()

    def _eval_Suppress(self, expr: ast.Suppress, env: Env) -> Value:
        return self.eval(expr.operand, env)

    def _eval_Cast(self, expr: ast.Cast, env: Env) -> Value:
        operand = self.eval(expr.operand, env)
        if expr.kind in ("int", "float"):
            return builtins.regular_result(
                self.builder, r"-?[0-9]+(\.[0-9]+)?", f"cast{expr.kind}"
            )
        if expr.kind == "bool":
            return self._boolean_value()
        if expr.kind == "string":
            return self.builder.to_str(operand)
        if expr.kind == "array":
            if isinstance(operand, ArrVal):
                return operand
            return ArrVal(default=self.builder.to_str(operand))
        return operand

    def _eval_Assign(self, expr: ast.Assign, env: Env) -> Value:
        value = self.eval(expr.value, env)
        if expr.op == ".=":
            current = self.builder.to_str(self._read_target(expr.target, env))
            value = self.builder.concat(current, self.builder.to_str(value))
        elif expr.op != "=":
            value = builtins.regular_result(
                self.builder, r"-?[0-9]+(\.[0-9]+)?", "compound"
            )
        self._assign_to(expr.target, value, env)
        return value

    def _read_target(self, target: ast.Expr, env: Env) -> Value:
        return self.eval(target, env)

    def _assign_to(self, target: ast.Expr, value: Value, env: Env) -> None:
        if isinstance(target, ast.Var):
            env.set(target.name, value)
            if env is not self.globals and self.globals.get(target.name) is env.get(
                target.name
            ):
                pass
            return
        if isinstance(target, ast.ArrayDim) and isinstance(target.base, ast.Var):
            base = env.get(target.base.name)
            if not isinstance(base, ArrVal):
                base = ArrVal()
            else:
                base = ArrVal(elements=dict(base.elements), default=base.default)
            key = self._static_key(target.index, env)
            if key is None:
                joined_parts = [v for v in (base.default, value) if v is not None]
                base.default = self._join_values(joined_parts)
            else:
                base.elements[key] = value
            env.set(target.base.name, base)
            return
        if isinstance(target, ast.Prop) and isinstance(target.base, ast.Var):
            obj = env.get(target.base.name)
            if isinstance(obj, ObjVal):
                obj.props[target.name] = value
            return
        # other targets (nested dims on props, …): drop the write (sound for
        # reads, which default to Σ*)

    def _eval_Ternary(self, expr: ast.Ternary, env: Env) -> Value:
        then_env = env.copy()
        else_env = env.copy()
        self._refine(expr.condition, then_env, True)
        self._refine(expr.condition, else_env, False)
        condition_value = self.eval(expr.condition, env.copy())
        if expr.if_true is None:
            true_value: Value = condition_value
        else:
            true_value = self.eval(expr.if_true, then_env)
        false_value = self.eval(expr.if_false, else_env)
        merged = self._merge_envs([then_env, else_env])
        env.variables = merged.variables
        return self._join_values([true_value, false_value])

    def _eval_IssetExpr(self, expr: ast.IssetExpr, env: Env) -> Value:
        return self._boolean_value()

    def _eval_EmptyExpr(self, expr: ast.EmptyExpr, env: Env) -> Value:
        self.eval(expr.target, env)
        return self._boolean_value()

    def _eval_ArrayLit(self, expr: ast.ArrayLit, env: Env) -> Value:
        result = ArrVal()
        auto_index = 0
        for key_node, value_node in expr.items:
            value = self.eval(value_node, env)
            if key_node is None:
                key: str | None = str(auto_index)
                auto_index += 1
            else:
                key = self._static_key(key_node, env)
            if key is None:
                parts = [v for v in (result.default, value) if v is not None]
                result.default = self._join_values(parts)
            else:
                result.elements[key] = value
        return result

    def _eval_VarVar(self, expr: ast.VarVar, env: Env) -> Value:
        # which variable this reads is unknown: Σ* (the audit flags the
        # site as escaped — a *write* through $$x is invisible to us)
        self.eval(expr.name_expr, env)
        return self.builder.any_string(hint="varvar")

    def _eval_DynCall(self, expr: ast.DynCall, env: Env) -> Value:
        # callee unknown: Σ* carrying the arguments' taint, like any
        # unmodeled call (the audit flags the site as escaped)
        self.eval(expr.target, env)
        arg_values = [self.eval(arg, env) for arg in expr.args]
        result = self.builder.any_string(hint="dyncall")
        return self.builder.taint_through(result, arg_values, "dyncall")

    def _eval_ConstFetch(self, expr: ast.ConstFetch, env: Env) -> Value:
        if expr.name in self.constants:
            return self.constants[expr.name]
        # PHP's fallback for an undefined constant is its own name
        return self.builder.literal(expr.name)

    def _eval_New(self, expr: ast.New, env: Env) -> Value:
        for arg in expr.args:
            self.eval(arg, env)
        obj = ObjVal(class_name=expr.class_name)
        class_def = self.classes.get(expr.class_name)
        if class_def is not None:
            for prop_name, default in class_def.properties:
                obj.props[prop_name] = (
                    self.eval(default, env) if default is not None else self.builder.literal("")
                )
            constructor = self._find_method(class_def, expr.class_name) or self._find_method(
                class_def, "__construct"
            )
            if constructor is not None:
                self._call_function(constructor, expr.args, env, this=obj)
        return obj

    def _find_method(self, class_def: ast.ClassDef, name: str) -> ast.FunctionDef | None:
        for method in class_def.methods:
            if method.name.lower() == name.lower():
                return method
        parent = self.classes.get(class_def.parent) if class_def.parent else None
        if parent is not None:
            return self._find_method(parent, name)
        return None

    # -- calls ---------------------------------------------------------------------------

    def _eval_Call(self, expr: ast.Call, env: Env) -> Value:
        name = expr.name
        if name == "exit":
            for arg in expr.args:
                self.eval(arg, env)
            return self.builder.literal("")
        if name in ("include", "include_once", "require", "require_once"):
            # include in expression position ($ok = include $page;):
            # same semantics as the statement form — the included file
            # must be analyzed, not treated as an unknown call
            self._exec_Include(
                ast.Include(
                    path=expr.args[0] if expr.args else None,
                    once=name.endswith("_once"),
                    required=name.startswith("require"),
                    line=expr.line,
                ),
                env,
            )
            return self.builder.literal("1")
        arg_values = [self.eval(arg, env) for arg in expr.args]

        if name == "define" and len(expr.args) >= 2:
            constant_name = builtins.literal_str(expr.args[0])
            if constant_name is not None:
                self.constants[constant_name] = arg_values[1]
            return self.builder.literal("1")
        if name == "constant" and expr.args:
            constant_name = builtins.literal_str(expr.args[0])
            if constant_name is not None and constant_name in self.constants:
                return self.constants[constant_name]
            return self.builder.any_string(hint="constant")
        if name == "defined" and expr.args:
            return self._boolean_value()

        # sinks
        sink_index = sources.query_argument_index(name)
        if sink_index is not None:
            self._record_hotspot(expr, arg_values, sink_index, name)
            return self.builder.literal("")

        # policy-declared sinks (shell/eval/path/…, --policy-config):
        # record a hotspot per claiming policy, then *fall through* — the
        # call's value still follows the builtin model when one exists
        # (file_get_contents etc.), or the tainted-Σ* fallthrough below.
        extra_sinks = self._extra_function_sinks.get(name)
        if extra_sinks is not None:
            for kind, index in extra_sinks:
                self._record_hotspot(expr, arg_values, index, name, kind=kind)

        # preg_replace with a literal /e-modifier pattern evaluates its
        # replacement argument as PHP code (removed in PHP 7, a classic
        # dynamic-code sink) — the eval policy claims the replacement
        if (
            self._preg_eval_kinds
            and name == "preg_replace"
            and len(arg_values) >= 2
            and expr.args
        ):
            pattern = builtins.literal_str(expr.args[0])
            if pattern is not None and _has_eval_modifier(pattern):
                for kind in self._preg_eval_kinds:
                    self._record_hotspot(
                        expr, arg_values, 1, "preg_replace/e", kind=kind
                    )
                # fall through: the value result still follows the normal
                # preg_replace model

        # indirect sources
        fetch_shape = sources.is_fetch_function(name)
        if fetch_shape is not None:
            return self._fetch_result(fetch_shape)

        # user-defined functions
        user = self.functions.get(name)
        if user is not None:
            return self._call_function(user, expr.args, env, arg_values=arg_values)

        # builtin models; the audit call-context pins widenings that
        # happen inside a handler to this call site, and the builder's
        # call_name names the sanitizer in provenance events
        if self.audit is not None:
            self.audit.call_context = (name, self.current_file, expr.line)
        self.builder.call_name = name
        try:
            modeled = builtins.model_call(
                name, self.builder, arg_values, expr.args, audit=self.audit
            )
        finally:
            self.builder.call_name = None
            if self.audit is not None:
                self.audit.call_context = None
        if modeled is not None:
            return modeled

        # unknown: Σ* carrying the arguments' taint (sound flow-through)
        if (
            self.audit is not None
            and name not in builtins.PREDICATE_FUNCTIONS
            and extra_sinks is None
        ):
            # predicates have no string result to model — the refinement
            # machinery (not this fallthrough) is their model; a declared
            # policy sink is not an unknown-call soundness hole either —
            # the policy's check is its model
            self.audit.record_unknown_call(name, self.current_file, expr.line)
        result = self.builder.any_string(hint=f"call.{name}")
        return self.builder.taint_through(result, arg_values, f"call.{name}")

    def _eval_MethodCall(self, expr: ast.MethodCall, env: Env) -> Value:
        obj = self.eval(expr.obj, env)
        arg_values = [self.eval(arg, env) for arg in expr.args]
        if sources.is_query_method(expr.name):
            self._record_hotspot(expr, arg_values, 0, f"->{expr.name}")
            return self.builder.literal("")
        if sources.is_fetch_method(expr.name):
            return self._fetch_result("array")
        if isinstance(obj, ObjVal):
            class_def = self.classes.get(obj.class_name)
            if class_def is not None:
                method = self._find_method(class_def, expr.name)
                if method is not None:
                    return self._call_function(
                        method, expr.args, env, arg_values=arg_values, this=obj
                    )
        result = self.builder.any_string(hint=f"method.{expr.name}")
        return self.builder.taint_through(
            result, arg_values, f"method.{expr.name}"
        )

    def _eval_StaticCall(self, expr: ast.StaticCall, env: Env) -> Value:
        arg_values = [self.eval(arg, env) for arg in expr.args]
        class_def = self.classes.get(expr.class_name)
        if class_def is not None:
            method = self._find_method(class_def, expr.name)
            if method is not None:
                return self._call_function(method, expr.args, env, arg_values=arg_values)
        return self.builder.any_string(hint=f"static.{expr.name}")

    def _fetch_result(self, shape: str) -> Value:
        scalar = self.builder.any_string(INDIRECT, hint="db")
        if shape == "array":
            return ArrVal(default=scalar)
        if shape == "object":
            # property reads fall back to Σ*; make them INDIRECT via default
            return ArrVal(default=scalar)
        return scalar

    def _call_function(
        self,
        definition: ast.FunctionDef,
        arg_nodes: list[ast.Expr],
        caller_env: Env,
        arg_values: list[Value] | None = None,
        this: ObjVal | None = None,
    ) -> Value:
        if (
            definition.name.lower() in self._call_stack
            or len(self._call_stack) >= MAX_CALL_DEPTH
        ):
            if self.audit is not None:
                file, line = self.audit.location
                self.audit.record_recursion(definition.name, file, line)
            result = self.builder.any_string(hint=f"rec.{definition.name}")
            values = arg_values or [self.eval(a, caller_env) for a in arg_nodes]
            return self.builder.taint_through(
                result, values, f"rec.{definition.name}"
            )
        if arg_values is None:
            arg_values = [self.eval(arg, caller_env) for arg in arg_nodes]
        local = Env()
        if this is not None:
            local.set("this", this)
        for index, param in enumerate(definition.params):
            if index < len(arg_values):
                local.set(param.name, arg_values[index])
            elif param.default is not None:
                local.set(param.name, self.eval(param.default, caller_env))
            else:
                local.set(param.name, self.builder.literal(""))
        self._call_stack.append(definition.name.lower())
        returns: list[Value] = []
        self._return_collectors.append(returns)
        try:
            self._exec_block(definition.body, local)
        except _Terminated as term:
            if term.kind != "return":
                raise  # exit() inside a function ends the page
        finally:
            self._return_collectors.pop()
            self._call_stack.pop()
        if not returns:
            return self.builder.literal("")
        return self._join_values(returns)

    def _record_hotspot(
        self,
        call: ast.Expr,
        arg_values: list[Value],
        sink_index: int,
        sink_name: str,
        kind: str = "sql",
    ) -> None:
        if sink_index >= len(arg_values):
            return
        query = self.builder.to_str(arg_values[sink_index])
        log.debug(
            "hotspot %s at %s:%s", sink_name, self.current_file, call.line
        )
        self.hotspots.append(
            Hotspot(
                file=self.current_file,
                line=call.line,
                query=query,
                sink=sink_name,
                kind=kind,
            )
        )


def prepass_parse_file(path: Path, disk_cache=None) -> tuple[str, ast.File | None]:
    """Parse one file for the farm's include/parse pre-pass.

    Returns ``(outcome, tree)``: ``"shared"`` when the shared AST memo
    already holds the entry (the worker that published it already
    reported the file's include discoveries, so no tree travels back),
    ``"parsed"`` after a successful parse-and-publish, and ``"error"``
    for unreadable or unparseable files (the per-page analysis
    re-discovers and *reports* those errors itself; the pre-pass only
    wants the happy-path trees warm).  The tree lets the caller walk the
    file's static includes and extend the pre-pass to the dependency
    closure.

    Counter note: a pre-pass parse increments the same ``parse`` timers
    and ``parse.files`` counter a page-analysis parse would — the page
    that later consumes the shared tree skips its own parse, so the
    batch total stays what a serial run records.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return "error", None
    key = DiskCache.ast_key(data, str(path))
    if SHARED_ASTS is not None and SHARED_ASTS.has(key):
        return "shared", None
    entry = disk_cache.load("ast", key) if disk_cache is not None else None
    if entry is None:
        try:
            with PERF.timer("parse"):
                entry = parse(data.decode("utf-8"), str(path)), None
        except (PhpParseError, ValueError) as exc:
            entry = None, str(exc)
        PERF.incr("parse.files")
        if disk_cache is not None:
            disk_cache.store("ast", key, entry)
    if SHARED_ASTS is not None:
        SHARED_ASTS.publish(key, entry)
    return ("parsed", entry[0]) if entry[0] is not None else ("error", None)
