"""Cross-site-scripting detection — the paper's §7 future-work item,
built on the same two-phase machinery.

"We would like to apply the same technique to detecting vulnerabilities
that allow cross-site scripting attacks, in which a server may deliver
untrusted JavaScript code to be executed by a client browser."

Sinks are ``echo``/``print`` of string values; the policy is the HTML
analogue of syntactic confinement: an untrusted substring must stay
*character data* — it must not be able to introduce markup structure.
Conservatively: its language must contain no ``<`` (element/script
injection) and no ``"``/``'`` (attribute breakout).  The transducer
model of ``htmlspecialchars`` (which rewrites ``<`` to ``&lt;`` etc.)
makes properly encoded output verify, exactly as ``addslashes`` does for
the SQL policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from repro.lang.fsa import DFA, NFA
from repro.lang.charset import CharSet
from repro.lang.grammar import Grammar
from repro.lang.intersect import intersect, intersection_is_empty

from .policy import maximal_labeled
from .reports import Finding
from .stringtaint import Hotspot, StringTaintAnalysis


@lru_cache(maxsize=1)
def markup_capable() -> DFA:
    """Strings that can open markup or break out of an attribute."""
    dangerous = CharSet.of("<>\"'")
    return (
        NFA.any_string()
        .concat(NFA.from_charset(dangerous))
        .concat(NFA.any_string())
        .determinize()
    )


@dataclass
class XssReport:
    file: str
    line: int
    findings: list[Finding] = field(default_factory=list)

    @property
    def violations(self) -> list[Finding]:
        return [f for f in self.findings if not f.safe]

    @property
    def verified(self) -> bool:
        return not self.violations


def check_echo_hotspot(grammar: Grammar, hotspot: Hotspot) -> XssReport:
    """Check one echo site: every untrusted substring must be inert."""
    report = XssReport(file=hotspot.file, line=hotspot.line)
    root = hotspot.query.nt
    scope = grammar.subgrammar(root).trim(root)
    for labeled in maximal_labeled(scope, root):
        labels = frozenset(scope.labels.get(labeled, ()))
        inert = intersection_is_empty(scope, labeled, markup_capable())
        witness = ""
        if not inert:
            refined, start = intersect(scope, labeled, markup_capable())
            samples = refined.sample_strings(start, limit=1)
            witness = samples[0] if samples else ""
        report.findings.append(
            Finding(
                file=hotspot.file,
                line=hotspot.line,
                sink="echo",
                nonterminal=labeled.name,
                labels=labels,
                check="markup-inert",
                safe=inert,
                witness=witness,
                detail=(
                    "untrusted substring cannot introduce markup"
                    if inert
                    else "untrusted substring can emit <, >, or a quote"
                ),
            )
        )
    return report


class XssAnalysis(StringTaintAnalysis):
    """String-taint analysis with echo/print sinks recorded."""

    def __init__(self, project_root: str | Path, **kwargs) -> None:
        super().__init__(project_root, **kwargs)
        self.echo_hotspots: list[Hotspot] = []

    def _exec_Echo(self, stmt, env) -> None:  # noqa: N802 (dispatch name)
        for value in stmt.values:
            result = self.builder.to_str(self.eval(value, env))
            self.echo_hotspots.append(
                Hotspot(
                    file=self.current_file,
                    line=stmt.line,
                    query=result,
                    sink="echo",
                )
            )


def analyze_page_xss(
    project_root: str | Path, entry: str | Path
) -> list[XssReport]:
    """Analyze one page for XSS: one report per echo with untrusted data."""
    analysis = XssAnalysis(project_root)
    analysis.analyze_file(entry)
    reports = []
    for hotspot in analysis.echo_hotspots:
        report = check_echo_hotspot(analysis.builder.grammar, hotspot)
        if report.findings:  # echoes of purely trusted data are silent
            reports.append(report)
    return reports
