"""Cross-site-scripting detection — the paper's §7 future-work item,
built on the same two-phase machinery.

"We would like to apply the same technique to detecting vulnerabilities
that allow cross-site scripting attacks, in which a server may deliver
untrusted JavaScript code to be executed by a client browser."

Sinks are ``echo``/``print`` of string values; the policy is the HTML
analogue of syntactic confinement: an untrusted substring must stay
*character data* — it must not be able to introduce markup structure.
Conservatively: its language must contain no ``<`` (element/script
injection) and no ``"``/``'`` (attribute breakout).  The transducer
model of ``htmlspecialchars`` (which rewrites ``<`` to ``&lt;`` etc.)
makes properly encoded output verify, exactly as ``addslashes`` does for
the SQL policy.

The check itself now lives in
:class:`repro.analysis.policies.xss.MarkupXssPolicy`; this module keeps
the historical ``--xss`` entry point (:func:`analyze_page_xss`) on top
of it.  The context-*sensitive* variant is the ``xss-context`` policy
(:mod:`repro.analysis.policies.xss_context`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lang.grammar import Grammar

from .policy import VerdictCache
from .policies.xss import MarkupXssPolicy, markup_capable  # noqa: F401 - re-export
from .reports import Finding
from .stringtaint import Hotspot, StringTaintAnalysis


@dataclass
class XssReport:
    file: str
    line: int
    findings: list[Finding] = field(default_factory=list)

    @property
    def violations(self) -> list[Finding]:
        return [f for f in self.findings if not f.safe]

    @property
    def verified(self) -> bool:
        return not self.violations


def check_echo_hotspot(
    grammar: Grammar, hotspot: Hotspot, cache: VerdictCache | None = None
) -> XssReport:
    """Check one echo site: every untrusted substring must be inert.

    Delegates to the ``xss`` policy; unsafe findings whose witness
    sampling came back empty carry the explicit ``witness_unavailable``
    marker instead of a bare ``witness == ""``.
    """
    policy_report = MarkupXssPolicy().check(grammar, hotspot, cache=cache)
    return XssReport(
        file=hotspot.file, line=hotspot.line, findings=policy_report.findings
    )


class XssAnalysis(StringTaintAnalysis):
    """String-taint analysis with echo/print sinks recorded."""

    def __init__(self, project_root: str | Path, **kwargs) -> None:
        super().__init__(project_root, **kwargs)
        self.echo_hotspots: list[Hotspot] = []

    def _exec_Echo(self, stmt, env) -> None:  # noqa: N802 (dispatch name)
        for value in stmt.values:
            result = self.builder.to_str(self.eval(value, env))
            self.echo_hotspots.append(
                Hotspot(
                    file=self.current_file,
                    line=stmt.line,
                    query=result,
                    sink="echo",
                    kind="xss",
                )
            )


def analyze_page_xss(
    project_root: str | Path, entry: str | Path
) -> list[XssReport]:
    """Analyze one page for XSS: one report per echo with untrusted data."""
    analysis = XssAnalysis(project_root)
    analysis.analyze_file(entry)
    reports = []
    for hotspot in analysis.echo_hotspots:
        report = check_echo_hotspot(analysis.builder.grammar, hotspot)
        if report.findings:  # echoes of purely trusted data are silent
            reports.append(report)
    return reports
