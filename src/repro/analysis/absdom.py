"""The grammar-building abstract domain.

:class:`GrammarBuilder` wraps the single growing :class:`Grammar` the
string-taint analysis constructs (paper §3.1): every abstract operation
on strings — literal, concatenation, join of control-flow branches,
regular-language refinement, transducer image, widening — is a grammar
construction that returns a fresh nonterminal.  The builder is shared by
the interpreter (:mod:`repro.analysis.stringtaint`) and the builtin
function models (:mod:`repro.php.builtins`).
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.lang.charset import CharSet
from repro.lang.fsa import DFA, NFA
from repro.lang.fst import FST, FSTExplosion
from repro.lang.grammar import Grammar, Lit, Nonterminal, Symbol
from repro.lang.image import fst_image, regular_image
from repro.lang.intersect import intersect
from repro.lang.regex import Pattern, search_language
from repro.obs.metrics import PERF
from repro.obs.trace import TRACE

from .values import ArrVal, StrVal, Value


class GrammarBuilder:
    """Helpers for building the analysis grammar.

    ``widen_threshold`` implements the improvement the paper's §5.3
    proposes: sequences of replacement operations on *displayed* text
    blow the grammar up exponentially (Tiger PHP News' forum markup);
    when an operand's subgrammar exceeds the threshold, it is widened to
    its charset closure (sound, taint-preserving) before the transducer
    image or intersection is computed, so chains stay linear.  Query
    construction code rarely reaches the threshold, keeping precision
    where it matters.
    """

    def __init__(
        self, widen_threshold: int = 600, widen_strategy: str = "closure"
    ) -> None:
        if widen_strategy not in ("closure", "mohri-nederhof"):
            raise ValueError(f"unknown widen strategy {widen_strategy!r}")
        self.grammar = Grammar()
        self.widen_threshold = widen_threshold
        self.widen_strategy = widen_strategy
        self._counter = itertools.count()
        self._literal_cache: dict[str, Nonterminal] = {}
        #: soundness-audit hook (an AuditTrail); every widening — the one
        #: chokepoint where the analysis trades precision for size — is
        #: reported here so verdicts can carry a precision caveat
        self.audit = None
        #: provenance context, kept current by the interpreter exactly
        #: like ``AuditTrail.location``/``call_context``: the statement
        #: site being interpreted, and the builtin call (if any) whose
        #: model is running.  Consumed by the origin events below.
        self.site: tuple[str, int] = ("", 0)
        self.call_name: str | None = None
        #: extra fields for the next labeled ``any_string`` birth (byte
        #: span of the source expression, superglobal key, …); set by the
        #: interpreter around superglobal reads, consumed once
        self.source_extra: dict | None = None

    # -- provenance -----------------------------------------------------------

    def _origin_event(self, kind: str, name: str, **extra) -> dict:
        file, line = self.site
        event = {"kind": kind, "name": name, "file": file, "line": line}
        event.update(extra)
        return event

    def _prov_sample(self, nt: Nonterminal) -> str:
        """A short non-empty example string of ``L(nt)`` (or "")."""
        with PERF.timer("provenance.samples"):
            for text in self.grammar.sample_strings(nt, limit=3, max_len=48):
                if text:
                    return text
        return ""

    def taint_through(
        self,
        result: StrVal,
        operands: Iterable[Value],
        name: str,
        kind: str = "flow",
    ) -> StrVal:
        """Sound flow-through: ``result`` (a fresh Σ*) inherits every
        operand label, and — new for provenance — a dataflow edge plus a
        ``flow`` event so the chain from source to sink survives the
        structural disconnect (the fresh Σ* has no production referencing
        the operands)."""
        tainted_inputs: list[Nonterminal] = []
        for value in operands:
            if isinstance(value, StrVal):
                labels = self.labels_of(value)
                if labels:
                    for label in labels:
                        self.grammar.add_label(result.nt, label)
                    tainted_inputs.append(value.nt)
        if tainted_inputs:
            self.grammar.set_origin(
                result.nt, self._origin_event(kind, name), inputs=tainted_inputs
            )
        return result

    def _scoped(self, value: StrVal, hint: str) -> tuple[Grammar, StrVal]:
        """The operand's subgrammar, widening oversized operands first."""
        scope = self.grammar.subgrammar(value.nt)
        if scope.num_productions() > self.widen_threshold:
            value = self.widen(value, f"{hint}▽")
            scope = self.grammar.subgrammar(value.nt)
        return scope, value

    # -- basic constructors ---------------------------------------------------

    def fresh(self, hint: str = "v") -> Nonterminal:
        return self.grammar.fresh(f"{hint}#{next(self._counter)}")

    def literal(self, text: str) -> StrVal:
        if text not in self._literal_cache:
            nt = self.fresh("lit")
            self.grammar.add(nt, (Lit(text),) if text else ())
            self._literal_cache[text] = nt
        return StrVal(self._literal_cache[text])

    def any_string(
        self, label: str | None = None, hint: str = "Σ*", **origin
    ) -> StrVal:
        """Σ* — the unknown string; optionally taint-labeled at birth.

        Keyword ``origin`` extras (e.g. ``span=[lo, hi]``) are recorded on
        the source event; fields in :attr:`source_extra` override them."""
        nt = self.fresh(hint)
        self.grammar.add(nt, ())
        self.grammar.add(nt, (CharSet.any_char(), nt))
        if label:
            self.grammar.add_label(nt, label)
            if self.source_extra:
                origin.update(self.source_extra)
            self.grammar.set_origin(
                nt, self._origin_event("source", hint, label=label, **origin)
            )
        return StrVal(nt)

    def charset_star(self, charset: CharSet, hint: str = "C*") -> StrVal:
        nt = self.fresh(hint)
        self.grammar.add(nt, ())
        if charset:
            self.grammar.add(nt, (charset, nt))
        return StrVal(nt)

    def from_symbols(self, symbols: Iterable[Symbol], hint: str = "seq") -> StrVal:
        nt = self.fresh(hint)
        self.grammar.add(nt, tuple(symbols))
        return StrVal(nt)

    def from_nfa(self, nfa: NFA, hint: str = "re") -> StrVal:
        """A right-linear grammar for the NFA's language."""
        states = {
            state: self.fresh(f"{hint}.q{state}") for state in range(nfa.num_states)
        }
        for src, edges in nfa.transitions.items():
            for label, dst in edges:
                self.grammar.add(states[src], (label, states[dst]))
        for src, dsts in nfa.epsilons.items():
            for dst in dsts:
                self.grammar.add(states[src], (states[dst],))
        for accept in nfa.accepts:
            self.grammar.add(states[accept], ())
        return StrVal(states[nfa.start])

    # -- combination -------------------------------------------------------------

    def concat(self, left: StrVal, right: StrVal) -> StrVal:
        nt = self.fresh("cat")
        self.grammar.add(nt, (left.nt, right.nt))
        return StrVal(nt)

    def concat_all(self, parts: Iterable[StrVal]) -> StrVal:
        parts = list(parts)
        if not parts:
            return self.literal("")
        result = parts[0]
        for part in parts[1:]:
            result = self.concat(result, part)
        return result

    def join(self, values: Iterable[StrVal], hint: str = "φ") -> StrVal:
        """Control-flow join: a φ nonterminal deriving every branch."""
        values = list(values)
        if len(values) == 1:
            return values[0]
        nt = self.fresh(hint)
        for value in values:
            self.grammar.add(nt, (value.nt,))
        return StrVal(nt)

    # -- taint ---------------------------------------------------------------------

    def taint(self, value: StrVal, label: str) -> StrVal:
        self.grammar.add_label(value.nt, label)
        return value

    def labels_of(self, value: StrVal) -> set[str]:
        """All labels reachable inside the value's subgrammar."""
        found: set[str] = set()
        for nt in self.grammar.reachable(value.nt):
            found |= self.grammar.labels.get(nt, set())
        return found

    def is_tainted(self, value: StrVal) -> bool:
        return bool(self.labels_of(value))

    # -- language operations ---------------------------------------------------------

    def refine(self, value: StrVal, dfa: DFA, hint: str = "∩") -> StrVal:
        """Intersection refinement (conditionals; paper Figure 7).

        The result grammar is imported into the builder's grammar under a
        fresh nonterminal; labels carry over per Theorem 3.1.
        """
        with TRACE.span("intersect", op=hint) as span:
            scope, value = self._scoped(value, hint)
            span.set("operand_productions", scope.num_productions())
            refined, start = intersect(scope, value.nt, dfa)
        result = self._absorb(refined, start, hint, operand=value.nt)
        self.grammar.set_origin(
            result.nt, self._origin_event("refine", hint), inputs=(value.nt,)
        )
        return result

    def refine_regex(self, value: StrVal, pattern: Pattern, positive: bool) -> StrVal:
        """Refine by a ``preg_match``-style predicate outcome.

        ``positive`` refines to the strings *containing* a match; the
        negative branch intersects with the complement.
        """
        language = search_language(pattern).determinize()
        if not positive:
            language = language.complement()
        return self.refine(value, language, hint="re∩")

    def image(self, value: StrVal, fst: FST, hint: str = "fx") -> StrVal:
        """Transducer image; widens the operand first if it would blow up."""
        with TRACE.span("image", op=hint) as span:
            scope, value = self._scoped(value, hint)
            span.set("operand_productions", scope.num_productions())
            before_sample = self._prov_sample(value.nt)
            try:
                imaged, start = fst_image(scope, value.nt, fst)
            except FSTExplosion:
                span.set("explosion_fallback", True)
                imaged, start = regular_image(
                    self.grammar.charset_closure(value.nt), fst
                )
                for label in self.labels_of(value):
                    imaged.add_label(start, label)
        result = self._absorb(imaged, start, hint, operand=value.nt)
        event = self._origin_event(
            "sanitizer",
            self.call_name or hint,
            op=hint,
            before=before_sample,
            after=self._prov_sample(result.nt),
        )
        self.grammar.set_origin(result.nt, event, inputs=(value.nt,))
        return result

    def widen(self, value: StrVal, hint: str = "▽") -> StrVal:
        """Regular over-approximation of the value (keeps taint).

        ``closure`` (default): L(value) ⊆ closure* — tiny (one
        nonterminal) but structure-destroying; the anti-blow-up bound.
        ``mohri-nederhof``: the structure-preserving strongly regular
        approximation ([21] in the paper) — keeps literal skeletons at
        roughly the original grammar size.
        """
        if self.audit is not None:
            self.audit.record_widening(hint)
        if self.widen_strategy == "mohri-nederhof":
            from repro.lang.approx import is_strongly_regular, mohri_nederhof

            scope = self.grammar.subgrammar(value.nt)
            if not is_strongly_regular(scope, value.nt):
                approx, root = mohri_nederhof(scope, value.nt)
                result = self._absorb(approx, root, hint, operand=value.nt)
                self.grammar.set_origin(
                    result.nt,
                    self._origin_event("widen", hint, strategy="mohri-nederhof"),
                    inputs=(value.nt,),
                )
                return result
            # already regular: fall through to the closure bound (the
            # caller widens because of *size*, which MN would not reduce)
        closure = self.grammar.charset_closure(value.nt)
        widened = self.charset_star(closure, hint)
        for label in self.labels_of(value):
            self.grammar.add_label(widened.nt, label)
        self.grammar.set_origin(
            widened.nt,
            self._origin_event("widen", hint, strategy="closure"),
            inputs=(value.nt,),
        )
        return widened

    def substring_language(self, value: StrVal, hint: str = "sub") -> StrVal:
        """All substrings of all strings of ``value`` (sound for substr)."""
        widened = self.widen(value, hint)
        return widened

    def _absorb(
        self,
        other: Grammar,
        start: Nonterminal,
        hint: str,
        operand: Nonterminal | None = None,
    ) -> StrVal:
        """Import another grammar's productions (they use fresh NT objects,
        so a plain merge is safe) and alias its start.

        ``operand`` is the nonterminal the absorbed grammar was computed
        *from* (intersection/image/widening input).  Every labeled
        nonterminal of the product construction — the state-split copies
        of the operand's untrusted sources — gets a ``prov_inputs`` edge
        back to it, so provenance traced from a split copy still reaches
        the original source site."""
        for nt, rules in other.productions.items():
            self.grammar._bulk_add(nt, rules)
        for nt, labels in other.labels.items():
            for label in labels:
                self.grammar.add_label(nt, label)
            if labels and operand is not None:
                self.grammar.add_prov_inputs(nt, (operand,))
        alias = self.fresh(hint)
        self.grammar.add(alias, (start,))
        self.grammar.copy_labels(start, alias)
        return StrVal(alias)

    # -- value coercion ------------------------------------------------------------

    def to_str(self, value: Value | None) -> StrVal:
        """Coerce any abstract value to a string value (PHP semantics-ish)."""
        if isinstance(value, StrVal):
            return value
        if isinstance(value, ArrVal):
            return self.literal("Array")  # PHP's (string) cast of an array
        from .values import ObjVal

        if isinstance(value, ObjVal):
            return self.literal("Object")
        return self.literal("")

    def sample(self, value: StrVal, limit: int = 10) -> list[str]:
        return self.grammar.sample_strings(value.nt, limit=limit)
