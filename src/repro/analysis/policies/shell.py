"""Shell-command injection policy (``exec``/``system``/``passthru``/…).

The danger language is built from the same state-machine idiom as the
SQL quote-parity automata: track POSIX-shell single-quoting and
backslash escapes, and accept any string that either reaches a shell
metacharacter *outside* quotes or leaves quoting unbalanced (an odd
quote can splice with trusted context, exactly like C1's odd-quotes
check).  The transducer model of ``escapeshellarg`` — quote-wrap plus
``'`` → ``'\\''`` — makes properly escaped arguments verify, the shell
analogue of ``addslashes`` under the SQL policy.
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang.charset import CharSet
from repro.lang.fsa import DFA

from .base import SinkPolicy

#: characters that terminate, chain, or substitute commands when they
#: appear outside single quotes (the ISSUE's ``;|&$()<>`` plus the
#: backtick/double-quote/newline forms of the same capability)
SHELL_METACHARS = CharSet.of(";|&$()<>`\"\n")


@lru_cache(maxsize=1)
def shell_breakout() -> DFA:
    """Strings that can alter a shell command's structure.

    States: outside quotes / outside-after-backslash / inside single
    quotes / compromised.  Accepting: a metacharacter was seen outside
    quotes, or the string ends inside an unterminated quote, or with a
    trailing backslash (both splice with adjacent trusted context).
    """
    dfa = DFA()
    out = dfa.new_state()
    out_esc = dfa.new_state()
    in_sq = dfa.new_state()
    boom = dfa.new_state()
    quote = CharSet.of("'")
    backslash = CharSet.of("\\")
    plain = quote.union(backslash).union(SHELL_METACHARS).complement()
    dfa.start = out
    dfa.accepts = {boom, in_sq, out_esc}
    dfa.add_edge(out, quote, in_sq)
    dfa.add_edge(out, backslash, out_esc)
    dfa.add_edge(out, SHELL_METACHARS, boom)
    dfa.add_edge(out, plain, out)
    dfa.add_edge(out_esc, CharSet.any_char(), out)
    dfa.add_edge(in_sq, quote, out)
    dfa.add_edge(in_sq, quote.complement(), in_sq)
    dfa.add_edge(boom, CharSet.any_char(), boom)
    return dfa


class ShellPolicy(SinkPolicy):
    id = "shell"
    title = "Shell command injection"
    rules = [
        {
            "id": "shell-metachar",
            "name": "ShellMetacharacterReachable",
            "shortDescription": {
                "text": "Untrusted data reaching a shell-command sink can "
                        "place a metacharacter (;|&$()<>`\") outside single "
                        "quotes, or unbalance the quoting."
            },
            "defaultConfiguration": {"level": "error"},
        },
    ]

    def __init__(self) -> None:
        from .. import sources

        self.functions = dict(sources.SHELL_FUNCTIONS)

    def warm(self) -> None:
        shell_breakout()

    def check_labeled(self, scope, root, labeled, hotspot, others):
        return [
            self.danger_finding(
                scope,
                labeled,
                hotspot,
                dangers=(shell_breakout(),),
                check="shell-metachar",
                safe_detail=(
                    "untrusted substring stays quoted and metacharacter-free"
                ),
                unsafe_detail=(
                    "untrusted substring can reach an unquoted shell "
                    "metacharacter or unbalance quoting"
                ),
            )
        ]
