"""Pluggable sink policies over the string-analysis core.

Each policy (SQL confinement, context-blind and context-sensitive XSS,
shell-command injection, dynamic-code evaluation, path traversal)
declares its sink signatures and its per-substring check over a
hotspot's labeled grammar; the surrounding machinery — hotspot
recording, verdict memoization, provenance, SARIF, disk cache, server,
differential fuzzing — is shared.  See README "Policies" for the
``--policy-config`` schema.
"""

from .base import SinkPolicy
from .config import (
    DEFAULT_CONFIG,
    PolicyConfig,
    PolicyConfigError,
    config_from_dict,
    load_policy_config,
    parse_policy_yaml,
)
from .evalinj import EvalPolicy
from .path import PathPolicy
from .registry import REGISTRY, policy_instance
from .shell import ShellPolicy
from .sql import SqlPolicy
from .xss import MarkupXssPolicy, markup_capable
from .xss_context import ContextXssPolicy

__all__ = [
    "DEFAULT_CONFIG",
    "REGISTRY",
    "ContextXssPolicy",
    "EvalPolicy",
    "MarkupXssPolicy",
    "PathPolicy",
    "PolicyConfig",
    "PolicyConfigError",
    "ShellPolicy",
    "SinkPolicy",
    "SqlPolicy",
    "config_from_dict",
    "load_policy_config",
    "markup_capable",
    "parse_policy_yaml",
    "policy_instance",
]
