"""Context-sensitive XSS policy (DESIGN §5g).

Where the context-blind ``xss`` policy applies one ``<>"'`` automaton
everywhere, this policy first *classifies* where each untrusted
nonterminal lands in the page's trusted HTML skeleton, then applies a
per-context inertness automaton:

1. Build the hotspot's context grammar (the paper's ``R_t``
   construction, shared with check C2): the labeled nonterminal becomes
   the reserved MARKER terminal, other untrusted pieces become NEUTRAL.
2. Enumerate the context language exhaustively under a bound
   (:func:`enumerate_skeletons`).  The skeleton of real pages is the
   finite set of trusted templates around the dynamic data, so the
   enumeration usually completes; when it cannot (unbounded or
   oversized skeleton, or a character-class symbol from widened trusted
   data), classification falls back to the ``unknown`` context.
3. Run an HTML lexer over each enumerated skeleton and record the
   lexical context of every MARKER occurrence: HTML body, single- or
   double-quoted attribute value, URL-valued attribute, unquoted
   attribute, or script (JS) block.
4. Check the labeled nonterminal's language against each observed
   context's danger automaton.  ``unknown`` uses the strictest check
   (any non-alphanumeric-ish character), so ambiguity only ever *adds*
   findings — the conservative direction (soundness argument in
   DESIGN §5g).

The acceptance example: ``htmlspecialchars($_GET['x'])`` (default
flags) is SAFE in HTML-body context (``<`` is encoded), a VIOLATION in
a single-quoted attribute (``'`` passes through), and a VIOLATION in a
URL attribute (a ``javascript:`` prefix needs no special character at
all) — three different verdicts for the same value on one page.
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang.charset import CharSet
from repro.lang.fsa import DFA, NFA
from repro.lang.grammar import Lit, Nonterminal

from .. import quotes
from ..policy import NEUTRAL, _contexts_grammar
from .base import SinkPolicy, contains_any, not_only

MARKER = quotes.MARKER

#: attributes whose value is a URL — a dangerous-scheme prefix executes
#: without any markup metacharacter
URL_ATTRS = frozenset(
    "href src action formaction background data poster cite".split()
)

#: enumeration bounds for the trusted skeleton (step 2)
MAX_SKELETONS = 64
MAX_SKELETON_LEN = 4096
MAX_STEPS = 20000


@lru_cache(maxsize=1)
def dangerous_url_scheme() -> DFA:
    """Strings that, used as a URL, execute script: an (optionally
    whitespace-prefixed, case-insensitive) ``javascript:``/``vbscript:``/
    ``data:`` scheme prefix."""
    from repro.lang.regex import compile_pattern, parse_regex

    patterns = [
        r"[ \t\r\n]*[jJ][aA][vV][aA][sS][cC][rR][iI][pP][tT]:",
        r"[ \t\r\n]*[vV][bB][sS][cC][rR][iI][pP][tT]:",
        r"[ \t\r\n]*[dD][aA][tT][aA]:",
    ]
    core = NFA.nothing()
    for pattern in patterns:
        core = core.union(compile_pattern(parse_regex(pattern)))
    return core.concat(NFA.any_string()).determinize().minimize()


#: context key → (SARIF rule id, danger automata thunk, description)
def _context_table():
    # the strictest danger language: any character outside a small inert
    # repertoire.  It must *contain* every other context's danger
    # language for the DESIGN §5g fallback argument to hold — hence no
    # space (attr-unq breakout), no ':' or '/' (URL schemes), and none
    # of the markup or JS metacharacters are inert.
    strict = (not_only(r"[a-zA-Z0-9_.,-]*"),)
    return {
        "html-body": (
            "xss-context-body",
            (contains_any("<"),),
            "HTML body: '<' opens an element or script",
        ),
        "attr-dq": (
            "xss-context-attr",
            (contains_any('"<'),),
            'double-quoted attribute: \'"\' breaks out',
        ),
        "attr-sq": (
            "xss-context-attr",
            (contains_any("'<"),),
            "single-quoted attribute: \"'\" breaks out",
        ),
        "attr-unq": (
            "xss-context-attr",
            (contains_any("\"'<> \t\n"),),
            "unquoted attribute: whitespace or a quote breaks out",
        ),
        "url-dq": (
            "xss-context-url",
            (contains_any('"<'), dangerous_url_scheme()),
            "URL attribute: breakout or a script-capable scheme",
        ),
        "url-sq": (
            "xss-context-url",
            (contains_any("'<"), dangerous_url_scheme()),
            "URL attribute: breakout or a script-capable scheme",
        ),
        "url-unq": (
            "xss-context-url",
            (contains_any("\"'<> \t\n"), dangerous_url_scheme()),
            "URL attribute: breakout or a script-capable scheme",
        ),
        "js-block": (
            "xss-context-js",
            strict,
            "script block: any JS metacharacter is live",
        ),
        "unknown": (
            "xss-context-unknown",
            strict,
            "unclassifiable context: strictest check applies",
        ),
    }


def enumerate_skeletons(grammar, root) -> tuple[list[str], bool]:
    """Bounded exhaustive enumeration of a context grammar's language.

    Returns ``(strings, complete)``; ``complete`` is False when any
    bound was hit or a character-class symbol (widened trusted data)
    made exact enumeration impossible — callers must then fall back to
    the ``unknown`` context.  Character-class symbols are replaced by
    NEUTRAL so lexing of the partial skeletons can still proceed.
    """
    results: list[str] = []
    complete = True
    stack: list[tuple[str, tuple]] = [("", (root,))]
    steps = 0
    while stack:
        steps += 1
        if steps > MAX_STEPS or len(results) > MAX_SKELETONS:
            return results, False
        prefix, symbols = stack.pop()
        if len(prefix) > MAX_SKELETON_LEN:
            complete = False
            continue
        if not symbols:
            results.append(prefix)
            continue
        head, rest = symbols[0], symbols[1:]
        if isinstance(head, Lit):
            stack.append((prefix + head.text, rest))
        elif isinstance(head, Nonterminal):
            rules = grammar.productions.get(head, ())
            if not rules:
                continue  # severed nonterminal: dead derivation
            for rhs in rules:
                stack.append((prefix, tuple(rhs) + rest))
        elif isinstance(head, CharSet):
            complete = False
            stack.append((prefix + NEUTRAL, rest))
        else:  # pragma: no cover - no other symbol kinds exist
            complete = False
            stack.append((prefix, rest))
    return results, complete


def lex_marker_contexts(text: str) -> set[str]:
    """The lexical contexts of every MARKER occurrence in ``text``.

    A linear HTML tokenizer: TEXT / comment / tag-name / in-tag /
    attribute values (double-, single-, un-quoted) / script block.
    NEUTRAL placeholders are treated as benign character data.
    Anything the lexer cannot place lands in ``unknown``.
    """
    contexts: set[str] = set()
    state = "text"
    tag = ""
    attr = ""
    script = False
    i, n = 0, len(text)

    def value_context(quoted: str) -> str:
        base = "url" if attr.lower() in URL_ATTRS else "attr"
        return f"{base}-{quoted}"

    while i < n:
        char = text[i]
        if state == "text":
            if char == MARKER:
                contexts.add("js-block" if script else "html-body")
            elif char == "<":
                if script:
                    if text[i : i + 9].lower().startswith("</script"):
                        script = False
                        state = "tag-name"
                        tag = "/"
                        i += 1  # consume '<'; tag-name collects '/script'
                    # otherwise '<' is ordinary JS source
                elif text.startswith("<!--", i):
                    state = "comment"
                    i += 3
                else:
                    state = "tag-name"
                    tag = ""
        elif state == "comment":
            if char == MARKER:
                contexts.add("unknown")
            elif text.startswith("-->", i):
                state = "text"
                i += 2
        elif state == "tag-name":
            if char == MARKER:
                contexts.add("unknown")
            elif char in " \t\r\n":
                state = "in-tag"
                attr = ""
            elif char == ">":
                state = "text"
                script = tag.lower() == "script"
            else:
                tag += char
        elif state == "in-tag":
            if char == MARKER:
                contexts.add("unknown")
            elif char == ">":
                state = "text"
                script = tag.lower() == "script"
            elif char == "=":
                state = "before-value"
            elif char in " \t\r\n/":
                attr = ""
            else:
                attr += char
        elif state == "before-value":
            if char == '"':
                state = "value-dq"
            elif char == "'":
                state = "value-sq"
            elif char in " \t\r\n":
                pass
            elif char == ">":
                state = "text"
                script = tag.lower() == "script"
            elif char == MARKER:
                contexts.add(value_context("unq"))
                state = "value-unq"
            else:
                state = "value-unq"
                continue  # re-lex char as part of the value
        elif state == "value-dq":
            if char == MARKER:
                contexts.add(value_context("dq"))
            elif char == '"':
                state = "in-tag"
                attr = ""
        elif state == "value-sq":
            if char == MARKER:
                contexts.add(value_context("sq"))
            elif char == "'":
                state = "in-tag"
                attr = ""
        elif state == "value-unq":
            if char == MARKER:
                contexts.add(value_context("unq"))
            elif char == ">":
                state = "text"
                script = tag.lower() == "script"
            elif char in " \t\r\n":
                state = "in-tag"
                attr = ""
        i += 1
    if state != "text":
        # the skeleton ended mid-construct; MARKERs already classified
        # keep their context, but an unterminated state means later
        # markers (none) — nothing extra to do
        pass
    return contexts


def classify_contexts(scope, root, labeled, others) -> set[str]:
    """The set of output contexts ``labeled`` can occur in; falls back
    to {'unknown'} (strictest) when classification is not exact."""
    context_grammar = _contexts_grammar(scope, root, labeled, others)
    skeletons, complete = enumerate_skeletons(context_grammar, root)
    contexts: set[str] = set()
    for skeleton in skeletons:
        if MARKER in skeleton:
            contexts |= lex_marker_contexts(skeleton)
    if not complete or not contexts:
        contexts.add("unknown")
    return contexts


class ContextXssPolicy(SinkPolicy):
    id = "xss-context"
    title = "Cross-site scripting (context-sensitive)"
    functions = {"print": 0}
    constructs = frozenset({"echo"})
    rules = [
        {
            "id": "xss-context-body",
            "name": "XssHtmlBodyContext",
            "shortDescription": {
                "text": "Untrusted data in HTML-body context can emit '<' "
                        "and open an element or script."
            },
            "defaultConfiguration": {"level": "error"},
        },
        {
            "id": "xss-context-attr",
            "name": "XssAttributeContext",
            "shortDescription": {
                "text": "Untrusted data in an attribute value can break "
                        "out of its quoting."
            },
            "defaultConfiguration": {"level": "error"},
        },
        {
            "id": "xss-context-url",
            "name": "XssUrlAttributeContext",
            "shortDescription": {
                "text": "Untrusted data in a URL attribute can break out "
                        "or supply a script-capable scheme "
                        "(javascript:, vbscript:, data:)."
            },
            "defaultConfiguration": {"level": "error"},
        },
        {
            "id": "xss-context-js",
            "name": "XssScriptBlockContext",
            "shortDescription": {
                "text": "Untrusted data inside a script block can carry "
                        "live JavaScript metacharacters."
            },
            "defaultConfiguration": {"level": "error"},
        },
        {
            "id": "xss-context-unknown",
            "name": "XssUnknownContext",
            "shortDescription": {
                "text": "Untrusted data in an unclassifiable output "
                        "context; the strictest inertness check applies "
                        "(conservative fallback, DESIGN §5g)."
            },
            "defaultConfiguration": {"level": "error"},
        },
    ]

    def warm(self) -> None:
        # building the table forces every per-context danger DFA through
        # its lru_cache constructor
        _context_table()

    def check_labeled(self, scope, root, labeled, hotspot, others):
        table = _context_table()
        findings = []
        for context in sorted(classify_contexts(scope, root, labeled, others)):
            check, dangers, description = table[context]
            findings.append(
                self.danger_finding(
                    scope,
                    labeled,
                    hotspot,
                    dangers=dangers,
                    check=check,
                    safe_detail=f"inert in {context} context",
                    unsafe_detail=f"not inert in {context} context — "
                    f"{description}",
                    context=context,
                )
            )
        return findings
