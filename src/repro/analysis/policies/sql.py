"""The SQL-confinement policy (paper §3.2), ported onto the interface.

This is a *byte-identical* port: :meth:`SqlPolicy.check` delegates to
the original C1–C5 cascade in :mod:`repro.analysis.policy` with no
cascade override and no cache namespace, so findings, memo keys, JSON,
and SARIF all match the pre-refactor output exactly (pinned by the
golden regression test).
"""

from __future__ import annotations

from .. import sources
from ..policy import check_hotspot
from ..sarif import RULES
from .base import SinkPolicy


class SqlPolicy(SinkPolicy):
    id = "sql"
    title = "SQL command injection"
    functions = dict(sources.QUERY_FUNCTIONS)
    methods = frozenset(sources.QUERY_METHOD_NAMES)
    rules = RULES

    def check(self, grammar, hotspot, cache=None):
        return check_hotspot(grammar, hotspot, cache=cache)

    def warm(self) -> None:
        from .. import quotes

        quotes.odd_unescaped_quotes()
        quotes.has_unescaped_quote()
        quotes.markers_inside_string_literals()
        quotes.numeric_literals()
        quotes.non_confinable_substrings()
