"""Dynamic-code-evaluation policy (``eval``/``create_function``/
``preg_replace`` with a literal ``/e`` pattern).

For code sinks there is no quoting discipline to model — *any*
structure-bearing character in untrusted data can change the evaluated
program.  The danger language is therefore "contains a PHP
metacharacter": quotes, backslash, ``$`` (variable interpolation),
parentheses/braces/semicolon (call and statement structure), backtick,
and the comparison/tag characters.  Numeric and identifier-shaped data
(``intval`` output, ``preg_replace('/[^a-z0-9_]/', '', …)``) verifies.
"""

from __future__ import annotations

from .base import SinkPolicy, contains_any

#: characters that can alter PHP expression or statement structure
PHP_METACHARS = "'\"\\$();{}`<>=&|#"


class EvalPolicy(SinkPolicy):
    id = "eval"
    title = "Dynamic code evaluation"
    claims_preg_eval = True
    rules = [
        {
            "id": "eval-injection",
            "name": "EvalCodeInjection",
            "shortDescription": {
                "text": "Untrusted data reaching a dynamic-code sink "
                        "(eval, create_function, preg_replace /e) can "
                        "contain PHP metacharacters."
            },
            "defaultConfiguration": {"level": "error"},
        },
    ]

    def __init__(self) -> None:
        from .. import sources

        self.functions = dict(sources.EVAL_FUNCTIONS)

    def warm(self) -> None:
        contains_any(PHP_METACHARS)

    def check_labeled(self, scope, root, labeled, hotspot, others):
        return [
            self.danger_finding(
                scope,
                labeled,
                hotspot,
                dangers=(contains_any(PHP_METACHARS),),
                check="eval-injection",
                safe_detail=(
                    "untrusted substring is free of PHP metacharacters"
                ),
                unsafe_detail=(
                    "untrusted substring can inject PHP metacharacters "
                    "into evaluated code"
                ),
            )
        ]
