"""Policy configuration: the ``--policy-config`` YAML schema.

A config names the enabled sink policies and may extend their sink and
source tables declaratively::

    policies: [sql, shell, path]
    sinks:
      shell:
        functions:
          my_exec_wrapper: 0
    sources:
      _ENV: direct

:class:`PolicyConfig` is frozen and tuple-valued so instances hash,
pickle across worker processes, and digest deterministically — the
digest participates in the disk-cache page key, so switching configs
can never replay another config's verdicts.

PyYAML is used when available; a minimal indentation-based subset
parser (:func:`_mini_yaml`) covers the schema otherwise, so the feature
has no hard third-party dependency.  All schema violations raise the
typed :class:`PolicyConfigError`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

#: taint labels accepted for extra sources
_SOURCE_LABELS = ("direct", "indirect")

_KNOWN_TOP_KEYS = ("policies", "sinks", "sources")


class PolicyConfigError(ValueError):
    """A policy config file failed parsing or schema validation."""


@dataclass(frozen=True)
class PolicyConfig:
    """Which sink policies run, plus declarative sink/source extensions."""

    #: enabled policy ids, normalized to registry order
    enabled: tuple[str, ...] = ("sql",)
    #: extra function sinks: ``(policy id, function name, argument index)``
    extra_sinks: tuple[tuple[str, str, int], ...] = ()
    #: extra taint sources: ``(variable name, label)``
    extra_sources: tuple[tuple[str, str], ...] = ()

    def digest(self) -> str:
        """Deterministic content digest (disk-cache key component)."""
        blob = json.dumps(
            {
                "enabled": list(self.enabled),
                "sinks": [list(entry) for entry in self.extra_sinks],
                "sources": [list(entry) for entry in self.extra_sources],
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- resolved views consumed by the interpreter / renderers -------------

    def policies(self) -> list:
        """Enabled policy instances, in registry order."""
        from .registry import policy_instance

        return [policy_instance(pid) for pid in self.enabled]

    def policy_for(self, kind: str):
        """The enabled policy owning hotspots of ``kind``."""
        from .registry import policy_instance

        if kind not in self.enabled:
            raise KeyError(f"no enabled policy for sink kind {kind!r}")
        return policy_instance(kind)

    def function_sink_table(self) -> dict[str, tuple[tuple[str, int], ...]]:
        """``name -> ((policy id, argument index), …)`` over enabled
        policies, excluding the classic SQL query functions (those keep
        their dedicated interpreter fast path)."""
        from .sql import SqlPolicy

        table: dict[str, list[tuple[str, int]]] = {}

        def add(name: str, policy_id: str, index: int) -> None:
            entry = (policy_id, index)
            bucket = table.setdefault(name, [])
            if entry not in bucket:
                bucket.append(entry)

        for policy in self.policies():
            if policy.id == SqlPolicy.id:
                continue
            for name, index in sorted(policy.functions.items()):
                add(name, policy.id, index)
        for policy_id, name, index in self.extra_sinks:
            if policy_id in self.enabled and policy_id != SqlPolicy.id:
                add(name, policy_id, index)
        return {name: tuple(entries) for name, entries in table.items()}

    def construct_sink_table(self) -> dict[str, tuple[str, ...]]:
        """``construct -> (policy id, …)`` for echo/include-style sinks."""
        table: dict[str, list[str]] = {}
        for policy in self.policies():
            for construct in sorted(policy.constructs):
                bucket = table.setdefault(construct, [])
                if policy.id not in bucket:
                    bucket.append(policy.id)
        return {construct: tuple(ids) for construct, ids in table.items()}

    def preg_eval_kinds(self) -> tuple[str, ...]:
        """Policies claiming ``preg_replace``'s ``/e`` replacement arg."""
        return tuple(p.id for p in self.policies() if p.claims_preg_eval)

    def source_label(self, name: str) -> str | None:
        for source, label in self.extra_sources:
            if source == name:
                return label
        return None


#: the validated in-tree default: SQL confinement only — exactly the
#: historical behaviour when no ``--policy-config`` is given
DEFAULT_CONFIG = PolicyConfig()


def load_policy_config(path: str | Path) -> PolicyConfig:
    """Parse and validate a policy YAML file (typed errors)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise PolicyConfigError(f"{path}: {exc}") from exc
    data = parse_policy_yaml(text, source=str(path))
    return config_from_dict(data, source=str(path))


def parse_policy_yaml(text: str, source: str = "<policy-config>"):
    try:
        import yaml  # noqa: PLC0415 - optional dependency
    except ImportError:
        return _mini_yaml(text, source)
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise PolicyConfigError(f"{source}: invalid YAML: {exc}") from exc


def config_from_dict(data, source: str = "<policy-config>") -> PolicyConfig:
    """Validate a parsed document into a :class:`PolicyConfig`."""
    from .registry import REGISTRY

    if data is None:
        data = {}
    if not isinstance(data, dict):
        raise PolicyConfigError(f"{source}: top level must be a mapping")
    unknown = sorted(set(data) - set(_KNOWN_TOP_KEYS))
    if unknown:
        raise PolicyConfigError(
            f"{source}: unknown key(s) {unknown}; expected a subset of "
            f"{list(_KNOWN_TOP_KEYS)}"
        )

    raw_policies = data.get("policies", ["sql"])
    if not isinstance(raw_policies, list) or not raw_policies:
        raise PolicyConfigError(
            f"{source}: 'policies' must be a non-empty list of policy ids"
        )
    requested = []
    for pid in raw_policies:
        if not isinstance(pid, str) or pid not in REGISTRY:
            raise PolicyConfigError(
                f"{source}: unknown policy id {pid!r}; known ids: "
                f"{sorted(REGISTRY)}"
            )
        if pid not in requested:
            requested.append(pid)
    enabled = tuple(pid for pid in REGISTRY if pid in requested)

    sinks = data.get("sinks") or {}
    if not isinstance(sinks, dict):
        raise PolicyConfigError(f"{source}: 'sinks' must be a mapping")
    extra_sinks: list[tuple[str, str, int]] = []
    for policy_id in sorted(sinks):
        if policy_id not in REGISTRY:
            raise PolicyConfigError(
                f"{source}: sinks.{policy_id}: unknown policy id; known "
                f"ids: {sorted(REGISTRY)}"
            )
        spec = sinks[policy_id] or {}
        if not isinstance(spec, dict):
            raise PolicyConfigError(
                f"{source}: sinks.{policy_id}: must be a mapping"
            )
        bad_keys = sorted(set(spec) - {"functions"})
        if bad_keys:
            raise PolicyConfigError(
                f"{source}: sinks.{policy_id}: unknown key(s) {bad_keys}; "
                "expected 'functions'"
            )
        functions = spec.get("functions") or {}
        if not isinstance(functions, dict):
            raise PolicyConfigError(
                f"{source}: sinks.{policy_id}.functions: must map function "
                "names to argument indices"
            )
        for name in sorted(functions):
            index = functions[name]
            if not isinstance(name, str) or not name:
                raise PolicyConfigError(
                    f"{source}: sinks.{policy_id}.functions: function names "
                    "must be non-empty strings"
                )
            if isinstance(index, bool) or not isinstance(index, int) or index < 0:
                raise PolicyConfigError(
                    f"{source}: sinks.{policy_id}.functions.{name}: argument "
                    f"index must be a non-negative integer, got {index!r}"
                )
            extra_sinks.append((policy_id, name.lower(), index))

    sources_map = data.get("sources") or {}
    if not isinstance(sources_map, dict):
        raise PolicyConfigError(f"{source}: 'sources' must be a mapping")
    extra_sources: list[tuple[str, str]] = []
    for name in sorted(sources_map):
        label = sources_map[name]
        if not isinstance(name, str) or not name:
            raise PolicyConfigError(
                f"{source}: sources: variable names must be non-empty strings"
            )
        if label not in _SOURCE_LABELS:
            raise PolicyConfigError(
                f"{source}: sources.{name}: label must be one of "
                f"{list(_SOURCE_LABELS)}, got {label!r}"
            )
        extra_sources.append((name, label))

    return PolicyConfig(
        enabled=enabled,
        extra_sinks=tuple(extra_sinks),
        extra_sources=tuple(extra_sources),
    )


# -- fallback YAML-subset parser --------------------------------------------


def _mini_yaml(text: str, source: str):
    """Indentation-based parser for the schema's YAML subset.

    Handles nested mappings, ``- item`` block lists, ``[a, b]`` flow
    lists, comments, and int/bool/string scalars — everything the policy
    schema uses.  Anything else raises :class:`PolicyConfigError`.
    """
    lines: list[tuple[int, int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        no_comment = _strip_comment(raw)
        if not no_comment.strip():
            continue
        indent = len(no_comment) - len(no_comment.lstrip(" "))
        if "\t" in no_comment[:indent] or no_comment.lstrip(" ").startswith("\t"):
            raise PolicyConfigError(
                f"{source}:{lineno}: tabs are not allowed in indentation"
            )
        lines.append((lineno, indent, no_comment.strip()))
    if not lines:
        return {}
    value, pos = _parse_block(lines, 0, source, lines[0][1])
    if pos != len(lines):
        lineno = lines[pos][0]
        raise PolicyConfigError(f"{source}:{lineno}: unexpected indentation")
    return value


def _strip_comment(line: str) -> str:
    """Drop a trailing ``# comment`` (quote-aware enough for the schema)."""
    out = []
    quote = ""
    for char in line:
        if quote:
            out.append(char)
            if char == quote:
                quote = ""
        elif char in "'\"":
            quote = char
            out.append(char)
        elif char == "#":
            break
        else:
            out.append(char)
    return "".join(out).rstrip()


def _parse_block(lines, pos, source, indent):
    lineno, first_indent, content = lines[pos]
    if first_indent != indent:
        raise PolicyConfigError(f"{source}:{lineno}: bad indentation")
    if content.startswith("- ") or content == "-":
        items = []
        while (
            pos < len(lines)
            and lines[pos][1] == indent
            and (lines[pos][2].startswith("- ") or lines[pos][2] == "-")
        ):
            lineno, _, content = lines[pos]
            item_text = content[1:].strip()
            pos += 1
            if item_text:
                items.append(_scalar(item_text, source, lineno))
            elif pos < len(lines) and lines[pos][1] > indent:
                value, pos = _parse_block(lines, pos, source, lines[pos][1])
                items.append(value)
            else:
                raise PolicyConfigError(f"{source}:{lineno}: empty list item")
        return items, pos
    result: dict = {}
    while pos < len(lines) and lines[pos][1] == indent:
        lineno, _, content = lines[pos]
        if content.startswith("- "):
            raise PolicyConfigError(
                f"{source}:{lineno}: list item inside a mapping block"
            )
        key, sep, rest = content.partition(":")
        if not sep:
            raise PolicyConfigError(
                f"{source}:{lineno}: expected 'key: value', got {content!r}"
            )
        key = _unquote(key.strip())
        rest = rest.strip()
        pos += 1
        if rest:
            result[key] = _scalar(rest, source, lineno)
        elif pos < len(lines) and lines[pos][1] > indent:
            value, pos = _parse_block(lines, pos, source, lines[pos][1])
            result[key] = value
        else:
            result[key] = None
    return result, pos


def _scalar(text: str, source: str, lineno: int):
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [
            _scalar(part.strip(), source, lineno) for part in inner.split(",")
        ]
    if text.startswith("{"):
        raise PolicyConfigError(
            f"{source}:{lineno}: flow mappings are not supported"
        )
    lowered = text.lower()
    if lowered in ("true", "yes", "on"):
        return True
    if lowered in ("false", "no", "off"):
        return False
    if lowered in ("null", "~"):
        return None
    try:
        return int(text, 10)
    except ValueError:
        pass
    return _unquote(text)


def _unquote(text: str) -> str:
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    return text
