"""Context-blind XSS policy — the original §7 future-work check.

An untrusted substring reaching ``echo``/``print`` must stay *character
data*: it must not be able to introduce markup structure anywhere.
Conservatively, its language must contain no ``<``/``>`` (element or
script injection) and no ``"``/``'`` (attribute breakout).  The
context-*sensitive* refinement lives in
:mod:`repro.analysis.policies.xss_context`.
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang.charset import CharSet
from repro.lang.fsa import DFA, NFA

from .base import SinkPolicy


@lru_cache(maxsize=1)
def markup_capable() -> DFA:
    """Strings that can open markup or break out of an attribute."""
    dangerous = CharSet.of("<>\"'")
    return (
        NFA.any_string()
        .concat(NFA.from_charset(dangerous))
        .concat(NFA.any_string())
        .determinize()
    )


class MarkupXssPolicy(SinkPolicy):
    id = "xss"
    title = "Cross-site scripting"
    functions = {"print": 0}
    constructs = frozenset({"echo"})
    rules = [
        {
            "id": "markup-inert",
            "name": "MarkupCapableSubstring",
            "shortDescription": {
                "text": "Untrusted data reaching an HTML output sink can "
                        "emit <, >, or a quote: it can introduce markup "
                        "structure."
            },
            "defaultConfiguration": {"level": "error"},
        },
    ]

    def warm(self) -> None:
        markup_capable()

    def check_labeled(self, scope, root, labeled, hotspot, others):
        return [
            self.danger_finding(
                scope,
                labeled,
                hotspot,
                dangers=(markup_capable(),),
                check="markup-inert",
                safe_detail="untrusted substring cannot introduce markup",
                unsafe_detail="untrusted substring can emit <, >, or a quote",
            )
        ]
