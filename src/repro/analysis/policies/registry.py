"""The policy registry: id → :class:`~.base.SinkPolicy` subclass.

Registry order is the canonical policy order — enabled sets are
normalized to it, so configs listing the same policies in any order
produce identical analysis output and cache digests.
"""

from __future__ import annotations

from functools import lru_cache

from .evalinj import EvalPolicy
from .path import PathPolicy
from .shell import ShellPolicy
from .sql import SqlPolicy
from .xss import MarkupXssPolicy
from .xss_context import ContextXssPolicy

REGISTRY: dict[str, type] = {
    cls.id: cls
    for cls in (
        SqlPolicy,
        MarkupXssPolicy,
        ContextXssPolicy,
        ShellPolicy,
        EvalPolicy,
        PathPolicy,
    )
}


@lru_cache(maxsize=None)
def policy_instance(policy_id: str):
    """The shared (stateless) instance for ``policy_id``."""
    return REGISTRY[policy_id]()
