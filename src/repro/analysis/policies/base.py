"""The :class:`SinkPolicy` interface and shared check helpers.

A sink policy packages one vulnerability class for the two-phase
analysis: *which* program points are sinks (function names, method
names, language constructs), and *when* an untrusted substring of the
sink's string argument is dangerous — expressed, as in the paper, as
regular languages intersected against the hotspot's labeled grammar.

The framework supplies everything around that kernel: hotspot
recording (:mod:`repro.analysis.stringtaint` consults the policy
tables), memoization (verdicts are namespaced by policy id into the
phase-2 verdict cache), provenance derivation, SARIF rule plumbing,
disk-cache keying, and the CLI/server/fuzz integration.
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang.charset import CharSet
from repro.lang.fsa import DFA, NFA
from repro.lang.intersect import intersection_is_empty

from ..policy import _witness, check_hotspot, maximal_labeled
from ..reports import Finding


class SinkPolicy:
    """One pluggable vulnerability class.

    Subclasses set the class attributes and implement
    :meth:`check_labeled`; instances are stateless and shared.
    """

    #: policy id — doubles as the ``Hotspot.kind`` discriminator and the
    #: verdict-cache namespace
    id: str = ""
    #: human-readable vulnerability title (SARIF message prefix)
    title: str = ""
    #: default function sinks: lower-case name → sink argument index
    functions: dict[str, int] = {}
    #: method-call sinks, matched by method name (argument 0)
    methods: frozenset[str] = frozenset()
    #: language constructs claimed as sinks: subset of {"echo", "include"}
    constructs: frozenset[str] = frozenset()
    #: SARIF ``reportingDescriptor`` entries this policy contributes
    rules: list[dict] = []
    #: True when the policy claims ``preg_replace``'s ``/e`` replacement
    claims_preg_eval: bool = False

    def check(self, grammar, hotspot, cache=None):
        """The :class:`~repro.analysis.reports.HotspotReport` for one
        hotspot of this policy's kind (memoized per policy namespace)."""
        return check_hotspot(
            grammar,
            hotspot,
            cache=cache,
            cascade=self._cascade,
            namespace=self.id,
        )

    def check_labeled(self, scope, root, labeled, hotspot, others):
        """Findings for one maximal labeled nonterminal (≥ 1 entry)."""
        raise NotImplementedError

    def warm(self) -> None:
        """Pre-build this policy's danger automata.

        Called from parallel-worker initializers so the first page each
        worker analyzes does not pay cold NFA→DFA construction.  Every
        danger constructor is process-cached (``lru_cache``), so warming
        is idempotent; the default is a no-op for policies without
        eagerly buildable automata."""

    # -- framework plumbing --------------------------------------------------

    def _cascade(self, scope, root, hotspot, report):
        """Per-hotspot driver mirroring the SQL cascade's shape: sample
        the sink string, check every maximal labeled nonterminal, and
        collapse automaton-state-split duplicates."""
        report.query_samples = scope.sample_strings(root, limit=3, shared=True)
        maximal = maximal_labeled(scope, root)
        findings: list[tuple[object, Finding]] = []
        for labeled in maximal:
            for finding in self.check_labeled(
                scope, root, labeled, hotspot, others=maximal
            ):
                findings.append((labeled, finding))
        seen: dict[tuple, int] = {}
        kept_nts: list = []
        for labeled, finding in findings:
            key = (finding.category, finding.check, finding.safe, finding.context)
            if key in seen:
                kept = report.findings[seen[key]]
                if finding.witness and not kept.witness:
                    kept.witness = finding.witness
                    kept.witness_unavailable = False
                continue
            seen[key] = len(report.findings)
            report.findings.append(finding)
            kept_nts.append(labeled)
        report._finding_nts = kept_nts
        return kept_nts

    def finding(
        self,
        labeled,
        hotspot,
        scope,
        check: str,
        safe: bool,
        witness: str = "",
        witness_unavailable: bool = False,
        detail: str = "",
        context: str = "",
    ) -> Finding:
        return Finding(
            file=hotspot.file,
            line=hotspot.line,
            sink=hotspot.sink,
            nonterminal=labeled.name,
            labels=frozenset(scope.labels.get(labeled, ())),
            check=check,
            safe=safe,
            witness=witness,
            detail=detail,
            witness_unavailable=witness_unavailable,
            context=context,
            policy=self.id,
        )

    def danger_finding(
        self,
        scope,
        labeled,
        hotspot,
        dangers,
        check: str,
        safe_detail: str,
        unsafe_detail: str,
        context: str = "",
    ) -> Finding:
        """SAFE iff ``L(labeled)`` misses every danger language; on a hit
        the witness comes from the first non-empty intersection, with the
        explicit ``witness_unavailable`` marker when sampling misses
        every accepting derivation."""
        for dfa in dangers:
            if intersection_is_empty(scope, labeled, dfa):
                continue
            witness = _witness(scope, labeled, dfa)
            return self.finding(
                labeled,
                hotspot,
                scope,
                check=check,
                safe=False,
                witness=witness,
                witness_unavailable=not witness,
                detail=unsafe_detail,
                context=context,
            )
        return self.finding(
            labeled,
            hotspot,
            scope,
            check=check,
            safe=True,
            detail=safe_detail,
            context=context,
        )


# -- shared danger-language constructors -------------------------------------


@lru_cache(maxsize=None)
def contains_any(chars: str) -> DFA:
    """Σ*·[chars]·Σ* — strings containing any of ``chars``."""
    language = (
        NFA.any_string()
        .concat(NFA.from_charset(CharSet.of(chars)))
        .concat(NFA.any_string())
    )
    return language.determinize().minimize()


@lru_cache(maxsize=None)
def contains_string(word: str) -> DFA:
    """Σ*·word·Σ* — strings containing ``word`` as a substring."""
    language = (
        NFA.any_string().concat(NFA.from_string(word)).concat(NFA.any_string())
    )
    return language.determinize().minimize()


@lru_cache(maxsize=None)
def starts_with_any(prefixes: tuple[str, ...]) -> DFA:
    """(p₁|…|pₙ)·Σ* — strings with one of ``prefixes``."""
    core = NFA.nothing()
    for prefix in prefixes:
        core = core.union(NFA.from_string(prefix))
    return core.concat(NFA.any_string()).determinize().minimize()


@lru_cache(maxsize=None)
def not_only(char_class_regex: str) -> DFA:
    """Complement of the full-match language ``char_class_regex *`` —
    strings containing at least one character outside the class."""
    from repro.lang.regex import full_match_language, parse_regex

    inert = full_match_language(parse_regex(char_class_regex)).determinize()
    return inert.complement()
