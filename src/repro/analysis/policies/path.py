"""Path-traversal policy (``include``/``require``/``fopen``/…).

An untrusted path component must keep the resolved file where the
trusted prefix put it: it must not derive ``..`` (directory traversal),
must not start an absolute path (``/`` or ``\\``), and must not smuggle
a stream-wrapper scheme or drive (``:``) or a NUL truncation byte.
Sanitizers that erase the dot/slash repertoire —
``preg_replace('/[^a-z0-9_]/', '', …)``, ``intval`` — verify.
"""

from __future__ import annotations

from .base import SinkPolicy, contains_any, contains_string, starts_with_any


class PathPolicy(SinkPolicy):
    id = "path"
    title = "Path traversal"
    constructs = frozenset({"include"})
    rules = [
        {
            "id": "path-traversal",
            "name": "PathTraversal",
            "shortDescription": {
                "text": "Untrusted data reaching a filesystem sink can "
                        "derive '..', an absolute-path prefix, a "
                        "scheme/drive separator, or a NUL byte."
            },
            "defaultConfiguration": {"level": "error"},
        },
    ]

    def __init__(self) -> None:
        from .. import sources

        self.functions = dict(sources.PATH_FUNCTIONS)

    def warm(self) -> None:
        contains_string("..")
        starts_with_any(("/", "\\"))
        contains_any(":\0")

    def check_labeled(self, scope, root, labeled, hotspot, others):
        dangers = (
            contains_string(".."),
            starts_with_any(("/", "\\")),
            contains_any(":\0"),
        )
        return [
            self.danger_finding(
                scope,
                labeled,
                hotspot,
                dangers=dangers,
                check="path-traversal",
                safe_detail=(
                    "untrusted path component cannot leave the trusted "
                    "directory"
                ),
                unsafe_detail=(
                    "untrusted path component can traverse directories "
                    "('..'), start an absolute path, or smuggle a "
                    "scheme/NUL"
                ),
            )
        ]
