"""SARIF 2.1.0 export (``--sarif out.sarif``).

Renders a run's findings — with their full provenance chains — in the
OASIS Static Analysis Results Interchange Format, so the reports plug
into SARIF consumers (code-review UIs, CI annotators) instead of only
our own text/JSON renderings.

Mapping:

* each non-safe :class:`~repro.analysis.reports.Finding` becomes a
  ``result`` whose ``ruleId`` is the C1–C5 check that fired
  (``odd-quotes``, ``literal-break``, ``attack-string``,
  ``derivability``, ``tokenization``), at level ``error`` for
  ``direct`` taint and ``warning`` for ``indirect``;
* the finding's :class:`~repro.analysis.provenance.Provenance` becomes
  one ``codeFlow``: a ``threadFlow`` whose locations run from the
  untrusted source site(s) through every recorded string operation to
  the hotspot sink;
* file locations are project-root-relative under the ``SRCROOT`` uri
  base, so the document is stable across checkouts of the same tree.

The document is deterministic: results appear in page order, provenance
is re-derived per page by deterministic BFS, and serialization order is
construction order — which is what makes a warm-cache run's SARIF
byte-identical to the cold run's (asserted by the test suite).
"""

from __future__ import annotations

import json
from pathlib import Path

from .reports import Finding
from .sarifschema import SARIF_2_1_0_SCHEMA

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json"
)

#: rule catalog: every check the cascade can decide on, C1–C5 order
RULES: list[dict] = [
    {
        "id": "odd-quotes",
        "name": "OddUnescapedQuotes",
        "shortDescription": {
            "text": "Untrusted data derives a string with an odd number of "
                    "unescaped quotes (C1): it can never be syntactically "
                    "confined."
        },
        "defaultConfiguration": {"level": "error"},
    },
    {
        "id": "literal-position",
        "name": "StringLiteralPosition",
        "shortDescription": {
            "text": "Untrusted data occurs only inside string literals and "
                    "derives no unescaped quote (C2): safe."
        },
        "defaultConfiguration": {"level": "none"},
    },
    {
        "id": "literal-break",
        "name": "StringLiteralBreakout",
        "shortDescription": {
            "text": "Untrusted data sits inside string literals but derives "
                    "an unescaped quote (C2): it can break out of the "
                    "literal."
        },
        "defaultConfiguration": {"level": "error"},
    },
    {
        "id": "numeric",
        "name": "NumericLiteralsOnly",
        "shortDescription": {
            "text": "Untrusted data derives only numeric literals (C3): safe."
        },
        "defaultConfiguration": {"level": "none"},
    },
    {
        "id": "attack-string",
        "name": "KnownAttackFragment",
        "shortDescription": {
            "text": "Untrusted data derives a known non-confinable fragment "
                    "outside quotes (C4)."
        },
        "defaultConfiguration": {"level": "error"},
    },
    {
        "id": "derivability",
        "name": "GrammarDerivability",
        "shortDescription": {
            "text": "Definition 3.2 derivability (C5): the untrusted "
                    "subgrammar is (or is not) derivable from a "
                    "context-compatible SQL nonterminal."
        },
        "defaultConfiguration": {"level": "error"},
    },
    {
        "id": "tokenization",
        "name": "TokenizationFailure",
        "shortDescription": {
            "text": "The query context or untrusted subgrammar does not "
                    "tokenize cleanly; the check fails closed (C5)."
        },
        "defaultConfiguration": {"level": "error"},
    },
]

_RULE_INDEX = {rule["id"]: i for i, rule in enumerate(RULES)}

#: message prefix when a finding carries no policy id (classic SQL path)
_SQL_TITLE = "SQL command injection"


def _rule_catalog(policies=None):
    """``(rules, rule_index, titles)`` for a run.

    ``policies=None`` — the historical single-policy CLI — returns the
    module-level SQL catalog unchanged, keeping default SARIF output
    byte-identical.  With a :class:`~.policies.config.PolicyConfig`, the
    catalog is the concatenation of every enabled policy's rules in
    registry order, and ``titles`` maps policy id → message prefix.
    """
    if policies is None:
        return RULES, _RULE_INDEX, {}
    rules: list[dict] = []
    index: dict[str, int] = {}
    titles: dict[str, str] = {}
    for policy in policies.policies():
        titles[policy.id] = policy.title
        for rule in policy.rules:
            if rule["id"] not in index:
                index[rule["id"]] = len(rules)
                rules.append(rule)
    return rules, index, titles


def _relative_uri(file: str, root: Path) -> dict:
    """Root-relative artifact location when possible (stable across
    checkouts); absolute file uri otherwise."""
    try:
        rel = Path(file).resolve().relative_to(root)
        return {"uri": rel.as_posix(), "uriBaseId": "SRCROOT"}
    except (ValueError, OSError):
        return {"uri": Path(file).as_posix()}


def _location(
    file: str,
    line: int,
    root: Path,
    message: str | None = None,
    span: list | tuple | None = None,
) -> dict:
    location: dict = {
        "physicalLocation": {
            "artifactLocation": _relative_uri(file, root),
        }
    }
    if line and line > 0:
        region: dict = {"startLine": line}
        if span and len(span) == 2 and span[0] >= 0 and span[1] >= span[0]:
            # byte-exact source span recorded by the provenance chain
            # (SARIF §3.30.11: charOffset/charLength are 0-based)
            region["charOffset"] = int(span[0])
            region["charLength"] = int(span[1] - span[0])
        location["physicalLocation"]["region"] = region
    if message:
        location["message"] = {"text": message}
    return location


def _step_message(event: dict) -> str:
    kind = event.get("kind", "?")
    name = event.get("name", "?")
    if kind == "source":
        label = event.get("label", "")
        return f"untrusted source {name} [{label}]"
    text = f"{kind} {name}"
    op = event.get("op")
    if op and op != name:
        text += f" ({op})"
    before, after = event.get("before"), event.get("after")
    if before or after:
        text += f": {before!r} ↦ {after!r}"
    return text


def _code_flow(finding: Finding, root: Path) -> dict | None:
    provenance = finding.provenance
    if provenance is None:
        return None
    locations = []
    for event in provenance.sources:
        locations.append(
            {
                "location": _location(
                    event.get("file", ""), event.get("line", 0), root,
                    _step_message(event), span=event.get("span"),
                )
            }
        )
    for event in provenance.steps:
        locations.append(
            {
                "location": _location(
                    event.get("file", ""), event.get("line", 0), root,
                    _step_message(event), span=event.get("span"),
                )
            }
        )
    locations.append(
        {
            "location": _location(
                finding.file, finding.line, root,
                f"query sink {finding.sink}; check {finding.check} fired "
                f"on nonterminal {provenance.nonterminal}",
            )
        }
    )
    flow: dict = {"threadFlows": [{"locations": locations}]}
    if provenance.truncated:
        flow["message"] = {
            "text": "taint chain truncated to the steps nearest the source"
        }
    return flow


def _fix_key(finding: Finding, root: Path) -> tuple:
    """How the remediation engine addresses a finding's ``fixes[]``
    (matches :meth:`~repro.remediate.engine.RemediationReport.sarif_fixes`)."""
    return (
        _relative_uri(finding.file, root)["uri"],
        finding.line,
        finding.sink,
        finding.check,
        finding.policy or "sql",
    )


def _result(
    finding: Finding,
    page: str,
    root: Path,
    rule_index: dict[str, int] = _RULE_INDEX,
    titles: dict[str, str] | None = None,
    fixes: dict | None = None,
) -> dict:
    level = "error" if finding.category == "direct" else "warning"
    title = (titles or {}).get(finding.policy, _SQL_TITLE)
    text = (
        f"{title}: {finding.category} untrusted data reaches "
        f"{finding.sink} and fails the {finding.check} check"
    )
    if finding.detail:
        text += f" — {finding.detail}"
    result: dict = {
        "ruleId": finding.check,
        "ruleIndex": rule_index.get(finding.check, -1),
        "level": level,
        "message": {"text": text},
        "locations": [_location(finding.file, finding.line, root)],
    }
    flow = _code_flow(finding, root)
    if flow is not None:
        result["codeFlows"] = [flow]
    if fixes:
        verified = fixes.get(_fix_key(finding, root))
        if verified:
            result["fixes"] = verified
    properties: dict = {
        "page": _relative_uri(page, root)["uri"],
        "sink": finding.sink,
        "nonterminal": finding.nonterminal,
        "labels": sorted(finding.labels),
    }
    if finding.witness:
        properties["witness"] = finding.witness
    if finding.example_query:
        properties["exampleQuery"] = finding.example_query
    # new-policy metadata; all falsy on the classic SQL path, so the
    # golden SARIF fixtures stay byte-identical
    if finding.witness_unavailable:
        properties["witnessUnavailable"] = True
    if finding.context:
        properties["context"] = finding.context
    if finding.policy:
        properties["policy"] = finding.policy
    result["properties"] = properties
    return result


def results_to_sarif(
    project_root: str | Path, page_results: list, policies=None, fixes=None
) -> dict:
    """The SARIF log for one run over ``page_results``
    (:class:`~repro.analysis.analyzer.PageResult` list, in page order).
    ``policies`` (a :class:`~.policies.config.PolicyConfig`) selects the
    rule catalog; None keeps the classic SQL-only catalog.  ``fixes``
    (``sqlciv fix``'s :meth:`~repro.remediate.engine.RemediationReport.\
sarif_fixes` mapping) attaches verified patches as SARIF ``fixes[]``;
    None — every path except ``sqlciv fix --sarif`` — leaves the
    document byte-identical to before the remediation engine existed."""
    root = Path(project_root).resolve()
    rules, rule_index, titles = _rule_catalog(policies)
    results = []
    for page_result in page_results:
        for report in page_result.reports:
            for finding in report.findings:
                if finding.safe:
                    continue
                results.append(
                    _result(
                        finding, page_result.page, root, rule_index,
                        titles, fixes,
                    )
                )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "sqlciv",
                        "informationUri": (
                            "https://doi.org/10.1145/1250734.1250739"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": root.as_uri() + "/"}
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def render_sarif(
    project_root: str | Path, page_results: list, policies=None, fixes=None
) -> str:
    return json.dumps(
        results_to_sarif(project_root, page_results, policies, fixes),
        indent=2,
    )


def write_sarif(
    path: str | Path,
    project_root: str | Path,
    page_results: list,
    policies=None,
    fixes=None,
) -> None:
    Path(path).write_text(
        render_sarif(project_root, page_results, policies, fixes) + "\n",
        encoding="utf-8",
    )


def validate_sarif(document: dict) -> list[str]:
    """Validation errors of ``document`` against the vendored 2.1.0
    schema (empty list = valid).  Requires the ``jsonschema`` dev
    dependency; raises :class:`ImportError` when it is missing so
    callers (tests, CI) can skip instead of silently passing."""
    import jsonschema

    validator = jsonschema.Draft7Validator(SARIF_2_1_0_SCHEMA)
    return [
        "/".join(str(part) for part in error.absolute_path) + ": " + error.message
        for error in validator.iter_errors(document)
    ]
