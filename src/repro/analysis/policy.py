"""Phase 2: policy-conformance analysis (paper §3.2).

For each hotspot, every *maximal* labeled nonterminal ``X`` (one whose
untrusted substrings are not part of a larger untrusted substring) is
run through the paper's check cascade:

C1 ``odd-quotes``       — some string of ``L(X)`` has an odd number of
                          unescaped quotes ⇒ it can never be confined ⇒
                          violation.
C2 ``literal-position`` — if every occurrence of ``X`` in the query
                          grammar sits inside a single-quoted literal
                          (checked by abstracting ``X`` to a fresh
                          terminal and a regular containment), then
                          ``X`` is safe iff ``L(X)`` has no unescaped
                          quote (``literal-break`` otherwise).
C3 ``numeric``          — ``L(X)`` ⊆ numeric literals ⇒ safe.
C4 ``attack-string``    — ``X`` derives a known non-confinable fragment
                          outside quotes ⇒ violation.
C5 ``derivability``     — fallback (§3.2.2): tokenize the query grammar
                          with ``X`` as a hole, compute the SQL
                          nonterminals that fit every context, and check
                          Definition 3.2 derivability of ``X``'s
                          subgrammar from one of them.  Tokenization or
                          derivability failure ⇒ violation (fail closed —
                          this preserves Theorem 3.4).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.lang.earley import (
    candidate_fixpoint,
    derivability,
    enumerate_strings,
    parse_sentential_form,
)
from repro.lang.grammar import Grammar, Lit, Nonterminal
from repro.lang.intersect import intersect, intersection_is_empty
from repro.obs.timeline import TIMELINE
from repro.obs.metrics import PERF
from repro.sql.bridge import TokenizationFailure, grammar_to_tokens
from repro.sql.grammar import sql_grammar
from repro.obs.trace import TRACE

from . import quotes
from .provenance import trace_provenance
from .reports import Finding, HotspotReport
from .stringtaint import Hotspot

HOLE_TOKEN = "⟨X⟩"


class VerdictCache:
    """Content-addressed memo over phase-2 verdicts (bounded LRU).

    Keyed by the canonical fingerprint of a hotspot's trimmed labeled
    subgrammar (:meth:`repro.lang.grammar.Grammar.fingerprint`).  The
    paper's evaluation (§5.3) analyzes every entry page as a separate
    ``main`` and relies on memoization to keep whole-application runs
    tractable: structurally identical query subgrammars recur across
    pages via shared includes, and Definition 3.2's outcome is a function
    of the (trimmed, labeled) grammar alone — so one cascade run answers
    every recurrence.  See DESIGN.md "Content-addressed caching" for the
    soundness argument.

    Values store findings *abstractly* — the labeled nonterminal is
    recorded by canonical index, not by name — so a hit can be replayed
    against a different page's grammar objects and still report that
    page's own nonterminal names.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self._entries: OrderedDict[str, dict] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> dict | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: str, value: dict) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            PERF.incr("policy.verdict_cache.evictions")
        PERF.gauge("policy.verdict_cache.size", len(self._entries))

    def clear(self) -> None:
        self._entries.clear()


#: Process-wide phase-2 memo.  Serial runs share it across every page;
#: parallel runs get one per worker process.
VERDICT_CACHE = VerdictCache()

#: Farm hook: a :class:`repro.farm.memo.VerdictMemo` in worker
#: processes, ``None`` everywhere else.  Consulted on local-memo misses
#: and fed on local computes, under the *same* content-addressed key as
#: :data:`VERDICT_CACHE` — so a shared verdict is exactly what the local
#: cascade would have produced.  A shared hit still counts as a local
#: ``policy.verdict_cache.misses`` (plus ``farm.verdict.shared_hits``),
#: keeping the hits+misses lookup total scheduling-invariant.
SHARED_VERDICTS = None


def check_hotspot(
    grammar: Grammar,
    hotspot: Hotspot,
    cache: VerdictCache | None = None,
    cascade=None,
    namespace: str = "",
) -> HotspotReport:
    """Run the full check cascade for one hotspot (memoized).

    ``cache`` defaults to the process-wide :data:`VERDICT_CACHE`; pass an
    explicit :class:`VerdictCache` to isolate, or construct one with
    ``maxsize=0``-style behaviour by passing a fresh instance per call.

    ``cascade`` overrides the SQL-confinement cascade — sink policies
    (:mod:`repro.analysis.policies`) pass their own
    ``(scope, root, hotspot, report)`` callable and a ``namespace`` that
    keeps their memo entries apart from other policies' verdicts on the
    same subgrammar fingerprint.
    """
    if cache is None:
        cache = VERDICT_CACHE
    report = HotspotReport(file=hotspot.file, line=hotspot.line, sink=hotspot.sink)
    root = hotspot.query.nt
    with TRACE.span(
        "hotspot", file=hotspot.file, line=hotspot.line, sink=hotspot.sink
    ) as span:
        scope = grammar.subgrammar(root).trim(root)
        with TIMELINE.phase("verdict-memo") as memo_phase:
            with PERF.latency("policy.verdict_lookup_seconds"):
                with PERF.timer("phase2.fingerprint"):
                    order = scope.canonical_order(root)
                    key = scope.fingerprint(root, order=order)
                    if namespace:
                        key = f"{namespace}:{key}"
                cached = cache.get(key)
        PERF.gauge("policy.scope_productions.max", scope.num_productions())
        span.set("scope_productions", scope.num_productions())
        span.set("fingerprint", key[:16])
        if cached is not None:
            PERF.incr("policy.verdict_cache.hits")
            span.set("verdict_cache", "hit")
            if memo_phase is not None:
                memo_phase.setdefault("meta", {})["outcome"] = "hit"
            _report_from_cached(cached, report, order)
        else:
            PERF.incr("policy.verdict_cache.misses")
            shared = (
                SHARED_VERDICTS.fetch(key)
                if SHARED_VERDICTS is not None
                else None
            )
            if shared is not None:
                span.set("verdict_cache", "shared-hit")
                if memo_phase is not None:
                    memo_phase.setdefault("meta", {})["outcome"] = "shared-hit"
                cache.put(key, shared)
                _report_from_cached(shared, report, order)
            else:
                span.set("verdict_cache", "miss")
                if memo_phase is not None:
                    memo_phase.setdefault("meta", {})["outcome"] = "miss"
                with PERF.timer("phase2.cascade"), TIMELINE.phase(
                    f"cascade:{namespace or 'sql'}"
                ):
                    (cascade or _run_cascade)(scope, root, hotspot, report)
                cached_value = _cached_from_report(report, order)
                cache.put(key, cached_value)
                if SHARED_VERDICTS is not None:
                    SHARED_VERDICTS.publish(key, cached_value)
        # provenance is attached *after* both paths, from the hitting
        # page's grammar: cached verdicts re-bind to this page's source
        # sites and sanitizer calls exactly like witnesses re-bind to
        # its nonterminal names
        _attach_provenance(grammar, report)
    return report


def _attach_provenance(grammar: Grammar, report: HotspotReport) -> None:
    """Derive each finding's taint chain from the page grammar.

    Consumes ``report._finding_nts`` (set by :func:`_run_cascade` on the
    miss path and by :func:`_report_from_cached` on the hit path) and
    removes it afterwards, keeping reports free of live grammar objects
    — they travel through pickles (disk cache, worker processes)."""
    kept_nts = getattr(report, "_finding_nts", None)
    if kept_nts is None:
        return
    with PERF.timer("phase2.provenance"):
        for finding, labeled in zip(report.findings, kept_nts):
            if labeled is None:
                continue
            finding.provenance = trace_provenance(
                grammar, labeled, check=finding.check
            )
    del report._finding_nts


def _run_cascade(
    scope: Grammar, root: Nonterminal, hotspot: Hotspot, report: HotspotReport
) -> list[Nonterminal]:
    """The uncached cascade; fills ``report`` and returns, parallel to
    ``report.findings``, the labeled nonterminal each finding is about."""
    PERF.incr("policy.check_cascades")
    report.query_samples = scope.sample_strings(root, limit=3, shared=True)
    maximal = maximal_labeled(scope, root)
    findings: list[tuple[Nonterminal, Finding]] = []
    for labeled in maximal:
        finding = check_nonterminal(scope, root, labeled, hotspot, others=maximal)
        if not finding.safe and finding.witness and not finding.example_query:
            finding.example_query = _example_query(
                scope, root, labeled, maximal, finding.witness
            )
        findings.append((labeled, finding))
    # One untrusted source can appear as several automaton-state-split
    # nonterminals after refinement; they describe the same substring set
    # piecewise, so collapse findings with the same verdict shape.
    seen: dict[tuple, int] = {}
    kept_nts: list[Nonterminal] = []
    for labeled, finding in findings:
        key = (finding.category, finding.check, finding.safe)
        if key in seen:
            kept = report.findings[seen[key]]
            if finding.witness and not kept.witness:
                kept.witness = finding.witness
            continue
        seen[key] = len(report.findings)
        report.findings.append(finding)
        kept_nts.append(labeled)
    report._finding_nts = kept_nts  # consumed by _cached_from_report
    return kept_nts


def _cached_from_report(report: HotspotReport, order: list[Nonterminal]) -> dict:
    index = {nt: i for i, nt in enumerate(order)}
    kept_nts = getattr(report, "_finding_nts", [])
    entry_findings = []
    for position, finding in enumerate(report.findings):
        labeled = kept_nts[position] if position < len(kept_nts) else None
        entry = {
            "nt_index": index.get(labeled),
            "nt_name": finding.nonterminal,
            "labels": sorted(finding.labels),
            "check": finding.check,
            "safe": finding.safe,
            "witness": finding.witness,
            "example_query": finding.example_query,
            "detail": finding.detail,
        }
        if finding.witness_unavailable:
            entry["witness_unavailable"] = True
        if finding.context:
            entry["context"] = finding.context
        if finding.policy:
            entry["policy"] = finding.policy
        entry_findings.append(entry)
    return {
        "query_samples": list(report.query_samples),
        "findings": entry_findings,
    }


def _report_from_cached(
    cached: dict, report: HotspotReport, order: list[Nonterminal]
) -> HotspotReport:
    report.query_samples = list(cached["query_samples"])
    bound_nts: list[Nonterminal | None] = []
    for entry in cached["findings"]:
        nt_index = entry["nt_index"]
        bound = (
            order[nt_index]
            if nt_index is not None and nt_index < len(order)
            else None
        )
        bound_nts.append(bound)
        name = bound.name if bound is not None else entry["nt_name"]
        report.findings.append(
            Finding(
                file=report.file,
                line=report.line,
                sink=report.sink,
                nonterminal=name,
                labels=frozenset(entry["labels"]),
                check=entry["check"],
                safe=entry["safe"],
                witness=entry["witness"],
                example_query=entry["example_query"],
                detail=entry["detail"],
                witness_unavailable=entry.get("witness_unavailable", False),
                context=entry.get("context", ""),
                policy=entry.get("policy", ""),
            )
        )
    report._finding_nts = bound_nts  # consumed by _attach_provenance
    return report


def maximal_labeled(scope: Grammar, root: Nonterminal) -> list[Nonterminal]:
    """Labeled nonterminals with no labeled proper ancestor.

    Computed on the SCC condensation so that cycles of labeled
    nonterminals still yield representatives (soundness: every untrusted
    substring occurrence is covered by some maximal labeled node).

    Candidates are walked in *canonical* (BFS-from-root) order so two
    structurally identical subgrammars — the situation the verdict cache
    keys on — produce findings in the same order no matter which page
    built them."""
    labeled = [nt for nt in scope.canonical_order(root) if scope.has_label(nt)]
    if not labeled:
        return []
    reach = {nt: scope.reachable(nt) for nt in labeled}
    maximal = []
    for x in labeled:
        has_strict_ancestor = any(
            y is not x and x in reach[y] and y not in reach[x] for y in labeled
        )
        if has_strict_ancestor:
            continue
        # within a labeled SCC keep a single representative
        in_same_cycle = any(x in reach[y] and y in reach[x] for y in maximal)
        if not in_same_cycle:
            maximal.append(x)
    return maximal


def check_nonterminal(
    scope: Grammar,
    root: Nonterminal,
    labeled: Nonterminal,
    hotspot: Hotspot,
    others: list[Nonterminal] | None = None,
) -> Finding:
    labels = frozenset(scope.labels.get(labeled, ()))

    def finding(check: str, safe: bool, witness: str = "", detail: str = "") -> Finding:
        return Finding(
            file=hotspot.file,
            line=hotspot.line,
            sink=hotspot.sink,
            nonterminal=labeled.name,
            labels=labels,
            check=check,
            safe=safe,
            witness=witness,
            detail=detail,
        )

    # -- C1: odd number of unescaped quotes --------------------------------
    odd = quotes.odd_unescaped_quotes()
    if not intersection_is_empty(scope, labeled, odd):
        witness = _witness(scope, labeled, odd)
        return finding(
            "odd-quotes",
            safe=False,
            witness=witness,
            detail="derives a string with an odd number of unescaped quotes",
        )

    # -- C2: string-literal position ----------------------------------------
    context = _contexts_grammar(scope, root, labeled, others or [])
    only_literal = intersection_is_empty(
        context, root, quotes.markers_inside_string_literals().complement()
    )
    if only_literal:
        breaker = quotes.has_unescaped_quote()
        if intersection_is_empty(scope, labeled, breaker):
            return finding(
                "literal-position",
                safe=True,
                detail="occurs only inside string literals; derives no unescaped quote",
            )
        return finding(
            "literal-break",
            safe=False,
            witness=_witness(scope, labeled, breaker),
            detail="sits inside string literals but derives an unescaped quote",
        )

    # -- C3: numeric literals only ------------------------------------------
    numeric = quotes.numeric_literals()
    if intersection_is_empty(scope, labeled, numeric.complement()):
        if _nonempty(scope, labeled):
            return finding(
                "numeric", safe=True, detail="derives only numeric literals"
            )

    # -- C4: known non-confinable fragments ----------------------------------
    attacks = quotes.non_confinable_substrings()
    if not intersection_is_empty(scope, labeled, attacks):
        return finding(
            "attack-string",
            safe=False,
            witness=_witness(scope, labeled, attacks),
            detail="derives a known non-confinable fragment outside quotes",
        )

    # -- C5: derivability fallback (§3.2.2) -----------------------------------
    return _check_derivability(scope, root, labeled, finding)


def _check_derivability(scope, root, labeled, finding):
    sql = sql_grammar()
    try:
        context_tokens = grammar_to_tokens(scope, root, special={labeled: HOLE_TOKEN})
    except TokenizationFailure as exc:
        return finding(
            "tokenization",
            safe=False,
            detail=f"query context does not tokenize cleanly: {exc}",
        )
    hole_candidates = _context_candidates(context_tokens, sql)
    if not hole_candidates:
        return finding(
            "derivability",
            safe=False,
            detail="no SQL nonterminal fits the untrusted substring's contexts",
        )
    try:
        sub_tokens = grammar_to_tokens(scope, labeled)
    except TokenizationFailure as exc:
        return finding(
            "tokenization",
            safe=False,
            detail=f"untrusted subgrammar does not tokenize cleanly: {exc}",
        )
    for candidate in hole_candidates:
        result = derivability(
            sub_tokens, sql, sub_tokens.start, allowed_roots=[candidate]
        )
        if result.derivable:
            return finding(
                "derivability",
                safe=True,
                detail=f"subgrammar derivable from SQL nonterminal {candidate!r}",
            )
    return finding(
        "derivability",
        safe=False,
        detail=(
            "subgrammar not derivable from any context-compatible SQL "
            f"nonterminal (contexts allow {hole_candidates[:4]})"
        ),
    )


def _context_candidates(context_tokens, sql) -> list[str]:
    """SQL symbols that can stand for the hole in *every* context.

    Preferred path (the paper's "sentential forms that include X"): when
    the token-level context language is finite, enumerate the forms
    ``s1 ⟨X⟩ s2`` and keep the SQL nonterminals/terminals ``A`` for which
    every ``s1 A s2`` parses as a query.  For infinite context languages
    fall back to the structural candidate fixpoint (conservative)."""
    forms = enumerate_strings(context_tokens, context_tokens.start, max_strings=48)
    if forms is not None:
        with_hole = [form for form in forms if HOLE_TOKEN in form]
        # forms without the hole carry no constraint; if no form mentions
        # the hole, the untrusted data never reaches this query at all
        if not with_hole:
            return []
        survivors = []
        for candidate in list(sql.nonterminals()) + sorted(sql.terminals()):
            ok = all(
                parse_sentential_form(
                    sql,
                    sql.start,
                    [candidate if s == HOLE_TOKEN else s for s in form],
                )
                for form in with_hole
            )
            if ok:
                survivors.append(candidate)
        return survivors
    candidates = candidate_fixpoint(
        context_tokens,
        sql,
        allowed={context_tokens.start: [sql.start]},
    )
    return sorted(candidates.get(HOLE_TOKEN, ()))


#: placeholder for *other* untrusted pieces when computing one piece's
#: context: behaves like ordinary quote-free literal content.  Each piece
#: is separately verified not to break out of its own context, so
#: abstracting the others this way is the compositional reading of the
#: paper's "abstracting the labeled subgrammars out of the generated CFG".
NEUTRAL = "\ue001"


def _contexts_grammar(
    scope: Grammar,
    root: Nonterminal,
    labeled: Nonterminal,
    others: list[Nonterminal],
) -> Grammar:
    """The scope grammar with every rhs occurrence of ``labeled`` replaced
    by the fresh terminal MARKER (the paper's ``R_t`` construction), and
    every other maximal labeled nonterminal replaced by NEUTRAL."""
    result = Grammar(root)
    marker = Lit(quotes.MARKER)
    neutral = Lit(NEUTRAL)
    replaced_nts = {labeled} | {nt for nt in others if nt is not labeled}

    def replacement(symbol):
        if symbol is labeled:
            return marker
        if isinstance(symbol, Nonterminal) and symbol in replaced_nts:
            return neutral
        return symbol

    # canonical order, not dict order: the verdict cache replays results
    # across structurally identical scopes, so everything downstream of
    # this construction (sampling order in _example_query in particular)
    # must be a function of the canonical structure alone
    for nt in scope.canonical_order(root):
        rules = scope.productions.get(nt, ())
        if nt in replaced_nts:
            # severed: the context language treats these purely as markers
            result.productions.setdefault(nt, [])
            continue
        for rhs in rules:
            result.add(nt, tuple(replacement(symbol) for symbol in rhs))
        result.productions.setdefault(nt, [])
    if root is labeled:
        result.add(root, (marker,))
    elif root in replaced_nts:
        result.add(root, (neutral,))
    return result


def _example_query(
    scope: Grammar,
    root: Nonterminal,
    labeled: Nonterminal,
    others: list[Nonterminal],
    witness: str,
) -> str:
    """A full query string with the witness substring spliced into one of
    its contexts — the "here is the attack" line of the bug report."""
    context = _contexts_grammar(scope, root, labeled, others)
    samples = context.sample_strings(root, limit=6, max_len=300, shared=True)
    for sample in samples:
        if quotes.MARKER in sample:
            return sample.replace(quotes.MARKER, witness).replace(NEUTRAL, "data")
    # The sampling horizon can miss every marker-placing derivation (the
    # context grammar is big or the marker sits behind long literals).
    # Rather than an empty example, show a marker-free query with the
    # witness appended — still a string the report reader can act on.
    if samples:
        return samples[0].replace(NEUTRAL, "data") + witness
    return witness


def _witness(scope: Grammar, labeled: Nonterminal, dfa) -> str:
    refined, start = intersect(scope, labeled, dfa)
    samples = refined.sample_strings(start, limit=1)
    return samples[0] if samples else ""


def _nonempty(scope: Grammar, labeled: Nonterminal) -> bool:
    return labeled in scope.trim(labeled).productive()
